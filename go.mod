module multicluster

go 1.22
