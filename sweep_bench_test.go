// Sweep-cell throughput benchmarks: the same four-machine grid cell
// group measured through the two pipelines a sweep can take. Lazy is the
// pre-batching path — every cell re-walks the workload driver through its
// own trace generator. Batched is the artifact path — one materialized
// trace shared by all members with cross-member storage recycling, via
// experiment.CachedRunBatch. Both report cells/sec; scripts/sweepdiff
// runs them, gates the batched/lazy speedup, and writes BENCH_sweep.json.
//
// Each iteration draws a fresh seed from a private counter so the
// process-wide run memo can never serve a cached cell: the batched side
// must do its real work (compile, materialize, batch-simulate) every
// time, and the generation counter must advance exactly once per
// iteration — the benchmark asserts that.
package multicluster

import (
	"sync/atomic"
	"testing"

	"multicluster/internal/bpred"
	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/partition"
	"multicluster/internal/workload"
)

// sweepBenchSeed starts far outside the seed ranges any test or sweep
// uses, so benchmark cells never collide with other memo entries.
var sweepBenchSeed atomic.Int64

func init() { sweepBenchSeed.Store(7_000_000) }

// sweepBenchConfigs is the benchmark's machine axis: the four canonical
// machines plus the buffer-depth and master-policy ablation points — the
// shape of a real study grid, where one (workload, seed) row fans out
// over many machine variants that all share a compile and a trace.
func sweepBenchConfigs() []core.Config {
	shallow := core.DualCluster4Way()
	shallow.OperandBuffer = 4
	shallow.ResultBuffer = 4
	deep := core.DualCluster4Way()
	deep.OperandBuffer = 16
	deep.ResultBuffer = 16
	firstSrc := core.DualCluster4Way()
	firstSrc.MasterSelect = core.MasterFirstSource
	alternate := core.DualCluster4Way()
	alternate.MasterSelect = core.MasterAlternate
	bimodal := core.DualCluster4Way()
	bimodal.Predictor.Kind = bpred.BimodalOnly
	gshare := core.DualCluster4Way()
	gshare.Predictor.Kind = bpred.GshareOnly
	cfgs := []core.Config{
		core.SingleCluster8Way(),
		core.DualCluster4Way(),
		core.SingleCluster4Way(),
		core.DualCluster2Way(),
		shallow,
		deep,
		firstSrc,
		alternate,
		bimodal,
		gshare,
	}
	for i := range cfgs {
		cfgs[i].MaxCycles = benchInstrs * 200
	}
	return cfgs
}

// BenchmarkSweepCellsLazy is the pre-batching cell pipeline: one compile
// per (workload, seed), then each machine configuration simulates from
// its own trace generator, re-walking the driver per cell.
func BenchmarkSweepCellsLazy(b *testing.B) {
	w := workload.ByName("su2cor")
	cfgs := sweepBenchConfigs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = sweepBenchSeed.Add(1)
		mp, _, err := experiment.Compile(w, partition.Local{}, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := experiment.Simulate(mp, w, cfg, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}

// BenchmarkSweepCellsBatched is the artifact pipeline: the same cell
// group through experiment.CachedRunBatch — one materialized trace walk
// feeding every machine configuration, with slab recycling between
// members. The fresh per-iteration seed keeps the memo cold, and the
// generation counter proves the trace was produced exactly once per
// group.
func BenchmarkSweepCellsBatched(b *testing.B) {
	cfgs := sweepBenchConfigs()
	before := experiment.TraceGenerations()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Seed = sweepBenchSeed.Add(1)
		if _, err := experiment.CachedRunBatch("su2cor", "local", cfgs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := experiment.TraceGenerations() - before; got != int64(b.N) {
		b.Fatalf("trace generated %d times across %d cell groups, want one per group", got, b.N)
	}
	b.ReportMetric(float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}
