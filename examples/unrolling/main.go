// Unrolling: the paper's §6 future-work experiment — unroll a loop so the
// local scheduler can interleave iterations across clusters, and measure
// what it buys on the dual-cluster machine.
//
// The kernel is a saxpy-style loop whose whole body is one connected value
// web (loads feed a multiply-add that feeds the store). The partitioner
// must place each live range in one cluster, so every iteration of the
// *base* loop executes in the same cluster and throughput is capped by one
// cluster's issue and memory limits. Unrolling privatizes the per-iteration
// values; the copies form independent webs that the scheduler can place on
// alternate clusters.
//
//	go run ./examples/unrolling
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
	"multicluster/internal/unroll"
)

func buildSaxpy() *il.Program {
	b := il.NewBuilder("saxpy")
	sp := b.GlobalValue("SP", il.KindInt)
	fa, fb, fc, fs := b.FP("fa"), b.FP("fb"), b.FP("fc"), b.FP("fs")
	i := b.Int("i")

	e := b.Block("entry", 1)
	e.Load(isa.LDF, fs, sp, 0)
	e.Const(i, 0)
	e.FallTo("loop")

	l := b.Block("loop", 1000)
	l.Load(isa.LDF, fa, sp, 8)
	l.Load(isa.LDF, fb, sp, 16)
	l.Op(isa.FMUL, fc, fa, fs)
	l.Op(isa.FADD, fc, fc, fb)
	l.Store(isa.STF, sp, fc, 24)
	l.OpImm(isa.ADD, i, i, 1)
	l.CondBr(isa.BNE, i, "loop", "done")

	d := b.Block("done", 1)
	d.Ret(i)
	return b.MustFinish()
}

// streams drives the loop forever over three vectors.
type streams struct{ n [4]uint64 }

func (d *streams) Reset() { d.n = [4]uint64{} }
func (d *streams) NextBlock(cur string, succs []string) (string, bool) {
	if cur == "entry" || cur == "loop" {
		return "loop", true
	}
	return "", false
}
func (d *streams) Addr(memID int) uint64 {
	if memID < 0 || memID > 3 {
		return 0x1000
	}
	d.n[memID] += 8
	return uint64(0x1000_0000*(memID+1)) + d.n[memID]
}

// runVariant compiles and simulates one loop variant on the dual-cluster
// machine and returns its stats.
func runVariant(w io.Writer, label string, prog *il.Program, driver func() trace.Driver) (core.Stats, error) {
	trace.Profile(prog, driver(), 20_000)
	part := partition.Local{}.Partition(prog)
	alloc, err := regalloc.Allocate(prog, part, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         true,
		OtherClusterSpill: true,
	})
	if err != nil {
		return core.Stats{}, err
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		return core.Stats{}, err
	}
	gen, err := trace.NewGenerator(mp, driver(), 60_000)
	if err != nil {
		return core.Stats{}, err
	}
	cfg := core.DualCluster4Way()
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0 // isolate the issue-width effect
	p, err := core.New(cfg, gen)
	if err != nil {
		return core.Stats{}, err
	}
	stats, err := p.Run()
	if err != nil {
		return core.Stats{}, err
	}
	c0 := float64(stats.Cluster[0].IssuedUops)
	share := 100 * c0 / (c0 + float64(stats.Cluster[1].IssuedUops))
	fmt.Fprintf(w, "  %-12s cycles=%6d  IPC=%.2f  dual=%4.1f%%  cluster-0 share=%4.1f%%\n",
		label, stats.Cycles, stats.IPC(), 100*stats.DualFraction(), share)
	return stats, nil
}

func run(w io.Writer) error {
	base := buildSaxpy()

	fmt.Fprintln(w, "saxpy on the dual-cluster machine (perfect caches):")
	if _, err := runVariant(w, "base", base, func() trace.Driver { return &streams{} }); err != nil {
		return err
	}

	for _, factor := range []int{2, 4} {
		res, err := unroll.SelfLoop(base, "loop", factor)
		if err != nil {
			return err
		}
		if _, err := runVariant(w, fmt.Sprintf("unrolled x%d", factor), res.Prog,
			func() trace.Driver { return res.Driver(&streams{}) }); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "\nthe base loop's single value web pins every iteration to one cluster;")
	fmt.Fprintln(w, "the privatized copies let the scheduler use both (§6).")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
