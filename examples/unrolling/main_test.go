package main

import (
	"bytes"
	"strings"
	"testing"

	"multicluster/internal/trace"
	"multicluster/internal/unroll"
)

// TestRunEndToEnd smoke-tests the full unrolling walkthrough: build, unroll,
// compile, and simulate each variant, and print one result line per run.
func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"base", "unrolled x2", "unrolled x4", "cluster-0 share"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestUnrollingImprovesIPC asserts the experiment's headline claim, not
// just that it runs: privatizing per-iteration values (×2) must beat the
// base loop on the dual-cluster machine.
func TestUnrollingImprovesIPC(t *testing.T) {
	var buf bytes.Buffer
	base, err := runVariant(&buf, "base", buildSaxpy(), func() trace.Driver { return &streams{} })
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild: runVariant's profiling pass mutates block estimates.
	res, err := unroll.SelfLoop(buildSaxpy(), "loop", 2)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := runVariant(&buf, "x2", res.Prog, func() trace.Driver { return res.Driver(&streams{}) })
	if err != nil {
		t.Fatal(err)
	}
	if x2.IPC() <= base.IPC() {
		t.Errorf("unrolling x2 did not improve IPC: base %.3f, x2 %.3f", base.IPC(), x2.IPC())
	}
}
