package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunEndToEnd smoke-tests the full example pipeline: Figure 6 IL,
// partitioning, clustered register allocation, and lowering all succeed and
// produce every section of the walkthrough.
func TestRunEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"the control-flow graph of Figure 6:",
		"local-scheduler block traversal",
		"assignment order",
		"static quality:",
		"local(window=1)",
		"clustered register allocation",
		"lowered machine code:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The clustered allocation must actually respect the even/odd scheme:
	// the disassembly section implies lowering succeeded with registers
	// assigned, so at least one register name must appear.
	if !strings.Contains(out, "-> r") && !strings.Contains(out, "-> f") {
		t.Error("no register assignments in output")
	}
}
