// Scheduling: walk through the paper's Figure 6 example — the local
// scheduler's block traversal, the live-range assignment order, the
// resulting register allocation, and how the choices change with the
// imbalance window and against the baseline partitioners.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"multicluster/internal/codegen"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
)

func run(w io.Writer) error {
	prog := il.Figure6()
	fmt.Fprintln(w, "the control-flow graph of Figure 6:")
	fmt.Fprintln(w, prog)

	fmt.Fprintln(w, "local-scheduler block traversal (sorted by execution estimate, then size):")
	for i, b := range partition.SortedBlocks(prog) {
		fmt.Fprintf(w, "  %d. %s\n", i+1, b.Name)
	}

	res := partition.Local{}.Partition(prog)
	fmt.Fprintln(w, "\nassignment order — the first write encountered bottom-up assigns the live range:")
	for i, id := range res.Order {
		fmt.Fprintf(w, "  %d. %-3s -> cluster %d\n", i+1, prog.Value(id).Name, res.Of(id))
	}
	fmt.Fprintf(w, "static quality: %s\n", partition.Measure(prog, res))

	fmt.Fprintln(w, "\nhow the partitioners compare on this graph:")
	for _, pt := range []partition.Partitioner{
		partition.Local{}, partition.Local{Window: 1}, partition.Hash{},
		partition.RoundRobin{}, partition.Affinity{},
	} {
		m := partition.Measure(prog, pt.Partition(prog))
		name := pt.Name()
		if l, ok := pt.(partition.Local); ok && l.Window == 1 {
			name = "local(window=1)"
		}
		fmt.Fprintf(w, "  %-16s %s\n", name, m)
	}

	alloc, err := regalloc.Allocate(prog, res, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         true,
		OtherClusterSpill: true,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nclustered register allocation (even registers are cluster 0, odd cluster 1):")
	for id := range alloc.Prog.Values {
		fmt.Fprintf(w, "  %-3s -> %s\n", alloc.Prog.Value(id).Name, alloc.RegOf[id])
	}

	machine, err := codegen.Lower(alloc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nlowered machine code:")
	fmt.Fprint(w, machine.Disassemble())
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
