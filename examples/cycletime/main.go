// Cycletime: explore the §4.2 analysis — when does the multicluster's
// faster clock pay for its extra cycles? Sweeps feature sizes with the
// Palacharla-style delay model and prints the break-even frontier.
//
//	go run ./examples/cycletime
package main

import (
	"fmt"

	"multicluster/internal/cycletime"
)

func main() {
	fmt.Println("critical-path delay vs issue width (ps):")
	fmt.Println("  feature   4-issue   8-issue   increase   clock gain of clustering")
	for _, um := range []float64{0.50, 0.35, 0.25, 0.18, 0.13, 0.10} {
		m := cycletime.At(um)
		fmt.Printf("  %.2f um  %7.0f   %7.0f   %+7.0f%%   %.2fx\n",
			um, m.CycleTimePs(4), m.CycleTimePs(8),
			100*m.WidthIncrease(4, 8), m.CycleTimePs(8)/m.CycleTimePs(4))
	}

	fmt.Println("\nnet speedup of a dual-cluster (4-way clusters) over an 8-way single cluster")
	fmt.Println("for a given cycle-count slowdown (rows) at each feature size (columns):")
	fmt.Printf("  %-10s", "slowdown")
	sizes := []float64{0.35, 0.25, 0.18, 0.13}
	for _, um := range sizes {
		fmt.Printf("  %6.2fum", um)
	}
	fmt.Println()
	for _, slow := range []float64{1.00, 1.05, 1.15, 1.25, 1.40, 1.60} {
		fmt.Printf("  %+8.0f%%", 100*(slow-1))
		for _, um := range sizes {
			fmt.Printf("  %7.2fx", cycletime.At(um).NetSpeedup(slow, 4, 8))
		}
		fmt.Println()
	}

	fmt.Println("\nbreak-even feature size (the multicluster wins below it):")
	for _, slow := range []float64{1.05, 1.15, 1.25, 1.40, 1.60} {
		um := cycletime.CrossoverFeatureUm(slow, 4, 8, 0.05, 0.50)
		switch {
		case um == 0:
			fmt.Printf("  %+4.0f%% more cycles: never within 0.05-0.50 um\n", 100*(slow-1))
		case um == 0.50:
			fmt.Printf("  %+4.0f%% more cycles: always within 0.05-0.50 um\n", 100*(slow-1))
		default:
			fmt.Printf("  %+4.0f%% more cycles: %.3f um\n", 100*(slow-1), um)
		}
	}
	fmt.Printf("\nthe paper's worst-case local-scheduler slowdown (25%%) needs a %.0f%% shorter clock;\n",
		100*cycletime.RequiredClockReduction(1.25))
	fmt.Printf("partitioning provides %.0f%% at 0.35um and %.0f%% at 0.18um.\n",
		100*(1-1/(cycletime.Process035().CycleTimePs(8)/cycletime.Process035().CycleTimePs(4))),
		100*(1-1/(cycletime.Process018().CycleTimePs(8)/cycletime.Process018().CycleTimePs(4))))
}
