// Customworkload: define a new benchmark from scratch — a blocked
// dot-product kernel with its own behaviour driver — and push it through
// the entire methodology: profile, partition with each scheduler, allocate,
// lower, and simulate on both machines. This is the template for evaluating
// the multicluster architecture on workloads of your own.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
)

// dotDriver drives the kernel: the inner loop runs a fixed trip count and
// the two input vectors stream from separate regions.
type dotDriver struct {
	seed   int64
	rng    *rand.Rand
	trips  int64
	inner  int64
	aN, bN int64
}

func (d *dotDriver) Reset() {
	d.rng = rand.New(rand.NewSource(d.seed))
	d.inner, d.aN, d.bN = 0, 0, 0
}

func (d *dotDriver) NextBlock(cur string, succs []string) (string, bool) {
	switch cur {
	case "dot":
		d.inner++
		if d.inner%d.trips == 0 {
			return "tail", true
		}
		return "dot", true
	case "tail":
		return "dot", true
	}
	if len(succs) > 0 {
		return succs[0], true
	}
	return "", false
}

func (d *dotDriver) Addr(memID int) uint64 {
	switch memID {
	case 0: // vector a
		d.aN++
		return 0x1000_0000 + uint64(d.aN)*8
	case 1: // vector b
		d.bN++
		return 0x2000_0000 + uint64(d.bN)*8
	}
	return 0x1000
}

func buildKernel() *il.Program {
	b := il.NewBuilder("dotprod")
	sp := b.GlobalValue("SP", il.KindInt)
	fa, fb, fprod, facc := b.FP("fa"), b.FP("fb"), b.FP("fprod"), b.FP("facc")
	i := b.Int("i")

	entry := b.Block("entry", 1)
	entry.Const(i, 0)
	entry.FallTo("dot")

	dot := b.Block("dot", 1000)
	dot.Load(isa.LDF, fa, sp, 0)
	dot.Load(isa.LDF, fb, sp, 8)
	dot.Op(isa.FMUL, fprod, fa, fb)
	dot.Op(isa.FADD, facc, facc, fprod)
	dot.OpImm(isa.ADD, i, i, 1)
	dot.CondBr(isa.BNE, i, "dot", "tail")

	tail := b.Block("tail", 10)
	tail.Op(isa.FADD, facc, facc, facc)
	tail.CondBr(isa.BNE, i, "dot", "done")

	done := b.Block("done", 1)
	done.Ret(i)

	return b.MustFinish()
}

func main() {
	prog := buildKernel()
	newDriver := func() trace.Driver { return &dotDriver{seed: 9, trips: 128} }

	trace.Profile(prog, newDriver(), 30_000)

	fmt.Println("scheduler comparison on the dot-product kernel (30k instructions):")
	fmt.Println("  scheduler     machine  cycles      IPC    dual%   transfers")
	for _, sched := range []struct {
		name string
		part partition.Partitioner
	}{
		{"native", nil},
		{"local", partition.Local{}},
		{"round-robin", partition.RoundRobin{}},
	} {
		var pr *partition.Result
		clustered := sched.part != nil
		if clustered {
			pr = sched.part.Partition(prog)
		}
		alloc, err := regalloc.Allocate(prog, pr, regalloc.Config{
			Assignment:        isa.DefaultAssignment(),
			Clustered:         clustered,
			OtherClusterSpill: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		machine, err := codegen.Lower(alloc)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []struct {
			name string
			cfg  core.Config
		}{
			{"single", core.SingleCluster8Way()},
			{"dual", core.DualCluster4Way()},
		} {
			gen, err := trace.NewGenerator(machine, newDriver(), 30_000)
			if err != nil {
				log.Fatal(err)
			}
			p, err := core.New(m.cfg, gen)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := p.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s  %-7s  %7d  %5.2f  %5.1f  %9d\n",
				sched.name, m.name, stats.Cycles, stats.IPC(),
				100*stats.DualFraction(), stats.OperandForwards+stats.ResultForwards)
		}
	}
	fmt.Println("\n(single-cluster results are identical across schedulers: register names")
	fmt.Println("only matter once the even/odd cluster assignment interprets them.)")
}
