// Quickstart: build a small program, compile it for the multicluster
// machine, and compare the eight-way single-cluster baseline against the
// dual-cluster processor with and without the local scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
)

func main() {
	// 1. Write a program in the IL: instructions name live ranges, not
	// registers. This one sums a small table in a loop.
	b := il.NewBuilder("sumloop")
	sp := b.GlobalValue("SP", il.KindInt)
	acc, x, ptr, i, cond := b.Int("acc"), b.Int("x"), b.Int("ptr"), b.Int("i"), b.Int("cond")

	entry := b.Block("entry", 1)
	entry.Const(acc, 0)
	entry.Const(i, 0)
	entry.OpImm(isa.MOV, ptr, sp, 0)
	entry.FallTo("loop")

	loop := b.Block("loop", 1000)
	loop.Load(isa.LDW, x, ptr, 0)
	loop.OpImm(isa.ADD, ptr, ptr, 8)
	loop.Op(isa.ADD, acc, acc, x)
	loop.OpImm(isa.ADD, i, i, 1)
	loop.OpImm(isa.CMPLT, cond, i, 1000)
	loop.CondBr(isa.BNE, cond, "loop", "exit")

	exit := b.Block("exit", 1)
	exit.Ret(acc)

	prog, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the run-time behaviour: the loop runs 1000 iterations
	// per entry and the load streams through a table.
	driver := func() trace.Driver {
		return &trace.ScriptDriver{
			Path:  repeat("loop", 4000),
			Addrs: map[int][]uint64{0: stream(0x10000, 8, 4001)},
		}
	}

	// 3. Partition the live ranges with the paper's local scheduler, then
	// colour them onto the clustered register file and lower to machine
	// code. Passing a nil partitioning with Clustered:false instead gives
	// the cluster-oblivious "native" binary.
	trace.Profile(prog, driver(), 20_000)
	part := partition.Local{}.Partition(prog)
	fmt.Println("live-range partitioning:")
	for id := range prog.Values {
		fmt.Printf("  %-5s -> %s\n", prog.Value(id).Name, clusterName(part.Of(id)))
	}
	alloc, err := regalloc.Allocate(prog, part, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         true,
		OtherClusterSpill: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	machine, err := codegen.Lower(alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlowered machine code:")
	fmt.Print(machine.Disassemble())

	// 4. Simulate 20k dynamic instructions on both machines.
	for _, m := range []struct {
		name string
		cfg  core.Config
	}{
		{"single-cluster 8-way", core.SingleCluster8Way()},
		{"dual-cluster 2x4-way", core.DualCluster4Way()},
	} {
		gen, err := trace.NewGenerator(machine, driver(), 20_000)
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.New(m.cfg, gen)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n  %v\n", m.name, stats)
	}
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func stream(base, stride uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*stride
	}
	return out
}

func clusterName(c int) string {
	if c == partition.Global {
		return "global register"
	}
	return fmt.Sprintf("cluster %d", c)
}
