GO ?= go

.PHONY: build test race verify check soak soak-cluster soak-rebalance soak-lifecycle vet serve report clean bench bench-serve bench-sweep fuzz

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/trace/... ./internal/sweep/... ./internal/faultinject/... ./internal/conc/... ./internal/experiment/... ./internal/cluster/...

# verify is the full pre-merge gate: tier-1, the race detector over the
# simulator core and the concurrent subsystems, an explicit build/vet of
# the metrics layer, and the golden-stats suite (which pins that probes,
# when disabled, leave every fixture byte-identical).
verify: build vet
	$(GO) build ./internal/obs/... && $(GO) vet ./internal/obs/...
	$(GO) test ./...
	$(GO) test -race ./internal/core/... ./internal/trace/... ./internal/sweep/... ./internal/faultinject/... ./internal/obs/... ./internal/cluster/...
	$(GO) test -count=1 -run 'TestGoldenStats' ./internal/core
	$(GO) test -count=1 ./scripts/benchdiff ./scripts/servediff ./scripts/sweepdiff
	$(GO) test -count=1 -run 'TestMcbench' ./cmd/mcbench
	$(MAKE) soak-lifecycle
	$(MAKE) soak-rebalance

# check is verify plus the perf gates: the core microbenchmarks compared
# against BENCH_baseline.json, and the sweep-cell throughput compared
# against BENCH_sweep_baseline.json, so any change that costs simulator
# or sweep throughput fails before merge.
check: verify bench bench-sweep

# bench runs the simulator-core microbenchmarks with -benchmem, writes the
# perf trajectory to BENCH_core.json, and fails when allocs/instr or
# ns/instr regress more than 10% against the committed BENCH_baseline.json
# (the wall-clock gate widens by the run's observed sample spread). After
# a deliberate perf change: cp BENCH_core.json BENCH_baseline.json.
bench:
	$(GO) run ./scripts/benchdiff -out BENCH_core.json -baseline BENCH_baseline.json

# bench-serve is the HTTP-path counterpart of bench: mcbench drives a
# self-hosted mcserved with deterministic open-loop traffic (mixed
# submits, polls, table2 calls, and NDJSON sweeps at a fixed seed),
# writes client-observed RPS / p50/p90/p99 / shed rates per traffic mix
# to BENCH_serve.json, and servediff fails on a >10% p99 or RPS
# regression against the committed BENCH_serve_baseline.json. After a
# deliberate service-perf change: cp BENCH_serve.json BENCH_serve_baseline.json.
bench-serve:
	$(GO) run ./cmd/mcbench -rate 120 -duration 30s -count 2 -concurrency 64 -seed 1 -instr 10000 -out BENCH_serve.json
	$(GO) run ./scripts/servediff -cur BENCH_serve.json -baseline BENCH_serve_baseline.json

# bench-sweep is the grid-throughput gate: the same cell group measured
# through the lazy per-cell pipeline and the batched shared-artifact
# pipeline, in cells/sec. It fails when the batched path falls below a
# 1.5x speedup over lazy (the ratio is intra-run, so machine speed
# cancels out) or when either benchmark's cells/sec drops more than 10%
# against the committed BENCH_sweep_baseline.json. After a deliberate
# perf change: cp BENCH_sweep.json BENCH_sweep_baseline.json.
bench-sweep:
	$(GO) run ./scripts/sweepdiff -out BENCH_sweep.json -baseline BENCH_sweep_baseline.json

# fuzz runs the simulator-core fuzzer for a short budget (seed corpus in
# internal/core/testdata/fuzz is always exercised by plain `make test`).
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzCore -fuzztime 30s

# soak runs the chaos suite under the race detector: fault injection at
# the simulation, cache, and journal boundaries, load shedding, and a
# crash/restart with journal replay.
soak:
	$(GO) test -race -count=1 -v -run 'Chaos' ./internal/sweep/...

# soak-cluster exercises the multi-node layer under the race detector:
# the two-node kill/rejoin (hinted handoff, zero loss) and the chaos
# sweep with the forward path randomly severed.
soak-cluster:
	$(GO) test -race -count=1 -v -run 'TestClusterKillRejoinZeroLoss|TestClusterSoak|TestTwoNodeTable2Identical' ./internal/cluster/...

# soak-lifecycle is the sweep-lifecycle / fair-queueing smoke under the
# race detector: the first-class sweep resource driven end to end
# (create, progress polls, cursor-resumed results, rotating tenants),
# the kill-and-restart journal-resume acceptance test, and the WFQ
# starvation check (an interactive tenant stays live behind a deep
# batch-tenant backlog).
soak-lifecycle:
	$(GO) test -race -count=1 -v -run 'TestMcbenchLifecycleSoak|TestWFQKeepsInteractiveTenantLive' ./cmd/mcbench
	$(GO) test -race -count=1 -v -run 'TestSweepKillRestartResume|TestSweepCursorResume|TestPoolWeightedFairness|TestPoolNoStarvation' ./internal/sweep

# soak-rebalance exercises the self-healing paths under the race
# detector: planned decommission mid-sweep (zero loss, byte-identical
# table2), anti-entropy convergence after a healed partition with a
# truncated hint log, a warm join that pulls its owned ranges without
# recomputation, and replica read-repair.
soak-rebalance:
	$(GO) test -race -count=1 -v -run 'TestDecommissionMidSweepZeroLoss|TestAntiEntropyHealsPartition|TestJoinPullsOwnedRangesNoRecompute|TestReadRepairRefreshesOwner' ./internal/cluster/...

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/mcserved

report:
	$(GO) run ./cmd/mcreport

clean:
	$(GO) clean ./...
