GO ?= go

.PHONY: build test race vet serve report clean

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sweep/... ./internal/experiment/...

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/mcserved

report:
	$(GO) run ./cmd/mcreport

clean:
	$(GO) clean ./...
