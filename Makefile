GO ?= go

.PHONY: build test race verify soak vet serve report clean

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sweep/... ./internal/faultinject/... ./internal/conc/... ./internal/experiment/...

# verify is the full pre-merge gate: tier-1 plus the race detector over
# the concurrent subsystems.
verify: build vet
	$(GO) test ./...
	$(GO) test -race ./internal/sweep/... ./internal/faultinject/...

# soak runs the chaos suite under the race detector: fault injection at
# the simulation, cache, and journal boundaries, load shedding, and a
# crash/restart with journal replay.
soak:
	$(GO) test -race -count=1 -v -run 'Chaos' ./internal/sweep/...

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/mcserved

report:
	$(GO) run ./cmd/mcreport

clean:
	$(GO) clean ./...
