// Command servediff gates the HTTP service's load-bench trajectory: it
// compares a fresh BENCH_serve.json (written by cmd/mcbench) against the
// committed BENCH_serve_baseline.json and exits nonzero when throughput
// or tail latency regressed beyond tolerance.
//
// Workflow (wired up as `make bench-serve`):
//
//	go run ./cmd/mcbench -out BENCH_serve.json
//	go run ./scripts/servediff -cur BENCH_serve.json -baseline BENCH_serve_baseline.json
//
// Gates, per traffic mix present in both files:
//
//   - p99 latency may not exceed the baseline by more than -tolerance
//     (default 10%), widened by the larger of the two runs' measured
//     half-window jitter ("noise"), and only when the absolute increase
//     also exceeds -p99-slack-ms (default 5ms): on a shared box a few
//     milliseconds of tail movement is scheduler noise at any
//     percentage.
//   - RPS may not fall below the baseline by more than -tolerance.
//   - the shed rate may not exceed the baseline by more than -shed-slack
//     absolute (default 5 points): a run that starts refusing traffic it
//     used to serve is a regression even if the survivors are fast.
//
// Mixes present on only one side are reported but never fail the run,
// and a missing baseline file skips comparison (first run on a new
// machine). A current file marked "partial": true (interrupted run) is
// refused — its window is not comparable — unless -allow-partial is set.
//
// After a deliberate service change, refresh the baseline:
//
//	cp BENCH_serve.json BENCH_serve_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"multicluster/internal/benchfmt"
)

func main() {
	var (
		cur       = flag.String("cur", "BENCH_serve.json", "current run JSON path")
		baseline  = flag.String("baseline", "BENCH_serve_baseline.json", "baseline JSON path (missing file: comparison skipped)")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional p99/RPS regression before failing")
		shedSlack = flag.Float64("shed-slack", 0.05, "allowed absolute shed-rate increase before failing")
		p99Slack  = flag.Float64("p99-slack-ms", 5, "absolute p99 increase (ms) a regression must also exceed to fail")
		allowPart = flag.Bool("allow-partial", false, "gate even against an interrupted (partial) current run")
	)
	flag.Parse()

	c, err := benchfmt.Read(*cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servediff: %v\n", err)
		os.Exit(1)
	}
	if c.Serve != nil && c.Serve.Partial && !*allowPart {
		fmt.Fprintf(os.Stderr, "servediff: %s is a partial (interrupted) run; not comparable (-allow-partial overrides)\n", *cur)
		os.Exit(1)
	}
	base, err := benchfmt.Read(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("no baseline at %s; comparison skipped\n", *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "servediff: %v\n", err)
		os.Exit(1)
	}
	if !compare(os.Stdout, base, c, *tolerance, *shedSlack, *p99Slack) {
		fmt.Fprintf(os.Stderr, "servediff: regressed more than %.0f%% against the baseline\n", 100**tolerance)
		os.Exit(1)
	}
}
