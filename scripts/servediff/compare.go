package main

import (
	"fmt"
	"io"

	"multicluster/internal/benchfmt"
)

// compare prints the serve trajectory against the baseline and reports
// whether every traffic mix stayed within the gates. Only entries
// carrying serve-side numbers participate; mixes present on one side
// only are reported but never fail the run.
//
// The p99 gate is tolerance plus the larger of the two runs' Noise —
// the relative spread between the p99s of each run's two halves,
// mcbench's live measurement of machine jitter. Taking the max is what
// makes the gate symmetric: a baseline captured on a lucky quiet run
// still remembers how jittery its own halves were, so an honest later
// run isn't failed for jitter the baseline also exhibited (the same
// policy benchdiff applies to wall-clock with its sample spread). A
// failing p99 must also exceed the baseline by p99SlackMs absolutely:
// tails at single-digit milliseconds move by scheduler quanta, and a
// 3ms wobble is noise whether it is 5% or 50% of the baseline.
// Throughput is arrival-driven and stable, so RPS is gated at the bare
// tolerance.
func compare(w io.Writer, base, cur benchfmt.File, tolerance, shedSlack, p99SlackMs float64) bool {
	byName := map[string]benchfmt.Result{}
	for _, r := range base.Benchmarks {
		if r.Requests > 0 {
			byName[r.Name] = r
		}
	}
	ok := true
	for _, r := range cur.Benchmarks {
		if r.Requests == 0 {
			continue
		}
		b, found := byName[r.Name]
		delete(byName, r.Name)
		if !found {
			fmt.Fprintf(w, "  %-16s %8.1f rps  p99 %8.2f ms  shed %4.1f%%  (no baseline)\n",
				r.Name, r.RPS, r.P99Ms, 100*r.ShedRate)
			continue
		}
		status := "ok"
		if b.P99Ms > 0 {
			noise := r.Noise
			if b.Noise > noise {
				noise = b.Noise
			}
			delta := (r.P99Ms - b.P99Ms) / b.P99Ms
			if delta > tolerance+noise && r.P99Ms-b.P99Ms > p99SlackMs {
				status = "P99 REGRESSION"
				ok = false
			}
		}
		if b.RPS > 0 {
			if drop := (b.RPS - r.RPS) / b.RPS; drop > tolerance {
				status = "RPS REGRESSION"
				ok = false
			}
		}
		if r.ShedRate > b.ShedRate+shedSlack {
			status = "SHED REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "  %-16s %8.1f -> %8.1f rps  p99 %8.2f -> %8.2f ms (spread %.0f%%)  shed %4.1f%% -> %4.1f%%  %s\n",
			r.Name, b.RPS, r.RPS, b.P99Ms, r.P99Ms, 100*r.Noise, 100*b.ShedRate, 100*r.ShedRate, status)
	}
	for name := range byName {
		fmt.Fprintf(w, "  %-16s (removed; present only in baseline)\n", name)
	}
	return ok
}
