package main

import (
	"io"
	"strings"
	"testing"

	"multicluster/internal/benchfmt"
)

func serveRes(name string, rps, p99, shed float64) benchfmt.Result {
	return benchfmt.Result{Name: name, Requests: 1000, RPS: rps, P99Ms: p99, ShedRate: shed}
}

func TestServeCompare(t *testing.T) {
	const tol, slack, p99Slack = 0.10, 0.05, 5.0
	cases := []struct {
		name string
		base []benchfmt.Result
		cur  []benchfmt.Result
		want bool
	}{
		{
			name: "within tolerance",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 280, 54, 0.01)},
			want: true,
		},
		{
			name: "improvement",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0.10)},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 400, 20, 0)},
			want: true,
		},
		{
			name: "p99 regression over gate",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 300, 60, 0)},
			want: false,
		},
		{
			name: "noise band widens the p99 gate",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			// +20% p99 would fail at the bare tolerance, but the run
			// measured ±15% spread between its own halves.
			cur: func() []benchfmt.Result {
				r := serveRes("Serve/overall", 300, 60, 0)
				r.Noise = 0.15
				return []benchfmt.Result{r}
			}(),
			want: true,
		},
		{
			name: "baseline noise also widens the p99 gate",
			// The baseline was captured on a run whose own halves spread
			// ±15%; a +20% p99 against it is within that jitter even when
			// the current run happens to measure quiet halves.
			base: func() []benchfmt.Result {
				r := serveRes("Serve/overall", 300, 50, 0)
				r.Noise = 0.15
				return []benchfmt.Result{r}
			}(),
			cur:  []benchfmt.Result{serveRes("Serve/overall", 300, 60, 0)},
			want: true,
		},
		{
			name: "noise band does not excuse rps regressions",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			cur: func() []benchfmt.Result {
				r := serveRes("Serve/overall", 250, 50, 0)
				r.Noise = 0.50
				return []benchfmt.Result{r}
			}(),
			want: false,
		},
		{
			name: "small absolute p99 wiggle stays under the slack floor",
			// +100% relative, but only +4ms absolute — scheduler noise at
			// these latencies, not a regression.
			base: []benchfmt.Result{serveRes("Serve/poll", 300, 4, 0)},
			cur:  []benchfmt.Result{serveRes("Serve/poll", 300, 8, 0)},
			want: true,
		},
		{
			name: "large absolute p99 jump fails even from a small base",
			base: []benchfmt.Result{serveRes("Serve/poll", 300, 4, 0)},
			cur:  []benchfmt.Result{serveRes("Serve/poll", 300, 15, 0)},
			want: false,
		},
		{
			name: "rps regression over gate",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 250, 50, 0)},
			want: false,
		},
		{
			name: "shed-rate jump over slack",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0.01)},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0.10)},
			want: false,
		},
		{
			name: "new mix has no baseline and cannot fail",
			base: []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			cur: []benchfmt.Result{
				serveRes("Serve/overall", 300, 50, 0),
				serveRes("Serve/sse", 1, 99999, 0.99),
			},
			want: true,
		},
		{
			name: "removed mix cannot fail",
			base: []benchfmt.Result{
				serveRes("Serve/overall", 300, 50, 0),
				serveRes("Serve/sweep", 10, 500, 0),
			},
			cur:  []benchfmt.Result{serveRes("Serve/overall", 300, 50, 0)},
			want: true,
		},
		{
			name: "core-only entries are ignored",
			base: []benchfmt.Result{{Name: "BenchmarkProcessor/single8", NsPerInstr: 100}},
			cur:  []benchfmt.Result{{Name: "BenchmarkProcessor/single8", NsPerInstr: 9999}},
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compare(io.Discard,
				benchfmt.File{Benchmarks: tc.base}, benchfmt.File{Benchmarks: tc.cur}, tol, slack, p99Slack)
			if got != tc.want {
				t.Errorf("compare = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestServeCompareReportsRemovedMixes(t *testing.T) {
	var sb strings.Builder
	compare(&sb,
		benchfmt.File{Benchmarks: []benchfmt.Result{serveRes("Serve/sweep", 10, 500, 0)}},
		benchfmt.File{}, 0.10, 0.05, 5)
	if !strings.Contains(sb.String(), "Serve/sweep") || !strings.Contains(sb.String(), "removed") {
		t.Fatalf("removed mix not reported:\n%s", sb.String())
	}
}
