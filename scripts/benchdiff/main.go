// Command benchdiff runs the simulator-core microbenchmarks, records the
// per-instruction cost trajectory to a JSON file, and fails when the cost
// regresses against a committed baseline.
//
// Workflow (wired up as `make bench`):
//
//	go run ./scripts/benchdiff -out BENCH_core.json -baseline BENCH_baseline.json
//
// runs `go test -bench BenchmarkProcessor -benchmem ./internal/core`,
// parses the result, writes BENCH_core.json, and exits nonzero on a
// regression against the baseline:
//
//   - allocs/instr may not exceed the baseline by more than -tolerance
//     (default 10%). Allocation counts are deterministic, so this gate
//     never flakes and catches the most common accidental regression.
//   - ns/instr may not exceed the baseline by more than -tolerance plus
//     the current run's own min-to-max spread. Each benchmark runs
//     -count times (default 3) and the fastest sample is kept (scheduler
//     interference only ever slows a run down); the observed spread
//     measures how noisy the machine is right now, so on a quiet box the
//     gate is tight and on a loaded one it widens instead of crying wolf.
//
// After a deliberate perf change, refresh the baseline:
//
//	cp BENCH_core.json BENCH_baseline.json
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"multicluster/internal/benchfmt"
)

// Result and File are the shared benchmark-artifact schema
// (internal/benchfmt): benchdiff fills the per-instruction core fields,
// cmd/mcbench + scripts/servediff fill the service-side fields.
type (
	Result = benchfmt.Result
	File   = benchfmt.File
)

func main() {
	var (
		benchRe   = flag.String("bench", "BenchmarkProcessor", "benchmark regexp passed to go test")
		pkg       = flag.String("pkg", "./internal/core", "package containing the benchmarks")
		out       = flag.String("out", "BENCH_core.json", "output JSON path")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path (missing file: comparison skipped)")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/instr regression before failing")
		benchtime = flag.String("benchtime", "1s", "value for go test -benchtime")
		count     = flag.Int("count", 3, "value for go test -count; the fastest sample per benchmark is kept")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}
	results, err := parseBench(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks matched %q in %s\n", *benchRe, *pkg)
		os.Exit(1)
	}

	f := File{Command: "go " + strings.Join(args, " "), Benchmarks: results}
	if err := f.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))

	base, err := benchfmt.Read(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("no baseline at %s; comparison skipped\n", *baseline)
			return
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if !compare(base, f, *tolerance) {
		os.Exit(1)
	}
}

// parseBench extracts benchmark lines from `go test -bench` output. A line
// is the benchmark name, the iteration count, then value/unit pairs. With
// -count > 1 a name appears several times; the sample with the lowest
// ns/op wins (first occurrence keeps the ordering).
func parseBench(raw []byte) ([]Result, error) {
	var out []Result
	seen := map[string]int{}
	maxNs := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := Result{Name: trimCPUSuffix(fields[0])}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %v", sc.Text(), err)
			}
			metrics[fields[i+1]] = v
		}
		r.NsPerOp = metrics["ns/op"]
		r.BytesPerOp = metrics["B/op"]
		r.AllocsPerOp = metrics["allocs/op"]
		r.InstrsPerOp = metrics["instrs/op"]
		r.NsPerInstr = metrics["ns/instr"]
		r.MIPS = metrics["MIPS"]
		if r.InstrsPerOp > 0 {
			r.AllocsPerInstr = r.AllocsPerOp / r.InstrsPerOp
			if r.NsPerInstr == 0 {
				r.NsPerInstr = r.NsPerOp / r.InstrsPerOp
			}
		}
		if r.NsPerOp > maxNs[r.Name] {
			maxNs[r.Name] = r.NsPerOp
		}
		if i, dup := seen[r.Name]; dup {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		seen[r.Name] = len(out)
		out = append(out, r)
	}
	for i := range out {
		if out[i].NsPerOp > 0 {
			out[i].Noise = (maxNs[out[i].Name] - out[i].NsPerOp) / out[i].NsPerOp
		}
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix so results compare across
// machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare prints the trajectory against the baseline and reports whether
// every benchmark stayed within tolerance. Allocation counts are gated at
// the bare tolerance (they are deterministic); wall-clock is gated at
// tolerance plus the run's own sample spread, so machine-load jitter
// widens the gate instead of failing it. Benchmarks present on only one
// side are reported but never fail the run.
func compare(base, cur File, tolerance float64) bool {
	byName := map[string]Result{}
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	ok := true
	for _, r := range cur.Benchmarks {
		b, found := byName[r.Name]
		if !found || b.NsPerInstr == 0 {
			fmt.Printf("  %-45s %8.1f ns/instr  %6.2f allocs/instr  (no baseline)\n", r.Name, r.NsPerInstr, r.AllocsPerInstr)
			continue
		}
		delta := (r.NsPerInstr - b.NsPerInstr) / b.NsPerInstr
		status := "ok"
		if delta > tolerance+r.Noise {
			status = "REGRESSION"
			ok = false
		}
		if b.AllocsPerInstr > 0 {
			if aDelta := (r.AllocsPerInstr - b.AllocsPerInstr) / b.AllocsPerInstr; aDelta > tolerance {
				status = "ALLOC REGRESSION"
				ok = false
			}
		}
		fmt.Printf("  %-45s %8.1f -> %8.1f ns/instr (%+6.1f%%, spread %.0f%%)  %6.2f -> %6.2f allocs/instr  %s\n",
			r.Name, b.NsPerInstr, r.NsPerInstr, 100*delta, 100*r.Noise, b.AllocsPerInstr, r.AllocsPerInstr, status)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchdiff: regressed more than %.0f%% against the baseline (ns/instr gate widens by the run's sample spread)\n", 100*tolerance)
	}
	return ok
}
