package main

import (
	"os"
	"path/filepath"
	"testing"

	"multicluster/internal/benchfmt"
)

// sample output of `go test -bench -benchmem -count 2`: two samples per
// benchmark (the second of Processor/single8 faster, so it must win),
// custom instrs/op metric, -8 GOMAXPROCS suffixes, and interleaved
// non-benchmark lines.
const benchOutput = `goos: linux
goarch: amd64
pkg: multicluster/internal/core
BenchmarkProcessor/single8-8   	     100	    350000 ns/op	     960 B/op	       3 allocs/op	 1000 instrs/op
BenchmarkProcessor/dual2x2-8   	      50	    900000 ns/op	    1920 B/op	       6 allocs/op	 1000 instrs/op
BenchmarkProcessor/single8-8   	     100	    300000 ns/op	     960 B/op	       3 allocs/op	 1000 instrs/op
BenchmarkProcessor/dual2x2-8   	      50	    990000 ns/op	    1920 B/op	       6 allocs/op	 1000 instrs/op
PASS
ok  	multicluster/internal/core	4.2s
`

func TestParseBenchKeepsFastestSampleAndDerivesPerInstr(t *testing.T) {
	results, err := parseBench([]byte(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2 (one per name): %+v", len(results), results)
	}
	single := results[0]
	if single.Name != "BenchmarkProcessor/single8" {
		t.Fatalf("first result %q, want the CPU suffix trimmed single8 entry", single.Name)
	}
	if single.NsPerOp != 300000 {
		t.Errorf("single8 ns/op = %g, want the fastest sample 300000", single.NsPerOp)
	}
	if single.NsPerInstr != 300 {
		t.Errorf("single8 ns/instr = %g, want 300000/1000 = 300", single.NsPerInstr)
	}
	if single.AllocsPerInstr != 0.003 {
		t.Errorf("single8 allocs/instr = %g, want 3/1000", single.AllocsPerInstr)
	}
	// Noise is the (max-min)/min spread of the kept (fastest) sample:
	// single8 saw 350000 and 300000 -> 50000/300000.
	if want := 50000.0 / 300000.0; single.Noise < want-1e-9 || single.Noise > want+1e-9 {
		t.Errorf("single8 noise = %g, want %g", single.Noise, want)
	}
	dual := results[1]
	if dual.NsPerOp != 900000 {
		t.Errorf("dual2x2 ns/op = %g, want first (fastest) sample 900000", dual.NsPerOp)
	}
}

func TestParseBenchRejectsMalformedValue(t *testing.T) {
	if _, err := parseBench([]byte("BenchmarkX-8 100 notanumber ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line parsed without error")
	}
}

// res builds a minimal core result for compare tests.
func res(name string, nsPerInstr, allocsPerInstr, noise float64) Result {
	return Result{Name: name, NsPerInstr: nsPerInstr, AllocsPerInstr: allocsPerInstr, Noise: noise}
}

func TestCompare(t *testing.T) {
	const tol = 0.10
	cases := []struct {
		name string
		base []Result
		cur  []Result
		want bool
	}{
		{
			name: "within tolerance",
			base: []Result{res("A", 100, 1, 0)},
			cur:  []Result{res("A", 109, 1.05, 0)},
			want: true,
		},
		{
			name: "improvement",
			base: []Result{res("A", 100, 1, 0)},
			cur:  []Result{res("A", 50, 0.2, 0)},
			want: true,
		},
		{
			name: "ns regression over gate",
			base: []Result{res("A", 100, 1, 0)},
			cur:  []Result{res("A", 120, 1, 0)},
			want: false,
		},
		{
			name: "noise band widens the wall-clock gate",
			base: []Result{res("A", 100, 1, 0)},
			// +18% would fail at bare tolerance, but the run itself was
			// ±10% noisy, so the gate is 10%+10%.
			cur:  []Result{res("A", 118, 1, 0.10)},
			want: true,
		},
		{
			name: "noise band does not excuse alloc regressions",
			base: []Result{res("A", 100, 1, 0)},
			cur:  []Result{res("A", 100, 1.2, 0.50)},
			want: false,
		},
		{
			name: "new benchmark has no baseline and cannot fail",
			base: []Result{res("A", 100, 1, 0)},
			cur:  []Result{res("A", 100, 1, 0), res("B", 9999, 99, 0)},
			want: true,
		},
		{
			name: "removed benchmark cannot fail",
			base: []Result{res("A", 100, 1, 0), res("B", 100, 1, 0)},
			cur:  []Result{res("A", 100, 1, 0)},
			want: true,
		},
		{
			name: "baseline without ns_per_instr is skipped",
			base: []Result{{Name: "A"}},
			cur:  []Result{res("A", 9999, 99, 0)},
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compare(File{Benchmarks: tc.base}, File{Benchmarks: tc.cur}, tol)
			if got != tc.want {
				t.Errorf("compare = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMissingBaselineIsDistinguishable(t *testing.T) {
	_, err := benchfmt.Read(filepath.Join(t.TempDir(), "nope.json"))
	if !os.IsNotExist(err) {
		t.Fatalf("missing baseline read error = %v, want os.IsNotExist", err)
	}
}

func TestRoundTripThroughSharedSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := File{Command: "go test -bench .", Benchmarks: []Result{res("A", 123, 0.5, 0.02)}}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := benchfmt.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != f.Command || len(got.Benchmarks) != 1 || got.Benchmarks[0] != f.Benchmarks[0] {
		t.Fatalf("round trip mismatch: wrote %+v, read %+v", f, got)
	}
}
