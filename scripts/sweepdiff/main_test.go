package main

import (
	"testing"
)

// sample output of `go test -bench -benchmem -count 2`: two samples per
// benchmark (the second lazy sample faster, so it must win), the custom
// cells/sec metric, -8 GOMAXPROCS suffixes, and interleaved
// non-benchmark lines.
const benchOutput = `goos: linux
goarch: amd64
pkg: multicluster
BenchmarkSweepCellsLazy-8      	       2	 600000000 ns/op	        16.00 cells/sec	200000000 B/op	   90000 allocs/op
BenchmarkSweepCellsBatched-8   	       3	 360000000 ns/op	        27.50 cells/sec	 12000000 B/op	   66000 allocs/op
BenchmarkSweepCellsLazy-8      	       2	 560000000 ns/op	        17.60 cells/sec	200000000 B/op	   90000 allocs/op
BenchmarkSweepCellsBatched-8   	       3	 380000000 ns/op	        26.40 cells/sec	 12000000 B/op	   66000 allocs/op
PASS
ok  	multicluster	8.0s
`

func TestParseBenchKeepsHighestThroughputSample(t *testing.T) {
	results, err := parseBench([]byte(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2 (one per name): %+v", len(results), results)
	}
	lazy := results[0]
	if lazy.Name != lazyName {
		t.Fatalf("first result %q, want the CPU suffix trimmed %s", lazy.Name, lazyName)
	}
	if lazy.CellsPerSec != 17.60 {
		t.Errorf("lazy cells/sec = %g, want the faster sample 17.60", lazy.CellsPerSec)
	}
	// Noise is the (max-min)/min spread of cells/sec across the samples:
	// lazy saw 16.00 and 17.60 -> 1.60/16.00.
	if want := 1.60 / 16.00; lazy.Noise < want-1e-9 || lazy.Noise > want+1e-9 {
		t.Errorf("lazy noise = %g, want %g", lazy.Noise, want)
	}
	batched := results[1]
	if batched.CellsPerSec != 27.50 {
		t.Errorf("batched cells/sec = %g, want first (faster) sample 27.50", batched.CellsPerSec)
	}
}

func TestParseBenchRejectsMalformedValue(t *testing.T) {
	if _, err := parseBench([]byte("BenchmarkX-8 100 notanumber ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line parsed without error")
	}
}

// res builds a minimal sweep result for the gate tests.
func res(name string, cellsPerSec, noise float64) Result {
	return Result{Name: name, CellsPerSec: cellsPerSec, Noise: noise}
}

func TestCheckSpeedup(t *testing.T) {
	const min = 1.5
	cases := []struct {
		name    string
		lazy    Result
		batched Result
		want    bool
	}{
		{
			name:    "well above the floor",
			lazy:    res(lazyName, 17.0, 0),
			batched: res(batchedName, 28.0, 0),
			want:    true,
		},
		{
			name:    "exactly at the floor",
			lazy:    res(lazyName, 10.0, 0),
			batched: res(batchedName, 15.0, 0),
			want:    true,
		},
		{
			name:    "below the floor on a quiet box",
			lazy:    res(lazyName, 10.0, 0),
			batched: res(batchedName, 14.0, 0),
			want:    false,
		},
		{
			name: "sample spread lowers the floor",
			// 1.40x would fail clean, but the run itself was ±10% noisy on
			// both sides, so the floor drops to 1.5/1.2 = 1.25x.
			lazy:    res(lazyName, 10.0, 0.10),
			batched: res(batchedName, 14.0, 0.10),
			want:    true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := File{Benchmarks: []Result{tc.lazy, tc.batched}}
			if got := checkSpeedup(f, min); got != tc.want {
				t.Errorf("checkSpeedup = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCheckSpeedupMissingBenchmarkFails(t *testing.T) {
	f := File{Benchmarks: []Result{res(lazyName, 17.0, 0)}}
	if checkSpeedup(f, 1.5) {
		t.Error("run missing the batched benchmark passed the speedup gate")
	}
}

func TestCompare(t *testing.T) {
	const tol = 0.10
	cases := []struct {
		name string
		base []Result
		cur  []Result
		want bool
	}{
		{
			name: "within tolerance",
			base: []Result{res("A", 28.0, 0)},
			cur:  []Result{res("A", 26.0, 0)},
			want: true,
		},
		{
			name: "improvement",
			base: []Result{res("A", 28.0, 0)},
			cur:  []Result{res("A", 40.0, 0)},
			want: true,
		},
		{
			name: "drop over the gate",
			base: []Result{res("A", 28.0, 0)},
			cur:  []Result{res("A", 24.0, 0)},
			want: false,
		},
		{
			name: "noise band widens the gate",
			base: []Result{res("A", 28.0, 0)},
			// A 14% drop would fail at bare tolerance, but the run itself
			// was ±10% noisy, so the gate is 10%+10%.
			cur:  []Result{res("A", 24.0, 0.10)},
			want: true,
		},
		{
			name: "new benchmark has no baseline and cannot fail",
			base: []Result{res("A", 28.0, 0)},
			cur:  []Result{res("A", 28.0, 0), res("B", 0.1, 0)},
			want: true,
		},
		{
			name: "removed benchmark cannot fail",
			base: []Result{res("A", 28.0, 0), res("B", 28.0, 0)},
			cur:  []Result{res("A", 28.0, 0)},
			want: true,
		},
		{
			name: "baseline without cells_per_sec is skipped",
			base: []Result{{Name: "A"}},
			cur:  []Result{res("A", 0.1, 0)},
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := compare(File{Benchmarks: tc.base}, File{Benchmarks: tc.cur}, tol)
			if got != tc.want {
				t.Errorf("compare = %v, want %v", got, tc.want)
			}
		})
	}
}
