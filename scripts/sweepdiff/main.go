// Command sweepdiff runs the sweep-cell throughput benchmarks, records
// the cells/sec trajectory to a JSON file, and fails when the batched
// simulation path loses its edge.
//
// Workflow (wired up as `make bench-sweep`):
//
//	go run ./scripts/sweepdiff -out BENCH_sweep.json -baseline BENCH_sweep_baseline.json
//
// runs `go test -bench BenchmarkSweepCells -benchmem .`, parses the
// result, writes BENCH_sweep.json, and exits nonzero when either gate
// trips:
//
//   - the batched path must complete cells at least -min-speedup times
//     (default 1.5x) the rate of the lazy per-cell path, measured in the
//     same run so machine speed cancels out. The gate divides by the
//     run's own sample spread, so a loaded box widens it instead of
//     crying wolf.
//   - against a committed baseline, no benchmark's cells/sec may drop by
//     more than -tolerance (default 10%) plus the run's own spread.
//
// Each benchmark runs -count times (default 3) and the highest-throughput
// sample is kept (interference only ever slows a run down).
//
// After a deliberate perf change, refresh the baseline:
//
//	cp BENCH_sweep.json BENCH_sweep_baseline.json
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"multicluster/internal/benchfmt"
)

// Result and File are the shared benchmark-artifact schema
// (internal/benchfmt): sweepdiff fills Name, CellsPerSec, and the
// generic per-op fields.
type (
	Result = benchfmt.Result
	File   = benchfmt.File
)

const (
	lazyName    = "BenchmarkSweepCellsLazy"
	batchedName = "BenchmarkSweepCellsBatched"
)

func main() {
	var (
		benchRe    = flag.String("bench", "BenchmarkSweepCells", "benchmark regexp passed to go test")
		pkg        = flag.String("pkg", ".", "package containing the benchmarks")
		out        = flag.String("out", "BENCH_sweep.json", "output JSON path")
		baseline   = flag.String("baseline", "BENCH_sweep_baseline.json", "baseline JSON path (missing file: comparison skipped)")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed fractional cells/sec drop against the baseline before failing")
		minSpeedup = flag.Float64("min-speedup", 1.5, "required batched/lazy cells-per-second ratio")
		benchtime  = flag.String("benchtime", "1s", "value for go test -benchtime")
		count      = flag.Int("count", 3, "value for go test -count; the highest-throughput sample per benchmark is kept")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepdiff: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}
	results, err := parseBench(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepdiff: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "sweepdiff: no benchmarks matched %q in %s\n", *benchRe, *pkg)
		os.Exit(1)
	}

	f := File{Command: "go " + strings.Join(args, " "), Benchmarks: results}
	if err := f.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "sweepdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))

	ok := checkSpeedup(f, *minSpeedup)

	base, err := benchfmt.Read(*baseline)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("no baseline at %s; comparison skipped\n", *baseline)
		} else {
			fmt.Fprintf(os.Stderr, "sweepdiff: %v\n", err)
			os.Exit(1)
		}
	} else if !compare(base, f, *tolerance) {
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// parseBench extracts benchmark lines from `go test -bench` output. A line
// is the benchmark name, the iteration count, then value/unit pairs. With
// -count > 1 a name appears several times; the sample with the highest
// cells/sec wins (first occurrence keeps the ordering).
func parseBench(raw []byte) ([]Result, error) {
	var out []Result
	seen := map[string]int{}
	minCells := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := Result{Name: trimCPUSuffix(fields[0])}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %v", sc.Text(), err)
			}
			metrics[fields[i+1]] = v
		}
		r.NsPerOp = metrics["ns/op"]
		r.BytesPerOp = metrics["B/op"]
		r.AllocsPerOp = metrics["allocs/op"]
		r.CellsPerSec = metrics["cells/sec"]
		if m, ok := minCells[r.Name]; !ok || r.CellsPerSec < m {
			minCells[r.Name] = r.CellsPerSec
		}
		if i, dup := seen[r.Name]; dup {
			if r.CellsPerSec > out[i].CellsPerSec {
				out[i] = r
			}
			continue
		}
		seen[r.Name] = len(out)
		out = append(out, r)
	}
	for i := range out {
		if m := minCells[out[i].Name]; m > 0 {
			out[i].Noise = (out[i].CellsPerSec - m) / m
		}
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix so results compare across
// machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// checkSpeedup gates the batched path's edge over the lazy path within a
// single run: machine speed cancels out of the ratio, so the only jitter
// left is the two benchmarks' own sample spread, which shrinks the
// required floor instead of failing it.
func checkSpeedup(f File, minSpeedup float64) bool {
	var lazy, batched Result
	for _, r := range f.Benchmarks {
		switch r.Name {
		case lazyName:
			lazy = r
		case batchedName:
			batched = r
		}
	}
	if lazy.CellsPerSec == 0 || batched.CellsPerSec == 0 {
		fmt.Fprintf(os.Stderr, "sweepdiff: missing %s or %s cells/sec in the run\n", lazyName, batchedName)
		return false
	}
	speedup := batched.CellsPerSec / lazy.CellsPerSec
	floor := minSpeedup / (1 + lazy.Noise + batched.Noise)
	status := "ok"
	ok := true
	if speedup < floor {
		status = "REGRESSION"
		ok = false
	}
	fmt.Printf("  batched/lazy speedup %.2fx (%.1f vs %.1f cells/sec, floor %.2fx after spread)  %s\n",
		speedup, batched.CellsPerSec, lazy.CellsPerSec, floor, status)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweepdiff: batched path below the %.2fx speedup floor\n", minSpeedup)
	}
	return ok
}

// compare prints the trajectory against the baseline and reports whether
// every benchmark's throughput held up: cells/sec may not drop by more
// than tolerance plus the run's own sample spread. Benchmarks present on
// only one side are reported but never fail the run.
func compare(base, cur File, tolerance float64) bool {
	byName := map[string]Result{}
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}
	ok := true
	for _, r := range cur.Benchmarks {
		b, found := byName[r.Name]
		if !found || b.CellsPerSec == 0 {
			fmt.Printf("  %-35s %8.1f cells/sec  (no baseline)\n", r.Name, r.CellsPerSec)
			continue
		}
		drop := (b.CellsPerSec - r.CellsPerSec) / b.CellsPerSec
		status := "ok"
		if drop > tolerance+r.Noise {
			status = "REGRESSION"
			ok = false
		}
		fmt.Printf("  %-35s %8.1f -> %8.1f cells/sec (%+6.1f%%, spread %.0f%%)  %s\n",
			r.Name, b.CellsPerSec, r.CellsPerSec, -100*drop, 100*r.Noise, status)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "sweepdiff: cells/sec dropped more than %.0f%% against the baseline (gate widens by the run's sample spread)\n", 100*tolerance)
	}
	return ok
}
