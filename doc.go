// Package multicluster reproduces "The Multicluster Architecture: Reducing
// Cycle Time Through Partitioning" (Farkas, Chow, Jouppi, Vranesic,
// MICRO-30, 1997): a cycle-level simulator of single- and dual-cluster
// dynamically-scheduled processors, the static instruction-scheduling
// toolchain (live-range partitioning, clustered register allocation, code
// generation), six SPEC92-like synthetic workloads, and the harnesses that
// regenerate every table and figure of the paper's evaluation.
//
// The implementation lives under internal/; the cmd/ directory provides the
// mcsim, mcsched, and mcreport executables, and examples/ shows the library
// in use. The benchmark suite in bench_test.go regenerates the paper's
// artifacts; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package multicluster
