// Command mctrace records, inspects, and replays binary dynamic-instruction
// traces, decoupling (slow, driver-dependent) trace generation from (fast,
// repeatable) simulation. A recorded trace guarantees that every machine
// configuration sees the identical dynamic stream.
//
// Usage:
//
//	mctrace -bench compress -sched local -record /tmp/c.mctr -n 300000
//	mctrace -bench compress -sched local -info   /tmp/c.mctr
//	mctrace -bench compress -sched local -replay /tmp/c.mctr -machine dual
//
// The static pipeline flags (-bench, -sched, -seed, -window) must match
// between record and replay so the trace re-binds to the same binary; the
// reader verifies the program shape.
package main

import (
	"flag"
	"fmt"
	"os"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "compress", "benchmark name")
		sched   = flag.String("sched", "local", "scheduler: none, local, hash, roundrobin, affinity")
		seed    = flag.Int64("seed", 42, "behaviour-driver seed")
		window  = flag.Int("window", 0, "local-scheduler imbalance window")
		n       = flag.Int64("n", 300_000, "instructions to record")
		record  = flag.String("record", "", "record a trace to this file")
		info    = flag.String("info", "", "summarize a recorded trace")
		replay  = flag.String("replay", "", "simulate a recorded trace")
		machine = flag.String("machine", "dual", "machine for -replay: single, dual, single4, dual2")
	)
	flag.Parse()

	w := workload.ByName(*bench)
	if w == nil {
		fatalf("unknown benchmark %q", *bench)
	}
	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Window = *window
	opts.Instructions = *n
	opts.ProfileInstructions = 0 // scale the profiling pass with -n
	part, err := scheduler(*sched, *window)
	if err != nil {
		fatalf("%v", err)
	}
	mp, _, err := experiment.Compile(w, part, opts)
	if err != nil {
		fatalf("compile: %v", err)
	}

	switch {
	case *record != "":
		gen, err := trace.NewGenerator(mp, w.NewDriver(*seed), *n)
		if err != nil {
			fatalf("%v", err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		count, err := trace.Record(f, mp, gen, *n)
		if err != nil {
			fatalf("record: %v", err)
		}
		st, _ := f.Stat()
		fmt.Printf("recorded %d instructions to %s (%d bytes, %.2f B/instr)\n",
			count, *record, st.Size(), float64(st.Size())/float64(count))

	case *info != "":
		fr := openTrace(*info, mp)
		var total, mem, ctrl, taken int64
		for {
			e, ok := fr.Next()
			if !ok {
				break
			}
			total++
			if e.Instr.Op.Class().IsMem() {
				mem++
			}
			if e.Instr.Op.IsControl() {
				ctrl++
				if e.Taken {
					taken++
				}
			}
		}
		if err := fr.Err(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s: %d instructions, %.1f%% memory, %.1f%% control (%.1f%% taken)\n",
			*info, total, pct(mem, total), pct(ctrl, total), pct(taken, ctrl))

	case *replay != "":
		cfg, err := machineConfig(*machine)
		if err != nil {
			fatalf("%v", err)
		}
		fr := openTrace(*replay, mp)
		p, err := core.New(cfg, fr)
		if err != nil {
			fatalf("%v", err)
		}
		stats, err := p.Run()
		if err != nil {
			fatalf("simulate: %v", err)
		}
		if err := fr.Err(); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("replayed on %s: %v\n", *machine, stats)

	default:
		fatalf("one of -record, -info, or -replay is required")
	}
}

func openTrace(path string, mp *isa.Program) *trace.FileReader {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	fr, err := trace.NewFileReader(f, mp)
	if err != nil {
		fatalf("%v (did the -bench/-sched/-seed flags match the recording?)", err)
	}
	return fr
}

func machineConfig(name string) (core.Config, error) {
	switch name {
	case "single":
		return core.SingleCluster8Way(), nil
	case "dual":
		return core.DualCluster4Way(), nil
	case "single4":
		return core.SingleCluster4Way(), nil
	case "dual2":
		return core.DualCluster2Way(), nil
	}
	return core.Config{}, fmt.Errorf("unknown machine %q", name)
}

func scheduler(name string, window int) (partition.Partitioner, error) {
	switch name {
	case "none":
		return nil, nil
	case "local":
		return partition.Local{Window: window}, nil
	case "hash":
		return partition.Hash{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "affinity":
		return partition.Affinity{}, nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mctrace: "+format+"\n", args...)
	os.Exit(1)
}
