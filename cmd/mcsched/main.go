// Command mcsched runs the static scheduling pipeline on a benchmark (or
// the paper's Figure 6 example) and dumps the partitioning, register
// allocation, and lowered machine code, so the compiler side of the system
// can be inspected without simulating anything.
//
// Usage:
//
//	mcsched -bench figure6 -sched local
//	mcsched -bench compress -sched local -asm
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"multicluster/internal/codegen"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "figure6", "benchmark name or 'figure6'")
		sched  = flag.String("sched", "local", "partitioner: local, hash, roundrobin, affinity")
		window = flag.Int("window", 0, "local-scheduler imbalance window (0 = default)")
		seed   = flag.Int64("seed", 42, "profiling seed (ignored for figure6)")
		asm    = flag.Bool("asm", false, "print the lowered machine code")
	)
	flag.Parse()

	prog, err := loadProgram(*bench, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	part, err := pickPartitioner(*sched, *window)
	if err != nil {
		fatalf("%v", err)
	}

	res := part.Partition(prog)
	if err := res.Validate(prog); err != nil {
		fatalf("partitioning invalid: %v", err)
	}
	m := partition.Measure(prog, res)

	fmt.Printf("program %s: %d live ranges, %d blocks, %d static instructions\n",
		prog.Name, prog.NumValues(), len(prog.Blocks), prog.StaticInstrCount())
	fmt.Printf("partitioner %s: %s\n\n", part.Name(), m)

	fmt.Println("assignment order (first write encountered during the sorted bottom-up traversal):")
	for i, id := range res.Order {
		fmt.Printf("  %2d. %-10s -> cluster %d\n", i+1, prog.Value(id).Name, res.Of(id))
	}
	var globals []string
	for id := range prog.Values {
		if res.Of(id) == partition.Global {
			globals = append(globals, prog.Value(id).Name)
		}
	}
	sort.Strings(globals)
	fmt.Printf("global registers: %v\n\n", globals)

	alloc, err := regalloc.Allocate(prog, res, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         true,
		OtherClusterSpill: true,
	})
	if err != nil {
		fatalf("allocation: %v", err)
	}
	fmt.Printf("register allocation: %d colouring rounds, %d spills, %d demotions\n",
		alloc.Iterations, alloc.Spilled, alloc.Demoted)
	for id := range alloc.Prog.Values {
		v := alloc.Prog.Value(id)
		fmt.Printf("  %-10s -> %-4s (cluster %s)\n", v.Name, alloc.RegOf[id], clusterName(alloc.Cluster[id]))
	}

	mp, err := codegen.Lower(alloc)
	if err != nil {
		fatalf("lowering: %v", err)
	}
	fmt.Printf("\nmachine code: %d instructions, %d memory ops, %d conditional branches\n",
		len(mp.Instrs), mp.NumMemOps, mp.NumBranches)
	if *asm {
		fmt.Println()
		fmt.Print(mp.Disassemble())
	}
}

func loadProgram(name string, seed int64) (*il.Program, error) {
	if name == "figure6" {
		return il.Figure6(), nil
	}
	b := workload.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("unknown benchmark %q (try figure6, compress, doduc, gcc1, ora, su2cor, tomcatv)", name)
	}
	trace.Profile(b.Program, b.NewDriver(seed), 50_000)
	return b.Program, nil
}

func pickPartitioner(name string, window int) (partition.Partitioner, error) {
	switch name {
	case "local":
		return partition.Local{Window: window}, nil
	case "hash":
		return partition.Hash{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "affinity":
		return partition.Affinity{}, nil
	}
	return nil, fmt.Errorf("unknown partitioner %q", name)
}

func clusterName(c int) string {
	if c == partition.Global {
		return "global"
	}
	return fmt.Sprintf("%d", c)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsched: "+format+"\n", args...)
	os.Exit(1)
}
