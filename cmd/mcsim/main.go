// Command mcsim runs one benchmark on one processor configuration and
// prints the simulation statistics.
//
// Usage:
//
//	mcsim -bench compress -machine dual -sched local -n 300000
//
// Machines: single (8-way single cluster), dual (2×4-way multicluster),
// single4, dual2. Schedulers: none (native, cluster-oblivious allocation),
// local (the paper's local scheduler), hash, roundrobin, affinity.
package main

import (
	"flag"
	"fmt"
	"os"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "compress", "benchmark: compress, doduc, gcc1, ora, su2cor, tomcatv")
		machine  = flag.String("machine", "dual", "machine: single, dual, single4, dual2")
		sched    = flag.String("sched", "local", "scheduler: none, local, hash, roundrobin, affinity")
		n        = flag.Int64("n", 300_000, "dynamic instructions to simulate")
		seed     = flag.Int64("seed", 42, "behaviour-driver seed")
		window   = flag.Int("window", 0, "local-scheduler imbalance window (0 = default)")
		verbose  = flag.Bool("v", false, "print per-cluster and stall detail")
		timeline = flag.Int("timeline", 0, "print a pipeline diagram of the first N instructions")
		hot      = flag.Int("hot", 0, "print the N hottest static instructions after the run")
	)
	flag.Parse()

	b := workload.ByName(*bench)
	if b == nil {
		fatalf("unknown benchmark %q", *bench)
	}
	cfg, err := experiment.MachineByName(*machine)
	if err != nil {
		fatalf("%v", err)
	}
	part, err := experiment.SchedulerByName(*sched, *window)
	if err != nil {
		fatalf("%v", err)
	}

	opts := experiment.DefaultOptions()
	opts.Instructions = *n
	opts.ProfileInstructions = 0 // scale the profiling pass with -n
	opts.Seed = *seed
	opts.Window = *window

	mp, alloc, err := experiment.Compile(b, part, opts)
	if err != nil {
		fatalf("compile: %v", err)
	}
	if *timeline > 0 {
		gen, err := trace.NewGenerator(mp, b.NewDriver(*seed), int64(*timeline))
		if err != nil {
			fatalf("%v", err)
		}
		tls, _, err := core.CollectTimeline(cfg, gen)
		if err != nil {
			fatalf("timeline: %v", err)
		}
		fmt.Printf("pipeline timeline, first %d instructions of %s on %s:\n", len(tls), b.Name, *machine)
		fmt.Print(experiment.FormatTimeline(tls))
		return
	}
	if *hot > 0 {
		cfg.CollectProfile = true
	}
	stats, err := experiment.Simulate(mp, b, cfg, opts)
	if err != nil {
		fatalf("simulate: %v", err)
	}

	fmt.Printf("%s on %s with %s scheduling (%d instructions, seed %d)\n",
		b.Name, *machine, *sched, *n, *seed)
	fmt.Printf("  cycles        %12d\n", stats.Cycles)
	fmt.Printf("  IPC           %12.3f\n", stats.IPC())
	fmt.Printf("  dual-dist     %11.1f%%  (op forwards %d, result forwards %d)\n",
		100*stats.DualFraction(), stats.OperandForwards, stats.ResultForwards)
	fmt.Printf("  replays       %12d  (%d instructions squashed)\n", stats.Replays, stats.ReplayedInstructions)
	fmt.Printf("  mispredicts   %11.2f%%  of %d conditional branches\n", 100*stats.MispredictRate(), stats.CondBranches)
	fmt.Printf("  dcache miss   %11.2f%%  icache miss %.2f%%\n", 100*stats.DCache.MissRate(), 100*stats.ICache.MissRate())
	fmt.Printf("  issue disorder%12.2f\n", stats.MeanDisorder())
	fmt.Printf("  spills        %12d  demotions %d\n", alloc.Spilled, alloc.Demoted)
	if *hot > 0 {
		fmt.Printf("\nhottest static instructions:\n")
		fmt.Print(experiment.FormatHotSpots(mp, stats, *hot))
	}
	if *verbose {
		fmt.Printf("  fetch stalls: icache=%d mispredict=%d queue=%d regs=%d replay=%d\n",
			stats.Fetch.ICacheMiss, stats.Fetch.Mispredict, stats.Fetch.QueueFull, stats.Fetch.RegsFull, stats.Fetch.Replay)
		for c := 0; c < cfg.Clusters; c++ {
			cs := stats.Cluster[c]
			fmt.Printf("  cluster %d: distributed=%d issued=%d mean queue=%.1f\n",
				c, cs.Distributed, cs.IssuedUops, float64(cs.QueueOccupancySum)/float64(stats.Cycles))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
