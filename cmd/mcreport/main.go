// Command mcreport regenerates every table and figure of the paper's
// evaluation in one run: Table 1 (configuration), Table 2 (speedup ratios),
// the per-run detail behind the §4.2 discussion, the scenario timelines of
// Figures 2–5, the Figure 6 scheduling walk-through, and the
// Palacharla-based cycle-time analysis.
//
// Usage:
//
//	mcreport                 # everything, 300k instructions per run
//	mcreport -n 1000000      # longer runs
//	mcreport -only table2    # one artifact: table1, table2, detail,
//	                         # figures, figure6, cycletime
package main

import (
	"flag"
	"fmt"
	"os"

	"multicluster/internal/experiment"
)

func main() {
	var (
		n      = flag.Int64("n", 300_000, "dynamic instructions per simulation")
		seed   = flag.Int64("seed", 42, "behaviour-driver seed")
		only   = flag.String("only", "", "emit one artifact: table1, table2, detail, figures, figure6, cycletime, assignments")
		width  = flag.Int("width", 8, "aggregate issue width: 8 (paper's main study) or 4")
		format = flag.String("format", "text", "table2 output format: text, json, csv")
	)
	flag.Parse()

	opts := experiment.DefaultOptions()
	if *width == 4 {
		opts = experiment.FourWayOptions()
	} else if *width != 8 {
		fmt.Fprintln(os.Stderr, "mcreport: -width must be 4 or 8")
		os.Exit(1)
	}
	opts.Instructions = *n
	opts.ProfileInstructions = 0 // scale the profiling pass with -n
	opts.Seed = *seed

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		fmt.Println(experiment.FormatTable1())
	}
	if want("figures") {
		fmt.Println(experiment.ScenarioTimelines())
	}
	if want("figure6") {
		fmt.Println(experiment.Figure6Report())
	}
	if *only == "assignments" {
		var cmps []experiment.AssignmentComparison
		for _, name := range []string{"compress", "doduc", "su2cor"} {
			c, err := experiment.CompareAssignments(name, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcreport: %v\n", err)
				os.Exit(1)
			}
			cmps = append(cmps, c)
		}
		fmt.Println(experiment.FormatAssignmentComparison(cmps))
	}

	if want("table2") || want("detail") || want("cycletime") {
		rows, err := experiment.Table2(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcreport: %v\n", err)
			os.Exit(1)
		}
		if want("table2") {
			if err := experiment.WriteRows(os.Stdout, rows, *format); err != nil {
				fmt.Fprintf(os.Stderr, "mcreport: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		if want("detail") {
			fmt.Println(experiment.FormatTable2Detail(rows))
		}
		if want("cycletime") {
			fmt.Println(experiment.CycleTimeReport(rows))
		}
	}
}
