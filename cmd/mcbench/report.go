package main

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"multicluster/internal/benchfmt"
	"multicluster/internal/sweep"
)

// KindStats is the immutable per-class summary extracted after a run.
type KindStats struct {
	Kind     opKind
	Requests int64
	OK       int64
	Shed     int64
	Errors   int64
	Canceled int64
	Dropped  int64
	Hist     *sweep.HistogramSnapshot
	// Noise is the relative spread between the p99s of the run's two
	// halves — the measurement's own jitter, which widens the gate.
	Noise float64
}

// Report is the outcome of one load run, the source of both the human
// summary and BENCH_serve.json.
type Report struct {
	Config  Config
	Elapsed time.Duration
	Partial bool
	Kinds   []KindStats
	Overall KindStats
	Server  *benchfmt.ServerCounters
}

// report snapshots the runner's accumulators.
func (r *Runner) report(elapsed time.Duration, partial bool) *Report {
	rep := &Report{Config: r.cfg, Elapsed: elapsed, Partial: partial}
	o0, o1 := r.overall[0].Snapshot(), r.overall[1].Snapshot()
	rep.Overall = KindStats{Kind: -1, Hist: mergeSnapshots(o0, o1), Noise: p99Noise(o0, o1)}
	for k := opKind(0); k < numOpKinds; k++ {
		st := r.stats[k]
		h0, h1 := st.hists[0].Snapshot(), st.hists[1].Snapshot()
		ks := KindStats{
			Kind:     k,
			Requests: st.requests,
			OK:       st.ok.Load(),
			Shed:     st.shed.Load(),
			Errors:   st.errors.Load(),
			Canceled: st.canceled.Load(),
			Dropped:  st.dropped,
			Hist:     mergeSnapshots(h0, h1),
			Noise:    p99Noise(h0, h1),
		}
		rep.Kinds = append(rep.Kinds, ks)
		rep.Overall.Requests += ks.Requests
		rep.Overall.OK += ks.OK
		rep.Overall.Shed += ks.Shed
		rep.Overall.Errors += ks.Errors
		rep.Overall.Canceled += ks.Canceled
		rep.Overall.Dropped += ks.Dropped
	}
	return rep
}

// result maps one KindStats onto the shared benchmark schema. RPS is
// completed-ok responses per elapsed second; rates are fractions of
// issued requests (canceled arrivals excluded — they are an artifact of
// interruption, not of the server).
func (ks KindStats) result(name string, elapsed time.Duration) benchfmt.Result {
	res := benchfmt.Result{Name: name, Requests: ks.Requests}
	if sec := elapsed.Seconds(); sec > 0 {
		res.RPS = float64(ks.OK) / sec
	}
	if issued := float64(ks.Requests - ks.Canceled); issued > 0 {
		res.ShedRate = float64(ks.Shed) / issued
		res.ErrorRate = float64(ks.Errors) / issued
		res.DropRate = float64(ks.Dropped) / issued
	}
	res.P50Ms = ks.Hist.Quantile(0.50) * 1000
	res.P90Ms = ks.Hist.Quantile(0.90) * 1000
	res.P99Ms = ks.Hist.Quantile(0.99) * 1000
	res.Noise = ks.Noise
	return res
}

// File renders the report in the schema scripts/benchdiff and
// scripts/servediff understand: one benchmark entry per traffic class
// plus the overall aggregate.
func (rep *Report) File() benchfmt.File {
	f := benchfmt.File{
		Command: fmt.Sprintf("mcbench -rate %g -concurrency %d -duration %s -seed %d -instr %d",
			rep.Config.Rate, rep.Config.Concurrency, rep.Config.Duration, rep.Config.Seed, rep.Config.Instructions),
		Serve: &benchfmt.ServeMeta{
			Target:      rep.Config.BaseURL,
			Seed:        rep.Config.Seed,
			RatePerSec:  rep.Config.Rate,
			Concurrency: rep.Config.Concurrency,
			DurationSec: rep.Elapsed.Seconds(),
			Partial:     rep.Partial,
			Server:      rep.Server,
		},
	}
	f.Benchmarks = append(f.Benchmarks, rep.Overall.result("Serve/overall", rep.Elapsed))
	for _, ks := range rep.Kinds {
		f.Benchmarks = append(f.Benchmarks, ks.result("Serve/"+ks.Kind.String(), rep.Elapsed))
	}
	return f
}

// scrapeServer reads the server's own counters from GET /metrics so the
// report carries both sides of the run. A server without a metrics
// endpoint (404) is not an error — the report just omits the section.
func scrapeServer(baseURL string) (*benchfmt.ServerCounters, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	m, err := sweep.ParseMetricsText(resp.Body)
	if err != nil {
		return nil, err
	}
	sc := &benchfmt.ServerCounters{}
	if v, ok := m.Value("sweep_jobs_submitted_total"); ok {
		sc.Submitted = int64(v)
	}
	if v, ok := m.Value("sweep_jobs_shed_total"); ok {
		sc.Shed = int64(v)
	}
	if h, ok := m.Histogram("sweep_job_total_seconds"); ok {
		sc.JobTotalP99Ms = h.Quantile(0.99) * 1000
	}
	return sc, nil
}

// print renders the human summary table.
func (rep *Report) print(w io.Writer) {
	state := "complete"
	if rep.Partial {
		state = "PARTIAL (interrupted)"
	}
	fmt.Fprintf(w, "mcbench: %s  target=%s  rate=%g/s  conc=%d  seed=%d  elapsed=%.2fs\n",
		state, rep.Config.BaseURL, rep.Config.Rate, rep.Config.Concurrency, rep.Config.Seed, rep.Elapsed.Seconds())
	fmt.Fprintf(w, "  %-16s %8s %8s %9s %9s %9s %7s %7s %7s\n",
		"mix", "reqs", "rps", "p50ms", "p90ms", "p99ms", "shed%", "err%", "drop%")
	row := func(name string, ks KindStats) {
		res := ks.result(name, rep.Elapsed)
		fmt.Fprintf(w, "  %-16s %8d %8.1f %9.2f %9.2f %9.2f %6.1f%% %6.1f%% %6.1f%%\n",
			name, res.Requests, res.RPS, res.P50Ms, res.P90Ms, res.P99Ms,
			100*res.ShedRate, 100*res.ErrorRate, 100*res.DropRate)
	}
	row("overall", rep.Overall)
	for _, ks := range rep.Kinds {
		row(ks.Kind.String(), ks)
	}
	if rep.Server != nil {
		fmt.Fprintf(w, "  server: submitted=%d shed=%d job_total_p99=%.2fms\n",
			rep.Server.Submitted, rep.Server.Shed, rep.Server.JobTotalP99Ms)
		if sub := subStats(rep); sub != nil && (rep.Server.Submitted != sub.OK || rep.Server.Shed != sub.Shed) {
			// Only meaningful against a server this run had to itself; a
			// shared target legitimately counts other clients' traffic.
			fmt.Fprintf(w, "  note: server counters differ from client view (submit ok=%d shed=%d) — shared server?\n",
				sub.OK, sub.Shed)
		}
	}
}

func subStats(rep *Report) *KindStats {
	for i := range rep.Kinds {
		if rep.Kinds[i].Kind == opSubmit {
			return &rep.Kinds[i]
		}
	}
	return nil
}
