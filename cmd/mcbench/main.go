// Command mcbench is the service load harness: a deterministic open-loop
// generator that drives a running mcserved (one node or a cluster) with a
// configurable mix of job submits, status polls, /v1/table2 calls, and
// NDJSON sweep streams, then writes the observed throughput, latency
// percentiles, and shed/error rates to BENCH_serve.json for the
// scripts/servediff regression gate.
//
// Usage:
//
//	mcbench                                  # self-hosted in-process server
//	mcbench -addr http://localhost:8742      # a running mcserved
//	mcbench -rate 300 -duration 5s -seed 1 -out BENCH_serve.json
//
// Traffic is open-loop: arrivals follow a seeded Poisson process at
// -rate, independent of how fast the server answers, which is what makes
// saturation visible instead of silently backing off. The whole arrival
// sequence (timing, op kinds, spec choices) is drawn up front from -seed,
// so two runs with one seed issue the same requests in the same order.
// Up to -concurrency requests may be in flight; arrivals beyond that are
// counted as client-side drops rather than queued (queuing would turn
// the open loop closed).
//
// Percentiles come from fixed log-spaced bucket histograms on the client
// side and are cross-checked against the server's own /metrics
// histograms, which the report embeds. SIGINT flushes a partial report
// (marked "partial": true) instead of discarding the run.
//
// With -count > 1 the identical plan is executed that many times
// back-to-back and the pass with the lowest overall p99 is reported —
// the same policy benchdiff applies to wall-clock samples: transient
// machine load can only slow a pass down, so the fastest pass is the
// closest measurement of the code itself. Server counters are diffed
// around each pass so the client/server cross-check stays exact.
//
// With -addr empty, mcbench hosts the sweep service in-process on a
// loopback listener — `make bench-serve` needs no separately managed
// daemon, and the client and server contend for the same cores exactly
// like a single-box deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running mcserved (empty = self-hosted in-process server)")
		rate        = flag.Float64("rate", 300, "mean arrivals per second (open loop)")
		duration    = flag.Duration("duration", 5*time.Second, "planned run length")
		concurrency = flag.Int("concurrency", 64, "max in-flight requests; excess arrivals are dropped client-side")
		seed        = flag.Int64("seed", 1, "RNG seed for the arrival plan (same seed, same request sequence)")
		mixFlag     = flag.String("mix", "", "traffic mix weights, e.g. submit=6,poll=6,table2=2,sweep=1")
		instr       = flag.Int64("instr", 20000, "per-simulation instruction budget in generated specs")
		specSeeds   = flag.Int("spec-seeds", 4, "distinct simulation seeds in the spec pool (controls cache-hit balance)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		warmup      = flag.Bool("warmup", true, "prime the server's result cache before the measured window (steady-state benchmark)")
		count       = flag.Int("count", 1, "benchmark passes; the pass with the lowest overall p99 is reported")
		out         = flag.String("out", "BENCH_serve.json", "output JSON path (empty = don't write)")
		workers     = flag.Int("workers", 0, "self-hosted server worker-pool size (0 = GOMAXPROCS)")
		maxLive     = flag.Int("max-live", 4096, "self-hosted server admission window (0 = unbounded)")
	)
	flag.Parse()

	mix, err := ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(2)
	}
	if mix.total() == 0 || *rate <= 0 || *concurrency <= 0 || *specSeeds <= 0 || *count <= 0 {
		fmt.Fprintln(os.Stderr, "mcbench: mix, rate, concurrency, spec-seeds, and count must be positive")
		os.Exit(2)
	}

	cfg := Config{
		BaseURL:      *addr,
		Rate:         *rate,
		Duration:     *duration,
		Concurrency:  *concurrency,
		Seed:         *seed,
		Mix:          mix,
		Instructions: *instr,
		SpecSeeds:    *specSeeds,
		Timeout:      *timeout,
		Warmup:       *warmup,
	}
	if cfg.BaseURL == "" {
		base, shutdown, err := startSelfServe(*workers, *maxLive)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: self-serve: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		cfg.BaseURL = base
		fmt.Printf("mcbench: self-hosted mcserved at %s (%d workers)\n", base, *workers)
	}

	// SIGINT/SIGTERM cancels the run context; the runner stops issuing,
	// drains its in-flight tail, and the partial report is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep := runPasses(ctx, cfg, *count)

	rep.print(os.Stdout)
	if *out != "" {
		if err := rep.File().Write(*out); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if rep.Partial {
		// A partial run flushed its numbers but must not look like a clean
		// benchmark to calling scripts.
		os.Exit(130)
	}
}

// runPasses executes the plan count times and returns the pass with the
// lowest overall p99 (a pass can only be slowed down by outside load,
// never sped up, so the fastest pass best isolates the code under
// test). The server's cumulative counters are scraped before and after
// every pass; each report carries that pass's deltas, keeping the
// client/server cross-check exact across passes. The result cache is
// warmed once — later passes are steady-state by construction. On
// interrupt, a completed pass is still preferred; the in-progress
// partial pass is reported only when nothing finished.
func runPasses(ctx context.Context, cfg Config, count int) *Report {
	prev, err := scrapeServer(cfg.BaseURL)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: scraping /metrics: %v\n", err)
		prev = nil
	}
	var best, partial *Report
	for pass := 0; pass < count; pass++ {
		passCfg := cfg
		passCfg.Warmup = cfg.Warmup && pass == 0
		runner := newRunner(passCfg)
		if pass == 0 {
			fmt.Printf("mcbench: %d planned arrivals over %s against %s (%d pass(es))\n",
				len(runner.plan), cfg.Duration, cfg.BaseURL, count)
		}
		rep := runner.Run(ctx)
		if cur, err := scrapeServer(cfg.BaseURL); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: scraping /metrics: %v\n", err)
		} else if cur != nil {
			delta := *cur
			if prev != nil {
				delta.Submitted -= prev.Submitted
				delta.Shed -= prev.Shed
			}
			rep.Server = &delta
			prev = cur
		}
		if rep.Partial {
			partial = rep
			break
		}
		if count > 1 {
			fmt.Printf("mcbench: pass %d/%d overall p99 %.2fms\n",
				pass+1, count, rep.Overall.Hist.Quantile(0.99)*1000)
		}
		if best == nil || rep.Overall.Hist.Quantile(0.99) < best.Overall.Hist.Quantile(0.99) {
			best = rep
		}
	}
	if best == nil {
		return partial
	}
	return best
}

// startSelfServe hosts the sweep service in-process on a loopback
// listener, metrics enabled, and returns its base URL.
func startSelfServe(workers, maxLive int) (string, func(), error) {
	reg := obs.NewRegistry()
	svc := sweep.NewService(sweep.Config{
		Workers: workers,
		MaxLive: maxLive,
		Metrics: sweep.NewMetrics(reg),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: sweep.NewServer(svc)}
	go srv.Serve(ln)
	shutdown := func() {
		srv.Close()
		svc.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
