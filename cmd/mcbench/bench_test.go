package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"multicluster/internal/benchfmt"
	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

func newBenchTarget(t *testing.T) *httptest.Server {
	t.Helper()
	svc := sweep.NewService(sweep.Config{
		Workers: 4,
		Metrics: sweep.NewMetrics(obs.NewRegistry()),
	})
	ts := httptest.NewServer(sweep.NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

func smokeConfig(baseURL string) Config {
	return Config{
		BaseURL:      baseURL,
		Rate:         60,
		Duration:     1 * time.Second,
		Concurrency:  16,
		Seed:         7,
		Mix:          DefaultMix(),
		Instructions: 5000,
		SpecSeeds:    2,
		Timeout:      30 * time.Second,
	}
}

// TestMcbenchSmoke drives a real in-process sweep server at a low fixed
// rate and pins the harness's three contracts: the seeded plan is
// deterministic, the BENCH_serve.json it writes parses back through the
// shared schema, and the client-observed submit/shed counts equal the
// server's own /metrics counters.
func TestMcbenchSmoke(t *testing.T) {
	ts := newBenchTarget(t)
	cfg := smokeConfig(ts.URL)

	// Same seed, same request sequence: the full arrival plan (timing,
	// op kinds, argument draws) must be reproducible.
	plan := buildPlan(cfg)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	if again := buildPlan(cfg); !reflect.DeepEqual(plan, again) {
		t.Fatal("two plans from one seed differ")
	}
	other := cfg
	other.Seed = 8
	if reflect.DeepEqual(plan, buildPlan(other)) {
		t.Fatal("different seeds produced identical plans")
	}

	runner := newRunner(cfg)
	rep := runner.Run(context.Background())
	if rep.Partial {
		t.Fatal("uninterrupted run reported partial")
	}
	if rep.Overall.Requests != int64(len(plan)) {
		t.Fatalf("issued %d requests, want the full plan of %d", rep.Overall.Requests, len(plan))
	}
	if rep.Overall.OK == 0 {
		t.Fatal("no successful requests against a healthy server")
	}
	if rep.Overall.Errors > 0 {
		t.Fatalf("%d errors against a healthy server", rep.Overall.Errors)
	}

	// The report round-trips through the committed-file schema.
	sc, err := scrapeServer(cfg.BaseURL)
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	rep.Server = sc
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.File().Write(path); err != nil {
		t.Fatal(err)
	}
	file, err := benchfmt.Read(path)
	if err != nil {
		t.Fatalf("re-reading the report: %v", err)
	}
	if file.Serve == nil || file.Serve.Partial {
		t.Fatalf("serve metadata wrong: %+v", file.Serve)
	}
	if len(file.Benchmarks) != int(numOpKinds)+1 {
		t.Fatalf("report has %d benchmark entries, want %d mixes + overall", len(file.Benchmarks), numOpKinds+1)
	}
	for _, b := range file.Benchmarks {
		if !strings.HasPrefix(b.Name, "Serve/") {
			t.Errorf("benchmark %q not namespaced under Serve/", b.Name)
		}
		if b.Requests > 0 && b.ErrorRate == 0 && b.P50Ms > b.P99Ms {
			t.Errorf("%s: p50 %g > p99 %g", b.Name, b.P50Ms, b.P99Ms)
		}
	}

	// Client and server agree about what the run did: every 202 the
	// client counted is a submission the server counted, every 429 a shed.
	sub := subStats(rep)
	if sub == nil {
		t.Fatal("no submit stats")
	}
	if sc.Submitted != sub.OK {
		t.Errorf("server sweep_jobs_submitted_total = %d, client submit oks = %d", sc.Submitted, sub.OK)
	}
	if sc.Shed != sub.Shed {
		t.Errorf("server sweep_jobs_shed_total = %d, client submit 429s = %d", sc.Shed, sub.Shed)
	}
}

// TestMcbenchLifecycleSoak is the sweep-lifecycle smoke `make
// soak-lifecycle` runs: a mix that includes the first-class sweep
// resource op (create → poll → cursor-resumed results, under rotating
// X-Client-ID tenants) must complete a full plan against a healthy
// server with zero errors, alongside the interactive classes.
func TestMcbenchLifecycleSoak(t *testing.T) {
	ts := newBenchTarget(t)
	cfg := smokeConfig(ts.URL)
	cfg.Mix = Mix{opSubmit: 4, opPoll: 4, opTable2: 1, opSweep: 1, opLifecycle: 3}
	cfg.Warmup = true

	rep := newRunner(cfg).Run(context.Background())
	if rep.Partial {
		t.Fatal("uninterrupted run reported partial")
	}
	if rep.Overall.Errors > 0 {
		t.Fatalf("%d errors against a healthy server", rep.Overall.Errors)
	}
	var lifecycleOK int64
	for _, ks := range rep.Kinds {
		if ks.Kind == opLifecycle {
			lifecycleOK = ks.OK
		}
	}
	if lifecycleOK == 0 {
		t.Fatal("no lifecycle op completed: create/poll/resume path is broken")
	}
}

// TestWFQKeepsInteractiveTenantLive is the starvation smoke behind the
// WFQ redesign: with a deep batch-tenant sweep backlog monopolizing a
// tiny worker pool, a different tenant's interactive job submissions
// must still be served promptly — service is shared by tenant weight,
// not by backlog depth.
func TestWFQKeepsInteractiveTenantLive(t *testing.T) {
	svc := sweep.NewService(sweep.Config{
		Workers: 2,
		Metrics: sweep.NewMetrics(obs.NewRegistry()),
	})
	ts := httptest.NewServer(sweep.NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	// The batch tenant queues a sweep far wider than the pool: every
	// benchmark × both machines × both schedulers × 2 seeds.
	grid := sweep.Grid{
		Machines:     []string{"single", "dual"},
		Seeds:        []int64{1, 2},
		Instructions: 50000,
	}
	bulk, err := svc.CreateSweep(sweep.WithClientID(context.Background(), "bulk"), "bulk", grid)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Total() < 16 {
		t.Fatalf("bulk sweep expanded to %d cells, want a deep backlog", bulk.Total())
	}

	// While that backlog drains, the interactive tenant's submissions
	// must each complete quickly instead of waiting behind the sweep.
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 3; i++ {
		spec := fmt.Sprintf(`{"benchmark":"compress","machine":"dual","seed":%d,"instructions":5000}`, 900+i)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", "interactive")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var job sweep.JobView
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		deadline := time.Now().Add(15 * time.Second)
		for {
			r2, err := client.Get(ts.URL + "/v1/jobs/" + job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(r2.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			r2.Body.Close()
			if job.State == sweep.JobDone || job.State == sweep.JobFailed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("interactive job %s starved behind the bulk sweep backlog: %+v", job.ID, job)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if job.State != sweep.JobDone {
			t.Fatalf("interactive job failed: %+v", job)
		}
	}
}

// TestMcbenchRunDeterministicAcrossServers repeats one seeded run against
// two fresh servers: the issued request sequence (and so the per-mix
// request counts) must be identical even though response timing differs.
func TestMcbenchRunDeterministicAcrossServers(t *testing.T) {
	var counts [2][]int64
	for i := range counts {
		ts := newBenchTarget(t)
		cfg := smokeConfig(ts.URL)
		cfg.Rate = 40
		rep := newRunner(cfg).Run(context.Background())
		for _, ks := range rep.Kinds {
			counts[i] = append(counts[i], ks.Requests)
		}
	}
	if !reflect.DeepEqual(counts[0], counts[1]) {
		t.Fatalf("per-mix request counts differ across runs of one seed: %v vs %v", counts[0], counts[1])
	}
}

// TestMcbenchInterruptFlushesPartialReport cancels the run context the
// way main's SIGINT handler does and asserts the harness still produces
// a parseable report covering the work done so far, marked partial.
func TestMcbenchInterruptFlushesPartialReport(t *testing.T) {
	ts := newBenchTarget(t)
	cfg := smokeConfig(ts.URL)
	cfg.Duration = 30 * time.Second // would run far past the cancel

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep := newRunner(cfg).Run(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("interrupted run took %s to come back", elapsed)
	}
	if !rep.Partial {
		t.Fatal("interrupted run not marked partial")
	}
	if rep.Overall.Requests == 0 {
		t.Fatal("partial report carries no requests")
	}

	path := filepath.Join(t.TempDir(), "BENCH_partial.json")
	if err := rep.File().Write(path); err != nil {
		t.Fatal(err)
	}
	file, err := benchfmt.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if file.Serve == nil || !file.Serve.Partial {
		t.Fatalf(`partial run's report lacks "partial": true: %+v`, file.Serve)
	}
	if file.Serve.DurationSec >= cfg.Duration.Seconds() {
		t.Fatalf("partial run claims full duration %gs", file.Serve.DurationSec)
	}
}
