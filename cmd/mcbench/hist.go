package main

import (
	"math"
	"sort"
	"sync/atomic"

	"multicluster/internal/sweep"
)

// latHist is the client-side latency histogram: fixed log-spaced bucket
// edges from 50µs to beyond two minutes (~26% relative resolution, the
// HDR-histogram idea without the library), safe for concurrent Observe.
// Percentiles come out of the same HistogramSnapshot.Quantile that reads
// the server's scraped histograms, so client and server latency numbers
// are extracted by one implementation and stay comparable.
type latHist struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Int64
	sumUs  atomic.Int64 // sum in integer microseconds, cheap and precise enough
}

// latBounds spans 50µs..~150s multiplying by 1.05 per edge (~306
// buckets): percentile estimates resolve to better than 5% before
// interpolation tightens them further, so bucket quantization stays
// well inside the regression gate's tolerance.
func latBounds() []float64 {
	var b []float64
	for v := 50e-6; v < 150; v *= 1.05 {
		b = append(b, v)
	}
	return b
}

func newLatHist() *latHist {
	bounds := latBounds()
	return &latHist{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency in seconds.
func (h *latHist) Observe(sec float64) {
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(math.Round(sec * 1e6)))
}

// Snapshot reduces the histogram to the shared cumulative form.
func (h *latHist) Snapshot() *sweep.HistogramSnapshot {
	s := &sweep.HistogramSnapshot{
		Bounds: h.bounds,
		Cum:    make([]int64, len(h.bounds)),
		Count:  h.count.Load(),
		Sum:    float64(h.sumUs.Load()) / 1e6,
	}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Cum[i] = cum
	}
	return s
}

// mergeSnapshots sums same-bounds snapshots into one.
func mergeSnapshots(hs ...*sweep.HistogramSnapshot) *sweep.HistogramSnapshot {
	m := &sweep.HistogramSnapshot{Bounds: hs[0].Bounds, Cum: make([]int64, len(hs[0].Bounds))}
	for _, h := range hs {
		m.Count += h.Count
		m.Sum += h.Sum
		for i, c := range h.Cum {
			m.Cum[i] += c
		}
	}
	return m
}

// p99Noise measures the run's own tail jitter the way benchdiff's
// -count samples do for wall clock: the relative spread between the
// p99s of the run's two halves. servediff widens its p99 gate by this,
// so a loaded machine slackens the gate instead of failing it.
func p99Noise(a, b *sweep.HistogramSnapshot) float64 {
	if a.Count == 0 || b.Count == 0 {
		return 0
	}
	pa, pb := a.Quantile(0.99), b.Quantile(0.99)
	lo, hi := math.Min(pa, pb), math.Max(pa, pb)
	if lo <= 0 {
		return 0
	}
	return (hi - lo) / lo
}
