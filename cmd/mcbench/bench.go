package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"multicluster/internal/sweep"
	"multicluster/internal/workload"
)

// opKind is one traffic class in the mix.
type opKind int

const (
	opSubmit    opKind = iota // POST /v1/jobs
	opPoll                    // GET /v1/jobs/{id} (or the job list)
	opTable2                  // GET /v1/table2
	opSweep                   // POST /v1/sweeps?mode=inline, NDJSON stream read to EOF
	opLifecycle               // POST /v1/sweeps (202) + progress polls + cursor-resumed results read
	numOpKinds
)

func (k opKind) String() string {
	switch k {
	case opSubmit:
		return "submit"
	case opPoll:
		return "poll"
	case opTable2:
		return "table2"
	case opSweep:
		return "sweep"
	case opLifecycle:
		return "lifecycle"
	}
	return "unknown"
}

// Mix is the relative weight of each traffic class.
type Mix [numOpKinds]int

// DefaultMix leans on the cheap interactive calls the way real clients
// do, with a trickle of heavyweight streams. The lifecycle class defaults
// to 0 so baseline plans (and BENCH_serve.json gates pinned to them) are
// unchanged; enable it with e.g. -mix submit=6,poll=6,table2=2,lifecycle=2.
func DefaultMix() Mix { return Mix{opSubmit: 6, opPoll: 6, opTable2: 2, opSweep: 1} }

// ParseMix parses "submit=6,poll=6,table2=2,sweep=1"; omitted classes get
// weight 0, an empty string means DefaultMix.
func ParseMix(s string) (Mix, error) {
	if s == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range bytes.Split([]byte(s), []byte(",")) {
		kv := bytes.SplitN(part, []byte("="), 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad mix element %q (want kind=weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(string(kv[1]), "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for k := opKind(0); k < numOpKinds; k++ {
			if k.String() == string(bytes.TrimSpace(kv[0])) {
				m[k] = w
				found = true
			}
		}
		if !found {
			return m, fmt.Errorf("unknown mix kind %q", kv[0])
		}
	}
	return m, nil
}

func (m Mix) total() int {
	t := 0
	for _, w := range m {
		t += w
	}
	return t
}

// Config parameterizes one load run.
type Config struct {
	BaseURL     string
	Rate        float64       // mean arrivals per second (open loop, Poisson)
	Duration    time.Duration // planned run length
	Concurrency int           // max in-flight requests; excess arrivals are dropped client-side
	Seed        int64         // drives the arrival plan; same seed, same request sequence
	Mix         Mix
	// Instructions is the per-simulation dynamic budget used in generated
	// specs, table2 calls, and sweep grids; small budgets keep the bench
	// about the service, not the simulator.
	Instructions int64
	// SpecSeeds is the number of distinct simulation seeds in the spec
	// pool; it controls the cache-hit/miss balance of the run.
	SpecSeeds int
	Timeout   time.Duration // per-request client timeout
	// Warmup primes the server's result cache with every pool spec (one
	// covering sweep) and the table2 grid before the measured window, so
	// the run benchmarks the steady-state service path instead of mixing
	// in each configuration's one-time simulation cost. Without it the
	// run's first half is cold and its second half cached — a drift that
	// swamps the tail percentiles.
	Warmup bool
}

// plannedOp is one arrival: what to send and when, fixed before the run
// starts. Arg is a raw RNG draw spent at execution time (spec choice,
// poll-target choice), so execution never advances the planning RNG.
type plannedOp struct {
	Kind opKind
	At   time.Duration
	Arg  int64
}

// buildPlan expands the config into the full deterministic arrival
// sequence: exponential inter-arrival gaps at the configured mean rate
// and mix-weighted op kinds, all drawn from one seeded RNG. Two calls
// with the same Config return identical plans — this is the determinism
// the smoke test pins.
func buildPlan(cfg Config) []plannedOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Mix.total()
	var plan []plannedOp
	at := time.Duration(0)
	for {
		at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		if at >= cfg.Duration {
			return plan
		}
		pick := rng.Intn(total)
		kind := opKind(0)
		for k := opKind(0); k < numOpKinds; k++ {
			if pick < cfg.Mix[k] {
				kind = k
				break
			}
			pick -= cfg.Mix[k]
		}
		plan = append(plan, plannedOp{Kind: kind, At: at, Arg: rng.Int63()})
	}
}

// specPool enumerates the distinct JobSpecs the run draws from: every
// benchmark × {single, dual} × SpecSeeds seeds. Repeats of one spec hit
// the server's result cache; the pool size tunes how often that happens.
func specPool(cfg Config) []sweep.JobSpec {
	var pool []sweep.JobSpec
	for _, b := range workload.All() {
		for _, machine := range []string{"single", "dual"} {
			for s := 0; s < cfg.SpecSeeds; s++ {
				pool = append(pool, sweep.JobSpec{
					Benchmark:    b.Name,
					Machine:      machine,
					Seed:         int64(100 + s),
					Instructions: cfg.Instructions,
				})
			}
		}
	}
	return pool
}

// opStats accumulates one traffic class's outcomes. Requests counts
// every planned arrival whose turn came (dropped ones included), so it
// is deterministic for a completed run; the outcome split depends on the
// server. Any non-429, non-5xx response counts as ok — a poll answered
// 404 after eviction is the server working as documented, not an error.
type opStats struct {
	requests int64 // issuing loop only, no concurrency
	dropped  int64 // issuing loop only
	ok       atomic.Int64
	shed     atomic.Int64 // HTTP 429
	errors   atomic.Int64 // transport errors and 5xx
	canceled atomic.Int64 // run interrupted mid-request; excluded from errors
	// Latencies are recorded per run half so the report can measure its
	// own tail jitter (the spread between the halves' p99s) — the noise
	// band servediff widens its gate by.
	hists [2]*latHist
}

// Runner executes a plan against a live server.
type Runner struct {
	cfg     Config
	plan    []plannedOp
	specs   []sweep.JobSpec
	client  *http.Client
	stats   [numOpKinds]*opStats
	overall [2]*latHist

	mu  sync.Mutex
	ids []string // job ids from successful submits, poll targets
}

func newRunner(cfg Config) *Runner {
	r := &Runner{
		cfg:     cfg,
		plan:    buildPlan(cfg),
		specs:   specPool(cfg),
		overall: [2]*latHist{newLatHist(), newLatHist()},
		client: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency,
				MaxIdleConnsPerHost: cfg.Concurrency,
			},
		},
	}
	for k := range r.stats {
		r.stats[k] = &opStats{hists: [2]*latHist{newLatHist(), newLatHist()}}
	}
	return r
}

// Run replays the plan in real time: each arrival fires at its planned
// offset, takes an in-flight slot if one is free (or is counted dropped),
// and runs to completion in its own goroutine. Cancellation of ctx stops
// issuing new arrivals, waits for the in-flight tail, and marks the
// report partial — the numbers collected so far are still flushed.
func (r *Runner) Run(ctx context.Context) *Report {
	if r.cfg.Warmup {
		r.warmup(ctx)
	}
	start := time.Now()
	sem := make(chan struct{}, r.cfg.Concurrency)
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

	partial := false
issue:
	for _, op := range r.plan {
		if delay := op.At - time.Since(start); delay > 0 {
			timer.Reset(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				partial = true
				break issue
			}
		} else if ctx.Err() != nil {
			partial = true
			break
		}
		st := r.stats[op.Kind]
		st.requests++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(op plannedOp) {
				defer wg.Done()
				defer func() { <-sem }()
				r.do(ctx, op)
			}(op)
		default:
			st.dropped++
		}
	}
	wg.Wait()
	return r.report(time.Since(start), partial)
}

// warmup computes every spec the run can draw before the clock starts:
// one sweep covering the whole pool (the grid expands to exactly the
// pool's benchmarks × machines × seeds) and one table2 call. Best
// effort — a server that cannot warm up will show the failure in the
// measured run anyway.
func (r *Runner) warmup(ctx context.Context) {
	seeds := make([]int64, r.cfg.SpecSeeds)
	for i := range seeds {
		seeds[i] = int64(100 + i)
	}
	grid := sweep.Grid{
		Machines:     []string{"single", "dual"},
		Schedulers:   []string{"none"},
		Seeds:        seeds,
		Instructions: r.cfg.Instructions,
	}
	// Inline mode blocks until every cell has streamed back, so the cache
	// is fully primed when this returns.
	if body, err := json.Marshal(grid); err == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+"/v1/sweeps?mode=inline", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if resp, err := r.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	if _, _, err := r.get(ctx, fmt.Sprintf("%s/v1/table2?format=json&n=%d", r.cfg.BaseURL, r.cfg.Instructions)); err != nil {
		return
	}
}

// do executes one arrival and classifies its outcome. Latency is
// first-byte-to-last-byte inclusive: the clock stops only after the full
// body (for sweeps, the whole NDJSON stream) has been read.
func (r *Runner) do(ctx context.Context, op plannedOp) {
	st := r.stats[op.Kind]
	window := 0
	if op.At*2 >= r.cfg.Duration {
		window = 1
	}
	t0 := time.Now()
	status, jobID, err := r.send(ctx, op)
	lat := time.Since(t0).Seconds()
	switch {
	case err != nil && ctx.Err() != nil:
		st.canceled.Add(1)
	case err != nil, status >= 500:
		st.errors.Add(1)
	case status == http.StatusTooManyRequests:
		st.shed.Add(1)
	default:
		st.ok.Add(1)
		st.hists[window].Observe(lat)
		r.overall[window].Observe(lat)
		if jobID != "" {
			r.mu.Lock()
			r.ids = append(r.ids, jobID)
			r.mu.Unlock()
		}
	}
}

// send issues the HTTP call for op and returns the status code and, for
// successful submits, the new job id.
func (r *Runner) send(ctx context.Context, op plannedOp) (status int, jobID string, err error) {
	base := r.cfg.BaseURL
	switch op.Kind {
	case opSubmit:
		spec := r.specs[int(op.Arg%int64(len(r.specs)))]
		body, merr := json.Marshal(spec)
		if merr != nil {
			return 0, "", merr
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if rerr != nil {
			return 0, "", rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, derr := r.client.Do(req)
		if derr != nil {
			return 0, "", derr
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var view sweep.JobView
			if json.NewDecoder(resp.Body).Decode(&view) == nil {
				jobID = view.ID
			}
		}
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, jobID, nil

	case opPoll:
		url := base + "/v1/jobs"
		r.mu.Lock()
		if n := len(r.ids); n > 0 {
			url += "/" + r.ids[int(op.Arg%int64(n))]
		}
		r.mu.Unlock()
		return r.get(ctx, url)

	case opTable2:
		return r.get(ctx, fmt.Sprintf("%s/v1/table2?format=json&n=%d", base, r.cfg.Instructions))

	case opSweep:
		body, merr := json.Marshal(r.sweepGrid(op))
		if merr != nil {
			return 0, "", merr
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweeps?mode=inline", bytes.NewReader(body))
		if rerr != nil {
			return 0, "", rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, derr := r.client.Do(req)
		if derr != nil {
			return 0, "", derr
		}
		defer resp.Body.Close()
		if _, cerr := io.Copy(io.Discard, resp.Body); cerr != nil {
			return 0, "", cerr
		}
		return resp.StatusCode, "", nil

	case opLifecycle:
		return r.sweepLifecycle(ctx, op)
	}
	return 0, "", fmt.Errorf("unknown op kind %d", op.Kind)
}

// sweepGrid is the small two-cell grid an op's argument draw maps to:
// one benchmark, both machine models, one seed. Identical for opSweep
// and opLifecycle so the two paths compute the same work.
func (r *Runner) sweepGrid(op plannedOp) sweep.Grid {
	spec := r.specs[int(op.Arg%int64(len(r.specs)))]
	return sweep.Grid{
		Benchmarks:   []string{spec.Benchmark},
		Machines:     []string{"single", "dual"},
		Schedulers:   []string{"none"},
		Seeds:        []int64{spec.Seed},
		Instructions: r.cfg.Instructions,
	}
}

// sweepLifecycle drives the first-class sweep resource end to end the
// way a polling client does: create (202), poll progress until the
// sweep is terminal, then read the results in two cursor-resumed chunks
// — the second GET picks up exactly where the first stopped. The
// arrival's argument draw also picks one of a few client ids so the
// server's weighted-fair queues see real multi-tenant traffic.
func (r *Runner) sweepLifecycle(ctx context.Context, op plannedOp) (int, string, error) {
	base := r.cfg.BaseURL
	tenant := fmt.Sprintf("bench-%d", op.Arg%4)
	body, err := json.Marshal(r.sweepGrid(op))
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", tenant)
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	var view sweep.SweepView
	decodeErr := json.NewDecoder(resp.Body).Decode(&view)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, "", nil
	}
	if decodeErr != nil {
		return 0, "", decodeErr
	}

	// Poll progress until the server reports a terminal state.
	for view.State == sweep.SweepRunning {
		select {
		case <-ctx.Done():
			return 0, "", ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		status, err := r.getJSON(ctx, base+"/v1/sweeps/"+view.ID, &view)
		if err != nil {
			return 0, "", err
		}
		if status != http.StatusOK {
			return status, "", nil
		}
	}

	// Resumable read: first half by limit, remainder by cursor.
	half := view.Total / 2
	for _, q := range []string{
		fmt.Sprintf("?cursor=0&limit=%d", half),
		fmt.Sprintf("?cursor=%d", half),
	} {
		status, _, err := r.get(ctx, base+"/v1/sweeps/"+view.ID+"/results"+q)
		if err != nil || status != http.StatusOK {
			return status, "", err
		}
	}
	return http.StatusOK, "", nil
}

// getJSON fetches url and decodes the body into out.
func (r *Runner) getJSON(ctx context.Context, url string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func (r *Runner) get(ctx context.Context, url string) (int, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, "", nil
}
