// Command mcserved is the long-lived sweep-orchestration daemon: it accepts
// simulation jobs and grid sweeps over HTTP/JSON, schedules them on a
// bounded worker pool, and serves every repeated configuration from a
// content-addressed result cache that is journaled to disk, so a restart —
// graceful or a crash — recovers every committed result.
//
// Usage:
//
//	mcserved -addr :8742 -workers 8 -data-dir /var/lib/mcserved
//
// Endpoints:
//
//	POST   /v1/jobs                submit one job (a JSON JobSpec), returns 202 + job id,
//	                               429 + Retry-After under load shedding
//	GET    /v1/jobs                list jobs, cursor-paginated (?limit=&after=)
//	GET    /v1/jobs/{id}           poll job status and result
//	DELETE /v1/jobs/{id}           cancel a job (queued jobs never run)
//	POST   /v1/sweeps              create a sweep resource from a grid (JSON), returns 202 + sweep id
//	                               (?mode=inline streams rows on the connection — deprecated)
//	GET    /v1/sweeps              list sweeps
//	GET    /v1/sweeps/{id}         sweep progress: cells done/total, per-outcome counts
//	GET    /v1/sweeps/{id}/results stream results as NDJSON in grid order; ?cursor=N resumes,
//	                               ?limit=M paginates
//	DELETE /v1/sweeps/{id}         cancel a sweep (queued cells never run)
//	GET    /v1/table2              the paper's Table 2, served from cache (?format=json|csv|text&n=&seed=&window=&width=)
//	GET    /v1/stats               cache/pool/job/sweep/journal counters
//	GET    /metrics                Prometheus text exposition (core, job, sweep, pool, cache, journal)
//	GET    /debug/vars             expvar (the "sweep" variable mirrors /v1/stats)
//	GET    /debug/pprof/           net/http/pprof profiler (only with -pprof)
//	GET    /healthz                liveness probe
//	GET    /readyz                 readiness probe: 503 while overloaded, draining,
//	                               leaving the cluster, or cut off from a peer majority
//
// Every response carries an X-Request-ID header (echoing the request's,
// or freshly generated) and produces one structured access-log line.
// Errors are a structured JSON envelope {"error":{"code","message"}}
// with stable machine-readable codes. Finished jobs are retained for
// polling up to -job-retention entries and finished sweeps up to
// -sweep-retention; older ones are evicted and their ids answer 404.
//
// Sweeps are first-class resources: with -data-dir set their grid spec
// and completion cursor are journaled, so a killed daemon resumes
// incomplete sweeps on restart — already-committed cells replay from the
// result journal without recomputation, and result streams re-read from
// any cursor are byte-identical across the restart. The worker pool
// schedules cells with per-tenant weighted-fair queueing keyed on
// X-Client-ID, so one tenant's 10k-cell grid cannot starve another's
// interactive requests.
//
// Fault tolerance:
//
//   - Every job runs under a deadline (-job-timeout, or per-job via the
//     spec's timeout_ms) enforced through context cancellation.
//   - Transient failures retry with exponential backoff and deterministic
//     jitter (-retries, -retry-base); deterministic simulator errors are
//     classified terminal and never retried.
//   - Admission control sheds load with 429 once -max-live jobs are
//     unfinished, and per client once -max-per-client are in flight.
//   - With -data-dir set, completed results are appended (fsynced) to a
//     checksummed journal and replayed on startup; trailing corruption
//     from a crash is truncated and recovery continues.
//   - -faults injects deterministic chaos (panics, errors, latency) at the
//     simulation, cache, journal, and forward boundaries for soak testing.
//
// Cluster mode (-node-id, -peers): several daemons form a sweep cluster.
// A consistent-hash ring over virtual nodes partitions the result space
// by spec hash; each node forwards non-owned work to its owner, serves
// replicated results locally, and spools writes owed to a down peer into
// hint logs replayed when it returns. Cluster peers talk over
// /cluster/v1/{ping,run,result,digest,leave,member,status}; job ids gain
// a node prefix ("n1-j7") so any node can route a lookup to the minting
// node. A background anti-entropy reconciler (-antientropy) exchanges
// per-range digests with peers so replicas converge even when hints were
// lost, and replica-local cache hits trigger asynchronous read-repair of
// the owner's copy. See the README's "Cluster mode" and "Cluster
// operations" sections.
//
// On SIGTERM/SIGINT the daemon stops accepting work, drains in-flight and
// queued jobs, and exits. With -decommission (cluster mode), shutdown
// first executes a graceful leave: the node marks itself leaving,
// streams every cached result to the members inheriting its ranges, and
// removes itself from the ring — a planned scale-down loses nothing and
// leaves no hint backlog behind. POST /cluster/v1/leave does the same
// without stopping the process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"multicluster/internal/cluster"
	"multicluster/internal/faultinject"
	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

func main() {
	var (
		addr         = flag.String("addr", ":8742", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for in-flight jobs")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline (0 = none; per-job timeout_ms overrides)")
		retries      = flag.Int("retries", 3, "max executions per job for transient failures (1 = no retries)")
		retryBase    = flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff (doubles per attempt, jittered)")
		retryMax     = flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
		maxLive      = flag.Int("max-live", 4096, "max admitted unfinished jobs before shedding with 429 (0 = unbounded)")
		maxPerClient = flag.Int("max-per-client", 256, "max unfinished jobs per client id (0 = unlimited)")
		jobRetention = flag.Int("job-retention", sweep.DefaultJobRetention, "finished jobs kept for polling before eviction (-1 = unlimited)")
		sweepKeep    = flag.Int("sweep-retention", sweep.DefaultSweepRetention, "finished sweeps kept for result reads before eviction (-1 = unlimited)")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		dataDir      = flag.String("data-dir", "", "directory for the persistent result journal (empty = in-memory only)")
		faults       = flag.String("faults", "", "fault-injection plan, e.g. 'sim:error:0.1,journal:latency:0.5:2ms' (chaos testing)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for deterministic fault injection")
		nodeID       = flag.String("node-id", "", "cluster node id (empty = single-node mode)")
		peers        = flag.String("peers", "", "static seed peers, comma-separated id=url pairs (cluster mode)")
		advertise    = flag.String("advertise", "", "base URL peers reach this node at (default derived from -addr)")
		vnodes       = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
		replicas     = flag.Int("replicas", 1, "nodes holding each result, primary included (cluster mode)")
		heartbeat    = flag.Duration("heartbeat", cluster.DefaultHeartbeat, "peer heartbeat interval (cluster mode)")
		antiEntropy  = flag.Duration("antientropy", cluster.DefaultAntiEntropy, "anti-entropy digest-exchange interval (cluster mode; negative disables)")
		hintMaxRecs  = flag.Int64("hint-max-records", cluster.DefaultHintMaxRecords, "per-peer hint log record bound (negative = unbounded)")
		hintMaxBytes = flag.Int64("hint-max-bytes", cluster.DefaultHintMaxBytes, "per-peer hint log byte bound (negative = unbounded)")
		decommission = flag.Bool("decommission", false, "on SIGTERM, gracefully leave the cluster before draining (cluster mode)")
	)
	flag.Parse()

	plan, err := faultinject.ParsePlan(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		os.Exit(2)
	}
	if plan.Enabled() {
		log.Printf("mcserved: CHAOS ON: injecting %s (seed %d)", plan, *faultSeed)
	}

	var journal *sweep.Journal
	var sweepJournal *sweep.SweepJournal
	if *dataDir != "" {
		journal, err = sweep.OpenJournal(filepath.Join(*dataDir, "results.journal"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
			os.Exit(1)
		}
		js := journal.Stats()
		log.Printf("mcserved: journal %s: replayed %d results", js.Path, js.Records)
		if js.TruncatedBytes > 0 {
			log.Printf("mcserved: journal recovery truncated %d corrupt trailing bytes", js.TruncatedBytes)
		}
		sweepJournal, err = sweep.OpenSweepJournal(filepath.Join(*dataDir, "sweeps.journal"), *sweepKeep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
			os.Exit(1)
		}
		resuming := 0
		for _, rs := range sweepJournal.Recovered() {
			if rs.State == sweep.SweepRunning {
				resuming++
			}
		}
		log.Printf("mcserved: sweep journal %s: %d sweeps recovered, %d resuming",
			sweepJournal.Path(), len(sweepJournal.Recovered()), resuming)
	}

	reg := obs.NewRegistry()
	metrics := sweep.NewMetrics(reg)
	cfg := sweep.Config{
		Workers:        *workers,
		JobTimeout:     *jobTimeout,
		Retry:          sweep.RetryPolicy{MaxAttempts: *retries, Base: *retryBase, Max: *retryMax},
		MaxLive:        *maxLive,
		MaxPerClient:   *maxPerClient,
		JobRetention:   *jobRetention,
		Inject:         plan,
		Journal:        journal,
		SweepJournal:   sweepJournal,
		SweepRetention: *sweepKeep,
		Metrics:        metrics,
	}

	// Cluster mode: join the hash ring and route non-owned work to its
	// owner; single-node mode when -node-id is unset.
	var node *cluster.Node
	if *nodeID != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "mcserved: cluster mode (-node-id) requires -data-dir for hinted handoff")
			os.Exit(2)
		}
		seeds, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
			os.Exit(2)
		}
		adv := *advertise
		if adv == "" {
			host, port, err := net.SplitHostPort(*addr)
			if err != nil || port == "" {
				fmt.Fprintln(os.Stderr, "mcserved: cluster mode needs -advertise (could not derive from -addr)")
				os.Exit(2)
			}
			if host == "" {
				host = "127.0.0.1"
			}
			adv = fmt.Sprintf("http://%s", net.JoinHostPort(host, port))
		}
		node, err = cluster.NewNode(cluster.Config{
			Self:           cluster.Member{ID: *nodeID, URL: adv},
			Seeds:          seeds,
			VNodes:         *vnodes,
			Replicas:       *replicas,
			HintDir:        filepath.Join(*dataDir, "hints"),
			Heartbeat:      *heartbeat,
			AntiEntropy:    *antiEntropy,
			HintMaxRecords: *hintMaxRecs,
			HintMaxBytes:   *hintMaxBytes,
			Metrics:        cluster.NewMetrics(reg),
			Inject:         plan,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
			os.Exit(1)
		}
		cfg.NodeID = *nodeID
		cfg.Remote = node
		log.Printf("mcserved: cluster node %s at %s (%d seed peers, %d replicas)", *nodeID, adv, len(seeds), *replicas)
	}

	svc := sweep.NewService(cfg)

	var handler http.Handler = sweep.NewServer(svc)
	if node != nil {
		node.AttachService(svc)
		handler = node.Handler(handler)
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *pprofOn {
		// Explicit routes rather than the package's DefaultServeMux
		// registration, so the profiler is reachable only when asked for.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("mcserved: pprof enabled at /debug/pprof/")
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := &http.Server{
		Addr:    *addr,
		Handler: withRequestLogging(logger, *nodeID, mux),
		// A stalled or malicious client must not pin a connection (and its
		// goroutine) forever: bound the header, whole-request read, and
		// idle keep-alive phases. No WriteTimeout — sweeps stream NDJSON
		// for as long as the grid takes.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("mcserved: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	if node != nil {
		node.Start(runCtx)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-stop:
		log.Printf("mcserved: %v, draining", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		os.Exit(1)
	}

	runCancel() // stop heartbeats and hint replay before draining
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if node != nil && *decommission {
		// Graceful leave before shutdown: hand every owned result to the
		// members inheriting the ranges, then drop out of the ring. A
		// failed drain keeps us in the ring (marked leaving) — the data
		// is safer with the process still answering peers.
		rep, err := node.Decommission(ctx)
		if err != nil {
			log.Printf("mcserved: decommission: %v", err)
		}
		if rep != nil {
			log.Printf("mcserved: decommission: streamed %d results, %d failed, removed=%v",
				rep.Streamed, rep.Failed, rep.Removed)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("mcserved: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Committed results are already fsynced in the journal; the
			// next start replays them, so abandoning stragglers loses only
			// uncommitted work.
			log.Printf("mcserved: drain timed out, abandoning remaining jobs")
			svc.Close()
			os.Exit(1)
		}
		log.Printf("mcserved: drain: %v", err)
	}
	log.Printf("mcserved: drained, bye")
}
