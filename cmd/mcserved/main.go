// Command mcserved is the long-lived sweep-orchestration daemon: it accepts
// simulation jobs and grid sweeps over HTTP/JSON, schedules them on a
// bounded worker pool, and serves every repeated configuration from an
// in-memory content-addressed result cache.
//
// Usage:
//
//	mcserved -addr :8742 -workers 8
//
// Endpoints:
//
//	POST   /v1/jobs       submit one job (a JSON JobSpec), returns 202 + job id
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  poll job status and result
//	DELETE /v1/jobs/{id}  cancel a job (queued jobs never run)
//	POST   /v1/sweeps     submit a grid (JSON), streams completed rows as NDJSON
//	GET    /v1/table2     the paper's Table 2, served from cache (?format=json|csv|text&n=&seed=&window=&width=)
//	GET    /v1/stats      cache/pool/job counters
//	GET    /debug/vars    expvar (the "sweep" variable mirrors /v1/stats)
//	GET    /healthz       liveness probe
//
// On SIGTERM/SIGINT the daemon stops accepting work, drains in-flight and
// queued jobs, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multicluster/internal/sweep"
)

func main() {
	var (
		addr         = flag.String("addr", ":8742", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for in-flight jobs")
	)
	flag.Parse()

	svc := sweep.NewService(sweep.Config{Workers: *workers})
	srv := &http.Server{
		Addr:    *addr,
		Handler: sweep.NewServer(svc),
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("mcserved: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-stop:
		log.Printf("mcserved: %v, draining", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("mcserved: http shutdown: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("mcserved: drain timed out, abandoning remaining jobs")
			svc.Close()
			os.Exit(1)
		}
		log.Printf("mcserved: drain: %v", err)
	}
	log.Printf("mcserved: drained, bye")
}
