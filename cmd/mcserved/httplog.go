package main

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"
)

// statusWriter records the status code and body size a handler produced
// so the access log can report them. It forwards Flush so the NDJSON
// sweep stream keeps flushing row-by-row through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID returns the caller-supplied X-Request-ID when present (so a
// client or proxy can correlate its own logs with ours), otherwise a
// fresh random one.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// withRequestLogging wraps next with structured access logging: one log
// line per request with a request id (echoed back in the X-Request-ID
// response header), method, path, status, response size, and duration.
// In cluster mode every line also carries this node's id, and requests
// forwarded by a peer name it in an origin field, so one request id can
// be followed across the nodes that touched it.
func withRequestLogging(logger *slog.Logger, node string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)
		// Make the id (caller-supplied or freshly minted) visible to the
		// handlers, so a cluster forward carries the same id onward.
		r.Header.Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		attrs := []any{
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds()) / 1000,
			"remote", r.RemoteAddr,
		}
		if node != "" {
			attrs = append(attrs, "node", node)
		}
		if origin := r.Header.Get("X-MC-Origin"); origin != "" {
			attrs = append(attrs, "origin", origin)
		}
		logger.Info("request", attrs...)
	})
}
