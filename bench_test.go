// Benchmark harness: one benchmark per table and figure of the paper, plus
// the ablation studies DESIGN.md calls out. Each benchmark regenerates its
// artifact and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation end to end. Simulation lengths are kept modest
// (60k dynamic instructions) so the full suite runs in minutes; cmd/mcreport
// runs the same experiments at full length.
package multicluster

import (
	"fmt"
	"testing"

	"multicluster/internal/bpred"
	"multicluster/internal/core"
	"multicluster/internal/cycletime"
	"multicluster/internal/experiment"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

const benchInstrs = 60_000

func benchOpts() experiment.Options {
	opts := experiment.DefaultOptions()
	opts.Instructions = benchInstrs
	opts.ProfileInstructions = 15_000
	return opts
}

// BenchmarkTable1IssueRules exercises the Table 1 issue limits: a stream
// saturating every instruction class on both configurations, reporting the
// achieved IPC per machine.
func BenchmarkTable1IssueRules(b *testing.B) {
	mixed := make([]isa.Instruction, 0, 24)
	fp := func(n int) isa.Reg { return isa.FPReg(n) }
	r := func(n int) isa.Reg { return isa.IntReg(n) }
	for i := 0; i < 8; i++ {
		mixed = append(mixed, isa.Instruction{Op: isa.ADD, Dst: r(2 * (i % 8)), Src1: isa.RegZero, Src2: isa.RegZero, MemID: -1, BrID: -1})
	}
	for i := 0; i < 4; i++ {
		mixed = append(mixed, isa.Instruction{Op: isa.FADD, Dst: fp(2 * (i % 4)), Src1: isa.FPZero, Src2: isa.FPZero, MemID: -1, BrID: -1})
	}
	for i := 0; i < 4; i++ {
		mixed = append(mixed, isa.Instruction{Op: isa.LDW, Dst: r(1 + 2*(i%4)), Src1: isa.RegZero, MemID: i, BrID: -1})
	}
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"single8", core.SingleCluster8Way()},
		{"dual4x2", core.DualCluster4Way()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := cfg.c
			c.ICache.MissLatency = 0
			c.DCache.MissLatency = 0
			var ipc float64
			for i := 0; i < b.N; i++ {
				entries := make([]trace.Entry, 0, 4096)
				for len(entries) < 4096 {
					for j := range mixed {
						entries = append(entries, trace.Entry{Index: len(entries), Instr: &mixed[j], Addr: 0x1000})
					}
				}
				p, err := core.New(c, &trace.SliceReader{Entries: entries})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				ipc = stats.IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkTable2 regenerates the paper's Table 2, one sub-benchmark per
// SPEC92-like workload, reporting the none/local speedup percentages.
func BenchmarkTable2(b *testing.B) {
	for _, w := range workload.All() {
		b.Run(w.Name, func(b *testing.B) {
			var row experiment.Table2Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiment.Table2Bench(workload.ByName(w.Name), benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.NonePct, "none-%")
			b.ReportMetric(row.LocalPct, "local-%")
			b.ReportMetric(100*row.LocalStats.DualFraction(), "dual-%")
			b.ReportMetric(float64(row.LocalStats.Replays), "replays")
		})
	}
}

// scenarioBench runs one Figures 2–5 micro-program and reports the add's
// completion cycle.
func scenarioBench(b *testing.B, instrs []isa.Instruction) {
	cfg := core.DualCluster4Way()
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0
	var done float64
	for i := 0; i < b.N; i++ {
		local := append([]isa.Instruction(nil), instrs...)
		entries := make([]trace.Entry, len(local))
		for j := range local {
			entries[j] = trace.Entry{Index: j, Instr: &local[j]}
		}
		tls, _, err := core.CollectTimeline(cfg, &trace.SliceReader{Entries: entries})
		if err != nil {
			b.Fatal(err)
		}
		done = float64(tls[len(tls)-1].Done)
	}
	b.ReportMetric(done, "done-cycle")
}

func lda(dst isa.Reg, imm int64) isa.Instruction {
	return isa.Instruction{Op: isa.LDA, Dst: dst, Src1: isa.RegZero, Imm: imm, MemID: -1, BrID: -1}
}

func addI(dst, s1, s2 isa.Reg) isa.Instruction {
	return isa.Instruction{Op: isa.ADD, Dst: dst, Src1: s1, Src2: s2, MemID: -1, BrID: -1}
}

// BenchmarkFigure2 is scenario two: operand forwarded to the master.
func BenchmarkFigure2(b *testing.B) {
	r := isa.IntReg
	scenarioBench(b, []isa.Instruction{lda(r(2), 1), lda(r(1), 2), addI(r(0), r(2), r(1))})
}

// BenchmarkFigure3 is scenario three: result forwarded to the slave.
func BenchmarkFigure3(b *testing.B) {
	r := isa.IntReg
	scenarioBench(b, []isa.Instruction{lda(r(0), 1), lda(r(2), 2), addI(r(1), r(0), r(2))})
}

// BenchmarkFigure4 is scenario four: global destination.
func BenchmarkFigure4(b *testing.B) {
	r := isa.IntReg
	scenarioBench(b, []isa.Instruction{lda(r(0), 1), lda(r(2), 2), addI(isa.RegSP, r(0), r(2))})
}

// BenchmarkFigure5 is scenario five: operand forward plus global result.
func BenchmarkFigure5(b *testing.B) {
	r := isa.IntReg
	scenarioBench(b, []isa.Instruction{lda(r(1), 1), lda(r(0), 2), addI(isa.RegSP, r(1), r(0))})
}

// BenchmarkFigure6 runs the local scheduler on the Figure 6 graph and
// reports its static quality metrics.
func BenchmarkFigure6(b *testing.B) {
	var m partition.Metrics
	for i := 0; i < b.N; i++ {
		p := il.Figure6()
		res := partition.Local{}.Partition(p)
		m = partition.Measure(p, res)
	}
	b.ReportMetric(100*m.DualFraction(), "dual-%")
	b.ReportMetric(100*m.Imbalance(), "imbalance-%")
}

// BenchmarkCycleTimeCrossover reproduces the §4.2 cycle-time analysis for
// the paper's worst-case 25% slowdown.
func BenchmarkCycleTimeCrossover(b *testing.B) {
	var um, s35, s18 float64
	for i := 0; i < b.N; i++ {
		um = cycletime.CrossoverFeatureUm(1.25, 4, 8, 0.10, 0.50)
		s35 = cycletime.Process035().NetSpeedup(1.25, 4, 8)
		s18 = cycletime.Process018().NetSpeedup(1.25, 4, 8)
	}
	b.ReportMetric(um, "crossover-um")
	b.ReportMetric(s35, "speedup@0.35")
	b.ReportMetric(s18, "speedup@0.18")
}

// BenchmarkAblationMasterSelect compares master-cluster selection policies
// on the unscheduled doduc binary, where dual distribution is plentiful.
func BenchmarkAblationMasterSelect(b *testing.B) {
	opts := benchOpts()
	w := workload.ByName("doduc")
	mp, _, err := experiment.Compile(w, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []core.MasterPolicy{core.MasterMajority, core.MasterFirstSource, core.MasterAlternate} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := core.DualCluster4Way()
			cfg.MasterSelect = pol
			cfg.MaxCycles = benchInstrs * 100
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				stats, err = experiment.Simulate(mp, w, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(float64(stats.OperandForwards+stats.ResultForwards), "transfers")
		})
	}
}

// BenchmarkAblationBufferDepth sweeps the transfer-buffer depth on ora,
// whose long divide chains keep entries occupied.
func BenchmarkAblationBufferDepth(b *testing.B) {
	opts := benchOpts()
	w := workload.ByName("ora")
	mp, _, err := experiment.Compile(w, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			cfg := core.DualCluster4Way()
			cfg.OperandBuffer = depth
			cfg.ResultBuffer = depth
			cfg.MaxCycles = benchInstrs * 200
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				stats, err = experiment.Simulate(mp, w, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(float64(stats.Replays), "replays")
		})
	}
}

// BenchmarkAblationImbalanceWindow sweeps the local scheduler's
// compile-time imbalance constant.
func BenchmarkAblationImbalanceWindow(b *testing.B) {
	opts := benchOpts()
	for _, window := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			o := opts
			o.Window = window
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				w := workload.ByName("doduc")
				mp, _, err := experiment.Compile(w, partition.Local{Window: window}, o)
				if err != nil {
					b.Fatal(err)
				}
				stats, err = experiment.Simulate(mp, w, o.Dual, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(100*stats.DualFraction(), "dual-%")
		})
	}
}

// BenchmarkAblationPartitioners compares the partitioners on gcc1.
func BenchmarkAblationPartitioners(b *testing.B) {
	opts := benchOpts()
	for _, pt := range []partition.Partitioner{
		partition.Local{}, partition.Hash{}, partition.RoundRobin{}, partition.Affinity{},
	} {
		b.Run(pt.Name(), func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				w := workload.ByName("gcc1")
				mp, _, err := experiment.Compile(w, pt, opts)
				if err != nil {
					b.Fatal(err)
				}
				stats, err = experiment.Simulate(mp, w, opts.Dual, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(100*stats.DualFraction(), "dual-%")
		})
	}
}

// BenchmarkAblationGlobals compares designating SP/GP as global registers
// (the paper's choice) against making every live range local.
func BenchmarkAblationGlobals(b *testing.B) {
	opts := benchOpts()
	for _, globals := range []bool{true, false} {
		name := "sp-gp-global"
		if !globals {
			name = "all-local"
		}
		b.Run(name, func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				w := workload.ByName("compress")
				if !globals {
					for id := range w.Program.Values {
						w.Program.Values[id].GlobalCandidate = false
					}
				}
				mp, _, err := experiment.Compile(w, partition.Local{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				stats, err = experiment.Simulate(mp, w, opts.Dual, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(100*stats.DualFraction(), "dual-%")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (dynamic
// instructions per second) on the dual-cluster machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	opts := benchOpts()
	w := workload.ByName("gcc1")
	mp, _, err := experiment.Compile(w, partition.Local{}, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Simulate(mp, w, opts.Dual, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInstrs*b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkAblationUnifiedBuffer compares the paper's separate operand and
// result transfer buffers against one unified pool of the same total size
// (§2.1 separates them partly to reduce replay exceptions).
func BenchmarkAblationUnifiedBuffer(b *testing.B) {
	opts := benchOpts()
	w := workload.ByName("ora")
	mp, _, err := experiment.Compile(w, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, unified := range []bool{false, true} {
		name := "separate-8+8"
		if unified {
			name = "unified-16"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DualCluster4Way()
			cfg.OperandBuffer = 3
			cfg.ResultBuffer = 3
			cfg.UnifiedBuffer = unified
			cfg.MaxCycles = benchInstrs * 200
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				stats, err = experiment.Simulate(mp, w, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(float64(stats.Replays), "replays")
		})
	}
}

// BenchmarkAblationPredictor compares McFarling's combining predictor
// against its components on gcc1, the branchiest workload.
func BenchmarkAblationPredictor(b *testing.B) {
	opts := benchOpts()
	w := workload.ByName("gcc1")
	mp, _, err := experiment.Compile(w, partition.Local{}, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []bpred.Kind{bpred.Combining, bpred.BimodalOnly, bpred.GshareOnly} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := core.DualCluster4Way()
			cfg.Predictor.Kind = kind
			cfg.MaxCycles = benchInstrs * 100
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				stats, err = experiment.Simulate(mp, w, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
			b.ReportMetric(100*stats.MispredictRate(), "mispred-%")
		})
	}
}

// BenchmarkPostPassScheduling measures methodology step 6 — the post-pass
// list scheduler — on the dual-cluster machine.
func BenchmarkPostPassScheduling(b *testing.B) {
	for _, scheduled := range []bool{false, true} {
		name := "builder-order"
		if scheduled {
			name = "list-scheduled"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts()
			opts.PostSchedule = scheduled
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				w := workload.ByName("doduc")
				mp, _, err := experiment.Compile(w, partition.Local{}, opts)
				if err != nil {
					b.Fatal(err)
				}
				stats, err = experiment.Simulate(mp, w, opts.Dual, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Cycles), "cycles")
		})
	}
}
