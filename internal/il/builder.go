package il

import (
	"fmt"

	"multicluster/internal/isa"
)

// Builder assembles an IL program incrementally. It is the API the workload
// generators and the examples use to write programs by hand.
type Builder struct {
	prog   *Program
	names  map[string]int
	blocks map[string]*BlockBuilder
	order  []*BlockBuilder
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		prog:   &Program{Name: name},
		names:  make(map[string]int),
		blocks: make(map[string]*BlockBuilder),
	}
}

// Value creates (or returns, if the name exists) a live range of the given
// kind.
func (b *Builder) Value(name string, kind Kind) int {
	if id, ok := b.names[name]; ok {
		return id
	}
	id := len(b.prog.Values)
	b.prog.Values = append(b.prog.Values, Value{ID: id, Name: name, Kind: kind})
	b.names[name] = id
	return id
}

// GlobalValue creates a live range designated as a global-register
// candidate (e.g. the stack or global pointer).
func (b *Builder) GlobalValue(name string, kind Kind) int {
	id := b.Value(name, kind)
	b.prog.Values[id].GlobalCandidate = true
	return id
}

// Int is shorthand for Value(name, KindInt).
func (b *Builder) Int(name string) int { return b.Value(name, KindInt) }

// FP is shorthand for Value(name, KindFP).
func (b *Builder) FP(name string) int { return b.Value(name, KindFP) }

// Block creates (or returns) the named block with the given profile
// estimate. The first block created is the program entry.
func (b *Builder) Block(name string, estExec int64) *BlockBuilder {
	if bb, ok := b.blocks[name]; ok {
		bb.blk.EstExec = estExec
		return bb
	}
	blk := &Block{Name: name, EstExec: estExec}
	bb := &BlockBuilder{b: b, blk: blk}
	b.blocks[name] = bb
	b.order = append(b.order, bb)
	b.prog.Blocks = append(b.prog.Blocks, blk)
	if b.prog.Entry == "" {
		b.prog.Entry = name
	}
	return bb
}

// MemCount returns the number of memory operations added so far across all
// blocks in layout order. Because the code generator numbers (non-spill)
// memory operations in exactly that order, the value returned immediately
// before adding a load or store is that operation's eventual MemID —
// workload builders use it to attach address generators.
func (b *Builder) MemCount() int {
	n := 0
	for _, bb := range b.order {
		for i := range bb.blk.Instrs {
			if bb.blk.Instrs[i].Op.Class().IsMem() {
				n++
			}
		}
	}
	return n
}

// Finish validates and returns the program.
func (b *Builder) Finish() (*Program, error) {
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustFinish is Finish that panics on error, for tests and generators whose
// programs are constants.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(fmt.Sprintf("il: MustFinish: %v", err))
	}
	return p
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	b   *Builder
	blk *Block
}

// Name returns the block's name.
func (bb *BlockBuilder) Name() string { return bb.blk.Name }

// Op appends a three-operand instruction dst = op(src1, src2).
func (bb *BlockBuilder) Op(op isa.Op, dst, src1, src2 int) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: op, Dst: dst, Src1: src1, Src2: src2})
	return bb
}

// OpImm appends dst = op(src1, imm).
func (bb *BlockBuilder) OpImm(op isa.Op, dst, src1 int, imm int64) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: op, Dst: dst, Src1: src1, Src2: None, Imm: imm})
	return bb
}

// Const appends dst = imm (an LDA off the zero register).
func (bb *BlockBuilder) Const(dst int, imm int64) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.LDA, Dst: dst, Src1: None, Src2: None, Imm: imm})
	return bb
}

// Load appends dst = mem[base + off]. Use LDF for floating-point dst.
func (bb *BlockBuilder) Load(op isa.Op, dst, base int, off int64) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: op, Dst: dst, Src1: base, Src2: None, Imm: off})
	return bb
}

// Store appends mem[base + off] = data.
func (bb *BlockBuilder) Store(op isa.Op, base, data int, off int64) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: op, Dst: None, Src1: base, Src2: data, Imm: off})
	return bb
}

// CondBr terminates the block with a conditional branch on cond: taken goes
// to `taken`, fall-through to `fallthru`.
func (bb *BlockBuilder) CondBr(op isa.Op, cond int, taken, fallthru string) {
	if op != isa.BEQ && op != isa.BNE {
		panic("il: CondBr requires BEQ or BNE")
	}
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: op, Dst: None, Src1: cond, Src2: None, Target: taken})
	bb.blk.Succs = []string{fallthru, taken}
}

// Jump terminates the block with an unconditional branch.
func (bb *BlockBuilder) Jump(target string) {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.BR, Dst: None, Src1: None, Src2: None, Target: target})
	bb.blk.Succs = []string{target}
}

// FallTo declares a fall-through successor without a terminator instruction.
func (bb *BlockBuilder) FallTo(next string) {
	bb.blk.Succs = []string{next}
}

// Ret terminates the block with a subroutine return reading the given live
// range (conventionally the return-address value). Behaviour drivers choose
// the dynamic continuation.
func (bb *BlockBuilder) Ret(ra int) {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.RET, Dst: None, Src1: ra, Src2: None})
	bb.blk.Succs = nil
}

// Call terminates the block with a subroutine call to callee, writing the
// return address into ra.
func (bb *BlockBuilder) Call(ra int, callee string) {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.CALL, Dst: ra, Src1: None, Src2: None, Target: callee})
	bb.blk.Succs = []string{callee}
}

// RetTo terminates the block with a return whose possible dynamic
// continuations are declared explicitly (behaviour drivers choose among
// them).
func (bb *BlockBuilder) RetTo(ra int, succs ...string) {
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.RET, Dst: None, Src1: ra, Src2: None})
	bb.blk.Succs = succs
}

// Raw appends an arbitrary pre-built instruction. Intended for program
// transformers (e.g. loop unrolling) that clone instructions wholesale;
// hand-written programs should prefer the typed helpers above.
func (bb *BlockBuilder) Raw(in Instr) *BlockBuilder {
	bb.blk.Instrs = append(bb.blk.Instrs, in)
	return bb
}

// SetSuccs replaces the block's declared successors. Like Raw, this exists
// for program transformers; Finish still validates the result.
func (bb *BlockBuilder) SetSuccs(succs ...string) {
	bb.blk.Succs = append([]string(nil), succs...)
}
