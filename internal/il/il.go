// Package il defines the intermediate language of the static-scheduling
// toolchain. IL instructions correspond one-to-one to machine instructions
// but name live ranges rather than architectural registers (step 2 of the
// paper's code-generation methodology, §3.1). Live-range partitioning
// (internal/partition) assigns each live range to a cluster, register
// allocation (internal/regalloc) maps live ranges to architectural
// registers, and code generation (internal/codegen) lowers the result to an
// isa.Program.
package il

import (
	"fmt"

	"multicluster/internal/isa"
)

// None marks an absent live-range operand.
const None = -1

// Kind is the value kind of a live range, determining which register file
// it is allocated from.
type Kind uint8

const (
	KindInt Kind = iota
	KindFP
)

func (k Kind) String() string {
	if k == KindFP {
		return "fp"
	}
	return "int"
}

// Value is a live range: the unit of cluster partitioning and register
// allocation. GlobalCandidate marks live ranges designated as candidates
// for global registers (the paper designates the stack- and global-pointer
// live ranges, §3.1 step 3).
type Value struct {
	ID              int
	Name            string
	Kind            Kind
	GlobalCandidate bool
}

// Instr is an IL instruction. Dst, Src1, Src2 are live-range IDs or None.
// Target names the taken-successor block for control flow.
type Instr struct {
	Op     isa.Op
	Dst    int
	Src1   int
	Src2   int
	Imm    int64
	Target string

	// spillPlus1 is slot+1 for allocator-inserted spill loads/stores and 0
	// otherwise, keeping the zero value meaningful.
	spillPlus1 int
}

// MarkSpill tags the instruction as allocator-inserted spill code accessing
// the given spill slot.
func (in *Instr) MarkSpill(slot int) { in.spillPlus1 = slot + 1 }

// SpillInfo returns the spill slot and true when the instruction is
// allocator-inserted spill code.
func (in *Instr) SpillInfo() (slot int, ok bool) { return in.spillPlus1 - 1, in.spillPlus1 > 0 }

// Uses returns the live ranges read by the instruction.
func (in *Instr) Uses() []int {
	var u []int
	if in.Src1 != None {
		u = append(u, in.Src1)
	}
	if in.Src2 != None {
		u = append(u, in.Src2)
	}
	return u
}

// Def returns the live range written by the instruction, or None.
func (in *Instr) Def() int { return in.Dst }

// Operands returns every live range named by the instruction (sources and
// destination). The paper's distribution rules depend on exactly this set.
func (in *Instr) Operands() []int {
	ops := in.Uses()
	if in.Dst != None {
		ops = append(ops, in.Dst)
	}
	return ops
}

// Block is a basic block of IL instructions. EstExec is the profile-derived
// estimate of how many times the first instruction of the block executes;
// the local scheduler sorts blocks by it (§3.5).
type Block struct {
	Name    string
	Instrs  []Instr
	EstExec int64

	// Succs lists successor block names: for a block ending in a
	// conditional branch, Succs[0] is the fall-through successor and
	// Succs[1] the taken target; for an unconditional branch, Succs[0] is
	// the target; for a return, Succs is empty.
	Succs []string
}

// Terminator returns the final instruction if it is control flow, else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if last.Op.IsControl() {
		return last
	}
	return nil
}

// Program is an IL program: a named CFG over basic blocks plus the live
// ranges its instructions name.
type Program struct {
	Name   string
	Values []Value
	Blocks []*Block
	Entry  string

	byName map[string]*Block
}

// Block returns the named block, or nil.
func (p *Program) Block(name string) *Block {
	if p.byName == nil {
		p.byName = make(map[string]*Block, len(p.Blocks))
		for _, b := range p.Blocks {
			p.byName[b.Name] = b
		}
	}
	return p.byName[name]
}

// Value returns the live range with the given ID.
func (p *Program) Value(id int) *Value { return &p.Values[id] }

// NumValues returns the number of live ranges in the program.
func (p *Program) NumValues() int { return len(p.Values) }

// Validate checks the structural invariants the rest of the toolchain
// relies on: operand IDs in range with kinds consistent with opcodes,
// declared successors exist, terminator targets appear among successors,
// and the entry block exists.
func (p *Program) Validate() error {
	if p.Block(p.Entry) == nil {
		return fmt.Errorf("il: program %s: entry block %q not found", p.Name, p.Entry)
	}
	for i, v := range p.Values {
		if v.ID != i {
			return fmt.Errorf("il: program %s: value %q has ID %d at index %d", p.Name, v.Name, v.ID, i)
		}
	}
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if p.Block(s) == nil {
				return fmt.Errorf("il: %s.%s: successor %q not found", p.Name, b.Name, s)
			}
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			for _, id := range in.Operands() {
				if id < 0 || id >= len(p.Values) {
					return fmt.Errorf("il: %s.%s[%d]: live range %d out of range", p.Name, b.Name, ii, id)
				}
			}
			if in.Op.IsControl() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("il: %s.%s[%d]: control flow %s not at block end", p.Name, b.Name, ii, in.Op)
			}
			if err := p.checkKinds(b, ii, in); err != nil {
				return err
			}
		}
		if t := b.Terminator(); t != nil && t.Target != "" {
			found := false
			for _, s := range b.Succs {
				if s == t.Target {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("il: %s.%s: branch target %q not among successors %v", p.Name, b.Name, t.Target, b.Succs)
			}
		}
		if t := b.Terminator(); t != nil {
			switch t.Op {
			case isa.BEQ, isa.BNE:
				if len(b.Succs) != 2 {
					return fmt.Errorf("il: %s.%s: conditional branch needs 2 successors, has %d", p.Name, b.Name, len(b.Succs))
				}
			case isa.BR, isa.CALL:
				if len(b.Succs) != 1 {
					return fmt.Errorf("il: %s.%s: %s needs 1 successor, has %d", p.Name, b.Name, t.Op, len(b.Succs))
				}
			}
		}
	}
	return nil
}

func (p *Program) checkKinds(b *Block, ii int, in *Instr) error {
	wantFP := func(id int, fp bool, role string) error {
		if id == None {
			return nil
		}
		if (p.Values[id].Kind == KindFP) != fp {
			return fmt.Errorf("il: %s.%s[%d] (%s): %s %q has kind %s", p.Name, b.Name, ii, in.Op, role, p.Values[id].Name, p.Values[id].Kind)
		}
		return nil
	}
	cls := in.Op.Class()
	switch {
	case cls == isa.ClassFPDiv || cls == isa.ClassFPOther:
		// Converts cross the files; other FP ops are FP throughout.
		switch in.Op {
		case isa.CVTIF:
			if err := wantFP(in.Dst, true, "dst"); err != nil {
				return err
			}
			return wantFP(in.Src1, false, "src1")
		case isa.CVTFI:
			if err := wantFP(in.Dst, false, "dst"); err != nil {
				return err
			}
			return wantFP(in.Src1, true, "src1")
		}
		for _, id := range in.Operands() {
			if err := wantFP(id, true, "operand"); err != nil {
				return err
			}
		}
	case in.Op == isa.LDF:
		if err := wantFP(in.Dst, true, "dst"); err != nil {
			return err
		}
		return wantFP(in.Src1, false, "address")
	case in.Op == isa.STF:
		if err := wantFP(in.Src2, true, "data"); err != nil {
			return err
		}
		return wantFP(in.Src1, false, "address")
	case cls == isa.ClassIntMul || cls == isa.ClassIntOther || in.Op == isa.LDW || in.Op == isa.STW:
		for _, id := range in.Operands() {
			if err := wantFP(id, false, "operand"); err != nil {
				return err
			}
		}
	}
	return nil
}

// StaticInstrCount returns the total number of IL instructions.
func (p *Program) StaticInstrCount() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func (p *Program) String() string {
	s := fmt.Sprintf("program %s (entry %s, %d values, %d blocks)\n", p.Name, p.Entry, len(p.Values), len(p.Blocks))
	for _, b := range p.Blocks {
		s += fmt.Sprintf("%s (est %d, succs %v):\n", b.Name, b.EstExec, b.Succs)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			s += fmt.Sprintf("  %s", in.Op)
			if in.Dst != None {
				s += " " + p.Values[in.Dst].Name
			}
			for _, u := range in.Uses() {
				s += " " + p.Values[u].Name
			}
			if in.Target != "" {
				s += " ->" + in.Target
			}
			s += "\n"
		}
	}
	return s
}
