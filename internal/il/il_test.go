package il

import (
	"strings"
	"testing"

	"multicluster/internal/isa"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	y := b.Int("y")
	z := b.Int("z")
	if x == y || y == z {
		t.Fatal("distinct names must get distinct live ranges")
	}
	if again := b.Int("x"); again != x {
		t.Fatal("same name must return the same live range")
	}
	sp := b.GlobalValue("SP", KindInt)
	bb := b.Block("entry", 1)
	bb.Const(x, 1)
	bb.Const(y, 2)
	bb.Op(isa.ADD, z, x, y)
	bb.Store(isa.STW, sp, z, 0)
	bb.Ret(z)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "entry" {
		t.Errorf("entry = %q, want first block", p.Entry)
	}
	if !p.Value(sp).GlobalCandidate {
		t.Error("SP must be a global candidate")
	}
	if p.Value(x).GlobalCandidate {
		t.Error("x must not be a global candidate")
	}
	if n := p.StaticInstrCount(); n != 5 {
		t.Errorf("StaticInstrCount = %d, want 5", n)
	}
}

func TestValidateCatchesBadSuccessor(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	bb := b.Block("entry", 1)
	bb.Const(x, 1)
	bb.Jump("nowhere")
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected missing-successor error, got %v", err)
	}
}

func TestValidateCatchesMidBlockControl(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	bb := b.Block("entry", 1)
	bb.Jump("entry")
	bb.blk.Instrs = append(bb.blk.Instrs, Instr{Op: isa.ADD, Dst: x, Src1: x, Src2: x})
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "not at block end") {
		t.Fatalf("expected mid-block control error, got %v", err)
	}
}

func TestValidateCatchesKindMismatch(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	f := b.FP("f")
	bb := b.Block("entry", 1)
	bb.Op(isa.FADD, x, f, f) // integer dst for FP op
	bb.Ret(x)
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("expected kind error, got %v", err)
	}
}

func TestValidateAcceptsConverts(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	f := b.FP("f")
	g := b.FP("g")
	bb := b.Block("entry", 1)
	bb.Const(x, 3)
	bb.OpImm(isa.CVTIF, f, x, 0)
	bb.Op(isa.FMUL, g, f, f)
	bb.OpImm(isa.CVTFI, x, g, 0)
	bb.Ret(x)
	if _, err := b.Finish(); err != nil {
		t.Fatalf("converts rejected: %v", err)
	}
}

func TestCondBrSuccessorOrder(t *testing.T) {
	b := NewBuilder("p")
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Const(x, 0)
	e.CondBr(isa.BNE, x, "taken", "fall")
	tb := b.Block("taken", 1)
	tb.Ret(x)
	fb := b.Block("fall", 1)
	fb.Ret(x)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	blk := p.Block("entry")
	if blk.Succs[0] != "fall" || blk.Succs[1] != "taken" {
		t.Errorf("Succs = %v, want [fall taken]", blk.Succs)
	}
	if term := blk.Terminator(); term == nil || term.Target != "taken" {
		t.Errorf("terminator target = %v", term)
	}
}

func TestOperandsAndUses(t *testing.T) {
	in := Instr{Op: isa.ADD, Dst: 3, Src1: 1, Src2: 2}
	if got := in.Uses(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Uses = %v", got)
	}
	if got := in.Operands(); len(got) != 3 || got[2] != 3 {
		t.Errorf("Operands = %v", got)
	}
	st := Instr{Op: isa.STW, Dst: None, Src1: 5, Src2: 6}
	if got := st.Operands(); len(got) != 2 {
		t.Errorf("store Operands = %v, want 2 sources only", got)
	}
}

func TestFigure6Structure(t *testing.T) {
	p := Figure6()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Five blocks with the paper's execution estimates.
	wantEst := map[string]int64{"bb1": 20, "bb2": 10, "bb3": 10, "bb4": 100, "bb5": 20}
	if len(p.Blocks) != len(wantEst) {
		t.Fatalf("blocks = %d, want %d", len(p.Blocks), len(wantEst))
	}
	for name, est := range wantEst {
		blk := p.Block(name)
		if blk == nil {
			t.Fatalf("missing block %s", name)
		}
		if blk.EstExec != est {
			t.Errorf("%s estimate = %d, want %d", name, blk.EstExec, est)
		}
	}
	// S is the only global candidate.
	var globals []string
	for _, v := range p.Values {
		if v.GlobalCandidate {
			globals = append(globals, v.Name)
		}
	}
	if len(globals) != 1 || globals[0] != "S" {
		t.Errorf("global candidates = %v, want [S]", globals)
	}
	// bb4 loops to itself and exits to bb5.
	bb4 := p.Block("bb4")
	if len(bb4.Succs) != 2 || bb4.Succs[1] != "bb4" || bb4.Succs[0] != "bb5" {
		t.Errorf("bb4 succs = %v, want [bb5 bb4]", bb4.Succs)
	}
}

func TestProgramStringMentionsValues(t *testing.T) {
	p := Figure6()
	s := p.String()
	for _, name := range []string{"bb4", "G", "H", "S"} {
		if !strings.Contains(s, name) {
			t.Errorf("String() missing %q", name)
		}
	}
}

func TestCallAndRetToValidate(t *testing.T) {
	b := NewBuilder("callret")
	ra := b.Int("ra")
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Const(x, 1)
	e.Call(ra, "fn")
	fn := b.Block("fn", 1)
	fn.OpImm(isa.ADD, x, x, 1)
	fn.RetTo(ra, "after")
	after := b.Block("after", 1)
	after.Ret(x)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	entry := p.Block("entry")
	if term := entry.Terminator(); term == nil || term.Op != isa.CALL || term.Dst != ra {
		t.Errorf("call terminator = %+v", entry.Terminator())
	}
	if succs := p.Block("fn").Succs; len(succs) != 1 || succs[0] != "after" {
		t.Errorf("RetTo successors = %v", succs)
	}
}

func TestCallToMissingBlockRejected(t *testing.T) {
	b := NewBuilder("badcall")
	ra := b.Int("ra")
	e := b.Block("entry", 1)
	e.Call(ra, "nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("call to missing block accepted")
	}
}

func TestRawAndSetSuccs(t *testing.T) {
	b := NewBuilder("raw")
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Raw(Instr{Op: isa.LDA, Dst: x, Src1: None, Src2: None, Imm: 5})
	e.Raw(Instr{Op: isa.BR, Dst: None, Src1: None, Src2: None, Target: "exit"})
	e.SetSuccs("exit")
	ex := b.Block("exit", 1)
	ex.Ret(x)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Block("entry").Succs; len(got) != 1 || got[0] != "exit" {
		t.Errorf("SetSuccs result %v", got)
	}
}

func TestSpillMarking(t *testing.T) {
	var in Instr
	if _, ok := in.SpillInfo(); ok {
		t.Fatal("zero-value instruction must not be spill code")
	}
	in.MarkSpill(0)
	if slot, ok := in.SpillInfo(); !ok || slot != 0 {
		t.Fatalf("SpillInfo = %d,%v after MarkSpill(0)", slot, ok)
	}
	in.MarkSpill(7)
	if slot, _ := in.SpillInfo(); slot != 7 {
		t.Fatalf("slot = %d, want 7", slot)
	}
}

func TestMemCountOrdering(t *testing.T) {
	b := NewBuilder("mc")
	sp := b.GlobalValue("SP", KindInt)
	x := b.Int("x")
	e := b.Block("entry", 1)
	if got := b.MemCount(); got != 0 {
		t.Fatalf("MemCount before any op = %d", got)
	}
	e.Load(isa.LDW, x, sp, 0)
	if got := b.MemCount(); got != 1 {
		t.Fatalf("MemCount after one load = %d", got)
	}
	second := b.Block("second", 1)
	second.Store(isa.STW, sp, x, 8)
	if got := b.MemCount(); got != 2 {
		t.Fatalf("MemCount across blocks = %d", got)
	}
	e.FallTo("second")
	second.Ret(x)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}
