package il

import "multicluster/internal/isa"

// Figure6 returns the example control-flow graph of Figure 6 of the paper,
// used by the local-scheduler tests and the scheduling example. The numbers
// in parentheses in the figure are the dynamic-execution estimates of each
// basic block; live range S (the stack pointer) is a global-register
// candidate while all other live ranges are local-register candidates.
//
// The figure's three-address lines map one-to-one onto IL instructions,
// except "G = [S] + E" (line 5), whose register-indexed address is split
// into an address add and a load — the Alpha-style ISA has no indexed
// loads. The integer divide of line 10 is rendered with SRL, which has the
// same operand structure (the partitioner only observes operands).
func Figure6() *Program {
	b := NewBuilder("figure6")

	S := b.GlobalValue("S", KindInt)
	C := b.Int("C")
	E := b.Int("E")
	G := b.Int("G")
	H := b.Int("H")
	A := b.Int("A")
	B := b.Int("B")
	D := b.Int("D")
	t5 := b.Int("t5") // address temp for line 5

	bb1 := b.Block("bb1", 20)
	bb1.Const(C, 0)  // 1: C = 0
	bb1.Const(E, 16) // 2: E = 16
	bb1.CondBr(isa.BNE, C, "bb3", "bb2")

	bb2 := b.Block("bb2", 10)
	bb2.Load(isa.LDW, G, S, 8) // 3: G = [S] + 8
	bb2.Load(isa.LDW, H, S, 4) // 4: H = [S] + 4
	bb2.Jump("bb4")

	bb3 := b.Block("bb3", 10)
	bb3.Op(isa.ADD, t5, S, E)   // 5a: t5 = S + E
	bb3.Load(isa.LDW, G, t5, 0) // 5b: G = [t5]
	bb3.Load(isa.LDW, H, S, 12) // 6: H = [S] + 12
	bb3.Op(isa.ADD, S, H, E)    // 7: S = H + E
	bb3.FallTo("bb4")

	bb4 := b.Block("bb4", 100)
	bb4.OpImm(isa.ADD, A, G, 10) // 8:  A = G + 10
	bb4.Op(isa.MUL, B, A, A)     // 9:  B = A x A
	bb4.Op(isa.SRL, G, B, H)     // 10: G = B / H
	bb4.Op(isa.ADD, C, G, C)     // 11: C = G + C
	bb4.CondBr(isa.BNE, C, "bb4", "bb5")

	bb5 := b.Block("bb5", 20)
	bb5.Op(isa.ADD, D, C, G) // 12: D = C + G
	bb5.Ret(D)

	return b.MustFinish()
}
