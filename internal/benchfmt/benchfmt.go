// Package benchfmt defines the JSON schema shared by the repo's committed
// benchmark artifacts — BENCH_core.json / BENCH_baseline.json (simulator
// microbenchmarks, written by scripts/benchdiff), BENCH_serve.json /
// BENCH_serve_baseline.json (HTTP service load runs, written by
// cmd/mcbench and gated by scripts/servediff), and BENCH_sweep.json /
// BENCH_sweep_baseline.json (sweep-cell throughput, written and gated by
// scripts/sweepdiff). One schema means one set of tooling can read every
// trajectory file: a File is a command line plus a flat list of named
// Results, where core results populate the per-instruction fields, serve
// results the throughput and latency-percentile fields, and sweep results
// the cells-per-second field.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Result is one benchmark's measurement. Core microbenchmarks fill the
// ns/allocs-per-op family (NsPerInstr etc. derived from the instrs/op
// metric); service load runs fill the RPS/percentile/shed family. Both
// kinds share Name, which is the comparison key across files.
type Result struct {
	Name string `json:"name"`

	// Core microbenchmark fields (BENCH_core.json).
	NsPerOp        float64 `json:"ns_per_op,omitempty"`
	BytesPerOp     float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
	InstrsPerOp    float64 `json:"instrs_per_op,omitempty"`
	NsPerInstr     float64 `json:"ns_per_instr,omitempty"`
	AllocsPerInstr float64 `json:"allocs_per_instr,omitempty"`
	MIPS           float64 `json:"mips,omitempty"`
	// Noise is the run's own (max-min)/min spread of ns/op across the
	// -count samples: a live measurement of machine-load jitter that
	// widens the ns/instr gate.
	Noise float64 `json:"noise,omitempty"`

	// Sweep-cell throughput (BENCH_sweep.json): completed grid cells per
	// second, the headline number of the batched-simulation path.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`

	// Service load fields (BENCH_serve.json), one Result per traffic mix
	// plus an overall aggregate. Rates are fractions of issued requests.
	Requests  int64   `json:"requests,omitempty"`
	RPS       float64 `json:"rps,omitempty"`
	P50Ms     float64 `json:"p50_ms,omitempty"`
	P90Ms     float64 `json:"p90_ms,omitempty"`
	P99Ms     float64 `json:"p99_ms,omitempty"`
	ShedRate  float64 `json:"shed_rate,omitempty"`
	ErrorRate float64 `json:"error_rate,omitempty"`
	// DropRate counts arrivals the open-loop client had to drop because
	// every in-flight slot was busy — client-side saturation, distinct
	// from the server shedding with 429.
	DropRate float64 `json:"drop_rate,omitempty"`
}

// ServerCounters is the server's own view of a load run, scraped from
// GET /metrics after the client finished. The smoke tests assert these
// equal the client-side counts, so the two sides can never silently
// disagree about what the run did.
type ServerCounters struct {
	Submitted int64 `json:"submitted"`
	Shed      int64 `json:"shed"`
	// JobTotalP99Ms is the p99 of sweep_job_total_seconds — the server's
	// submission-to-terminal job latency, for eyeballing against the
	// client-observed percentiles.
	JobTotalP99Ms float64 `json:"job_total_p99_ms,omitempty"`
}

// ServeMeta records how a load run was configured, so a trajectory file
// is self-describing and a gate can refuse to compare incomparable runs.
type ServeMeta struct {
	Target      string  `json:"target"`
	Seed        int64   `json:"seed"`
	RatePerSec  float64 `json:"rate_per_sec"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	// Partial marks a run interrupted before its configured duration
	// (SIGINT); the numbers are real but cover a shorter window, so
	// servediff refuses to gate against them unless told otherwise.
	Partial bool            `json:"partial,omitempty"`
	Server  *ServerCounters `json:"server,omitempty"`
}

// File is the schema of every BENCH_*.json artifact.
type File struct {
	Command    string     `json:"command"`
	Serve      *ServeMeta `json:"serve,omitempty"`
	Benchmarks []Result   `json:"benchmarks"`
}

// Read parses a benchmark artifact from path. A missing file surfaces as
// an os.IsNotExist error so callers can treat "no baseline yet" as skip.
func Read(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return f, nil
}

// Write renders the file as indented JSON with a trailing newline.
func (f File) Write(path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
