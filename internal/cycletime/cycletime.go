// Package cycletime models the processor cycle time as a function of issue
// width and process feature size, in the style of Palacharla, Jouppi and
// Smith ("Complexity-Effective Superscalar Processors", ISCA 1997), which
// §4.2 of the multicluster paper uses to convert cycle-count ratios into
// run-time ratios.
//
// The model splits the worst-case critical path (window wakeup + select /
// rename / bypass) into a width-independent gate-delay term that shrinks
// linearly with the feature size, and a wire-delay term that grows
// quadratically with issue width and shrinks much more slowly — wire delay
// becomes relatively more expensive as features shrink. The coefficients
// are calibrated to the two anchor points the multicluster paper cites:
//
//   - 0.35 µm: 4-issue 1248 ps → 8-issue 1484 ps (+18%)
//   - 0.18 µm: 4-issue → 8-issue worst-case path +82%
package cycletime

import "math"

// CycleModel is the critical-path delay model at one feature size.
type CycleModel struct {
	// FeatureUm is the process feature size in microns.
	FeatureUm float64
	// GatePs is the width-independent gate-delay term (picoseconds).
	GatePs float64
	// WirePs is the width-quadratic wire-delay coefficient (picoseconds).
	WirePs float64
}

// Calibration constants derived from the two anchors (see package comment).
const (
	anchorUm     = 0.35
	anchorGatePs = 1173.12 // A such that A + 16·B = 1248 with A/B = 250.67
	anchorWirePs = 4.68
	wireExponent = -1.6664 // ln(14.182/4.68) / ln(0.18/0.35)
	smallUm      = 0.18
	smallWirePs  = 14.182 // (A·18/35) / 42.537
)

// Process035 returns the 0.35 µm model of the paper's first anchor.
func Process035() CycleModel { return At(anchorUm) }

// Process018 returns the 0.18 µm model of the paper's second anchor.
func Process018() CycleModel { return At(smallUm) }

// At returns the model for an arbitrary feature size (microns): gate delay
// scales linearly with feature size, wire delay follows a power law fitted
// through the two anchors.
func At(um float64) CycleModel {
	return CycleModel{
		FeatureUm: um,
		GatePs:    anchorGatePs * um / anchorUm,
		WirePs:    anchorWirePs * math.Pow(um/anchorUm, wireExponent),
	}
}

// CycleTimePs returns the worst-case critical-path delay — the minimum
// clock period — for an issueWidth-wide machine, in picoseconds.
func (m CycleModel) CycleTimePs(issueWidth int) float64 {
	w := float64(issueWidth)
	return m.GatePs + m.WirePs*w*w
}

// ClockRatio returns T(narrow)/T(wide): how much faster the narrow machine
// can be clocked. Values below one favour the narrow (clustered) machine.
func (m CycleModel) ClockRatio(narrow, wide int) float64 {
	return m.CycleTimePs(narrow) / m.CycleTimePs(wide)
}

// WidthIncrease returns the fractional critical-path growth from a
// narrow-issue to a wide-issue machine at this feature size (0.18 ⇒ +18%).
func (m CycleModel) WidthIncrease(narrow, wide int) float64 {
	return m.CycleTimePs(wide)/m.CycleTimePs(narrow) - 1
}

// NetSpeedup combines a simulated cycle-count ratio with the clock-period
// ratio: the run-time speedup of the dual-cluster machine (per-cluster
// width `narrow`) over the single-cluster machine (width `wide`). Values
// above one mean the multicluster wins.
//
// cycleRatio is Ndual/Nsingle, the relative increase in clock cycles the
// simulation measured (e.g. 1.25 for a 25% slowdown).
func (m CycleModel) NetSpeedup(cycleRatio float64, narrow, wide int) float64 {
	// Run time is cycles × clock period on each machine:
	// (Nsingle·T(wide)) / (Ndual·T(narrow)) = ClockRatio(wide,narrow)/cycleRatio.
	return m.ClockRatio(wide, narrow) / cycleRatio
}

// RequiredClockReduction returns the fractional clock-period reduction the
// partitioned machine needs to break even on a given cycle-count slowdown:
// the paper's "25% more cycles needs a 20% smaller clock period"
// (1 − 1/1.25 = 0.2).
func RequiredClockReduction(cycleRatio float64) float64 {
	return 1 - 1/cycleRatio
}

// CrossoverFeatureUm finds the feature size below which the dual-cluster
// machine wins for a given cycle-count ratio, by bisection over the model.
// It returns 0 when no crossover exists within (minUm, maxUm).
func CrossoverFeatureUm(cycleRatio float64, narrow, wide int, minUm, maxUm float64) float64 {
	wins := func(um float64) bool {
		return At(um).NetSpeedup(cycleRatio, narrow, wide) >= 1
	}
	if !wins(minUm) {
		return 0
	}
	if wins(maxUm) {
		return maxUm
	}
	lo, hi := minUm, maxUm // wins at lo, loses at hi
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if wins(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
