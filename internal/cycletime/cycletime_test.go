package cycletime

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestAnchor035(t *testing.T) {
	m := Process035()
	if got := m.CycleTimePs(4); !approx(got, 1248, 1) {
		t.Errorf("4-issue @0.35µm = %.1f ps, want 1248", got)
	}
	if got := m.WidthIncrease(4, 8); !approx(got, 0.18, 0.005) {
		t.Errorf("4→8 increase @0.35µm = %.3f, want 0.18", got)
	}
}

func TestAnchor018(t *testing.T) {
	m := Process018()
	if got := m.WidthIncrease(4, 8); !approx(got, 0.82, 0.01) {
		t.Errorf("4→8 increase @0.18µm = %.3f, want 0.82", got)
	}
	// Gate delay shrinks linearly with feature size.
	if got := m.GatePs / Process035().GatePs; !approx(got, 0.18/0.35, 0.001) {
		t.Errorf("gate scaling = %.3f, want %.3f", got, 0.18/0.35)
	}
}

func TestWireShareGrowsAsFeaturesShrink(t *testing.T) {
	prev := -1.0
	for _, um := range []float64{0.35, 0.25, 0.18, 0.13} {
		m := At(um)
		share := m.WirePs * 64 / m.CycleTimePs(8)
		if share <= prev {
			t.Errorf("wire share at %.2fµm = %.3f did not grow (prev %.3f)", um, share, prev)
		}
		prev = share
	}
}

func TestPaperBreakEvenAnalysis(t *testing.T) {
	// §4.2: a worst-case 25% cycle slowdown needs a 20% smaller clock.
	if got := RequiredClockReduction(1.25); !approx(got, 0.20, 1e-9) {
		t.Errorf("required reduction for 1.25 = %.3f, want 0.20", got)
	}
	// At 0.35µm the 4-issue clock is only 18% shorter — not enough: the
	// net speedup for a 25% slowdown is below one.
	if s := Process035().NetSpeedup(1.25, 4, 8); s >= 1 {
		t.Errorf("net speedup @0.35µm for 25%% slowdown = %.3f, want < 1", s)
	}
	// At 0.18µm the 45% shorter clock (1/1.82) more than compensates.
	if s := Process018().NetSpeedup(1.25, 4, 8); s <= 1 {
		t.Errorf("net speedup @0.18µm for 25%% slowdown = %.3f, want > 1", s)
	}
}

func TestNetSpeedupIdentity(t *testing.T) {
	// With no cycle overhead, the net speedup is exactly the clock gain.
	m := Process018()
	want := m.CycleTimePs(8) / m.CycleTimePs(4)
	if got := m.NetSpeedup(1.0, 4, 8); !approx(got, want, 1e-9) {
		t.Errorf("NetSpeedup(1.0) = %.4f, want %.4f", got, want)
	}
}

func TestCrossoverBetweenAnchors(t *testing.T) {
	// For a 25% slowdown, the crossover feature size must lie strictly
	// between the two anchor processes.
	um := CrossoverFeatureUm(1.25, 4, 8, 0.10, 0.50)
	if um <= 0.18 || um >= 0.35 {
		t.Errorf("crossover at %.3fµm, want within (0.18, 0.35)", um)
	}
	// Exactly at the crossover the net speedup is ≈ 1.
	if s := At(um).NetSpeedup(1.25, 4, 8); !approx(s, 1, 1e-6) {
		t.Errorf("net speedup at crossover = %.6f, want 1", s)
	}
}

func TestCrossoverDegenerateCases(t *testing.T) {
	// A slowdown beyond the asymptotic clock gain (T8/T4 → 4 as wire delay
	// dominates) never wins at any feature size.
	if um := CrossoverFeatureUm(4.5, 4, 8, 0.10, 0.50); um != 0 {
		t.Errorf("crossover for 4.5× slowdown = %.3f, want 0 (never wins)", um)
	}
	// No slowdown at all wins everywhere in range.
	if um := CrossoverFeatureUm(1.0, 4, 8, 0.10, 0.50); um != 0.50 {
		t.Errorf("crossover for no slowdown = %.3f, want 0.50 (always wins)", um)
	}
}

func TestMonotonicInWidth(t *testing.T) {
	m := Process018()
	prev := 0.0
	for w := 2; w <= 16; w *= 2 {
		ct := m.CycleTimePs(w)
		if ct <= prev {
			t.Errorf("cycle time not monotone in width: %d-issue = %.1f", w, ct)
		}
		prev = ct
	}
}
