// Package codegen lowers a register-allocated IL program to machine code
// (step 6 of the paper's methodology): live ranges are replaced by their
// architectural registers, spill code keeps its statically-known slot
// addresses, branch targets are resolved to instruction indices, and every
// memory operation and conditional branch receives a stable static ID so
// behaviour drivers can attach address and outcome streams.
//
// MemID stability across binaries: spill rewriting preserves the relative
// order of the original memory operations, and original operations are
// numbered before spill operations, so the same workload driver produces
// identical memory behaviour for the native and rescheduled binaries.
package codegen

import (
	"fmt"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/regalloc"
)

// Lower translates an allocated program to machine code. Block layout
// follows the IL block order; every fall-through successor (explicit or the
// not-taken side of a conditional branch) must be the next block in layout,
// which the builders guarantee.
func Lower(alloc *regalloc.Result) (*isa.Program, error) {
	p := alloc.Prog
	reg := func(id int) isa.Reg {
		if id == il.None {
			return isa.RegNone
		}
		return alloc.RegOf[id]
	}

	// First pass: block start indices.
	start := make(map[string]int, len(p.Blocks))
	idx := 0
	for _, b := range p.Blocks {
		start[b.Name] = idx
		idx += len(b.Instrs)
	}

	mp := &isa.Program{Instrs: make([]isa.Instruction, 0, idx)}
	nextOriginalMem := 0
	var spillMems []int // indices of spill memory ops, numbered afterwards
	brID := 0

	for bi, b := range p.Blocks {
		mp.Blocks = append(mp.Blocks, isa.BlockInfo{Name: b.Name, Start: len(mp.Instrs)})
		if err := checkLayout(p, bi, b); err != nil {
			return nil, err
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			m := isa.Instruction{Op: in.Op, Imm: in.Imm, MemID: -1, BrID: -1}
			switch in.Op.Class() {
			case isa.ClassLoad:
				m.Dst = reg(in.Dst)
				m.Src1 = reg(in.Src1)
				if slot, ok := in.SpillInfo(); ok {
					m.MarkSpill(slot)
					m.Imm = int64(isa.SpillAddr(slot))
					spillMems = append(spillMems, len(mp.Instrs))
				} else {
					m.MemID = nextOriginalMem
					nextOriginalMem++
				}
			case isa.ClassStore:
				m.Src1 = reg(in.Src1)
				m.Src2 = reg(in.Src2)
				if slot, ok := in.SpillInfo(); ok {
					m.MarkSpill(slot)
					m.Imm = int64(isa.SpillAddr(slot))
					spillMems = append(spillMems, len(mp.Instrs))
				} else {
					m.MemID = nextOriginalMem
					nextOriginalMem++
				}
			case isa.ClassControl:
				switch in.Op {
				case isa.BEQ, isa.BNE:
					m.Src1 = reg(in.Src1)
					m.Target = start[in.Target]
					m.BrID = brID
					brID++
				case isa.BR:
					m.Target = start[in.Target]
				case isa.CALL:
					m.Dst = reg(in.Dst)
					m.Target = start[in.Target]
				case isa.JMP, isa.RET:
					m.Src1 = reg(in.Src1)
				}
			default:
				m.Dst = reg(in.Dst)
				m.Src1 = reg(in.Src1)
				m.Src2 = reg(in.Src2)
			}
			mp.Instrs = append(mp.Instrs, m)
		}
		mp.Blocks[len(mp.Blocks)-1].End = len(mp.Instrs)
	}

	// Spill memory operations are numbered after the originals so original
	// MemIDs are identical across differently-allocated binaries.
	for _, i := range spillMems {
		mp.Instrs[i].MemID = nextOriginalMem
		nextOriginalMem++
	}
	mp.NumMemOps = nextOriginalMem
	mp.NumBranches = brID

	if err := mp.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: lowered program invalid: %w", err)
	}
	return mp, nil
}

// checkLayout verifies that fall-through successors are adjacent in layout.
func checkLayout(p *il.Program, bi int, b *il.Block) error {
	var fallthru string
	if t := b.Terminator(); t == nil {
		if len(b.Succs) == 1 {
			fallthru = b.Succs[0]
		} else if len(b.Succs) > 1 {
			return fmt.Errorf("codegen: block %s has %d successors but no terminator", b.Name, len(b.Succs))
		}
	} else if t.Op.IsCondBranch() {
		fallthru = b.Succs[0]
	}
	if fallthru == "" {
		return nil
	}
	if bi+1 >= len(p.Blocks) || p.Blocks[bi+1].Name != fallthru {
		return fmt.Errorf("codegen: block %s falls through to %s, which is not next in layout", b.Name, fallthru)
	}
	return nil
}

// OriginalMemOps returns the number of memory operations a behaviour driver
// must supply addresses for (spill operations excluded).
func OriginalMemOps(p *isa.Program) int {
	n := 0
	for i := range p.Instrs {
		if _, spill := p.Instrs[i].SpillInfo(); spill {
			continue
		}
		if p.Instrs[i].Op.Class().IsMem() {
			n++
		}
	}
	return n
}
