package codegen

import (
	"strings"
	"testing"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
)

func lower(t *testing.T, p *il.Program, clustered bool) *isa.Program {
	t.Helper()
	var part *partition.Result
	if clustered {
		part = partition.Local{}.Partition(p)
	}
	alloc, err := regalloc.Allocate(p, part, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         clustered,
		OtherClusterSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Lower(alloc)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestLowerFigure6(t *testing.T) {
	mp := lower(t, il.Figure6(), false)
	if err := mp.Validate(); err != nil {
		t.Fatal(err)
	}
	// 17 IL instructions (12 figure lines + the split address add + two
	// conditional branches + one jump + the return), no spills.
	if len(mp.Instrs) != 17 {
		t.Errorf("machine instructions = %d, want 17", len(mp.Instrs))
	}
	if mp.NumMemOps != 4 {
		t.Errorf("NumMemOps = %d, want 4 (four loads)", mp.NumMemOps)
	}
	if mp.NumBranches != 2 {
		t.Errorf("NumBranches = %d, want 2", mp.NumBranches)
	}
	// The loop branch in bb4 targets the start of bb4.
	bb4 := mp.BlockOf(mp.Blocks[3].Start)
	term := &mp.Instrs[bb4.End-1]
	if !term.Op.IsCondBranch() || term.Target != bb4.Start {
		t.Errorf("bb4 terminator %v targets %d, want %d", term, term.Target, bb4.Start)
	}
}

func TestMemIDsStableAcrossAllocations(t *testing.T) {
	// The k-th original memory operation must get MemID k in both the
	// native and clustered binaries, even if the clustered one spills.
	native := lower(t, il.Figure6(), false)
	clustered := lower(t, il.Figure6(), true)
	type memRef struct {
		block string
		op    isa.Op
	}
	collect := func(p *isa.Program) map[int]memRef {
		m := map[int]memRef{}
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if _, spill := in.SpillInfo(); spill || !in.Op.Class().IsMem() {
				continue
			}
			m[in.MemID] = memRef{p.BlockOf(i).Name, in.Op}
		}
		return m
	}
	a, b := collect(native), collect(clustered)
	if len(a) != len(b) {
		t.Fatalf("original mem op counts differ: %d vs %d", len(a), len(b))
	}
	for id, ra := range a {
		if b[id] != ra {
			t.Errorf("MemID %d: native %+v, clustered %+v", id, ra, b[id])
		}
	}
}

func TestConstantHasNoRegisterSources(t *testing.T) {
	b := il.NewBuilder("c")
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Const(x, 42)
	e.Ret(x)
	mp := lower(t, b.MustFinish(), false)
	if mp.Instrs[0].Op != isa.LDA || mp.Instrs[0].Src1 != isa.RegNone || mp.Instrs[0].Imm != 42 {
		t.Errorf("constant lowered to %v", &mp.Instrs[0])
	}
}

func TestBadLayoutRejected(t *testing.T) {
	// A conditional branch whose fall-through block is not adjacent.
	b := il.NewBuilder("bad")
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Const(x, 1)
	e.CondBr(isa.BNE, x, "t", "far")
	tb := b.Block("t", 1) // adjacent block is the *taken* target, not fall-through
	tb.Ret(x)
	fb := b.Block("far", 1)
	fb.Ret(x)
	p := b.MustFinish()
	alloc, err := regalloc.Allocate(p, nil, regalloc.Config{Assignment: isa.DefaultAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(alloc); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Fatalf("expected layout error, got %v", err)
	}
}

func TestDisassemblyRoundTripMentionsOps(t *testing.T) {
	mp := lower(t, il.Figure6(), false)
	d := mp.Disassemble()
	for _, frag := range []string{"bb1:", "bb4:", "mul", "ldw", "bne"} {
		if !strings.Contains(d, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, d)
		}
	}
}

func TestSpillOpsNumberedAfterOriginals(t *testing.T) {
	b := il.NewBuilder("spill")
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = b.Int(strings.Repeat("v", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	sp := b.GlobalValue("SP", il.KindInt)
	e := b.Block("entry", 1)
	e.Load(isa.LDW, ids[0], sp, 0) // original memory op: must be MemID 0
	for i, id := range ids[1:] {
		e.Const(id, int64(i))
	}
	sum := b.Int("sum")
	e.Op(isa.ADD, sum, ids[0], ids[1])
	for i := 2; i < len(ids); i++ {
		e.Op(isa.ADD, sum, sum, ids[i])
	}
	e.Ret(sum)
	mp := lower(t, b.MustFinish(), false)

	var originalIDs, spillIDs []int
	for i := range mp.Instrs {
		in := &mp.Instrs[i]
		if !in.Op.Class().IsMem() {
			continue
		}
		if _, spill := in.SpillInfo(); spill {
			spillIDs = append(spillIDs, in.MemID)
		} else {
			originalIDs = append(originalIDs, in.MemID)
		}
	}
	if len(originalIDs) != 1 || originalIDs[0] != 0 {
		t.Errorf("original MemIDs = %v, want [0]", originalIDs)
	}
	for _, id := range spillIDs {
		if id < 1 {
			t.Errorf("spill MemID %d collides with original range", id)
		}
	}
	if len(spillIDs) == 0 {
		t.Error("expected spill memory operations")
	}
}
