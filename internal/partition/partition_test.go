package partition

import (
	"testing"

	"multicluster/internal/il"
	"multicluster/internal/isa"
)

func valueID(t *testing.T, p *il.Program, name string) int {
	t.Helper()
	for _, v := range p.Values {
		if v.Name == name {
			return v.ID
		}
	}
	t.Fatalf("no value named %q", name)
	return -1
}

func TestFigure6TraversalOrder(t *testing.T) {
	// §3.5: for the control flow graph of Figure 6, the basic blocks are
	// traversed in the order 4, 1, 5, 3, 2 (sorted by execution estimate,
	// ties broken by static instruction count).
	p := il.Figure6()
	blocks := sortedBlocks(p)
	var got []string
	for _, b := range blocks {
		got = append(got, b.Name)
	}
	want := []string{"bb4", "bb1", "bb5", "bb3", "bb2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traversal order = %v, want %v", got, want)
		}
	}
}

func TestFigure6AssignmentOrder(t *testing.T) {
	// Bottom-up traversal of the blocks in order 4,1,5,3,2 assigns live
	// ranges the first time a writing instruction is encountered. With our
	// encoding (line 5 split into an address temp t5 + load) the order is:
	// C, G, B, A (bb4); E (bb1; C already done); D (bb5); H, t5 (bb3; S is
	// a global candidate and is skipped); nothing new in bb2.
	p := il.Figure6()
	r := Local{}.Partition(p)
	if err := r.Validate(p); err != nil {
		t.Fatal(err)
	}
	want := []string{"C", "G", "B", "A", "E", "D", "H", "t5"}
	if len(r.Order) != len(want) {
		t.Fatalf("assignment order has %d entries, want %d: %v", len(r.Order), len(want), names2(p, r.Order))
	}
	for i, id := range r.Order {
		if p.Value(id).Name != want[i] {
			t.Fatalf("assignment order = %v, want %v", names2(p, r.Order), want)
		}
	}
	// S stays a global candidate.
	if r.Of(valueID(t, p, "S")) != Global {
		t.Error("S must be assigned to a global register")
	}
}

func names2(p *il.Program, ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, p.Value(id).Name)
	}
	return out
}

func TestLocalIsDeterministic(t *testing.T) {
	p := il.Figure6()
	a := Local{}.Partition(p)
	b := Local{}.Partition(p)
	for id := range a.Cluster {
		if a.Cluster[id] != b.Cluster[id] {
			t.Fatalf("nondeterministic assignment for %s", p.Value(id).Name)
		}
	}
}

func TestAllPartitionersProduceValidResults(t *testing.T) {
	p := il.Figure6()
	for _, pt := range []Partitioner{Local{}, Hash{}, RoundRobin{}, Affinity{}} {
		r := pt.Partition(p)
		if err := r.Validate(p); err != nil {
			t.Errorf("%s: %v", pt.Name(), err)
		}
	}
}

func TestHotChainGetsSplitForBalance(t *testing.T) {
	// Two independent dependence chains executed in a hot loop: a balanced
	// partitioner must put them on different clusters. Affinity-only
	// partitioning is free to collapse them onto one.
	b := il.NewBuilder("chains")
	a0, a1, a2 := b.Int("a0"), b.Int("a1"), b.Int("a2")
	c0, c1v, c2 := b.Int("c0"), b.Int("c1"), b.Int("c2")
	cond := b.Int("cond")
	e := b.Block("entry", 1)
	e.Const(a0, 1)
	e.Const(c0, 2)
	e.FallTo("loop")
	l := b.Block("loop", 1000)
	l.OpImm(isa.ADD, a1, a0, 1)
	l.OpImm(isa.ADD, a2, a1, 2)
	l.Op(isa.ADD, a0, a2, a1)
	l.OpImm(isa.ADD, c1v, c0, 1)
	l.OpImm(isa.ADD, c2, c1v, 2)
	l.Op(isa.ADD, c0, c2, c1v)
	l.OpImm(isa.CMPLT, cond, a0, 100)
	l.CondBr(isa.BNE, cond, "loop", "done")
	d := b.Block("done", 1)
	d.Ret(a0)
	p := b.MustFinish()

	r := Local{Window: 2}.Partition(p)
	m := Measure(p, r)
	if m.Imbalance() > 0.5 {
		t.Errorf("local scheduler left imbalance %.2f (dist %v); expected the chains spread across clusters", m.Imbalance(), m.Distributed)
	}
}

func TestLocalMinimizesDualDistributionOnSingleChain(t *testing.T) {
	// One dependence chain: every value should land in one cluster so no
	// instruction is dual-distributed (the loop is balanced only in the
	// degenerate sense, so affinity voting should keep the chain together).
	b := il.NewBuilder("chain")
	v := make([]int, 5)
	for i := range v {
		v[i] = b.Int(string(rune('a' + i)))
	}
	e := b.Block("entry", 1)
	e.Const(v[0], 1)
	for i := 1; i < len(v); i++ {
		e.OpImm(isa.ADD, v[i], v[i-1], int64(i))
	}
	e.Ret(v[len(v)-1])
	p := b.MustFinish()

	// A window wider than the block keeps the balance term quiet, so the
	// affinity vote alone decides — and must keep the chain together.
	r := Local{Window: 16}.Partition(p)
	m := Measure(p, r)
	if m.Dual != 0 {
		t.Errorf("single chain produced %d dual-distributed weighted instructions (assignments %v)", m.Dual, r.Cluster)
	}
	// With the default window the balance term is allowed to split the
	// chain, but never to more than a couple of transfers.
	rd := Local{}.Partition(p)
	if md := Measure(p, rd); md.Dual > 2 {
		t.Errorf("default window split a single chain %d times", md.Dual)
	}
}

func TestGlobalDestinationForcesDualInMetrics(t *testing.T) {
	b := il.NewBuilder("g")
	sp := b.GlobalValue("SP", il.KindInt)
	x := b.Int("x")
	e := b.Block("entry", 1)
	e.Const(x, 8)
	e.OpImm(isa.ADD, sp, sp, -16) // writes a global register: dual
	e.Store(isa.STW, sp, x, 0)
	e.Ret(x)
	p := b.MustFinish()
	r := Local{}.Partition(p)
	m := Measure(p, r)
	if m.Dual == 0 {
		t.Error("an instruction writing a global register must be counted dual-distributed")
	}
}

func TestWindowControlsBalanceSensitivity(t *testing.T) {
	// With a huge window the scheduler never sees imbalance and falls back
	// to affinity voting everywhere; with a tiny window it corrects early.
	p := il.Figure6()
	loose := Local{Window: 1 << 20}.Partition(p)
	tight := Local{Window: 1}.Partition(p)
	if err := loose.Validate(p); err != nil {
		t.Fatal(err)
	}
	if err := tight.Validate(p); err != nil {
		t.Fatal(err)
	}
	mt := Measure(p, tight)
	ml := Measure(p, loose)
	if mt.Imbalance() > ml.Imbalance()+1e-9 && ml.Dual < mt.Dual {
		t.Errorf("tight window should not be strictly worse on both axes: tight %v loose %v", mt, ml)
	}
}

func TestMetricsAccounting(t *testing.T) {
	b := il.NewBuilder("m")
	x, y, z := b.Int("x"), b.Int("y"), b.Int("z")
	e := b.Block("entry", 10)
	e.Const(x, 1)          // cluster of x only
	e.Const(y, 2)          // cluster of y only
	e.Op(isa.ADD, z, x, y) // spans x,y clusters if split
	e.Ret(z)
	p := b.MustFinish()
	r := newResult(p)
	r.assign(x, 0)
	r.assign(y, 1)
	r.assign(z, 0)
	m := Measure(p, r)
	if m.Total != 40 { // 4 instructions × weight 10
		t.Errorf("Total = %d, want 40", m.Total)
	}
	if m.Dual != 10 { // only the add spans clusters
		t.Errorf("Dual = %d, want 10", m.Dual)
	}
	if m.Distributed[0] != 30 || m.Distributed[1] != 20 {
		// x const (10) + add (10) + ret z (10) on cluster 0; y const + add on 1.
		t.Errorf("Distributed = %v, want [30 20]", m.Distributed)
	}
}

func TestRoundRobinBalancesCounts(t *testing.T) {
	p := il.Figure6()
	r := RoundRobin{}.Partition(p)
	c0, c1 := r.Counts()
	if d := c0 - c1; d < -1 || d > 1 {
		t.Errorf("round-robin counts %d vs %d; want within 1", c0, c1)
	}
}

func TestFinishAssignsReadOnlyInputs(t *testing.T) {
	// A value that is only ever read (program input) still needs a cluster.
	b := il.NewBuilder("ro")
	in := b.Int("input")
	out := b.Int("out")
	e := b.Block("entry", 1)
	e.OpImm(isa.ADD, out, in, 1)
	e.Ret(out)
	p := b.MustFinish()
	r := Local{}.Partition(p)
	if c := r.Of(in); c != 0 && c != 1 {
		t.Errorf("read-only input assigned %d", c)
	}
}

func BenchmarkLocalPartitioner(b *testing.B) {
	p := il.Figure6()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local{}.Partition(p)
	}
}
