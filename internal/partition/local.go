package partition

import (
	"sort"

	"multicluster/internal/il"
)

// DefaultWindow is the compile-time imbalance constant of §3.5: the
// instruction distribution is considered unbalanced in the vicinity of an
// instruction when one cluster has received more than this many
// instructions beyond the other by the time the instruction is distributed.
const DefaultWindow = 4

// Local implements the paper's local scheduler (§3.5). Basic blocks are
// visited in descending order of profiled execution estimate (ties broken
// by static instruction count); within each block the instructions are
// traversed bottom-up, and the first time an instruction writing an
// unassigned live range is encountered, the live range is assigned:
//
//   - to the under-subscribed cluster, when the estimated run-time
//     instruction distribution around the writing instruction is unbalanced
//     by more than Window instructions; or
//   - to the cluster preferred by the majority of the instructions that
//     read or write the live range, where an instruction prefers the
//     cluster that lets it be distributed to one cluster only.
type Local struct {
	// Window is the imbalance threshold; zero means DefaultWindow.
	Window int
}

func (Local) Name() string { return "local" }

func (l Local) window() int {
	if l.Window > 0 {
		return l.Window
	}
	return DefaultWindow
}

// Partition runs the local scheduler on p.
func (l Local) Partition(p *il.Program) *Result {
	r := newResult(p)
	// Weighted running totals of instructions distributed to each cluster
	// across the whole program; used only to break ties deterministically
	// in favour of the globally under-subscribed cluster.
	var weighted [NumClusters]int64

	for _, b := range sortedBlocks(p) {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			d := in.Dst
			if d == il.None || r.Cluster[d] != Unassigned {
				continue
			}
			c := l.chooseCluster(p, b, i, d, r, &weighted)
			r.assign(d, c)
			weighted[c] += b.EstExec
		}
	}
	r.finish()
	return r
}

// chooseCluster implements the per-live-range decision of §3.5.
func (l Local) chooseCluster(p *il.Program, b *il.Block, idx, id int, r *Result, weighted *[NumClusters]int64) int {
	n0, n1 := blockDistribution(b, idx, r)
	if diff := n0 - n1; diff > l.window() {
		return 1 // cluster 0 over-subscribed
	} else if -diff > l.window() {
		return 0
	}

	// Balanced: poll every instruction that reads or writes the live range
	// for its preferred cluster.
	votes := [NumClusters]int{}
	for _, blk := range p.Blocks {
		for j := range blk.Instrs {
			jn := &blk.Instrs[j]
			if !names(jn, id) {
				continue
			}
			f0 := feasible(jn, 0, id, r)
			f1 := feasible(jn, 1, id, r)
			switch {
			case f0 && !f1:
				votes[0]++
			case f1 && !f0:
				votes[1]++
			}
		}
	}
	switch {
	case votes[0] > votes[1]:
		return 0
	case votes[1] > votes[0]:
		return 1
	}
	// No preference either way: feed the globally under-subscribed cluster.
	if weighted[1] < weighted[0] {
		return 1
	}
	return 0
}

// blockDistribution estimates, with current assignment knowledge, how many
// of the instructions in the vicinity of index idx will be distributed to
// each cluster at run time. The vicinity is the whole block except idx
// itself: at run time the instructions "preceding" a hot block's
// instruction include the previous iteration of the same block, so the
// steady-state window wraps around. A dual-distributed instruction counts
// toward both clusters; instructions whose operands are entirely
// unassigned or global contribute to neither count.
func blockDistribution(b *il.Block, idx int, r *Result) (n0, n1 int) {
	for i := range b.Instrs {
		if i == idx {
			continue
		}
		d0, d1 := instrDistribution(&b.Instrs[i], r)
		if d0 {
			n0++
		}
		if d1 {
			n1++
		}
	}
	return
}

// instrDistribution predicts the cluster(s) an instruction will be
// distributed to under the current partial assignment. Per §2.1 an
// instruction is distributed to both clusters when its named registers span
// clusters or its destination is global; otherwise it goes to the single
// cluster its local registers live in.
func instrDistribution(in *il.Instr, r *Result) (c0, c1 bool) {
	for _, u := range in.Uses() {
		switch r.Cluster[u] {
		case 0:
			c0 = true
		case 1:
			c1 = true
		}
	}
	switch {
	case in.Dst == il.None:
	case r.Cluster[in.Dst] == Global:
		// Global destination forces dual distribution.
		c0, c1 = true, true
	case r.Cluster[in.Dst] == 0:
		c0 = true
	case r.Cluster[in.Dst] == 1:
		c1 = true
	}
	return
}

// sortedBlocks returns the blocks in local-scheduler visiting order:
// descending execution estimate, then descending static instruction count,
// then layout order for determinism.
func sortedBlocks(p *il.Program) []*il.Block {
	layout := make(map[*il.Block]int, len(p.Blocks))
	for i, b := range p.Blocks {
		layout[b] = i
	}
	blocks := append([]*il.Block(nil), p.Blocks...)
	sort.SliceStable(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		if a.EstExec != b.EstExec {
			return a.EstExec > b.EstExec
		}
		if len(a.Instrs) != len(b.Instrs) {
			return len(a.Instrs) > len(b.Instrs)
		}
		return layout[a] < layout[b]
	})
	return blocks
}

// SortedBlocks exposes the local scheduler's block visiting order for
// reports and diagnostics.
func SortedBlocks(p *il.Program) []*il.Block { return sortedBlocks(p) }
