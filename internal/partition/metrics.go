package partition

import (
	"fmt"

	"multicluster/internal/il"
)

// Metrics summarizes the static quality of a partitioning: how the
// profile-weighted instruction distribution splits across clusters and what
// fraction of the dynamic instruction stream is expected to be
// dual-distributed. These are exactly the two competing objectives of §3
// (balance the distribution; minimize dual distribution).
type Metrics struct {
	// Weighted number of dynamic instructions distributed to each cluster
	// (dual-distributed instructions count toward both).
	Distributed [NumClusters]int64
	// Weighted number of dynamic instructions distributed to both clusters.
	Dual int64
	// Weighted total dynamic instructions.
	Total int64
}

// Measure computes static partitioning metrics for the result r over
// program p, weighting each block by its profile estimate.
func Measure(p *il.Program, r *Result) Metrics {
	var m Metrics
	for _, b := range p.Blocks {
		w := b.EstExec
		if w <= 0 {
			w = 1
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			m.Total += w
			d0, d1 := instrDistribution(in, r)
			if !d0 && !d1 {
				// Operand-free instruction (e.g. unconditional branch):
				// distributed to one cluster; charge neither for balance
				// purposes but count it in the total.
				continue
			}
			if d0 {
				m.Distributed[0] += w
			}
			if d1 {
				m.Distributed[1] += w
			}
			if d0 && d1 {
				m.Dual += w
			}
		}
	}
	return m
}

// DualFraction returns the fraction of the weighted dynamic stream expected
// to be dual-distributed.
func (m Metrics) DualFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Dual) / float64(m.Total)
}

// Imbalance returns |w0-w1| / (w0+w1), the normalized distribution
// imbalance; zero is perfectly balanced.
func (m Metrics) Imbalance() float64 {
	w0, w1 := m.Distributed[0], m.Distributed[1]
	if w0+w1 == 0 {
		return 0
	}
	d := w0 - w1
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(w0+w1)
}

func (m Metrics) String() string {
	return fmt.Sprintf("dist=[%d %d] dual=%.1f%% imbalance=%.1f%%",
		m.Distributed[0], m.Distributed[1], 100*m.DualFraction(), 100*m.Imbalance())
}
