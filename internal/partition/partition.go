// Package partition implements live-range partitioning: assigning each live
// range of an IL program to one of the two clusters (or to a global
// register) so that, at run time, the distribution of instructions across
// clusters is balanced and the number of dual-distributed instructions is
// minimized (step 4 of the paper's methodology, §3.5).
//
// The package provides the paper's "local scheduler" plus simpler baseline
// partitioners used for ablation studies.
package partition

import (
	"fmt"

	"multicluster/internal/il"
)

// Cluster assignment values in a Result.
const (
	// Global marks a live range assigned to a global register (both
	// clusters hold a physical copy).
	Global = -1
	// Unassigned appears only transiently inside partitioners.
	Unassigned = -2

	// NumClusters is fixed at two, matching the paper's evaluation.
	NumClusters = 2
)

// Result maps every live range of a program to a cluster (0 or 1) or to
// Global.
type Result struct {
	// Cluster[id] is the assignment for live range id.
	Cluster []int
	// Order records the live ranges in the order the partitioner assigned
	// them (global candidates excluded); diagnostic, used by tests that
	// check the paper's Figure 6 walk-through.
	Order []int
}

// Of returns the assignment of live range id.
func (r *Result) Of(id int) int { return r.Cluster[id] }

// Validate checks that every live range is assigned and that global
// candidates are exactly the Global entries.
func (r *Result) Validate(p *il.Program) error {
	if len(r.Cluster) != p.NumValues() {
		return fmt.Errorf("partition: result covers %d of %d live ranges", len(r.Cluster), p.NumValues())
	}
	for id, c := range r.Cluster {
		v := p.Value(id)
		switch {
		case v.GlobalCandidate && c != Global:
			return fmt.Errorf("partition: global candidate %q assigned to cluster %d", v.Name, c)
		case !v.GlobalCandidate && c != 0 && c != 1:
			return fmt.Errorf("partition: local candidate %q has assignment %d", v.Name, c)
		}
	}
	return nil
}

// Counts returns how many local live ranges were assigned to each cluster.
func (r *Result) Counts() (c0, c1 int) {
	for _, c := range r.Cluster {
		switch c {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	return
}

// Partitioner assigns the live ranges of a program to clusters.
type Partitioner interface {
	// Name identifies the partitioner in reports and benchmarks.
	Name() string
	// Partition computes a cluster assignment for p.
	Partition(p *il.Program) *Result
}

// newResult returns a Result with global candidates pre-assigned and all
// other live ranges Unassigned.
func newResult(p *il.Program) *Result {
	r := &Result{Cluster: make([]int, p.NumValues())}
	for id := range r.Cluster {
		if p.Value(id).GlobalCandidate {
			r.Cluster[id] = Global
		} else {
			r.Cluster[id] = Unassigned
		}
	}
	return r
}

// assign records an assignment and its order.
func (r *Result) assign(id, cluster int) {
	r.Cluster[id] = cluster
	r.Order = append(r.Order, id)
}

// finish assigns any still-unassigned live ranges (e.g. values never
// written, such as program inputs used read-only) round-robin to keep the
// result total.
func (r *Result) finish() {
	next := 0
	for id, c := range r.Cluster {
		if c == Unassigned {
			r.assign(id, next)
			next = 1 - next
		}
	}
}

// Hash assigns local live ranges by ID parity: the cheapest conceivable
// static partitioning, used as an ablation baseline.
type Hash struct{}

func (Hash) Name() string { return "hash" }

func (Hash) Partition(p *il.Program) *Result {
	r := newResult(p)
	for id, c := range r.Cluster {
		if c == Unassigned {
			r.assign(id, id&1)
		}
	}
	return r
}

// RoundRobin alternates clusters in first-definition order: balances
// live-range counts while ignoring both dual-distribution cost and
// run-time weights.
type RoundRobin struct{}

func (RoundRobin) Name() string { return "round-robin" }

func (RoundRobin) Partition(p *il.Program) *Result {
	r := newResult(p)
	next := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Dst; d != il.None && r.Cluster[d] == Unassigned {
				r.assign(d, next)
				next = 1 - next
			}
		}
	}
	r.finish()
	return r
}

// Affinity is a greedy baseline that assigns each live range to the cluster
// preferred by the instructions naming it (minimizing dual distribution)
// with no balance consideration at all — the opposite failure mode from
// RoundRobin. It tends to collapse whole dependence webs onto one cluster.
type Affinity struct{}

func (Affinity) Name() string { return "affinity" }

func (Affinity) Partition(p *il.Program) *Result {
	r := newResult(p)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Dst
			if d == il.None || r.Cluster[d] != Unassigned {
				continue
			}
			votes := [NumClusters]int{}
			for _, blk := range p.Blocks {
				for j := range blk.Instrs {
					jn := &blk.Instrs[j]
					if !names(jn, d) {
						continue
					}
					for c := 0; c < NumClusters; c++ {
						if feasible(jn, c, d, r) {
							votes[c]++
						}
					}
				}
			}
			if votes[0] >= votes[1] {
				r.assign(d, 0)
			} else {
				r.assign(d, 1)
			}
		}
	}
	r.finish()
	return r
}

// names reports whether instruction in names live range id.
func names(in *il.Instr, id int) bool {
	if in.Dst == id {
		return true
	}
	for _, u := range in.Uses() {
		if u == id {
			return true
		}
	}
	return false
}

// feasible reports whether assigning live range id to cluster c would still
// allow instruction in to be distributed to the single cluster c: every
// other operand must be global, unassigned, or already in c.
func feasible(in *il.Instr, c, id int, r *Result) bool {
	for _, op := range in.Operands() {
		if op == id {
			continue
		}
		switch r.Cluster[op] {
		case Global, Unassigned, c:
		default:
			return false
		}
	}
	return true
}
