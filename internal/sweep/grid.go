package sweep

import (
	"context"
	"fmt"
	"sync"

	"multicluster/internal/workload"
)

// Grid is a sweep request: the cross product of benchmarks, machines,
// schedulers, windows, and seeds, each cell one JobSpec. Empty dimensions
// default to the paper's evaluation axes.
type Grid struct {
	// Benchmarks defaults to the six Table 2 workloads.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Machines defaults to [single, dual].
	Machines []string `json:"machines,omitempty"`
	// Schedulers defaults to [none, local].
	Schedulers []string `json:"schedulers,omitempty"`
	// Windows defaults to [0]; non-zero entries only vary the local
	// scheduler.
	Windows []int `json:"windows,omitempty"`
	// Seeds defaults to [42].
	Seeds []int64 `json:"seeds,omitempty"`
	// Instructions is the per-cell dynamic budget; 0 means 300k.
	Instructions int64 `json:"instructions,omitempty"`
	// PostSchedule applies the post-pass list scheduler in every cell.
	PostSchedule bool `json:"post_schedule,omitempty"`
}

// Expand enumerates the grid into normalized job specs, deduplicated by
// content hash (distinct cells can normalize to the same spec, e.g. two
// windows under a non-local scheduler), in deterministic order.
func (g Grid) Expand() ([]JobSpec, error) {
	benches := g.Benchmarks
	if len(benches) == 0 {
		for _, b := range workload.All() {
			benches = append(benches, b.Name)
		}
	}
	machines := g.Machines
	if len(machines) == 0 {
		machines = []string{"single", "dual"}
	}
	scheds := g.Schedulers
	if len(scheds) == 0 {
		scheds = []string{"none", "local"}
	}
	windows := g.Windows
	if len(windows) == 0 {
		windows = []int{0}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{42}
	}

	var specs []JobSpec
	seen := make(map[string]bool)
	for _, b := range benches {
		for _, m := range machines {
			for _, sc := range scheds {
				for _, w := range windows {
					for _, seed := range seeds {
						spec := JobSpec{
							Benchmark:    b,
							Machine:      m,
							Scheduler:    sc,
							Window:       w,
							Seed:         seed,
							Instructions: g.Instructions,
							PostSchedule: g.PostSchedule,
						}
						norm, err := spec.Normalize()
						if err != nil {
							return nil, fmt.Errorf("sweep: cell %s: %w", spec, err)
						}
						hash, err := norm.Hash()
						if err != nil {
							return nil, err
						}
						if seen[hash] {
							continue
						}
						seen[hash] = true
						specs = append(specs, norm)
					}
				}
			}
		}
	}
	return specs, nil
}

// SweepRow is one completed cell of a sweep, delivered in completion
// order.
type SweepRow struct {
	// Index is the cell's position in the expanded grid (stable across
	// identical requests); Total is the grid size.
	Index int `json:"index"`
	Total int `json:"total"`
	// CacheHit reports whether the cell was served from the cache.
	CacheHit bool    `json:"cache_hit"`
	Result   *Result `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// Sweep expands the grid and runs every cell through the pool and cache,
// streaming completed rows on the returned channel in completion order.
// The channel closes when every cell has been delivered or ctx is done.
// The int is the number of cells in the expanded grid.
func (s *Service) Sweep(ctx context.Context, g Grid) (<-chan SweepRow, int, error) {
	specs, err := g.Expand()
	if err != nil {
		return nil, 0, err
	}
	// Queue batch prewarms ahead of the cells (see prewarmBatches): cells
	// whose group was batched become cache hits.
	s.prewarmBatches(ClientIDFrom(ctx), specs)
	rows := make(chan SweepRow)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			res, hit, err := s.Run(ctx, spec)
			row := SweepRow{Index: i, Total: len(specs), CacheHit: hit, Result: res}
			if err != nil {
				row.Error = err.Error()
			}
			select {
			case rows <- row:
			case <-ctx.Done():
			}
		}(i, spec)
	}
	go func() {
		wg.Wait()
		close(rows)
	}()
	return rows, len(specs), nil
}
