package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SweepJournal persists sweep lifecycles so a killed server resumes
// incomplete sweeps on restart instead of forgetting them. It shares the
// result journal's record format (length prefix + CRC32 + JSON payload,
// torn tail truncated on open) but carries sweepRecord payloads:
//
//	create   — sweep id, owning client, grid spec, creation time
//	progress — periodic completion cursor (cells done so far)
//	finish   — terminal state (done | canceled)
//
// The per-cell results themselves are durable in the result journal (the
// cache writes through on every computed cell), so the sweep journal only
// has to remember *which grids were promised to whom*: on recovery an
// unfinished sweep is re-expanded and re-run, and every already-journaled
// cell completes instantly from the seeded cache — no recomputation.
//
// Opening compacts: recovered state is rewritten as a minimal snapshot
// (create + latest progress + finish per sweep), canceled sweeps and
// finished sweeps beyond the retention bound are dropped, so the file
// stays proportional to the live resource set, not to all-time traffic.
type SweepJournal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	recovered []*RecoveredSweep

	appends      atomic.Int64
	appendErrors atomic.Int64
	truncated    atomic.Int64 // bytes discarded (torn tail + compaction)
}

// sweepRecord is one journal entry in a sweep's lifecycle.
type sweepRecord struct {
	Kind    string     `json:"kind"` // create | progress | finish
	ID      string     `json:"id"`
	Client  string     `json:"client,omitempty"`
	Grid    *Grid      `json:"grid,omitempty"`
	Created int64      `json:"created_unix_ms,omitempty"`
	Done    int        `json:"done,omitempty"`
	State   SweepState `json:"state,omitempty"`
}

// RecoveredSweep is one sweep's journaled state as of the last run.
type RecoveredSweep struct {
	ID      string
	Client  string
	Grid    Grid
	Created time.Time
	// Done is the last journaled completion cursor; the real resume point
	// is the journaled result set, which may be slightly ahead (progress
	// records are periodic, results are per-cell).
	Done int
	// State is the journaled terminal state, or SweepRunning when the
	// sweep never reached one — the resume case.
	State SweepState
}

// SweepJournalStats is a snapshot of the sweep journal counters.
type SweepJournalStats struct {
	Path         string `json:"path"`
	Appends      int64  `json:"appends"`
	AppendErrors int64  `json:"append_errors"`
	// TruncatedBytes counts trailing corruption plus compaction savings
	// discarded on open.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// OpenSweepJournal opens (creating if needed) the sweep journal at path,
// assembles each sweep's latest state from its records, compacts the file
// to that snapshot, and returns the journal positioned for appending.
// keepFinished bounds how many most-recent finished sweeps survive
// compaction (< 0 means all, 0 means DefaultSweepRetention); canceled
// sweeps are always dropped — cancellation is a client decision that a
// restart must not undo.
func OpenSweepJournal(path string, keepFinished int) (*SweepJournal, error) {
	if keepFinished == 0 {
		keepFinished = DefaultSweepRetention
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: sweep journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening sweep journal: %w", err)
	}
	j := &SweepJournal{f: f, path: path}

	byID := make(map[string]*RecoveredSweep)
	var order []string
	var recs []sweepRecord
	_, good := scanRecords(f, func(payload []byte) bool {
		var rec sweepRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			return false
		}
		recs = append(recs, rec)
		return true
	})
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: sweep journal seek: %w", err)
	}
	for _, rec := range recs {
		switch rec.Kind {
		case "create":
			if rec.Grid == nil || byID[rec.ID] != nil {
				continue
			}
			byID[rec.ID] = &RecoveredSweep{
				ID:      rec.ID,
				Client:  rec.Client,
				Grid:    *rec.Grid,
				Created: time.UnixMilli(rec.Created),
				State:   SweepRunning,
			}
			order = append(order, rec.ID)
		case "progress":
			if rs := byID[rec.ID]; rs != nil && rec.Done > rs.Done {
				rs.Done = rec.Done
			}
		case "finish":
			if rs := byID[rec.ID]; rs != nil && rec.State != "" {
				rs.State = rec.State
			}
		}
	}

	// Keep incomplete sweeps and the most recent keepFinished finished
	// ones; drop canceled sweeps and older finished history.
	finished := 0
	if keepFinished >= 0 {
		for _, id := range order {
			if byID[id].State == SweepDone {
				finished++
			}
		}
	}
	var kept []*RecoveredSweep
	for _, id := range order {
		rs := byID[id]
		switch rs.State {
		case SweepCanceled:
			continue
		case SweepDone:
			if keepFinished >= 0 && finished > keepFinished {
				finished--
				continue
			}
		}
		kept = append(kept, rs)
	}
	j.recovered = kept

	// Compact: rewrite the snapshot atomically, then reopen for append.
	tmp := path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: sweep journal compact: %w", err)
	}
	var written int64
	for _, rs := range kept {
		for _, rec := range snapshotRecords(rs) {
			payload, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			if err := writeRecord(tf, payload); err != nil {
				tf.Close()
				os.Remove(tmp)
				f.Close()
				return nil, fmt.Errorf("sweep: sweep journal compact: %w", err)
			}
			written += 8 + int64(len(payload))
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		f.Close()
		return nil, fmt.Errorf("sweep: sweep journal compact: %w", err)
	}
	f.Close()
	if err := os.Rename(tmp, path); err != nil {
		tf.Close()
		return nil, fmt.Errorf("sweep: sweep journal compact: %w", err)
	}
	j.f = tf
	j.truncated.Store(size - min64(good, size) + (good - written))
	return j, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// snapshotRecords renders one recovered sweep back into its minimal
// record sequence for compaction.
func snapshotRecords(rs *RecoveredSweep) []sweepRecord {
	grid := rs.Grid
	recs := []sweepRecord{{
		Kind:    "create",
		ID:      rs.ID,
		Client:  rs.Client,
		Grid:    &grid,
		Created: rs.Created.UnixMilli(),
	}}
	if rs.Done > 0 && rs.State == SweepRunning {
		recs = append(recs, sweepRecord{Kind: "progress", ID: rs.ID, Done: rs.Done})
	}
	if rs.State != SweepRunning {
		recs = append(recs, sweepRecord{Kind: "finish", ID: rs.ID, State: rs.State})
	}
	return recs
}

// Recovered returns the sweeps assembled when the journal was opened, in
// creation order: incomplete sweeps (State == SweepRunning) to resume,
// and retained finished ones to re-materialize for result serving.
func (j *SweepJournal) Recovered() []*RecoveredSweep { return j.recovered }

// Created durably records a new sweep.
func (j *SweepJournal) Created(id, client string, grid Grid, created time.Time) error {
	return j.append(sweepRecord{Kind: "create", ID: id, Client: client, Grid: &grid, Created: created.UnixMilli()})
}

// Progress records the completion cursor: done cells have finished. It is
// advisory (the result journal is the authoritative resume substrate), so
// callers emit it periodically, not per cell.
func (j *SweepJournal) Progress(id string, done int) error {
	return j.append(sweepRecord{Kind: "progress", ID: id, Done: done})
}

// Finished durably records a sweep's terminal state.
func (j *SweepJournal) Finished(id string, state SweepState) error {
	return j.append(sweepRecord{Kind: "finish", ID: id, State: state})
}

func (j *SweepJournal) append(rec sweepRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: sweep journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.appendErrors.Add(1)
		return errors.New("sweep: sweep journal closed")
	}
	if err := writeRecord(j.f, payload); err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: sweep journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: sweep journal sync: %w", err)
	}
	j.appends.Add(1)
	return nil
}

// Close closes the journal file. Further appends fail.
func (j *SweepJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal file path.
func (j *SweepJournal) Path() string { return j.path }

// Stats snapshots the journal counters.
func (j *SweepJournal) Stats() SweepJournalStats {
	return SweepJournalStats{
		Path:           j.path,
		Appends:        j.appends.Load(),
		AppendErrors:   j.appendErrors.Load(),
		TruncatedBytes: j.truncated.Load(),
	}
}
