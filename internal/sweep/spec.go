// Package sweep is the orchestration subsystem behind the mcserved daemon:
// a canonical, content-hashable job specification; a content-addressed
// result cache with single-flight deduplication and an optional
// crash-safe append-only journal; a bounded worker pool with a FIFO
// queue, per-job cancellation, and panic isolation; and a grid-sweep API
// that expands the paper's evaluation matrix into jobs and streams
// completed rows.
//
// A fault-tolerance layer wraps execution end to end: per-job deadlines
// enforced through context, retries with exponential backoff and
// deterministic jitter for transient failures (with a terminal-error
// classifier so deterministic simulator errors never retry), admission
// control that sheds load once the live-job window fills, and optional
// deterministic fault injection (internal/faultinject) at the
// simulation, cache, and journal boundaries for chaos soaks.
//
// The design goal is the one stated in the evaluation methodology made
// operational: every cell of the (benchmark × machine × scheduler ×
// window) grid is a pure function of its specification, so the service
// never computes the same configuration twice, no matter how many clients
// ask concurrently.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/workload"
)

// JobSpec identifies one simulation: a benchmark compiled under a
// scheduler and executed on a machine for a given dynamic budget and seed.
// The zero value of every optional field means "the paper's default", and
// Normalize resolves those defaults, so two specs that mean the same run
// always hash identically.
type JobSpec struct {
	// Benchmark is one of the six Table 2 workloads.
	Benchmark string `json:"benchmark"`
	// Machine is a named configuration: single, dual, single4, dual2.
	// Leave empty when supplying an explicit Config.
	Machine string `json:"machine,omitempty"`
	// Config is an explicit processor configuration, overriding Machine.
	Config *core.Config `json:"config,omitempty"`
	// Scheduler is none, local, hash, roundrobin, or affinity; empty means
	// none (the native, cluster-oblivious binary).
	Scheduler string `json:"scheduler,omitempty"`
	// Window is the local scheduler's imbalance threshold (0 = default).
	Window int `json:"window,omitempty"`
	// Seed drives the behaviour drivers; 0 means the default 42.
	Seed int64 `json:"seed,omitempty"`
	// Instructions is the dynamic budget; 0 means the default 300k.
	Instructions int64 `json:"instructions,omitempty"`
	// ProfileInstructions is the profiling-pass budget; 0 means
	// Instructions/6.
	ProfileInstructions int64 `json:"profile_instructions,omitempty"`
	// PostSchedule applies the post-pass list scheduler after allocation.
	PostSchedule bool `json:"post_schedule,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 means the
	// service default. It is an execution parameter, not part of the
	// simulated configuration, so it is excluded from the content hash:
	// two specs differing only in timeout address the same cached result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Timeout resolves the job deadline: the spec's own TimeoutMS if set,
// otherwise the service default; 0 means no deadline.
func (s JobSpec) Timeout(def time.Duration) time.Duration {
	if s.TimeoutMS > 0 {
		return time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return def
}

// Normalize resolves every default and validates the spec. The returned
// spec is canonical: any two specs describing the same run normalize to
// identical values and therefore identical hashes.
func (s JobSpec) Normalize() (JobSpec, error) {
	if workload.ByName(s.Benchmark) == nil {
		return s, fmt.Errorf("sweep: unknown benchmark %q", s.Benchmark)
	}
	if s.TimeoutMS < 0 {
		return s, fmt.Errorf("sweep: negative timeout_ms %d", s.TimeoutMS)
	}
	if s.Scheduler == "" {
		s.Scheduler = "none"
	}
	if _, err := experiment.SchedulerByName(s.Scheduler, s.Window); err != nil {
		return s, err
	}
	if s.Scheduler != "local" {
		// The window only parameterizes the local scheduler; fold it away
		// so e.g. {none, window: 7} and {none} address the same result.
		s.Window = 0
	}
	if s.Config != nil {
		if err := s.Config.Validate(); err != nil {
			return s, err
		}
		cfg := *s.Config // never alias the caller's config
		s.Config = &cfg
		s.Machine = ""
	} else {
		if s.Machine == "" {
			s.Machine = "dual"
		}
		if _, err := experiment.MachineByName(s.Machine); err != nil {
			return s, err
		}
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Instructions <= 0 {
		s.Instructions = 300_000
	}
	if s.ProfileInstructions <= 0 {
		// The divide floors to zero for budgets under six, and zero means
		// *unlimited* to the profiling pass — clamp so tiny canary specs
		// profile one instruction, not the driver's whole path.
		if s.ProfileInstructions = s.Instructions / 6; s.ProfileInstructions < 1 {
			s.ProfileInstructions = 1
		}
	}
	return s, nil
}

// Hash returns the stable content hash of the normalized spec. It is
// defined over the resolved machine configuration, not the machine name,
// so a named machine and the equivalent explicit Config address the same
// cache entry.
func (s JobSpec) Hash() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	cfg, _, err := n.Resolve()
	if err != nil {
		return "", err
	}
	key := struct {
		Benchmark string      `json:"benchmark"`
		Config    core.Config `json:"config"`
		Scheduler string      `json:"scheduler"`
		Window    int         `json:"window"`
		Seed      int64       `json:"seed"`
		Instrs    int64       `json:"instructions"`
		Profile   int64       `json:"profile_instructions"`
		PostSched bool        `json:"post_schedule"`
	}{n.Benchmark, cfg, n.Scheduler, n.Window, n.Seed, n.Instructions, n.ProfileInstructions, n.PostSchedule}
	data, err := json.Marshal(key)
	if err != nil {
		return "", fmt.Errorf("sweep: hashing spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Resolve returns the processor configuration and experiment options of a
// normalized spec. The spec's machine becomes opts.Dual when it is
// clustered, so the clustered register allocator sees the machine's
// register-to-cluster assignment.
func (s JobSpec) Resolve() (core.Config, experiment.Options, error) {
	var cfg core.Config
	if s.Config != nil {
		cfg = *s.Config
	} else {
		var err error
		if cfg, err = experiment.MachineByName(s.Machine); err != nil {
			return cfg, experiment.Options{}, err
		}
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = s.Instructions * 40
	}
	opts := experiment.DefaultOptions()
	opts.Instructions = s.Instructions
	opts.ProfileInstructions = s.ProfileInstructions
	opts.Seed = s.Seed
	opts.Window = s.Window
	opts.PostSchedule = s.PostSchedule
	if cfg.Clusters == 2 {
		opts.Dual = cfg
	}
	return cfg, opts, nil
}

// String renders the spec compactly for logs.
func (s JobSpec) String() string {
	machine := s.Machine
	if s.Config != nil {
		machine = fmt.Sprintf("custom(%d-cluster)", s.Config.Clusters)
	}
	return fmt.Sprintf("%s/%s/%s/w%d/n%d/seed%d", s.Benchmark, machine, s.Scheduler, s.Window, s.Instructions, s.Seed)
}

// Result is the outcome of one job: the full statistics snapshot plus the
// compile-side counters, tagged with the spec and hash that produced it.
type Result struct {
	Spec    JobSpec            `json:"spec"`
	Hash    string             `json:"hash"`
	Stats   core.StatsSnapshot `json:"stats"`
	Spilled int                `json:"spilled"`
	Demoted int                `json:"demoted"`
}
