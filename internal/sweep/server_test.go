package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multicluster/internal/experiment"
	"multicluster/internal/workload"
)

func newTestServer(t *testing.T, workers int, stub *stubExec) (*httptest.Server, *Service) {
	t.Helper()
	cfg := Config{Workers: workers}
	if stub != nil {
		cfg.exec = stub.exec
	}
	svc := NewService(cfg)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func waitForState(t *testing.T, base, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		view := decodeJSON[JobView](t, resp.Body)
		resp.Body.Close()
		if view.State == want {
			return view
		}
		switch view.State {
		case JobDone, JobFailed, JobCanceled:
			t.Fatalf("job %s reached terminal state %s, want %s (error: %s)", id, view.State, want, view.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return JobView{}
}

func TestServerJobLifecycle(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "compress", Scheduler: "local"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202", resp.StatusCode)
	}
	view := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()
	if view.ID == "" || view.Hash == "" {
		t.Fatalf("submitted job missing id or hash: %+v", view)
	}

	done := waitForState(t, ts.URL, view.ID, JobDone)
	if done.Result == nil || done.Result.Spec.Benchmark != "compress" {
		t.Fatalf("finished job carries no result: %+v", done)
	}
	if done.Result.Hash != view.Hash {
		t.Fatalf("result hash %s != job hash %s", done.Result.Hash, view.Hash)
	}

	// The job list includes it.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	page := decodeJSON[JobPage](t, resp.Body)
	resp.Body.Close()
	if len(page.Jobs) != 1 || page.Jobs[0].ID != view.ID {
		t.Fatalf("GET /v1/jobs = %+v, want the one submitted job", page)
	}
	if page.Next != "" {
		t.Fatalf("single-page listing has a next cursor: %q", page.Next)
	}
}

// TestServerJobsPagination walks the job listing with ?limit=&after=
// cursors and checks the pages concatenate to the full submission order
// with no duplicates or gaps.
func TestServerJobsPagination(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	var want []string
	for _, b := range []string{"compress", "ora", "doduc", "gcc1", "tomcatv"} {
		resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: b})
		view := decodeJSON[JobView](t, resp.Body)
		resp.Body.Close()
		want = append(want, view.ID)
	}

	var got []string
	after := ""
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
		resp, err := http.Get(ts.URL + "/v1/jobs?limit=2&after=" + after)
		if err != nil {
			t.Fatal(err)
		}
		page := decodeJSON[JobPage](t, resp.Body)
		resp.Body.Close()
		if len(page.Jobs) > 2 {
			t.Fatalf("page holds %d jobs, want <= 2", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			got = append(got, j.ID)
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("paginated ids = %v, want %v", got, want)
	}

	// A bad limit is refused with the structured envelope.
	resp, err := http.Get(ts.URL + "/v1/jobs?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	env := decodeJSON[struct {
		Error APIError `json:"error"`
	}](t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != CodeInvalidRequest {
		t.Fatalf("bad limit = %d %+v, want 400 %s", resp.StatusCode, env, CodeInvalidRequest)
	}
}

func TestServerDuplicateJobsHitCache(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	spec := JobSpec{Benchmark: "ora"}
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	first := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()
	waitForState(t, ts.URL, first.ID, JobDone)

	resp = postJSON(t, ts.URL+"/v1/jobs", spec)
	second := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()
	done := waitForState(t, ts.URL, second.ID, JobDone)
	if !done.CacheHit {
		t.Fatalf("duplicate job was not served from cache: %+v", done)
	}
	if done.Hash != first.Hash {
		t.Fatalf("identical specs got different hashes: %s vs %s", done.Hash, first.Hash)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("duplicate submission executed %d simulations, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeJSON[Stats](t, resp.Body)
	resp.Body.Close()
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 1 || stats.Submitted != 2 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 2 submitted", stats)
	}
}

func TestServerCancelJob(t *testing.T) {
	stub := &stubExec{started: make(chan string, 1), gate: make(chan struct{})}
	ts, _ := newTestServer(t, 1, stub)

	// Occupy the single worker, then queue a second job and cancel it.
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "compress"})
	running := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()
	<-stub.started

	resp = postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "doduc"})
	queued := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	view := waitForState(t, ts.URL, queued.ID, JobCanceled)
	if view.Result != nil {
		t.Fatalf("cancelled job has a result: %+v", view)
	}

	close(stub.gate)
	waitForState(t, ts.URL, running.ID, JobDone)
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("%d simulations ran, want 1 (the cancelled job never executed)", got)
	}
}

func TestServerSweepStreamsNDJSON(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	resp := postJSON(t, ts.URL+"/v1/sweeps?mode=inline", Grid{
		Benchmarks: []string{"ora", "compress"},
		Machines:   []string{"dual"},
		Schedulers: []string{"none", "local"},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sweeps?mode=inline = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep content type = %q", ct)
	}
	if dep := resp.Header.Get("Deprecation"); dep != "true" {
		t.Fatalf("inline sweep Deprecation header = %q, want \"true\"", dep)
	}
	var rows []SweepRow
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep streamed %d rows, want 4", len(rows))
	}
	seen := make(map[int]bool)
	for _, row := range rows {
		if row.Error != "" || row.Result == nil {
			t.Fatalf("sweep row failed: %+v", row)
		}
		if row.Total != 4 {
			t.Fatalf("row total = %d, want 4", row.Total)
		}
		seen[row.Index] = true
	}
	if len(seen) != 4 {
		t.Fatalf("sweep delivered duplicate indices: %v", seen)
	}
	if got := stub.calls.Load(); got != 4 {
		t.Fatalf("sweep executed %d simulations, want 4", got)
	}
}

// TestServerTable2 drives the real execution kernel end to end: the HTTP
// response must agree with the in-process experiment path.
func TestServerTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 18 real simulations")
	}
	ts, svc := newTestServer(t, 0, nil)

	const n = 20_000
	resp, err := http.Get(fmt.Sprintf("%s/v1/table2?n=%d&seed=4242", ts.URL, n))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET /v1/table2 = %d: %s", resp.StatusCode, body)
	}
	rows := decodeJSON[[]experiment.RowExport](t, resp.Body)
	resp.Body.Close()

	benches := workload.All()
	if len(rows) != len(benches) {
		t.Fatalf("table2 has %d rows, want %d", len(rows), len(benches))
	}
	for i, r := range rows {
		if r.Benchmark != benches[i].Name {
			t.Fatalf("row %d benchmark = %s, want %s", i, r.Benchmark, benches[i].Name)
		}
		if r.SingleCycles == 0 || r.DualNoneCycles == 0 || r.DualLocalCycles == 0 {
			t.Fatalf("row %s has zero cycle counts: %+v", r.Benchmark, r)
		}
	}

	// A repeated request is served entirely from the cache.
	before := svc.Stats().Cache
	resp, err = http.Get(fmt.Sprintf("%s/v1/table2?n=%d&seed=4242&format=csv", ts.URL, n))
	if err != nil {
		t.Fatal(err)
	}
	csvBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(csvBody), rows[0].Benchmark) {
		t.Fatalf("csv output missing benchmark names:\n%s", csvBody)
	}
	after := svc.Stats().Cache
	if after.Misses != before.Misses {
		t.Fatalf("repeated table2 recomputed: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+int64(3*len(benches)) {
		t.Fatalf("repeated table2 hits %d -> %d, want +%d", before.Hits, after.Hits, 3*len(benches))
	}
}

func TestServerExpvar(t *testing.T) {
	ts, _ := newTestServer(t, 1, &stubExec{})
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := vars["sweep"]; !ok {
		t.Fatalf("expvar is missing the sweep counters: %s", body)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	stub := &stubExec{started: make(chan string, 1), gate: make(chan struct{})}
	ts, svc := newTestServer(t, 1, stub)

	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "compress"})
	inFlight := decodeJSON[JobView](t, resp.Body)
	resp.Body.Close()
	<-stub.started

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	// While draining, new submissions are refused with 503.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "ora"})
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("POST /v1/jobs during drain = %d, want 503", code)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The in-flight job still completes before Drain returns.
	close(stub.gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	view := waitForState(t, ts.URL, inFlight.ID, JobDone)
	if view.Result == nil {
		t.Fatalf("drained job lost its result: %+v", view)
	}
}

func TestServerBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 1, &stubExec{})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "nonesuch"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/table2?width=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad width = %d, want 400", resp.StatusCode)
	}
}
