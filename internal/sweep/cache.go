package sweep

import (
	"sync/atomic"

	"multicluster/internal/conc"
	"multicluster/internal/faultinject"
)

// Cache is the content-addressed result cache of the service: completed
// Results keyed by JobSpec hash, with single-flight deduplication so
// concurrent identical requests share one simulation. Only successful
// results are retained — a failed or cancelled computation is forgotten so
// a later request can retry.
//
// With a Journal attached the cache writes through: a result is appended
// (and fsynced) before it is served, so every result a client has seen
// survives a crash and is replayed into the cache on restart. A journal
// append failure degrades durability, not availability: the result is
// still cached and returned, and the failure is counted.
type Cache struct {
	memo    conc.Memo
	journal *Journal
	inject  *faultinject.Plan

	journalErrors atomic.Int64
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Hits counts requests served from the cache, including requests that
	// joined an in-flight computation.
	Hits int64 `json:"hits"`
	// Misses counts requests that ran the computation.
	Misses int64 `json:"misses"`
	// Entries is the number of cached results (completed or in flight).
	Entries int `json:"entries"`
	// InFlight is the number of computations currently running.
	InFlight int64 `json:"in_flight"`
	// JournalErrors counts results that could not be journaled (still
	// served, but not durable).
	JournalErrors int64 `json:"journal_errors,omitempty"`
}

// GetOrCompute returns the cached Result for hash, computing it with fn on
// the first request. Concurrent requests for the same hash share one
// computation. hit reports whether the result came from the cache or from
// joining an in-flight computation. Errors are returned but not cached.
//
// key seeds fault injection at the cache boundary; it carries the attempt
// number so chaos runs are deterministic per retry.
func (c *Cache) GetOrCompute(hash, key string, fn func() (*Result, error)) (res *Result, hit bool, err error) {
	if err := c.inject.Check("cache", key); err != nil {
		return nil, false, err
	}
	v, err, hit := c.memo.Do(hash, func() (any, error) {
		r, err := fn()
		if err != nil {
			return nil, err
		}
		c.persist(r, key)
		return r, nil
	})
	if err != nil {
		// Do not content-address failures: a cancelled or crashed job must
		// not poison the hash for future requests.
		c.memo.Forget(hash)
		return nil, hit, err
	}
	return v.(*Result), hit, nil
}

// persist writes a freshly computed result through to the journal.
// Injected journal panics and append errors are absorbed here: durability
// degrades (and is counted) but the computed result is still served.
func (c *Cache) persist(r *Result, key string) {
	if c.journal == nil {
		return
	}
	defer func() {
		if recover() != nil {
			c.journalErrors.Add(1)
		}
	}()
	if err := c.inject.Check("journal", key); err != nil {
		c.journalErrors.Add(1)
		return
	}
	if err := c.journal.Append(r); err != nil {
		c.journalErrors.Add(1)
	}
}

// Get returns the completed Result for hash without computing anything.
func (c *Cache) Get(hash string) (*Result, bool) {
	v, err, ok := c.memo.Get(hash)
	if !ok || err != nil {
		return nil, false
	}
	return v.(*Result), true
}

// Seed installs a completed result without journaling it — the replay
// path. It reports whether the hash was newly installed.
func (c *Cache) Seed(hash string, res *Result) bool {
	return c.memo.Seed(hash, res)
}

// Store installs a result computed elsewhere (a cluster replication or
// hint replay) and, when it is newly installed, writes it through to
// the journal so it survives a restart like a local computation would.
// It reports whether the hash was newly installed.
func (c *Cache) Store(res *Result) bool {
	if !c.memo.Seed(res.Hash, res) {
		return false
	}
	c.persist(res, res.Hash)
	return true
}

// Hashes enumerates the content hashes of every completed result in
// the cache — the range-scan seam for cluster rebalancing and
// anti-entropy digests. In-flight computations are excluded.
func (c *Cache) Hashes() []string {
	return c.memo.Keys()
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.memo.Hits(),
		Misses:        c.memo.Misses(),
		Entries:       c.memo.Len(),
		InFlight:      c.memo.InFlight(),
		JournalErrors: c.journalErrors.Load(),
	}
}
