package sweep

import (
	"multicluster/internal/conc"
)

// Cache is the content-addressed result cache of the service: completed
// Results keyed by JobSpec hash, with single-flight deduplication so
// concurrent identical requests share one simulation. Only successful
// results are retained — a failed or cancelled computation is forgotten so
// a later request can retry.
type Cache struct {
	memo conc.Memo
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Hits counts requests served from the cache, including requests that
	// joined an in-flight computation.
	Hits int64 `json:"hits"`
	// Misses counts requests that ran the computation.
	Misses int64 `json:"misses"`
	// Entries is the number of cached results (completed or in flight).
	Entries int `json:"entries"`
	// InFlight is the number of computations currently running.
	InFlight int64 `json:"in_flight"`
}

// GetOrCompute returns the cached Result for hash, computing it with fn on
// the first request. Concurrent requests for the same hash share one
// computation. hit reports whether the result came from the cache or from
// joining an in-flight computation. Errors are returned but not cached.
func (c *Cache) GetOrCompute(hash string, fn func() (*Result, error)) (res *Result, hit bool, err error) {
	v, err, hit := c.memo.Do(hash, func() (any, error) {
		return fn()
	})
	if err != nil {
		// Do not content-address failures: a cancelled or crashed job must
		// not poison the hash for future requests.
		c.memo.Forget(hash)
		return nil, hit, err
	}
	return v.(*Result), hit, nil
}

// Get returns the completed Result for hash without computing anything.
func (c *Cache) Get(hash string) (*Result, bool) {
	v, err, ok := c.memo.Get(hash)
	if !ok || err != nil {
		return nil, false
	}
	return v.(*Result), true
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.memo.Hits(),
		Misses:   c.memo.Misses(),
		Entries:  c.memo.Len(),
		InFlight: c.memo.InFlight(),
	}
}
