package sweep

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Journal is the crash-safe persistence layer of the result cache: an
// append-only file of length-prefixed, checksummed JSON records, one per
// completed Result. The cache writes through on every store and the
// service replays the journal on startup, so a daemon restart — graceful
// or not — restores every committed result.
//
// Record layout (all integers big-endian):
//
//	[4 bytes length][4 bytes CRC32-IEEE of payload][length bytes JSON Result]
//
// Recovery is corruption-tolerant: replay stops at the first record whose
// length, checksum, or JSON is invalid (the classic torn tail of a crash
// mid-append) and the file is truncated back to the last good record, so
// the next append continues from a clean boundary.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	recovered []*Result

	records      atomic.Int64 // records live in the file
	appends      atomic.Int64 // successful appends this process
	appendErrors atomic.Int64 // failed appends this process
	truncated    atomic.Int64 // bytes discarded during recovery
}

// JournalStats is a snapshot of the journal counters.
type JournalStats struct {
	Path         string `json:"path"`
	Records      int64  `json:"records"`
	Appends      int64  `json:"appends"`
	AppendErrors int64  `json:"append_errors"`
	// TruncatedBytes is how much trailing corruption recovery discarded.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// journalMaxRecord bounds a single record so a corrupted length prefix
// cannot ask replay to allocate gigabytes.
const journalMaxRecord = 16 << 20

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record, truncates trailing corruption, and returns the
// journal positioned for appending. The recovered results are available
// from Recovered, in append order; NewService seeds its cache with them
// when the journal is attached via Config.Journal.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	results, good, err := j.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate the torn tail (if any) and seek to the append position.
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal seek: %w", err)
	}
	if size > good {
		j.truncated.Store(size - good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: truncating corrupt journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal seek: %w", err)
	}
	j.records.Store(int64(len(results)))
	j.recovered = results
	return j, nil
}

// Recovered returns the results replayed when the journal was opened, in
// append order.
func (j *Journal) Recovered() []*Result { return j.recovered }

// scanRecords reads length-prefixed CRC32-checksummed records from r
// starting at its current position, returning every intact payload and
// the offset just past the last good record. Scanning stops — without
// error — at the first torn or corrupt record (the classic crash tail);
// valid reports whether each payload also parses, letting callers reject
// records whose framing is fine but whose content is not.
func scanRecords(r io.Reader, valid func(payload []byte) bool) ([][]byte, int64) {
	var (
		payloads [][]byte
		good     int64
		header   [8]byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// io.EOF is a clean end; ErrUnexpectedEOF is a torn header.
			// Either way the scan stops at the last good record.
			break
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > journalMaxRecord {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if valid != nil && !valid(payload) {
			break
		}
		payloads = append(payloads, payload)
		good += 8 + int64(length)
	}
	return payloads, good
}

// writeRecord frames payload (length prefix + CRC32) and appends it to w.
func writeRecord(w io.Writer, payload []byte) error {
	var header [8]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// replay scans the journal from the start, returning every intact record
// and the offset just past the last good one.
func (j *Journal) replay() ([]*Result, int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("sweep: journal seek: %w", err)
	}
	var results []*Result
	_, good := scanRecords(j.f, func(payload []byte) bool {
		var res Result
		if err := json.Unmarshal(payload, &res); err != nil {
			return false
		}
		results = append(results, &res)
		return true
	})
	return results, good, nil
}

// Append durably writes one result: the record is written and fsynced
// before Append returns, so a result the cache has acknowledged survives
// an immediate crash.
func (j *Journal) Append(res *Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: journal marshal: %w", err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.appendErrors.Add(1)
		return errors.New("sweep: journal closed")
	}
	// A short write leaves a torn record; recovery truncates it on the
	// next open, so no attempt is made to repair in place.
	if err := writeRecord(j.f, payload); err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.appendErrors.Add(1)
		return fmt.Errorf("sweep: journal sync: %w", err)
	}
	j.appends.Add(1)
	j.records.Add(1)
	return nil
}

// Close closes the journal file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Path:           j.path,
		Records:        j.records.Load(),
		Appends:        j.appends.Load(),
		AppendErrors:   j.appendErrors.Load(),
		TruncatedBytes: j.truncated.Load(),
	}
}
