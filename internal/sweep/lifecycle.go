package sweep

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SweepState is the lifecycle of a sweep resource.
type SweepState string

const (
	SweepRunning  SweepState = "running"
	SweepDone     SweepState = "done"
	SweepCanceled SweepState = "canceled"
)

// DefaultSweepRetention is how many finished sweeps the registry keeps
// when Config.SweepRetention is zero.
const DefaultSweepRetention = 64

// sweepProgressEvery is how many cell completions elapse between
// progress records in the sweep journal. The result journal is the
// authoritative resume substrate (every computed cell is durable the
// moment it is served), so the cursor record is coarse observability,
// not correctness.
const sweepProgressEvery = 32

// ErrSweepNotFound is returned for unknown or evicted sweep ids.
var ErrSweepNotFound = errors.New("sweep: unknown sweep")

// SweepResultRow is one cell of a sweep's result stream, delivered in
// grid order (row N is cell N of the expanded grid). Unlike the legacy
// inline SweepRow it carries no cache_hit flag: the stream is defined by
// the grid, not by which server instance happened to compute which cell,
// so a resumed or re-read stream is byte-identical to the original.
type SweepResultRow struct {
	Index  int     `json:"index"`
	Total  int     `json:"total"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// SweepView is the serializable progress snapshot of a sweep resource.
type SweepView struct {
	ID    string     `json:"id"`
	State SweepState `json:"state"`
	// Total is the expanded grid size; Done counts completed cells of any
	// outcome, and is also the highest cursor from which /results can
	// serve without waiting.
	Total int `json:"total"`
	Done  int `json:"done"`
	// Per-outcome counts: OK cells carry a result, Failed cells an error;
	// CacheHits counts the OK cells served without simulating.
	OK        int       `json:"ok"`
	Failed    int       `json:"failed"`
	CacheHits int       `json:"cache_hits"`
	Resumed   bool      `json:"resumed,omitempty"`
	Client    string    `json:"client,omitempty"`
	Grid      Grid      `json:"grid"`
	Created   time.Time `json:"created"`
	Finished  time.Time `json:"finished,omitzero"`
}

// SweepHandle is one first-class sweep resource: a grid expanded into
// cells, executing asynchronously, with progress queryable and results
// readable as a resumable, in-order stream.
type SweepHandle struct {
	ID      string
	grid    Grid
	specs   []JobSpec
	client  string
	created time.Time
	resumed bool

	cancel context.CancelFunc

	mu       sync.Mutex
	state    SweepState
	rows     []*SweepResultRow // indexed by cell, nil until complete
	done     int
	ok       int
	failed   int
	hits     int
	finished time.Time
	halted   bool          // service shutdown: stop without a terminal state
	notify   chan struct{} // closed and replaced on every change (broadcast)
}

// View snapshots the sweep.
func (h *SweepHandle) View() SweepView {
	h.mu.Lock()
	defer h.mu.Unlock()
	return SweepView{
		ID:        h.ID,
		State:     h.state,
		Total:     len(h.specs),
		Done:      h.done,
		OK:        h.ok,
		Failed:    h.failed,
		CacheHits: h.hits,
		Resumed:   h.resumed,
		Client:    h.client,
		Grid:      h.grid,
		Created:   h.created,
		Finished:  h.finished,
	}
}

// State returns the sweep's current state.
func (h *SweepHandle) State() SweepState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Total is the expanded grid size.
func (h *SweepHandle) Total() int { return len(h.specs) }

// Row returns cell i's row if that cell has completed.
func (h *SweepHandle) Row(i int) (*SweepResultRow, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < 0 || i >= len(h.rows) || h.rows[i] == nil {
		return nil, false
	}
	return h.rows[i], true
}

// terminal reports whether no further rows will arrive: the sweep
// reached a terminal state, or the service is shutting down (in which
// case the sweep resumes on the next start).
func (h *SweepHandle) terminal() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state != SweepRunning || h.halted
}

// waitCh returns a channel closed at the next row completion or state
// change. Take it *before* re-checking Row/terminal so no wakeup is
// missed.
func (h *SweepHandle) waitCh() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notify
}

// broadcastLocked wakes every waiter. Called with h.mu held.
func (h *SweepHandle) broadcastLocked() {
	close(h.notify)
	h.notify = make(chan struct{})
}

// complete records cell i's outcome. Rows arriving after cancellation
// (in-flight cells unwinding with context errors) are dropped so a
// canceled sweep's stream is a clean prefix, not a tail of noise.
// It returns the new completion count, or -1 if the row was dropped.
func (h *SweepHandle) complete(i int, row *SweepResultRow) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != SweepRunning || h.halted || h.rows[i] != nil {
		return -1
	}
	h.rows[i] = row
	h.done++
	switch {
	case row.Error != "":
		h.failed++
	default:
		h.ok++
	}
	h.broadcastLocked()
	return h.done
}

// sweepRegistry owns every sweep resource of a service: creation,
// lookup, cancellation, retention of finished sweeps, journaling, and
// recovery-time resumption.
type sweepRegistry struct {
	svc       *Service
	journal   *SweepJournal
	retention int

	mu            sync.Mutex
	sweeps        map[string]*SweepHandle
	order         []string
	finishedOrder []string
	draining      bool
	nextID        int64

	created int64
	resumed int64
	evicted int64
	states  map[SweepState]int64 // terminal outcomes
}

func newSweepRegistry(svc *Service, journal *SweepJournal, retention int) *sweepRegistry {
	if retention == 0 {
		retention = DefaultSweepRetention
	}
	return &sweepRegistry{
		svc:       svc,
		journal:   journal,
		retention: retention,
		sweeps:    make(map[string]*SweepHandle),
		states:    make(map[SweepState]int64),
	}
}

// sweepID mints the next sweep id, node-prefixed in cluster mode like
// job ids ("n1-s3").
func (r *sweepRegistry) sweepID() string {
	r.nextID++
	if r.svc.nodeID != "" {
		return fmt.Sprintf("%s-s%d", r.svc.nodeID, r.nextID)
	}
	return fmt.Sprintf("s%d", r.nextID)
}

// sweepSeq extracts the numeric suffix of a sweep id ("n1-s42" → 42).
func sweepSeq(id string) (int64, bool) {
	i := strings.LastIndex(id, "s")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// CreateSweep registers a new sweep resource for client and starts its
// cells executing; it returns as soon as the sweep exists. Progress is
// read with Sweep(id).View(), results with the handle's Row/waitCh
// stream seam (the HTTP layer's GET /v1/sweeps/{id}/results).
func (s *Service) CreateSweep(ctx context.Context, client string, grid Grid) (*SweepHandle, error) {
	return s.sweeps.create(ctx, client, grid)
}

// Sweep returns a registered sweep by id.
func (s *Service) SweepByID(id string) (*SweepHandle, bool) { return s.sweeps.get(id) }

// Sweeps returns snapshots of every retained sweep, in creation order.
func (s *Service) Sweeps() []SweepView { return s.sweeps.list() }

// CancelSweep cancels a sweep: remaining cells stop (queued ones never
// run), the state becomes canceled durably, and a restart will not
// resume it.
func (s *Service) CancelSweep(id string) (*SweepHandle, bool) { return s.sweeps.cancelSweep(id) }

func (r *sweepRegistry) create(ctx context.Context, client string, grid Grid) (*SweepHandle, error) {
	specs, err := grid.Expand()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	id := r.sweepID()
	h := r.registerLocked(id, client, grid, specs, time.Now(), false)
	r.mu.Unlock()

	if r.journal != nil {
		if err := r.journal.Created(id, client, grid, h.created); err != nil {
			// Durability degraded: the sweep still runs, it just won't
			// resume across a restart. Counted by the journal itself.
			_ = err
		}
	}
	r.launch(h)
	return h, nil
}

// registerLocked builds and indexes a handle. Called with r.mu held.
func (r *sweepRegistry) registerLocked(id, client string, grid Grid, specs []JobSpec, created time.Time, resumed bool) *SweepHandle {
	h := &SweepHandle{
		ID:      id,
		grid:    grid,
		specs:   specs,
		client:  client,
		created: created,
		resumed: resumed,
		state:   SweepRunning,
		rows:    make([]*SweepResultRow, len(specs)),
		notify:  make(chan struct{}),
	}
	r.sweeps[id] = h
	r.order = append(r.order, id)
	r.created++
	if resumed {
		r.resumed++
	}
	return h
}

// launch starts the sweep's cells. Cells run through the service's
// normal compute path (cache, single-flight, retries, cluster routing)
// on the worker pool, attributed to the sweep's owning client so the
// pool's weighted-fair queueing keeps one tenant's grid from starving
// everyone else. Per-sweep cell fan-out is bounded to keep goroutine
// count proportional to the pool, not the grid.
func (r *sweepRegistry) launch(h *SweepHandle) {
	ctx, cancel := context.WithCancel(r.svc.base)
	if h.client != "" {
		ctx = WithClientID(ctx, h.client)
	}
	h.mu.Lock()
	h.cancel = cancel
	h.mu.Unlock()

	go func() {
		defer cancel()
		// Prewarm batchable cell groups before any cell is queued: within
		// the sweep's tenant the pool is FIFO, so the batches run first and
		// the cells they cover become cache hits.
		r.svc.prewarmBatches(h.client, h.specs)
		width := 2 * r.svc.pool.Workers()
		if width > len(h.specs) {
			width = len(h.specs)
		}
		sem := make(chan struct{}, width)
		var wg sync.WaitGroup
	cells:
		for i, spec := range h.specs {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break cells
			}
			wg.Add(1)
			go func(i int, spec JobSpec) {
				defer wg.Done()
				defer func() { <-sem }()
				res, hit, err := r.svc.Run(ctx, spec)
				row := &SweepResultRow{Index: i, Total: len(h.specs), Result: res}
				if err != nil {
					row.Error = err.Error()
					row.Result = nil
				}
				r.cellDone(h, i, row, hit)
			}(i, spec)
		}
		wg.Wait()
		r.finish(h)
	}()
}

// cellDone folds one finished cell into the sweep and journals the
// completion cursor periodically.
func (r *sweepRegistry) cellDone(h *SweepHandle, i int, row *SweepResultRow, hit bool) {
	done := h.complete(i, row)
	if done < 0 {
		return
	}
	if hit && row.Error == "" {
		h.mu.Lock()
		h.hits++
		h.mu.Unlock()
	}
	if r.journal != nil && done%sweepProgressEvery == 0 {
		r.journal.Progress(h.ID, done)
	}
}

// finish moves a sweep that ran out of cells to its terminal state. A
// halted sweep (service shutdown) keeps state running and writes no
// terminal record — that is exactly what makes the next start resume it.
func (r *sweepRegistry) finish(h *SweepHandle) {
	h.mu.Lock()
	if h.state != SweepRunning || h.halted {
		h.mu.Unlock()
		return
	}
	h.state = SweepDone
	h.finished = time.Now()
	h.broadcastLocked()
	h.mu.Unlock()

	if r.journal != nil {
		r.journal.Finished(h.ID, SweepDone)
	}
	r.retire(h, SweepDone)
}

func (r *sweepRegistry) get(id string) (*SweepHandle, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.sweeps[id]
	return h, ok
}

func (r *sweepRegistry) list() []SweepView {
	r.mu.Lock()
	handles := make([]*SweepHandle, 0, len(r.sweeps))
	for _, id := range r.order {
		if h, ok := r.sweeps[id]; ok {
			handles = append(handles, h)
		}
	}
	r.mu.Unlock()
	views := make([]SweepView, len(handles))
	for i, h := range handles {
		views[i] = h.View()
	}
	return views
}

func (r *sweepRegistry) cancelSweep(id string) (*SweepHandle, bool) {
	r.mu.Lock()
	h, ok := r.sweeps[id]
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	h.mu.Lock()
	already := h.state != SweepRunning
	if !already {
		h.state = SweepCanceled
		h.finished = time.Now()
		h.broadcastLocked()
	}
	cancel := h.cancel
	h.mu.Unlock()
	if already {
		return h, true
	}
	if cancel != nil {
		cancel()
	}
	if r.journal != nil {
		r.journal.Finished(h.ID, SweepCanceled)
	}
	r.retire(h, SweepCanceled)
	return h, true
}

// retire applies the retention bound to a freshly terminal sweep.
func (r *sweepRegistry) retire(h *SweepHandle, state SweepState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[state]++
	if r.retention < 0 {
		return
	}
	r.finishedOrder = append(r.finishedOrder, h.ID)
	for len(r.finishedOrder) > r.retention {
		id := r.finishedOrder[0]
		r.finishedOrder = r.finishedOrder[1:]
		delete(r.sweeps, id)
		r.evicted++
	}
	if len(r.finishedOrder)*2 < len(r.order) {
		kept := make([]string, 0, len(r.sweeps))
		for _, id := range r.order {
			if _, ok := r.sweeps[id]; ok {
				kept = append(kept, id)
			}
		}
		r.order = kept
	}
}

// recover re-materializes journaled sweeps: incomplete ones resume
// executing (already-journaled cells complete instantly from the seeded
// result cache), finished ones re-run the same way so their result
// streams are servable again — at cache speed, with zero recomputation.
func (r *sweepRegistry) recover() {
	if r.journal == nil {
		return
	}
	for _, rs := range r.journal.Recovered() {
		specs, err := rs.Grid.Expand()
		if err != nil {
			// A grid that no longer expands (renamed benchmark across an
			// upgrade) cannot resume; drop it rather than wedge recovery.
			continue
		}
		r.mu.Lock()
		if n, ok := sweepSeq(rs.ID); ok && n > r.nextID {
			r.nextID = n
		}
		h := r.registerLocked(rs.ID, rs.Client, rs.Grid, specs, rs.Created, true)
		r.mu.Unlock()
		r.launch(h)
	}
}

// shutdownAll halts every running sweep without recording a terminal
// state: queued cells stop promptly (their contexts die), and the next
// start resumes each sweep from the journal. New sweep creation is
// refused from here on.
func (r *sweepRegistry) shutdownAll() {
	r.mu.Lock()
	r.draining = true
	handles := make([]*SweepHandle, 0, len(r.sweeps))
	for _, h := range r.sweeps {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		if h.state == SweepRunning {
			h.halted = true
			h.broadcastLocked()
		}
		cancel := h.cancel
		h.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// SweepStats aggregates the registry counters.
type SweepStats struct {
	// Created counts sweeps registered this process (resumed included).
	Created int64 `json:"created"`
	// Resumed counts sweeps re-materialized from the journal at startup.
	Resumed int64 `json:"resumed"`
	// Active is the number of sweeps currently running.
	Active int `json:"active"`
	// Evicted counts finished sweeps dropped by the retention bound.
	Evicted int64                `json:"evicted"`
	States  map[SweepState]int64 `json:"states"`
}

func (r *sweepRegistry) stats() SweepStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := SweepStats{
		Created: r.created,
		Resumed: r.resumed,
		Evicted: r.evicted,
		States:  make(map[SweepState]int64, len(r.states)),
	}
	for k, v := range r.states {
		st.States[k] = v
	}
	st.Active = len(r.sweeps) - len(r.finishedOrder)
	return st
}

func (r *sweepRegistry) activeCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sweeps) - len(r.finishedOrder)
}
