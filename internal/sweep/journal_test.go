package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testResult fabricates a distinct, recognizable result for journal tests.
func testResult(i int) *Result {
	return &Result{
		Spec:    JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "none", Seed: int64(i + 1)},
		Hash:    fmt.Sprintf("hash-%04d", i),
		Spilled: i,
		Demoted: i * 2,
	}
}

func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	g, _ := json.Marshal(got)
	w, _ := json.Marshal(want)
	if string(g) != string(w) {
		t.Fatalf("result mismatch:\n got  %s\n want %s", g, w)
	}
}

func TestJournalCleanRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := j.Append(testResult(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) != n {
		t.Fatalf("recovered %d records, want %d", len(rec), n)
	}
	for i, r := range rec {
		sameResult(t, r, testResult(i))
	}
	if st := j2.Stats(); st.Records != n || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean restart = %+v", st)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(testResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the last record mid-payload, as a crash between write and sync
	// would.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := j2.Recovered()
	if len(rec) != 2 {
		t.Fatalf("recovered %d records after torn tail, want 2", len(rec))
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("recovery reported no truncated bytes for a torn tail")
	}
	// The journal keeps working from the clean boundary.
	if err := j2.Append(testResult(9)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	rec = j3.Recovered()
	if len(rec) != 3 {
		t.Fatalf("recovered %d records after repair+append, want 3", len(rec))
	}
	sameResult(t, rec[2], testResult(9))
}

func TestJournalFlippedChecksumByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	var off int64
	for i := 0; i < 3; i++ {
		offsets = append(offsets, off)
		if err := j.Append(testResult(i)); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(path)
		off = st.Size()
	}
	j.Close()

	// Flip one payload byte inside the middle record. Replay must stop at
	// the first bad record: record 0 survives, records 1 and 2 are
	// discarded (the journal cannot trust anything past unverified bytes).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := offsets[1] + 8 + 3 // past the header, into the payload
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) != 1 {
		t.Fatalf("recovered %d records after checksum corruption, want 1", len(rec))
	}
	sameResult(t, rec[0], testResult(0))
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("recovery reported no truncated bytes for checksum corruption")
	}
}

// TestJournalServiceCrashReplay proves the service-level contract: the
// cache state after an abrupt restart equals the pre-crash committed set.
func TestJournalServiceCrashReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	stub := &stubExec{}
	svc := NewService(Config{Workers: 2, Journal: j, exec: stub.exec})
	specs := []JobSpec{
		{Benchmark: "compress"},
		{Benchmark: "ora", Scheduler: "local"},
		{Benchmark: "doduc", Seed: 7},
	}
	committed := make(map[string]*Result)
	for _, spec := range specs {
		res, _, err := svc.Run(t.Context(), spec)
		if err != nil {
			t.Fatalf("run %v: %v", spec, err)
		}
		committed[res.Hash] = res
	}
	// Crash: no Drain, no journal Close — the file simply stops being
	// written, exactly like a killed process. (Appends are fsynced, so
	// everything acknowledged above is on disk.)
	svc.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(Config{Workers: 2, Journal: j2, exec: stub.exec})
	defer svc2.Close()
	defer j2.Close()

	if got := svc2.Stats().Cache.Entries; got != len(committed) {
		t.Fatalf("replayed cache has %d entries, want %d", got, len(committed))
	}
	calls := stub.calls.Load()
	for hash, want := range committed {
		got, ok := svc2.cache.Get(hash)
		if !ok {
			t.Fatalf("hash %s missing after replay", hash)
		}
		sameResult(t, got, want)
	}
	// Re-running a replayed spec is a pure cache hit: no new execution.
	res, hit, err := svc2.Run(t.Context(), specs[0])
	if err != nil || !hit {
		t.Fatalf("re-run after replay: hit=%v err=%v", hit, err)
	}
	sameResult(t, res, committed[res.Hash])
	if stub.calls.Load() != calls {
		t.Fatal("re-run after replay executed a simulation")
	}
}
