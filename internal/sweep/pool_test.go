package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool(1)
	defer p.Drain()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		if err := p.Submit(func() error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}, func(error) { wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v is not FIFO", order)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Drain()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		p.Submit(func() error {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-gate
			cur.Add(-1)
			return nil
		}, func(error) { wg.Done() })
	}
	// Let the workers saturate, then release everyone.
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
	st := p.Stats()
	if st.Completed != 24 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 24 completed, 0 failed", st)
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(2)
	defer p.Drain()

	errc := make(chan error, 1)
	p.Submit(func() error { panic("job gone wrong") }, func(err error) { errc <- err })
	err := <-errc
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking job reported %v, want *PanicError", err)
	}
	if pe.Value != "job gone wrong" || pe.Stack == "" {
		t.Fatalf("panic not captured: %+v", pe)
	}

	// The pool survives: both workers still process work.
	var wg sync.WaitGroup
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		p.Submit(func() error { ran.Add(1); return nil }, func(error) { wg.Done() })
	}
	wg.Wait()
	if ran.Load() != 8 {
		t.Fatalf("pool lost workers after a panic: only %d/8 jobs ran", ran.Load())
	}
	st := p.Stats()
	if st.Panics != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 panic, 1 failed", st)
	}
}

// gatedPool starts a 1-worker pool whose worker is parked on a gate
// task, so the test can build up tenant backlogs and then release the
// worker to observe pure scheduling order.
func gatedPool(t *testing.T) (p *Pool, release func()) {
	t.Helper()
	p = NewPool(1)
	t.Cleanup(p.Drain)
	started := make(chan struct{})
	gate := make(chan struct{})
	p.SubmitAs("zz-gate", 1, func() error {
		close(started)
		<-gate
		return nil
	}, nil)
	<-started
	return p, func() { close(gate) }
}

// TestPoolWeightedFairness: with a single worker and the deterministic
// key tie-break, a weight-2 tenant backlogged against a weight-1 tenant
// must be served in an exact 2:1 virtual-time pattern, not in backlog
// order.
func TestPoolWeightedFairness(t *testing.T) {
	p, release := gatedPool(t)

	var mu sync.Mutex
	var order string
	var wg sync.WaitGroup
	enqueue := func(tenant string, weight, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			p.SubmitAs(tenant, weight, func() error {
				mu.Lock()
				order += tenant
				mu.Unlock()
				return nil
			}, func(error) { wg.Done() })
		}
	}
	// All of w's backlog lands before any of x's, so plain FIFO would run
	// wwwwwwwwxxxx.
	enqueue("w", 2, 8)
	enqueue("x", 1, 4)
	release()
	wg.Wait()

	// Both tenants enter at vtime 0; w advances by 1/2 per task, x by 1,
	// ties go to the smaller key. That yields exactly (w x w) repeated.
	if want := "wxwwxwwxwwxw"; order != want {
		t.Fatalf("weighted schedule = %q, want %q", order, want)
	}
}

// TestPoolNoStarvation: a tenant with one queued task must be served
// almost immediately even when another tenant has a deep backlog ahead
// of it — the WFQ guarantee the sweep fleet relies on to keep
// interactive clients responsive under batch load.
func TestPoolNoStarvation(t *testing.T) {
	p, release := gatedPool(t)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(tenant string) {
		wg.Add(1)
		p.SubmitAs(tenant, 1, func() error {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			return nil
		}, func(error) { wg.Done() })
	}
	for i := 0; i < 50; i++ {
		submit("bulk")
	}
	submit("live") // enqueued dead last, behind 50 bulk tasks
	release()
	wg.Wait()

	pos := -1
	for i, tenant := range order {
		if tenant == "live" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("interactive task ran at position %d behind a 50-task backlog, want within the first 2", pos)
	}
	if len(order) != 51 {
		t.Fatalf("ran %d tasks, want 51", len(order))
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Drain()
	if err := p.Submit(func() error { return nil }, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Drain = %v, want ErrPoolClosed", err)
	}
}

func TestPoolDrainFinishesQueue(t *testing.T) {
	p := NewPool(1)
	var done atomic.Int64
	gate := make(chan struct{})
	p.Submit(func() error { <-gate; done.Add(1); return nil }, nil)
	for i := 0; i < 5; i++ {
		p.Submit(func() error { done.Add(1); return nil }, nil)
	}
	close(gate)
	p.Drain()
	if done.Load() != 6 {
		t.Fatalf("Drain returned with %d/6 tasks finished", done.Load())
	}
}
