package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool(1)
	defer p.Drain()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		if err := p.Submit(func() error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		}, func(error) { wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v is not FIFO", order)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Drain()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		p.Submit(func() error {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-gate
			cur.Add(-1)
			return nil
		}, func(error) { wg.Done() })
	}
	// Let the workers saturate, then release everyone.
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
	st := p.Stats()
	if st.Completed != 24 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 24 completed, 0 failed", st)
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(2)
	defer p.Drain()

	errc := make(chan error, 1)
	p.Submit(func() error { panic("job gone wrong") }, func(err error) { errc <- err })
	err := <-errc
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking job reported %v, want *PanicError", err)
	}
	if pe.Value != "job gone wrong" || pe.Stack == "" {
		t.Fatalf("panic not captured: %+v", pe)
	}

	// The pool survives: both workers still process work.
	var wg sync.WaitGroup
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		p.Submit(func() error { ran.Add(1); return nil }, func(error) { wg.Done() })
	}
	wg.Wait()
	if ran.Load() != 8 {
		t.Fatalf("pool lost workers after a panic: only %d/8 jobs ran", ran.Load())
	}
	st := p.Stats()
	if st.Panics != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want 1 panic, 1 failed", st)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Drain()
	if err := p.Submit(func() error { return nil }, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Drain = %v, want ErrPoolClosed", err)
	}
}

func TestPoolDrainFinishesQueue(t *testing.T) {
	p := NewPool(1)
	var done atomic.Int64
	gate := make(chan struct{})
	p.Submit(func() error { <-gate; done.Add(1); return nil }, nil)
	for i := 0; i < 5; i++ {
		p.Submit(func() error { done.Add(1); return nil }, nil)
	}
	close(gate)
	p.Drain()
	if done.Load() != 6 {
		t.Fatalf("Drain returned with %d/6 tasks finished", done.Load())
	}
}
