package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRemote scripts the cluster hook: it claims every hash is owned by
// "peer" (unless local is true), answers RunRemote from a canned result
// or error, and records everything it sees.
type fakeRemote struct {
	mu        sync.Mutex
	local     bool
	err       error
	runs      int
	completed []*Result
	repaired  []*Result
	reqIDs    []string
	clientIDs []string
}

func (f *fakeRemote) Route(hash string) (string, bool) {
	return "peer", f.local
}

func (f *fakeRemote) RunRemote(ctx context.Context, node string, spec JobSpec) (*Result, error) {
	f.mu.Lock()
	f.runs++
	f.reqIDs = append(f.reqIDs, RequestIDFrom(ctx))
	f.clientIDs = append(f.clientIDs, ClientIDFrom(ctx))
	err := f.err
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	norm, nerr := spec.Normalize()
	if nerr != nil {
		return nil, nerr
	}
	hash, nerr := norm.Hash()
	if nerr != nil {
		return nil, nerr
	}
	return &Result{Spec: norm, Hash: hash}, nil
}

func (f *fakeRemote) Completed(res *Result) {
	f.mu.Lock()
	f.completed = append(f.completed, res)
	f.mu.Unlock()
}

func (f *fakeRemote) ReadRepair(res *Result) {
	f.mu.Lock()
	f.repaired = append(f.repaired, res)
	f.mu.Unlock()
}

func (f *fakeRemote) counts() (runs, completed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs, len(f.completed)
}

func TestServiceForwardsNonOwnedToRemote(t *testing.T) {
	fr := &fakeRemote{}
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	res, hit, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first routed run reported a cache hit")
	}
	if res == nil || res.Hash == "" {
		t.Fatal("forwarded run returned no result")
	}
	runs, completed := fr.counts()
	if runs != 1 {
		t.Errorf("RunRemote calls = %d, want 1", runs)
	}
	if completed != 0 {
		t.Error("a forwarded result must not be re-offered for replication")
	}
	if got := int(stub.calls.Load()); got != 0 {
		t.Errorf("local executions = %d for a forwarded run", got)
	}

	// The forwarded result is seeded locally: the repeat is a cache hit
	// with no second network trip.
	_, hit, err = svc.Run(context.Background(), JobSpec{Benchmark: "compress"})
	if err != nil || !hit {
		t.Fatalf("repeat = hit %v, %v; want cache hit", hit, err)
	}
	if runs, _ := fr.counts(); runs != 1 {
		t.Errorf("repeat re-forwarded: %d calls", runs)
	}
}

func TestReplicaCacheHitTriggersReadRepair(t *testing.T) {
	fr := &fakeRemote{}
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	// First run forwards and seeds the local replica cache.
	if _, _, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"}); err != nil {
		t.Fatal(err)
	}
	fr.mu.Lock()
	repairs := len(fr.repaired)
	fr.mu.Unlock()
	if repairs != 0 {
		t.Errorf("a fresh forward fired %d read-repairs; only replica hits should", repairs)
	}

	// Repeats are replica-local cache hits for a non-owned hash: each one
	// offers the result for read-repair (deduplication is the cluster
	// layer's job, not the service's).
	for i := 0; i < 2; i++ {
		if _, hit, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"}); err != nil || !hit {
			t.Fatalf("repeat %d: hit=%v err=%v", i, hit, err)
		}
	}
	fr.mu.Lock()
	repairs = len(fr.repaired)
	repairedHash := ""
	if repairs > 0 {
		repairedHash = fr.repaired[0].Hash
	}
	fr.mu.Unlock()
	if repairs != 2 {
		t.Errorf("read-repairs = %d, want 2 (one per replica hit)", repairs)
	}
	norm, _ := JobSpec{Benchmark: "compress"}.Normalize()
	hash, _ := norm.Hash()
	if repairedHash != hash {
		t.Errorf("read-repair offered hash %q, want %q", repairedHash, hash)
	}
}

func TestServiceFallsBackLocalWhenForwardFails(t *testing.T) {
	fr := &fakeRemote{err: errors.New("owner unreachable")}
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	res, hit, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if hit || res == nil {
		t.Fatalf("fallback: hit=%v res=%v", hit, res)
	}
	if got := int(stub.calls.Load()); got != 1 {
		t.Errorf("local executions = %d, want 1 (the fallback)", got)
	}
	// The locally computed non-owned result is offered back to the
	// cluster — that is the hinted-handoff entry point.
	if _, completed := fr.counts(); completed != 1 {
		t.Errorf("Completed calls = %d, want 1", completed)
	}
}

func TestServiceCompletedFiresOncePerFreshCompute(t *testing.T) {
	fr := &fakeRemote{local: true}
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	if _, _, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Run(context.Background(), JobSpec{Benchmark: "compress"}); err != nil {
		t.Fatal(err)
	}
	if _, completed := fr.counts(); completed != 1 {
		t.Errorf("Completed calls = %d, want exactly 1 (cache hits must not replicate again)", completed)
	}
}

func TestRunLocalNeverForwards(t *testing.T) {
	fr := &fakeRemote{} // claims everything is remote-owned
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	if _, _, err := svc.RunLocal(context.Background(), JobSpec{Benchmark: "compress"}); err != nil {
		t.Fatal(err)
	}
	if runs, _ := fr.counts(); runs != 0 {
		t.Errorf("RunLocal forwarded (%d calls) — forwarded work would loop", runs)
	}
	if got := int(stub.calls.Load()); got != 1 {
		t.Errorf("local executions = %d, want 1", got)
	}
}

func TestNodeIDPrefixesJobIDs(t *testing.T) {
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, NodeID: "n7", exec: stub.exec})
	defer svc.Close()

	job, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.ID, "n7-j") {
		t.Errorf("job id %q lacks the node prefix", job.ID)
	}
	<-job.Done()

	// Without a node id the pre-cluster format is preserved.
	svc2 := NewService(Config{Workers: 1, exec: stub.exec})
	defer svc2.Close()
	job2, err := svc2.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job2.ID, "j") || strings.Contains(job2.ID, "-") {
		t.Errorf("single-node job id %q changed format", job2.ID)
	}
	<-job2.Done()
}

func TestSubmitCtxCarriesRequestMetadata(t *testing.T) {
	fr := &fakeRemote{}
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, Remote: fr, exec: stub.exec})
	defer svc.Close()

	ctx := WithRequestID(context.Background(), "req-77")
	ctx = WithClientID(ctx, "tenant-3")
	job, err := svc.SubmitCtx(ctx, "tenant-3", JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job did not finish")
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.reqIDs) != 1 || fr.reqIDs[0] != "req-77" {
		t.Errorf("forwarded request ids = %v, want [req-77]", fr.reqIDs)
	}
	if len(fr.clientIDs) != 1 || fr.clientIDs[0] != "tenant-3" {
		t.Errorf("forwarded client ids = %v, want [tenant-3]", fr.clientIDs)
	}
}

func TestStoreResultValidatesHash(t *testing.T) {
	stub := &stubExec{}
	svc := NewService(Config{Workers: 1, exec: stub.exec})
	defer svc.Close()

	norm, err := JobSpec{Benchmark: "compress"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.StoreResult(&Result{Spec: norm, Hash: "forged"}); err == nil {
		t.Error("a result whose hash does not match its spec must be refused")
	}
	if err := svc.StoreResult(&Result{Spec: norm}); err == nil {
		t.Error("a result without a hash must be refused")
	}
	if err := svc.StoreResult(&Result{Spec: norm, Hash: hash}); err != nil {
		t.Fatalf("valid stored result refused: %v", err)
	}
	if res, ok := svc.Cached(hash); !ok || res.Hash != hash {
		t.Error("stored result not retrievable from the cache")
	}
	// Idempotent: storing again succeeds and the first copy wins.
	if err := svc.StoreResult(&Result{Spec: norm, Hash: hash}); err != nil {
		t.Fatalf("duplicate store refused: %v", err)
	}
}
