package sweep

import (
	"net/http"
	"time"

	"multicluster/internal/core"
	"multicluster/internal/obs"
)

// Metrics is the sweep service's observability surface: job-latency
// breakdown histograms, admission/eviction counters, cache/pool/journal
// samplers, and the simulator-core probe adapters, all registered in one
// obs.Registry that the server exposes at GET /metrics.
//
// Construct with NewMetrics and hand to one Service via Config.Metrics —
// the scrape-time samplers bind to that service's pool, cache, and
// journal, so a Metrics instance must not be shared between services. A
// nil *Metrics disables everything (every method is nil-safe).
type Metrics struct {
	reg *obs.Registry

	// Job lifecycle.
	queueWait *obs.Histogram // submission → first execution
	runTime   *obs.Histogram // first execution → terminal state
	totalTime *obs.Histogram // submission → terminal state
	attempts  *obs.Histogram // executions per finished job
	backoff   *obs.Histogram // individual retry backoff sleeps
	evicted   *obs.Counter
	outcomes  map[JobState]*obs.Counter

	// HTTP-side classification.
	clientCanceled *obs.Counter

	// Core probe instruments (fed by the *core.Probes adapter).
	coreCycles    *obs.Counter
	coreReplays   *obs.Counter
	coreSquashed  *obs.Counter
	coreStalls    [core.NumStallCauses]*obs.Counter
	coreDist      [2]*obs.Counter // 0 single, 1 dual
	coreQueueOcc  [2]*obs.Histogram
	coreOpBufOcc  [2]*obs.Histogram
	coreResBufOcc [2]*obs.Histogram
}

// NewMetrics registers the sweep and core instrument families in reg and
// returns the bundle. Call once per service.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}

	dur := obs.DefaultDurationBuckets()
	m.queueWait = reg.Histogram("sweep_job_queue_wait_seconds",
		"Time a job spent admitted but not yet executing.", dur)
	m.runTime = reg.Histogram("sweep_job_run_seconds",
		"Time from a job's first execution to its terminal state, retries and backoff included.", dur)
	m.totalTime = reg.Histogram("sweep_job_total_seconds",
		"Time from submission to terminal state.", dur)
	m.attempts = reg.Histogram("sweep_job_attempts",
		"Executions a finished job needed (1 = no retries).", []float64{1, 2, 3, 4, 5, 8})
	m.backoff = reg.Histogram("sweep_retry_backoff_seconds",
		"Individual backoff sleeps before transient-failure retries.", dur)
	m.evicted = reg.Counter("sweep_jobs_evicted_total",
		"Finished jobs evicted from the registry by the retention bound.")
	m.outcomes = make(map[JobState]*obs.Counter)
	for _, st := range []JobState{JobDone, JobFailed, JobCanceled} {
		m.outcomes[st] = reg.Counter("sweep_jobs_finished_total",
			"Jobs reaching a terminal state, by outcome.", obs.L("state", string(st)))
	}
	m.clientCanceled = reg.Counter("sweep_http_client_canceled_total",
		"Requests abandoned by the client (context canceled or deadline exceeded mid-computation).")

	m.coreCycles = reg.Counter("core_cycles_total",
		"Simulated machine cycles across all probed runs (cache hits never re-simulate).")
	m.coreReplays = reg.Counter("core_replays_total",
		"Instruction-replay exceptions across all probed runs.")
	m.coreSquashed = reg.Counter("core_replay_squashed_instructions_total",
		"Instructions squashed and refetched by replay exceptions.")
	for c := core.StallCause(0); c < core.NumStallCauses; c++ {
		m.coreStalls[c] = reg.Counter("core_fetch_stall_cycles_total",
			"Cycles the fetch stage made no progress, by cause.", obs.L("cause", c.String()))
	}
	m.coreDist[0] = reg.Counter("core_distributions_total",
		"Logical instructions distributed, by placement.", obs.L("kind", "single"))
	m.coreDist[1] = reg.Counter("core_distributions_total",
		"Logical instructions distributed, by placement.", obs.L("kind", "dual"))

	queueBuckets := []float64{0, 1, 2, 4, 8, 16, 32, 64, 96, 128}
	bufBuckets := []float64{0, 1, 2, 3, 4, 6, 8, 12, 16}
	for c := 0; c < 2; c++ {
		cl := obs.L("cluster", clusterLabel(c))
		m.coreQueueOcc[c] = reg.Histogram("core_dispatch_queue_occupancy",
			"Per-cycle dispatch-queue occupancy, sampled post-issue.", queueBuckets, cl)
		m.coreOpBufOcc[c] = reg.Histogram("core_operand_buffer_occupancy",
			"Per-cycle operand transfer-buffer occupancy.", bufBuckets, cl)
		m.coreResBufOcc[c] = reg.Histogram("core_result_buffer_occupancy",
			"Per-cycle result transfer-buffer occupancy.", bufBuckets, cl)
	}
	return m
}

func clusterLabel(c int) string {
	if c == 0 {
		return "0"
	}
	return "1"
}

// Registry returns the underlying registry (nil when m is nil).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Handler serves the registry in Prometheus text exposition format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.reg.WriteText(w)
	})
}

// CoreProbes returns the probe hooks that feed the core_* instruments.
// The probes are shared by every simulation the service runs; the
// instruments are atomic, so concurrent runs interleave safely.
func (m *Metrics) CoreProbes() *core.Probes {
	if m == nil {
		return nil
	}
	return &core.Probes{
		Cycle: func(s core.CycleSample) {
			m.coreCycles.Inc()
			for c := 0; c < 2; c++ {
				m.coreQueueOcc[c].Observe(float64(s.Queue[c]))
				m.coreOpBufOcc[c].Observe(float64(s.OperandBuf[c]))
				m.coreResBufOcc[c].Observe(float64(s.ResultBuf[c]))
			}
		},
		FetchStall: func(c core.StallCause) {
			if c < core.NumStallCauses {
				m.coreStalls[c].Inc()
			}
		},
		Replay: func(squashed int) {
			m.coreReplays.Inc()
			m.coreSquashed.Add(int64(squashed))
		},
		Distribute: func(dual bool) {
			if dual {
				m.coreDist[1].Inc()
			} else {
				m.coreDist[0].Inc()
			}
		},
	}
}

// bindService registers the scrape-time samplers that read the service's
// own counters (pool, cache, journal, admission), called once from
// NewService.
func (m *Metrics) bindService(s *Service) {
	if m == nil {
		return
	}
	reg := m.reg
	reg.CounterFunc("sweep_jobs_submitted_total",
		"Jobs admitted by the service.", func() int64 { return s.submitted.Load() })
	reg.CounterFunc("sweep_jobs_shed_total",
		"Submissions refused by admission control.", func() int64 { return s.shed.Load() })
	reg.CounterFunc("sweep_retries_total",
		"Transient-failure retries across all jobs.", func() int64 { return s.retries.Load() })
	reg.GaugeFunc("sweep_jobs_live",
		"Admitted, unfinished jobs.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.live)
		})
	reg.GaugeFunc("sweep_jobs_retained",
		"Jobs currently held in the registry (live + retained finished).", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})

	sweeps := s.sweeps
	reg.CounterFunc("sweep_sweeps_created_total",
		"Sweep resources registered (resumed ones included).", func() int64 { return sweeps.stats().Created })
	reg.CounterFunc("sweep_sweeps_resumed_total",
		"Sweeps re-materialized from the sweep journal at startup.", func() int64 { return sweeps.stats().Resumed })
	reg.GaugeFunc("sweep_sweeps_active",
		"Sweeps currently running.", func() float64 { return float64(sweeps.activeCount()) })
	for _, st := range []SweepState{SweepDone, SweepCanceled} {
		st := st
		reg.CounterFunc("sweep_sweeps_finished_total",
			"Sweeps reaching a terminal state, by outcome.", func() int64 {
				sweeps.mu.Lock()
				defer sweeps.mu.Unlock()
				return sweeps.states[st]
			}, obs.L("state", string(st)))
	}

	pool := s.pool
	reg.GaugeFunc("sweep_pool_workers", "Worker-pool size.",
		func() float64 { return float64(pool.Workers()) })
	reg.GaugeFunc("sweep_pool_tenants", "Tenants with queued work in the weighted-fair scheduler.",
		func() float64 { return float64(pool.Stats().Tenants) })
	reg.GaugeFunc("sweep_pool_queued", "Tasks waiting in the pool queue.",
		func() float64 { return float64(pool.Stats().Queued) })
	reg.GaugeFunc("sweep_pool_running", "Tasks currently executing.",
		func() float64 { return float64(pool.Stats().Running) })
	reg.CounterFunc("sweep_pool_completed_total", "Tasks finished, success or failure.",
		func() int64 { return pool.Stats().Completed })
	reg.CounterFunc("sweep_pool_failed_total", "Tasks that returned an error.",
		func() int64 { return pool.Stats().Failed })
	reg.CounterFunc("sweep_pool_panics_total", "Tasks that panicked.",
		func() int64 { return pool.Stats().Panics })

	cache := &s.cache
	reg.CounterFunc("sweep_cache_hits_total", "Requests served from the result cache.",
		func() int64 { return cache.Stats().Hits })
	reg.CounterFunc("sweep_cache_misses_total", "Requests that ran the computation.",
		func() int64 { return cache.Stats().Misses })
	reg.GaugeFunc("sweep_cache_entries", "Cached results (completed or in flight).",
		func() float64 { return float64(cache.Stats().Entries) })
	reg.CounterFunc("sweep_cache_journal_errors_total", "Results that could not be journaled.",
		func() int64 { return cache.Stats().JournalErrors })

	if j := s.journal; j != nil {
		reg.CounterFunc("sweep_journal_appends_total", "Successful journal appends.",
			func() int64 { return j.Stats().Appends })
		reg.CounterFunc("sweep_journal_append_errors_total", "Failed journal appends.",
			func() int64 { return j.Stats().AppendErrors })
		reg.GaugeFunc("sweep_journal_records", "Records live in the journal file.",
			func() float64 { return float64(j.Stats().Records) })
	}
}

// observeFinished records one job's latency breakdown at its terminal
// state.
func (m *Metrics) observeFinished(j *Job) {
	if m == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	created, started, finished := j.created, j.started, j.finished
	attempts := j.attempts
	j.mu.Unlock()

	if c := m.outcomes[state]; c != nil {
		c.Inc()
	}
	m.totalTime.Observe(finished.Sub(created).Seconds())
	if !started.IsZero() {
		m.queueWait.Observe(started.Sub(created).Seconds())
		m.runTime.Observe(finished.Sub(started).Seconds())
	}
	if attempts > 0 {
		m.attempts.Observe(float64(attempts))
	}
}

// observeBackoff records one retry backoff sleep.
func (m *Metrics) observeBackoff(d time.Duration) {
	if m == nil {
		return
	}
	m.backoff.Observe(d.Seconds())
}

// observeEvicted counts registry evictions.
func (m *Metrics) observeEvicted(n int) {
	if m == nil {
		return
	}
	m.evicted.Add(int64(n))
}

// observeClientCanceled counts a request abandoned by its client.
func (m *Metrics) observeClientCanceled() {
	if m == nil {
		return
	}
	m.clientCanceled.Inc()
}
