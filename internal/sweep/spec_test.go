package sweep

import (
	"strings"
	"testing"

	"multicluster/internal/core"
)

func TestNormalizeDefaults(t *testing.T) {
	n, err := JobSpec{Benchmark: "compress"}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if n.Machine != "dual" || n.Scheduler != "none" || n.Seed != 42 ||
		n.Instructions != 300_000 || n.ProfileInstructions != 50_000 {
		t.Fatalf("unexpected defaults: %+v", n)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	for _, spec := range []JobSpec{
		{Benchmark: "nonesuch"},
		{Benchmark: "compress", Machine: "warp9"},
		{Benchmark: "compress", Scheduler: "simulated-annealing"},
		{Benchmark: "compress", Config: &core.Config{Clusters: 3}},
	} {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted a bad spec", spec)
		}
	}
}

func TestHashStability(t *testing.T) {
	a, err := JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local"}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local", Seed: 42, Instructions: 300_000}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("defaulted and explicit specs hash differently: %s vs %s", a, b)
	}

	// A named machine and its explicit configuration address the same
	// content.
	cfg := core.DualCluster4Way()
	c, err := JobSpec{Benchmark: "compress", Config: &cfg, Scheduler: "local"}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("explicit config hashes differently from named machine")
	}

	// The window is folded away for schedulers that ignore it...
	d1, _ := JobSpec{Benchmark: "compress", Scheduler: "none", Window: 9}.Hash()
	d2, _ := JobSpec{Benchmark: "compress", Scheduler: "none"}.Hash()
	if d1 != d2 {
		t.Fatalf("window not folded for non-local scheduler")
	}
	// ...but distinguishes local-scheduler binaries.
	e1, _ := JobSpec{Benchmark: "compress", Scheduler: "local", Window: 9}.Hash()
	e2, _ := JobSpec{Benchmark: "compress", Scheduler: "local"}.Hash()
	if e1 == e2 {
		t.Fatalf("window ignored for local scheduler")
	}

	f, _ := JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local", Seed: 7}.Hash()
	if f == a {
		t.Fatalf("different seeds hash identically")
	}
}

func TestGridExpandDedupes(t *testing.T) {
	specs, err := Grid{
		Benchmarks: []string{"ora"},
		Machines:   []string{"dual"},
		Schedulers: []string{"none", "local"},
		Windows:    []int{0, 8},
	}.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// none/w0 and none/w8 collapse; local/w0 and local/w8 stay distinct.
	if len(specs) != 3 {
		t.Fatalf("expanded to %d specs, want 3: %+v", len(specs), specs)
	}
}

func TestGridExpandDefaults(t *testing.T) {
	specs, err := Grid{}.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// 6 benchmarks × 2 machines × 2 schedulers, minus the single/local
	// duplicate? No — single/none and single/local are distinct binaries.
	if len(specs) != 24 {
		t.Fatalf("default grid expanded to %d specs, want 24", len(specs))
	}
	for _, s := range specs {
		if strings.Contains(s.String(), "custom") {
			t.Fatalf("default grid produced a custom config: %s", s)
		}
	}
}
