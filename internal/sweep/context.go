package sweep

import "context"

// Request metadata travels by context so it survives the trip through
// the service into the cluster layer: a forwarded computation carries
// the originating request id and client id to the owning node, where
// they land in its access logs and admission accounting.

type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxClientID
)

// WithRequestID attaches the originating request id to ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestID, id)
}

// RequestIDFrom returns the request id attached to ctx, if any.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// WithClientID attaches the submitting client's id to ctx.
func WithClientID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxClientID, id)
}

// ClientIDFrom returns the client id attached to ctx, if any.
func ClientIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxClientID).(string)
	return id
}

// copyMeta carries the request metadata of src onto dst — used when a
// job's execution context is derived from the service's base context
// rather than the submitting request's.
func copyMeta(dst, src context.Context) context.Context {
	if id := RequestIDFrom(src); id != "" {
		dst = WithRequestID(dst, id)
	}
	if id := ClientIDFrom(src); id != "" {
		dst = WithClientID(dst, id)
	}
	return dst
}
