package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// eightCellGrid expands to 8 distinct cells (4 benchmarks × 2 schedulers
// on the dual machine), big enough to kill a server in the middle of.
func eightCellGrid() Grid {
	return Grid{
		Benchmarks: []string{"compress", "ora", "doduc", "gcc1"},
		Machines:   []string{"dual"},
		Schedulers: []string{"none", "local"},
	}
}

func getSweepView(t *testing.T, base, id string) (SweepView, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return SweepView{}, resp.StatusCode
	}
	return decodeJSON[SweepView](t, resp.Body), resp.StatusCode
}

func waitForSweep(t *testing.T, base, id string, ok func(SweepView) bool) SweepView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getSweepView(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/sweeps/%s = %d", id, code)
		}
		if ok(v) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached the wanted state", id)
	return SweepView{}
}

// readResults fetches one results page and returns its raw bytes plus
// the decoded rows.
func readResults(t *testing.T, base, id, query string) ([]byte, []SweepResultRow) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/results" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET results%s = %d: %s", query, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rows []SweepResultRow
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row SweepResultRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	return raw, rows
}

// TestSweepLifecycle drives a sweep resource through the full API:
// create (202 + Location), progress polling, in-order result streaming,
// and the structured not-found envelope for unknown ids.
func TestSweepLifecycle(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	resp := postJSON(t, ts.URL+"/v1/sweeps", eightCellGrid())
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /v1/sweeps = %d, want 202: %s", resp.StatusCode, body)
	}
	created := decodeJSON[SweepView](t, resp.Body)
	resp.Body.Close()
	if created.ID == "" || created.Total != 8 || created.State != SweepRunning {
		t.Fatalf("created sweep = %+v, want 8-cell running sweep with an id", created)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+created.ID {
		t.Fatalf("Location = %q, want /v1/sweeps/%s", loc, created.ID)
	}

	done := waitForSweep(t, ts.URL, created.ID, func(v SweepView) bool { return v.State == SweepDone })
	if done.Done != 8 || done.OK != 8 || done.Failed != 0 {
		t.Fatalf("finished sweep = %+v, want done=8 ok=8 failed=0", done)
	}

	_, rows := readResults(t, ts.URL, created.ID, "")
	if len(rows) != 8 {
		t.Fatalf("results streamed %d rows, want 8", len(rows))
	}
	for i, row := range rows {
		if row.Index != i || row.Total != 8 {
			t.Fatalf("row %d = index %d total %d, want in grid order", i, row.Index, row.Total)
		}
		if row.Error != "" || row.Result == nil {
			t.Fatalf("row %d failed: %+v", i, row)
		}
	}

	// The listing includes it.
	lresp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	page := decodeJSON[SweepPage](t, lresp.Body)
	lresp.Body.Close()
	if len(page.Sweeps) != 1 || page.Sweeps[0].ID != created.ID {
		t.Fatalf("GET /v1/sweeps = %+v, want the one sweep", page)
	}

	// Unknown ids answer the structured envelope with a stable code.
	eresp, err := http.Get(ts.URL + "/v1/sweeps/s999")
	if err != nil {
		t.Fatal(err)
	}
	env := decodeJSON[struct {
		Error APIError `json:"error"`
	}](t, eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("unknown sweep = %d %+v, want 404 %s", eresp.StatusCode, env, CodeNotFound)
	}
}

// TestSweepCancel: DELETE stops a sweep whose cells are gated mid-flight;
// remaining cells never execute and the state is durable.
func TestSweepCancel(t *testing.T) {
	stub := &stubExec{started: make(chan string, 16), gate: make(chan struct{})}
	ts, _ := newTestServer(t, 1, stub)

	resp := postJSON(t, ts.URL+"/v1/sweeps", eightCellGrid())
	created := decodeJSON[SweepView](t, resp.Body)
	resp.Body.Close()
	<-stub.started // one cell is executing, the rest queued

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+created.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	view := decodeJSON[SweepView](t, dresp.Body)
	dresp.Body.Close()
	if view.State != SweepCanceled {
		t.Fatalf("DELETE returned state %s, want %s", view.State, SweepCanceled)
	}
	close(stub.gate)

	// The queued cells never execute: only the in-flight one ran.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && stub.calls.Load() < 1 {
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let any stragglers surface
	if got := stub.calls.Load(); got > 2 {
		t.Fatalf("canceled sweep executed %d cells, want at most the in-flight ones", got)
	}
}

// TestSweepCursorResume reads a result stream in two halves — paginated
// prefix, then ?cursor=k — and checks the concatenation is byte-identical
// to one uninterrupted read, with no duplicate or missing indices.
func TestSweepCursorResume(t *testing.T) {
	stub := &stubExec{}
	ts, _ := newTestServer(t, 2, stub)

	resp := postJSON(t, ts.URL+"/v1/sweeps", eightCellGrid())
	created := decodeJSON[SweepView](t, resp.Body)
	resp.Body.Close()
	waitForSweep(t, ts.URL, created.ID, func(v SweepView) bool { return v.State == SweepDone })

	full, fullRows := readResults(t, ts.URL, created.ID, "")
	head, headRows := readResults(t, ts.URL, created.ID, "?cursor=0&limit=3")
	tail, tailRows := readResults(t, ts.URL, created.ID, "?cursor=3")

	if len(headRows) != 3 || len(tailRows) != 5 || len(fullRows) != 8 {
		t.Fatalf("row counts head=%d tail=%d full=%d, want 3/5/8", len(headRows), len(tailRows), len(fullRows))
	}
	if !bytes.Equal(append(append([]byte{}, head...), tail...), full) {
		t.Fatalf("cursor-resumed stream differs from uninterrupted read:\nhead+tail:\n%s%s\nfull:\n%s", head, tail, full)
	}
	seen := make(map[int]bool)
	for i, row := range append(headRows, tailRows...) {
		if row.Index != i {
			t.Fatalf("resumed stream row %d has index %d: duplicate or gap", i, row.Index)
		}
		seen[row.Index] = true
	}
	if len(seen) != 8 {
		t.Fatalf("resumed stream covered %d distinct cells, want 8", len(seen))
	}
}

// TestSweepKillRestartResume is the crash acceptance test: a server dies
// mid-sweep (no graceful drain, no terminal journal record), a new
// server opens the same journals, and the sweep resumes under its
// original id — already-journaled cells replay from the result journal
// with zero recomputation, and the full result stream read after the
// restart is byte-identical to what the first server had started
// serving.
func TestSweepKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	resultsPath := filepath.Join(dir, "results.journal")
	sweepsPath := filepath.Join(dir, "sweeps.journal")

	j1, err := OpenJournal(resultsPath)
	if err != nil {
		t.Fatal(err)
	}
	sj1, err := OpenSweepJournal(sweepsPath, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The first server's kernel completes exactly the first half of the
	// grid, then wedges: Grid.Expand iterates benchmarks outermost, so
	// the compress/ora cells are grid indices 0-3 and the doduc/gcc1
	// cells are 4-7. The latter block until "the process dies" and then
	// fail, so they are never journaled. Workers is wide enough that the
	// wedged cells cannot starve the completing ones.
	killed := make(chan struct{})
	exec1 := func(spec JobSpec) (*Result, error) {
		if spec.Benchmark == "doduc" || spec.Benchmark == "gcc1" {
			<-killed
			return nil, errors.New("process killed")
		}
		return &Result{Spec: spec}, nil
	}
	svc1 := NewService(Config{Workers: 8, Journal: j1, SweepJournal: sj1, exec: exec1})
	ts1 := httptest.NewServer(NewServer(svc1))

	resp := postJSON(t, ts1.URL+"/v1/sweeps", eightCellGrid())
	created := decodeJSON[SweepView](t, resp.Body)
	resp.Body.Close()
	if created.Total != 8 {
		t.Fatalf("sweep expanded to %d cells, want 8", created.Total)
	}
	waitForSweep(t, ts1.URL, created.ID, func(v SweepView) bool { return v.Done >= 4 })

	// What the first server served before dying.
	prefix, prefixRows := readResults(t, ts1.URL, created.ID, "?cursor=0&limit=4")
	if len(prefixRows) != 4 {
		t.Fatalf("pre-kill read returned %d rows, want 4", len(prefixRows))
	}

	// Kill -9: no drain, no terminal sweep record. The blocked kernel
	// calls die with the process.
	ts1.Close()
	close(killed)
	svc1.Close()
	j1.Close()
	sj1.Close()

	// Restart on the same journals.
	j2, err := OpenJournal(resultsPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Recovered()); got != 4 {
		t.Fatalf("result journal recovered %d cells, want 4", got)
	}
	sj2, err := OpenSweepJournal(sweepsPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls2 atomic.Int64
	exec2 := func(spec JobSpec) (*Result, error) {
		calls2.Add(1)
		return &Result{Spec: spec}, nil
	}
	svc2 := NewService(Config{Workers: 2, Journal: j2, SweepJournal: sj2, exec: exec2})
	ts2 := httptest.NewServer(NewServer(svc2))
	t.Cleanup(func() {
		ts2.Close()
		svc2.Close()
		j2.Close()
		sj2.Close()
	})

	// The sweep resumes under its original id and runs to completion.
	done := waitForSweep(t, ts2.URL, created.ID, func(v SweepView) bool { return v.State == SweepDone })
	if !done.Resumed {
		t.Fatalf("recovered sweep not marked resumed: %+v", done)
	}
	if done.Done != 8 || done.OK != 8 {
		t.Fatalf("resumed sweep = %+v, want all 8 cells ok", done)
	}

	// No recomputation: only the 4 never-journaled cells executed.
	if got := calls2.Load(); got != 4 {
		t.Fatalf("restart recomputed: %d simulations ran, want 4 (journaled cells must replay from cache)", got)
	}

	// Byte-identical results across the crash: the full post-restart
	// stream starts with exactly the bytes the first server served.
	full, fullRows := readResults(t, ts2.URL, created.ID, "?cursor=0")
	if len(fullRows) != 8 {
		t.Fatalf("post-restart stream has %d rows, want 8", len(fullRows))
	}
	if !bytes.HasPrefix(full, prefix) {
		t.Fatalf("post-restart results diverge from pre-kill stream:\npre-kill:\n%s\npost-restart:\n%s", prefix, full)
	}
	// And the crash point is resumable directly by cursor.
	tail, tailRows := readResults(t, ts2.URL, created.ID, "?cursor=4")
	if len(tailRows) != 4 {
		t.Fatalf("cursor=4 resume returned %d rows, want 4", len(tailRows))
	}
	if !bytes.Equal(append(append([]byte{}, prefix...), tail...), full) {
		t.Fatal("pre-kill prefix + cursor-resumed tail != uninterrupted post-restart read")
	}
}

// TestSweepJournalCancelNotResumed: a canceled sweep must stay canceled
// across a restart — cancellation is a client decision recovery must not
// undo.
func TestSweepJournalCancelNotResumed(t *testing.T) {
	dir := t.TempDir()
	sweepsPath := filepath.Join(dir, "sweeps.journal")

	sj1, err := OpenSweepJournal(sweepsPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubExec{started: make(chan string, 16), gate: make(chan struct{})}
	svc1 := NewService(Config{Workers: 1, SweepJournal: sj1, exec: stub.exec})
	h, err := svc1.CreateSweep(context.Background(), "tenant-a", eightCellGrid())
	if err != nil {
		t.Fatal(err)
	}
	<-stub.started
	if _, ok := svc1.CancelSweep(h.ID); !ok {
		t.Fatal("cancel failed")
	}
	close(stub.gate)
	svc1.Close()
	sj1.Close()

	sj2, err := OpenSweepJournal(sweepsPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sj2.Close()
	if got := len(sj2.Recovered()); got != 0 {
		t.Fatalf("canceled sweep survived recovery: %d recovered, want 0", got)
	}
}
