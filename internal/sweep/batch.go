package sweep

// Batched sweeps: cells of one grid that share a compiled binary and a
// trace artifact — same benchmark, scheduler, window, seed, and budget,
// differing only in machine configuration — are grouped and prewarmed
// through experiment.CachedRunBatch before the individual cells run. The
// batch fills the run memo for every member from one shared trace walk
// (with cross-member storage recycling), so the cells themselves become
// cache hits. Prewarming is purely an accelerator: cells never wait on
// it, and a prewarm failure just means the affected cells compute
// individually and report their own errors.

import (
	"encoding/json"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
)

// batchGroup is one prewarmable set: the machine configurations of a grid
// that feed from a single trace artifact.
type batchGroup struct {
	key       string
	benchmark string
	scheduler string
	opts      experiment.Options
	cfgs      []core.Config
}

// batchGroups partitions a grid's specs by experiment.BatchGroupKey,
// keeping only groups where batching buys anything: at least two distinct
// machine configurations over the same artifact. Specs that cannot batch
// (invalid, or budgets beyond the materialization cap) are skipped — the
// cells themselves will report any errors.
func batchGroups(specs []JobSpec) []batchGroup {
	byKey := make(map[string]*batchGroup)
	var order []string
	seen := make(map[string]bool) // group key + machine config, JSON-canonical
	for _, spec := range specs {
		n, err := spec.Normalize()
		if err != nil {
			continue
		}
		cfg, opts, err := n.Resolve()
		if err != nil {
			continue
		}
		key := experiment.BatchGroupKey(n.Benchmark, n.Scheduler, opts)
		if key == "" {
			continue
		}
		cfgJSON, err := json.Marshal(cfg)
		if err != nil {
			continue
		}
		member := key + "|" + string(cfgJSON)
		if seen[member] {
			continue
		}
		seen[member] = true
		g := byKey[key]
		if g == nil {
			g = &batchGroup{key: key, benchmark: n.Benchmark, scheduler: n.Scheduler, opts: opts}
			byKey[key] = g
			order = append(order, key)
		}
		g.cfgs = append(g.cfgs, cfg)
	}
	var groups []batchGroup
	for _, key := range order {
		if g := byKey[key]; len(g.cfgs) >= 2 {
			groups = append(groups, *g)
		}
	}
	return groups
}

// batchable reports whether prewarming through the experiment batch path
// is sound for this service: the execution kernel must be the real one
// (a test override would be bypassed), computation must be local (a
// cluster routes cells to their owners), and fault injection must be off
// (injected faults target the per-cell path).
func (s *Service) batchable() bool {
	return s.realExec && s.remote == nil && !s.inject.Enabled()
}

// prewarmBatches enqueues one pool task per batch group, attributed to the
// sweep's client with the group's size as its scheduling weight. Within a
// tenant the pool is FIFO, so a prewarm submitted before the cells runs
// before them and they hit the memo; under contention a cell may start
// first and simply join or redo one member's computation — correct either
// way, since batch and solo paths address identical memo entries.
func (s *Service) prewarmBatches(client string, specs []JobSpec) {
	if !s.batchable() {
		return
	}
	for _, g := range batchGroups(specs) {
		g := g
		fn := func() error {
			opts := g.opts
			opts.Probes = s.coreProbes
			// Errors are deliberately dropped: the batch is an accelerator,
			// and each failing member recomputes solo under its own cell
			// with full retry/error accounting.
			_, _ = experiment.CachedRunBatch(g.benchmark, g.scheduler, g.cfgs, opts)
			return nil
		}
		_ = s.pool.SubmitAs(client, len(g.cfgs), fn, nil)
	}
}
