package sweep

import (
	"context"
	"errors"
	"expvar"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"multicluster/internal/faultinject"
)

// newHTTPServer mounts an existing service on an httptest server and ties
// both lifetimes to the test.
func newHTTPServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// expvarGet renders a published expvar variable, or "" if absent.
func expvarGet(name string) string {
	v := expvar.Get(name)
	if v == nil {
		return ""
	}
	return v.String()
}

// flakyExec fails deterministically for the first failures calls per spec
// hash-ish key, then succeeds.
type flakyExec struct {
	calls    atomic.Int64
	failures int64
	terminal bool // fail with a non-transient error instead
}

func (f *flakyExec) exec(spec JobSpec) (*Result, error) {
	n := f.calls.Add(1)
	if n <= f.failures {
		if f.terminal {
			return nil, errors.New("deterministic simulator error")
		}
		return nil, &faultinject.Fault{Site: "sim", Kind: faultinject.KindError, Key: "test"}
	}
	return &Result{Spec: spec}, nil
}

func TestRetryClearsTransientFailure(t *testing.T) {
	flaky := &flakyExec{failures: 2}
	svc := NewService(Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond},
		exec:    flaky.exec,
	})
	defer svc.Close()

	job, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != JobDone {
		_, jerr := job.Result()
		t.Fatalf("flaky job state = %s (%v), want done after retries", st, jerr)
	}
	if got := flaky.calls.Load(); got != 3 {
		t.Fatalf("flaky job executed %d times, want 3 (2 failures + 1 success)", got)
	}
	if v := job.View(); v.Attempts != 3 {
		t.Fatalf("job view attempts = %d, want 3", v.Attempts)
	}
	if got := svc.Stats().Retries; got != 2 {
		t.Fatalf("service retries = %d, want 2", got)
	}
}

func TestTerminalErrorNeverRetried(t *testing.T) {
	flaky := &flakyExec{failures: 100, terminal: true}
	svc := NewService(Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 5, Base: time.Millisecond},
		exec:    flaky.exec,
	})
	defer svc.Close()

	job, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != JobFailed {
		t.Fatalf("terminal-error job state = %s, want failed", st)
	}
	if got := flaky.calls.Load(); got != 1 {
		t.Fatalf("deterministic error executed %d times, want 1 (never retried)", got)
	}
	if got := svc.Stats().Retries; got != 0 {
		t.Fatalf("service retries = %d, want 0", got)
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	flaky := &flakyExec{failures: 100}
	svc := NewService(Config{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond},
		exec:    flaky.exec,
	})
	defer svc.Close()

	job, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != JobFailed {
		t.Fatalf("exhausted job state = %s, want failed", st)
	}
	if got := flaky.calls.Load(); got != 3 {
		t.Fatalf("exhausted job executed %d times, want MaxAttempts=3", got)
	}
}

func TestJobDeadlineEnforced(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})} // released before Close so the pool can drain
	svc := NewService(Config{Workers: 1, JobTimeout: 20 * time.Millisecond, exec: stub.exec})
	defer svc.Close()
	defer close(stub.gate)

	job, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job with 20ms deadline never finished")
	}
	if st := job.State(); st != JobCanceled {
		t.Fatalf("timed-out job state = %s, want canceled", st)
	}
	if _, jerr := job.Result(); !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("timed-out job error = %v, want DeadlineExceeded", jerr)
	}
}

func TestPerJobTimeoutOverridesDefault(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	// Service default is generous; the spec's own timeout is tight.
	svc := NewService(Config{Workers: 1, JobTimeout: time.Hour, exec: stub.exec})
	defer svc.Close()
	defer close(stub.gate)

	job, err := svc.Submit(JobSpec{Benchmark: "compress", TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job with 20ms spec timeout never finished")
	}
	if st := job.State(); st != JobCanceled {
		t.Fatalf("spec-timeout job state = %s, want canceled", st)
	}
}

func TestTimeoutExcludedFromHash(t *testing.T) {
	a, err := JobSpec{Benchmark: "compress", TimeoutMS: 5000}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Benchmark: "compress"}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("timeout_ms changed the content hash; it must be an execution parameter only")
	}
	if _, err := (JobSpec{Benchmark: "compress", TimeoutMS: -1}).Normalize(); err == nil {
		t.Fatal("negative timeout_ms accepted")
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	svc := NewService(Config{Workers: 1, MaxLive: 2, exec: stub.exec})
	defer svc.Close()

	j1, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := svc.Submit(JobSpec{Benchmark: "ora"})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Ready() {
		t.Fatal("service at MaxLive still reports ready")
	}
	if _, err := svc.Submit(JobSpec{Benchmark: "doduc"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit over MaxLive = %v, want ErrOverloaded", err)
	}
	if got := svc.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Finishing a job frees the slot.
	close(stub.gate)
	<-j1.Done()
	<-j2.Done()
	if !svc.Ready() {
		t.Fatal("service not ready after jobs finished")
	}
	j3, err := svc.Submit(JobSpec{Benchmark: "doduc"})
	if err != nil {
		t.Fatalf("submit after drain-down: %v", err)
	}
	<-j3.Done()
}

func TestPerClientCap(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	svc := NewService(Config{Workers: 1, MaxPerClient: 1, exec: stub.exec})
	defer svc.Close()
	defer close(stub.gate)

	if _, err := svc.SubmitFor("alice", JobSpec{Benchmark: "compress"}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitFor("alice", JobSpec{Benchmark: "ora"}); !errors.Is(err, ErrClientBusy) {
		t.Fatalf("second alice submit = %v, want ErrClientBusy", err)
	}
	// Another client (and the anonymous client) still get in.
	if _, err := svc.SubmitFor("bob", JobSpec{Benchmark: "ora"}); err != nil {
		t.Fatalf("bob submit: %v", err)
	}
	if _, err := svc.Submit(JobSpec{Benchmark: "doduc"}); err != nil {
		t.Fatalf("anonymous submit: %v", err)
	}
}

func TestServerShedding429(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	svc := NewService(Config{Workers: 1, MaxLive: 1, exec: stub.exec})
	ts := newHTTPServer(t, svc)
	defer close(stub.gate)

	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "compress"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", JobSpec{Benchmark: "ora"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over MaxLive = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	// readyz flips under overload.
	r2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz under overload = %d, want 503", r2.StatusCode)
	}
}

func TestServerReadyz(t *testing.T) {
	svc := NewService(Config{Workers: 1, exec: (&stubExec{}).exec})
	ts := newHTTPServer(t, svc)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", resp.StatusCode)
	}

	go svc.Drain(context.Background())
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET /readyz while draining = %d, want 503", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerBodyTooLarge(t *testing.T) {
	ts, _ := newTestServer(t, 1, &stubExec{})
	huge := `{"benchmark":"compress","pad":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`
	for _, path := range []string{"/v1/jobs", "/v1/sweeps"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with huge body = %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestExpvarPerService(t *testing.T) {
	svcA := NewService(Config{Workers: 1, exec: (&stubExec{}).exec})
	defer svcA.Close()
	svcB := NewService(Config{Workers: 1, exec: (&stubExec{}).exec})
	defer svcB.Close()
	a := NewServer(svcA)
	b := NewServer(svcB)
	if a.ExpvarName() == b.ExpvarName() {
		t.Fatalf("two servers share expvar name %q; metrics would be dropped", a.ExpvarName())
	}
	// Both names resolve to live, distinct counter closures.
	for _, name := range []string{a.ExpvarName(), b.ExpvarName()} {
		if v := expvarGet(name); v == "" {
			t.Fatalf("expvar %q not published", name)
		}
	}
}
