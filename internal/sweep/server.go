package sweep

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"multicluster/internal/experiment"
)

// Server exposes a Service over HTTP/JSON. It is an http.Handler so the
// daemon and httptest both mount it directly.
//
//	POST /v1/jobs     submit one job            -> 202 JobView
//	GET  /v1/jobs     list jobs                 -> 200 [JobView]
//	GET  /v1/jobs/{id} poll one job             -> 200 JobView
//	DELETE /v1/jobs/{id} cancel one job         -> 200 JobView
//	POST /v1/sweeps   grid sweep, streamed      -> 200 NDJSON of SweepRow
//	GET  /v1/table2   the paper's Table 2       -> 200 rows (json|csv|text)
//	GET  /v1/stats    service counters          -> 200 Stats
//	GET  /healthz     liveness                  -> 200 ok
//	GET  /debug/vars  expvar                    -> 200 JSON
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer builds the HTTP front end of a service and publishes the
// service counters as the expvar variable "sweep" (once per process).
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/table2", s.handleTable2)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	publishExpvarOnce(svc)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var expvarOnce sync.Once

// publishExpvarOnce registers the sweep counters with the expvar registry.
// expvar panics on duplicate names, and tests construct several servers
// per process, so only the first service in a process is published.
func publishExpvarOnce(svc *Service) {
	expvarOnce.Do(func() {
		expvar.Publish("sweep", expvar.Func(func() any { return svc.Stats() }))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	job, err := s.svc.Submit(spec)
	if err == ErrDraining {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Jobs())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View())
}

// handleSweep streams completed rows as NDJSON, one SweepRow per line, as
// each cell finishes.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var grid Grid
	if err := json.NewDecoder(r.Body).Decode(&grid); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding grid: %w", err))
		return
	}
	rows, _, err := s.svc.Sweep(r.Context(), grid)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for row := range rows {
		if err := enc.Encode(row); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleTable2(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var p Table2Params
	var err error
	if v := q.Get("n"); v != "" {
		if p.Instructions, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n: %w", err))
			return
		}
	}
	if v := q.Get("seed"); v != "" {
		if p.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %w", err))
			return
		}
	}
	if v := q.Get("window"); v != "" {
		if p.Window, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad window: %w", err))
			return
		}
	}
	if v := q.Get("width"); v != "" {
		switch v {
		case "4":
			p.FourWay = true
		case "8":
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad width %q (4 or 8)", v))
			return
		}
	}
	rows, err := s.svc.Table2(r.Context(), p)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := experiment.WriteRows(w, rows, format); err != nil {
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}
