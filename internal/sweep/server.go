package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"multicluster/internal/experiment"
)

// maxBodyBytes caps request bodies on the submission endpoints: a JobSpec
// or Grid is a few hundred bytes, so 1 MiB is generous and a giant or
// malicious body is refused with 413 instead of ballooning memory.
const maxBodyBytes = 1 << 20

// Server exposes a Service over HTTP/JSON. It is an http.Handler so the
// daemon and httptest both mount it directly.
//
//	POST /v1/jobs               submit one job       -> 202 JobView (429 when shedding)
//	GET  /v1/jobs               list jobs, paginated -> 200 JobPage (?limit=&after=)
//	GET  /v1/jobs/{id}          poll one job         -> 200 JobView
//	DELETE /v1/jobs/{id}        cancel one job       -> 200 JobView
//	POST /v1/sweeps             create a sweep       -> 202 SweepView + Location
//	GET  /v1/sweeps             list sweeps          -> 200 SweepPage
//	GET  /v1/sweeps/{id}        sweep progress       -> 200 SweepView
//	GET  /v1/sweeps/{id}/results resumable results   -> 200 NDJSON of SweepResultRow
//	                                                    (?cursor=N resumes, ?limit=M paginates)
//	DELETE /v1/sweeps/{id}      cancel a sweep       -> 200 SweepView
//	GET  /v1/table2             the paper's Table 2  -> 200 rows (json|csv|text)
//	GET  /v1/stats              service counters     -> 200 Stats
//	GET  /metrics               Prometheus text      -> 200 (when Config.Metrics is set)
//	GET  /healthz               liveness             -> 200 ok
//	GET  /readyz                readiness            -> 200 ok | 503 overloaded/draining
//	GET  /debug/vars            expvar               -> 200 JSON
//
// The legacy connection-scoped sweep stream survives as
// POST /v1/sweeps?mode=inline (or Accept: application/x-ndjson), marked
// with a Deprecation header.
//
// Errors are a structured envelope {"error":{"code","message"}} with
// stable machine-readable codes (see the Code* constants).
//
// Submissions may carry an X-Client-ID header; per-client in-flight caps
// and the pool's weighted-fair scheduling key off that identity, falling
// back to the remote host.
type Server struct {
	svc        *Service
	mux        *http.ServeMux
	expvarName string
}

// NewServer builds the HTTP front end of a service and publishes the
// service counters under the service's name in expvar, uniquified per
// process (see publishExpvar).
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleCreateSweep)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	s.mux.HandleFunc("GET /v1/table2", s.handleTable2)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if m := svc.metrics; m != nil {
		s.mux.Handle("GET /metrics", m.Handler())
	}
	s.expvarName = publishExpvar(svc)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ExpvarName returns the expvar variable this server's service counters
// were published under.
func (s *Server) ExpvarName() string { return s.expvarName }

var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]int)
)

// publishExpvar registers the service counters with the expvar registry
// under the service's name. expvar panics on duplicate names and never
// unregisters, while tests and multi-instance processes construct many
// servers, so names are uniquified with a per-name sequence number: the
// first "sweep" publishes as "sweep", the next as "sweep#2", and so on.
// Every service gets live metrics instead of only the first one.
func publishExpvar(svc *Service) string {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	name := svc.Name()
	expvarPublished[name]++
	if n := expvarPublished[name]; n > 1 {
		name = fmt.Sprintf("%s#%d", name, n)
	}
	expvar.Publish(name, expvar.Func(func() any { return svc.Stats() }))
	return name
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Stable machine-readable error codes carried in the error envelope.
// Clients branch on the code; the message is for humans and may change.
const (
	CodeInvalidRequest = "invalid_request" // malformed JSON, bad query params
	CodeInvalidSpec    = "invalid_spec"    // a spec or grid that fails validation
	CodeNotFound       = "not_found"       // unknown (or evicted) resource id
	CodeShed           = "shed"            // admission control refused the work
	CodeDraining       = "draining"        // graceful shutdown in progress
	CodeTooLarge       = "too_large"       // request body over the size cap
	CodeInternal       = "internal"        // unexpected server-side failure
	CodeClientClosed   = "client_closed"   // the client went away mid-request
	CodeUnavailable    = "unavailable"     // a dependency (peer node) is down
	CodeBadGateway     = "bad_gateway"     // proxying to a peer node failed
	CodeTimeout        = "timeout"         // the work's deadline expired
)

// APIError is the machine-readable half of the error envelope every
// /v1/* handler returns: {"error":{"code":"...","message":"..."}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// WriteAPIError writes the structured error envelope. It is exported so
// other layers fronting the same API (the cluster router's proxy paths)
// speak the identical error shape.
func WriteAPIError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: APIError{Code: code, Message: message}})
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	WriteAPIError(w, status, code, err.Error())
}

// decodeBody decodes a JSON request body under the size cap, translating
// an oversized body into 413 and malformed JSON into 400. It reports
// whether decoding succeeded; on failure the response has been written.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// clientID identifies the submitting client for per-client admission
// caps: the X-Client-ID header when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// reqCtx decorates the request context with the request's id and client
// identity, so a computation forwarded to another cluster node carries
// them (into its access log and admission accounting).
func reqCtx(r *http.Request) context.Context {
	ctx := WithClientID(r.Context(), clientID(r))
	if id := r.Header.Get("X-Request-ID"); id != "" {
		ctx = WithRequestID(ctx, id)
	}
	return ctx
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	job, err := s.svc.SubmitCtx(reqCtx(r), clientID(r), spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.View())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClientBusy):
		// Load shedding: tell the client when to come back rather than
		// letting the queue (and memory) grow without bound.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeShed, err)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
	}
}

// JobPage is one page of the job listing, with the cursor for the next.
type JobPage struct {
	Jobs []JobView `json:"jobs"`
	// Next, when set, is the `after` cursor that continues the listing;
	// absent on the final page.
	Next string `json:"next,omitempty"`
}

// parseLimit parses a ?limit= query value; ok is false (and the error
// response written) when the value is present but not a positive integer.
func parseLimit(w http.ResponseWriter, v string) (int, bool) {
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad limit %q: want a positive integer", v))
		return 0, false
	}
	return n, true
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, ok := parseLimit(w, q.Get("limit"))
	if !ok {
		return
	}
	jobs, next := s.svc.JobsPage(q.Get("after"), limit)
	writeJSON(w, http.StatusOK, JobPage{Jobs: jobs, Next: next})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.svc.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "overloaded or draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleCreateSweep creates a first-class sweep resource: 202 with the
// sweep's id (also in Location) for the caller to poll and stream from.
// The legacy connection-scoped behaviour remains reachable with
// ?mode=inline or Accept: application/x-ndjson, marked deprecated.
func (s *Server) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("mode") == "inline" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		s.handleSweepInline(w, r)
		return
	}
	var grid Grid
	if !decodeBody(w, r, &grid) {
		return
	}
	h, err := s.svc.CreateSweep(reqCtx(r), clientID(r), grid)
	switch {
	case err == nil:
		w.Header().Set("Location", "/v1/sweeps/"+h.ID)
		writeJSON(w, http.StatusAccepted, h.View())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
	}
}

// handleSweepInline is the deprecated v1.0 sweep: rows stream on the
// request connection in completion order, and the sweep has no identity
// beyond the socket — drop it and the work is gone.
func (s *Server) handleSweepInline(w http.ResponseWriter, r *http.Request) {
	var grid Grid
	if !decodeBody(w, r, &grid) {
		return
	}
	rows, _, err := s.svc.Sweep(reqCtx(r), grid)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "</v1/sweeps>; rel=\"successor-version\"")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for row := range rows {
		if err := enc.Encode(row); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// SweepPage is the sweep listing (bounded by the retention policy, so no
// cursor is needed).
type SweepPage struct {
	Sweeps []SweepView `json:"sweeps"`
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SweepPage{Sweeps: s.svc.Sweeps()})
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.svc.SweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, h.View())
}

func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	h, ok := s.svc.CancelSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, h.View())
}

// handleSweepResults streams a sweep's rows as NDJSON in grid order —
// row N is always cell N, no matter which run of the server computed it
// or in what order cells finished. That determinism is what makes the
// cursor meaningful: after reading N rows a client resumes at ?cursor=N
// (on this connection, a later one, or a restarted server) and the
// concatenation is byte-identical to an uninterrupted read. ?limit=M
// turns the same mechanism into pagination. The stream waits for cells
// that are still computing; it ends early only when the sweep can no
// longer produce the next row (canceled, or the server is draining —
// resume after restart in the latter case).
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	h, ok := s.svc.SweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	cursor := 0
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad cursor %q: want a non-negative integer", v))
			return
		}
		if n > h.Total() {
			// cursor == Total is a valid resume position (an empty tail);
			// anything past it can never have been handed out by this sweep
			// and indicates a client bug, not an empty page.
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Errorf("cursor %d beyond grid size %d", n, h.Total()))
			return
		}
		cursor = n
	}
	limit, ok := parseLimit(w, q.Get("limit"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Cursor", strconv.Itoa(cursor))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for i := cursor; i < h.Total(); i++ {
		if limit > 0 && sent >= limit {
			return
		}
		for {
			// Grab the notification channel before checking the row: a cell
			// completing between the check and the wait still wakes us.
			ch := h.waitCh()
			if row, ok := h.Row(i); ok {
				if err := enc.Encode(row); err != nil {
					return
				}
				sent++
				if flusher != nil {
					flusher.Flush()
				}
				break
			}
			if h.terminal() {
				// No more rows are coming (canceled sweep, or a draining
				// server that will resume this sweep after restart); end the
				// stream at the last deliverable row.
				return
			}
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// statusClientClosedRequest is nginx's de-facto code for "the client
// went away before we could answer". The response never reaches the
// client; the code exists so logs and metrics don't misfile abandoned
// requests as server errors.
const statusClientClosedRequest = 499

func (s *Server) handleTable2(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	// Validate the output format before anything else: an unknown format
	// must 400 immediately, not after burning the whole multi-benchmark
	// computation (and after the Content-Type has already been set).
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "text":
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("unknown format %q (json, csv, text)", format))
		return
	}
	var p Table2Params
	var err error
	if v := q.Get("n"); v != "" {
		if p.Instructions, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad n: %w", err))
			return
		}
	}
	if v := q.Get("seed"); v != "" {
		if p.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad seed: %w", err))
			return
		}
	}
	if v := q.Get("window"); v != "" {
		if p.Window, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad window: %w", err))
			return
		}
	}
	if v := q.Get("width"); v != "" {
		switch v {
		case "4":
			p.FourWay = true
		case "8":
		default:
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad width %q (4 or 8)", v))
			return
		}
	}
	rows, err := s.svc.Table2(reqCtx(r), p)
	if err != nil {
		// A client that disconnects (or times out) mid-computation
		// surfaces as context cancellation from the request context; that
		// is a client-side termination, not a server error, and must not
		// pollute the 5xx metrics.
		if r.Context().Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			s.svc.metrics.observeClientCanceled()
			writeError(w, statusClientClosedRequest, CodeClientClosed, err)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	// The format was validated up front, so the only failures left are
	// mid-stream write errors; the status line is already committed.
	experiment.WriteRows(w, rows, format)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}
