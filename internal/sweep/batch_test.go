package sweep

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"multicluster/internal/experiment"
)

// TestNormalizeClampsProfileBudget is the regression test for the
// profile-budget derivation: Instructions/6 floors to zero for budgets
// under six, and zero means *unlimited* to the profiling pass — before
// the clamp a 3-instruction canary spec profiled the driver's whole path.
func TestNormalizeClampsProfileBudget(t *testing.T) {
	n, err := JobSpec{Benchmark: "ora", Instructions: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.ProfileInstructions != 1 {
		t.Errorf("Instructions=3: ProfileInstructions = %d, want 1", n.ProfileInstructions)
	}
	n, err = JobSpec{Benchmark: "ora", Instructions: 60_000}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.ProfileInstructions != 10_000 {
		t.Errorf("Instructions=60000: ProfileInstructions = %d, want 10000", n.ProfileInstructions)
	}
}

// TestBatchGroupsPartition pins the grouping rules: one group per
// (benchmark, scheduler, seed, budget) with its distinct machine
// configurations collected; duplicate machines dedupe; groups of one are
// dropped (nothing to batch).
func TestBatchGroupsPartition(t *testing.T) {
	grid := Grid{
		Benchmarks:   []string{"ora", "compress"},
		Machines:     []string{"single", "dual", "single4", "dual2"},
		Schedulers:   []string{"none"},
		Instructions: 5_000,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// A duplicate machine spec and a lone local-scheduler cell: the former
	// dedupes into its group, the latter forms a singleton group that must
	// be dropped.
	dup, err := (JobSpec{Benchmark: "ora", Machine: "dual", Instructions: 5_000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	lone, err := (JobSpec{Benchmark: "ora", Machine: "dual", Scheduler: "local", Instructions: 5_000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	groups := batchGroups(append(specs, dup, lone))
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (ora/none, compress/none): %+v", len(groups), groups)
	}
	for _, g := range groups {
		if g.scheduler != "none" {
			t.Errorf("group %s/%s: singleton local group survived", g.benchmark, g.scheduler)
		}
		if len(g.cfgs) != 4 {
			t.Errorf("group %s: %d machine configs, want 4", g.benchmark, len(g.cfgs))
		}
	}
}

// TestBatchableGates pins when prewarming is sound: only the real
// execution kernel qualifies — a stub exec (as in most service tests)
// must bypass batching entirely.
func TestBatchableGates(t *testing.T) {
	stub := &stubExec{}
	svc := newStubService(1, stub)
	defer svc.Close()
	if svc.batchable() {
		t.Error("service with a stubbed kernel reports batchable")
	}
	real := NewService(Config{Workers: 1})
	defer real.Close()
	if !real.batchable() {
		t.Error("real single-node service does not report batchable")
	}
}

// TestSweepSharesOneTraceAcrossCells runs a real four-machine sweep and
// asserts the issue's generation-count property end to end: concurrent
// cells over one (workload, seed, budget) share a single materialized
// trace — generated exactly once — while every cell still succeeds. Run
// with -race this also exercises concurrent artifact readers.
func TestSweepSharesOneTraceAcrossCells(t *testing.T) {
	svc := NewService(Config{Workers: 4})
	defer svc.Close()

	grid := Grid{
		Benchmarks:   []string{"ora"},
		Machines:     []string{"single", "dual", "single4", "dual2"},
		Schedulers:   []string{"none"},
		Seeds:        []int64{777001}, // private key space for this test
		Instructions: 8_000,
	}
	before := experiment.TraceGenerations()
	h, err := svc.CreateSweep(context.Background(), "batch-test", grid)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for h.State() == SweepRunning {
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.State() != SweepDone {
		t.Fatalf("sweep state = %s, want done", h.State())
	}
	for i := 0; i < h.Total(); i++ {
		row, ok := h.Row(i)
		if !ok {
			t.Fatalf("row %d missing", i)
		}
		if row.Error != "" || row.Result == nil {
			t.Fatalf("row %d failed: %+v", i, row)
		}
	}
	if got := experiment.TraceGenerations() - before; got != 1 {
		t.Errorf("sweep generated the trace %d times, want exactly once", got)
	}
}

// TestSweepResultsCursorBeyondGrid is the regression test for the results
// stream's cursor validation: a cursor past the grid size used to return
// 200 with an empty body — indistinguishable from a completed read — and
// now fails loudly. cursor == Total stays a valid empty tail.
func TestSweepResultsCursorBeyondGrid(t *testing.T) {
	stub := &stubExec{}
	ts, svc := newTestServer(t, 2, stub)

	h, err := svc.CreateSweep(context.Background(), "", Grid{
		Benchmarks: []string{"ora"},
		Machines:   []string{"dual"},
		Schedulers: []string{"none", "local"},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + h.ID + "/results?cursor=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cursor beyond grid = %d (%s), want 400", resp.StatusCode, body)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != CodeInvalidRequest {
		t.Fatalf("cursor beyond grid error envelope = %s, want code %q", body, CodeInvalidRequest)
	}

	// cursor == Total is a legitimate resume position: 200 with no rows.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + h.ID + "/results?cursor=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cursor == total = %d, want 200", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("cursor == total streamed %q, want empty", body)
	}
}
