package sweep

import (
	"context"
	"fmt"
	"sync"

	"multicluster/internal/experiment"
	"multicluster/internal/workload"
)

// Table2Params parameterize the paper's headline table.
type Table2Params struct {
	// Instructions is the per-run dynamic budget; 0 means 300k.
	Instructions int64 `json:"instructions,omitempty"`
	// Seed is the behaviour-driver seed; 0 means 42.
	Seed int64 `json:"seed,omitempty"`
	// Window is the local scheduler's imbalance threshold.
	Window int `json:"window,omitempty"`
	// FourWay selects the four-way aggregate study (single4 vs dual2)
	// instead of the paper's eight-way machines.
	FourWay bool `json:"four_way,omitempty"`
}

// table2Cell is one of the three runs behind a Table 2 row.
type table2Cell struct {
	bench  string
	column int // 0 = single/none, 1 = dual/none, 2 = dual/local
	spec   JobSpec
}

// table2Cells expands the params into the eighteen cell specs (six
// benchmarks × three runs), in the paper's benchmark order.
func table2Cells(p Table2Params) []table2Cell {
	singleMachine, dualMachine := "single", "dual"
	if p.FourWay {
		singleMachine, dualMachine = "single4", "dual2"
	}
	var cells []table2Cell
	for _, b := range workload.All() {
		base := JobSpec{
			Benchmark:    b.Name,
			Seed:         p.Seed,
			Instructions: p.Instructions,
			Window:       p.Window,
		}
		single := base
		single.Machine, single.Scheduler = singleMachine, "none"
		none := base
		none.Machine, none.Scheduler = dualMachine, "none"
		local := base
		local.Machine, local.Scheduler = dualMachine, "local"
		cells = append(cells,
			table2Cell{b.Name, 0, single},
			table2Cell{b.Name, 1, none},
			table2Cell{b.Name, 2, local},
		)
	}
	return cells
}

// Table2 reproduces the paper's Table 2 through the service: eighteen jobs
// (six benchmarks × three runs) scheduled on the pool, every one served
// from the content-addressed cache when available. Rows come back in the
// paper's benchmark order.
func (s *Service) Table2(ctx context.Context, p Table2Params) ([]experiment.Table2Row, error) {
	cells := table2Cells(p)

	results := make([]*Result, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c table2Cell) {
			defer wg.Done()
			results[i], _, errs[i] = s.Run(ctx, c.spec)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: table2 %s (%s): %w", cells[i].bench, cells[i].spec, err)
		}
	}

	rows := make([]experiment.Table2Row, 0, len(cells)/3)
	for i := 0; i < len(cells); i += 3 {
		rows = append(rows, experiment.NewTable2Row(
			cells[i].bench,
			results[i].Stats.Stats,
			results[i+1].Stats.Stats,
			results[i+2].Stats.Stats,
		))
	}
	return rows, nil
}
