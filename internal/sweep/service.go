package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"multicluster/internal/conc"
	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/faultinject"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one tracked unit of work: a normalized spec heading through the
// queue, the pool, and the cache.
type Job struct {
	// ID is unique per service instance; Hash is content-addressed and
	// shared by every job with the same spec.
	ID   string
	Spec JobSpec
	Hash string

	client string
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    JobState
	err      error
	result   *Result
	cacheHit bool
	attempts int
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobView is the serializable snapshot of a job for the HTTP API.
type JobView struct {
	ID       string   `json:"id"`
	Hash     string   `json:"hash"`
	State    JobState `json:"state"`
	Spec     JobSpec  `json:"spec"`
	CacheHit bool     `json:"cache_hit"`
	// Attempts is how many executions the job needed; > 1 means transient
	// failures were retried.
	Attempts int       `json:"attempts,omitempty"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Hash:     j.Hash,
		State:    j.state,
		Spec:     j.Spec,
		CacheHit: j.cacheHit,
		Attempts: j.attempts,
		Result:   j.result,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the result and error of a finished job.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Cancel cancels the job. A job still in the queue never runs; a job
// already executing finishes its simulation but the submitter stops
// waiting.
func (j *Job) Cancel() { j.cancel() }

func (j *Job) markRunning() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
		j.started = time.Now()
	}
	j.attempts++
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, hit bool, err error) (terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		return false
	}
	j.finished = time.Now()
	j.cacheHit = hit
	switch {
	case err == nil:
		j.state = JobDone
		j.result = res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err
	default:
		j.state = JobFailed
		j.err = err
	}
	close(j.done)
	return true
}

// RetryPolicy governs how transient failures are retried: exponential
// backoff from Base doubling per attempt, capped at Max, plus a
// deterministic jitter derived from the job hash so chaos runs replay
// exactly.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed; < 1 means 1
	// (no retries).
	MaxAttempts int
	// Base is the first backoff; 0 means 10ms.
	Base time.Duration
	// Max caps the backoff; 0 means 1s.
	Max time.Duration
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	return p
}

// backoff returns the sleep before retry number attempt (0-based counting
// of completed attempts): exponential with ±50% deterministic jitter.
func (p RetryPolicy) backoff(hash string, attempt int) time.Duration {
	d := p.Base << uint(attempt)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", hash, attempt)
	// Jitter in [50%, 150%) of the exponential step.
	frac := 0.5 + float64(h.Sum64()>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// Remote is the cluster hook: when a Service has one, every computation
// consults it for ownership of the spec's content hash and forwards
// non-owned work to the owning node. internal/cluster's Node implements
// it; the interface lives here so sweep does not import the cluster.
type Remote interface {
	// Route returns the owner of hash and whether this node should
	// compute it locally (because it is the owner, or ownership is
	// undecidable and local is the safe default).
	Route(hash string) (node string, local bool)
	// RunRemote executes spec on the owning node. Any error makes the
	// service fall back to computing locally — availability over
	// placement.
	RunRemote(ctx context.Context, node string, spec JobSpec) (*Result, error)
	// Completed is called once for every result this node freshly
	// computed, so the cluster layer can replicate it or hand it back to
	// its owner.
	Completed(res *Result)
	// ReadRepair is called when a request for a non-owned hash was
	// served from the local replica cache, so the cluster layer can
	// asynchronously verify the owner (and the rest of the replica set)
	// still hold the result and refresh any copy that went missing.
	// Implementations must not block the serving path.
	ReadRepair(res *Result)
}

// Config configures a Service.
type Config struct {
	// Workers bounds the worker pool; < 1 means GOMAXPROCS.
	Workers int
	// Name namespaces the service's expvar metrics; empty means "sweep".
	Name string
	// JobTimeout is the default per-job deadline, overridable per job via
	// JobSpec.TimeoutMS; 0 means no deadline.
	JobTimeout time.Duration
	// Retry governs transient-failure retries; the zero value means no
	// retries.
	Retry RetryPolicy
	// MaxLive bounds admitted-but-unfinished jobs (queued + running).
	// Submissions beyond it are shed with ErrOverloaded; 0 means
	// unbounded.
	MaxLive int
	// MaxPerClient caps unfinished jobs per client id; 0 means unlimited.
	MaxPerClient int
	// JobRetention bounds how many finished jobs the registry keeps: once
	// more than JobRetention jobs have reached a terminal state, the
	// oldest-finished are evicted (their IDs return 404 from the API). A
	// long-running daemon would otherwise leak memory linearly with
	// traffic. 0 means DefaultJobRetention; negative means unlimited (the
	// pre-retention behaviour, for tools that own their job lifetime).
	JobRetention int
	// Metrics, when set, receives the service's observability stream: job
	// latency breakdowns, eviction/admission counters, cache/pool/journal
	// samplers, and the simulator-core probes. One Metrics per service.
	Metrics *Metrics
	// Inject is the fault-injection plan for chaos testing; nil means off.
	Inject *faultinject.Plan
	// Journal, when set, is written through on every computed result and
	// its recovered records seed the cache at construction.
	Journal *Journal
	// SweepJournal, when set, persists sweep lifecycles (grid spec +
	// completion cursor) so incomplete sweeps resume after a restart.
	SweepJournal *SweepJournal
	// SweepRetention bounds how many finished sweeps the registry keeps;
	// 0 means DefaultSweepRetention, negative means unlimited.
	SweepRetention int
	// NodeID, when set, prefixes job IDs ("n1-j42") so any cluster node
	// can route a lookup by id back to the node that minted it.
	NodeID string
	// Remote, when set, routes computations through the cluster: cells
	// owned by a peer are forwarded to it, and fresh local results are
	// offered back for replication. Nil means single-node.
	Remote Remote
	// exec overrides the execution kernel; tests use it to observe or
	// sabotage job execution.
	exec func(spec JobSpec) (*Result, error)
}

// Service is the sweep orchestrator: submitted jobs flow through the
// content-addressed cache (deduplicating identical specs) onto the bounded
// worker pool, and results are retained for every later request.
type Service struct {
	pool         *Pool
	cache        Cache
	exec         func(spec JobSpec) (*Result, error)
	inject       *faultinject.Plan
	journal      *Journal
	sweepJournal *SweepJournal
	sweeps       *sweepRegistry
	remote       Remote
	nodeID       string
	// realExec records that exec is the real simulation kernel (not a test
	// override), which is what makes batch prewarming sound: prewarms go
	// straight to experiment.CachedRunBatch and must hit the same memo
	// entries the cells will. coreProbes is the probe set that kernel
	// carries, shared with prewarmed batches.
	realExec   bool
	coreProbes *core.Probes

	name         string
	jobTimeout   time.Duration
	retry        RetryPolicy
	maxLive      int
	maxPerClient int
	retention    int
	metrics      *Metrics

	base       context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	clients  map[string]int
	live     int
	draining bool
	// finishedOrder queues finished job IDs in completion order for
	// retention eviction; orderStale counts evicted IDs still present in
	// order, compacted away once they outnumber the live ones.
	finishedOrder []string
	orderStale    int

	nextID    atomic.Int64
	submitted atomic.Int64
	shed      atomic.Int64
	retries   atomic.Int64
	evicted   atomic.Int64
}

// DefaultJobRetention is how many finished jobs the registry keeps when
// Config.JobRetention is zero.
const DefaultJobRetention = 1024

// NewService starts a service with its worker pool. When cfg.Journal is
// set, every result it recovered is seeded into the cache before the
// service accepts work.
func NewService(cfg Config) *Service {
	exec := cfg.exec
	realExec := false
	var probes *core.Probes
	if exec == nil {
		// The real kernel carries the metrics' core probes into every
		// simulation it actually runs (memoized runs never re-simulate).
		realExec = true
		probes = cfg.Metrics.CoreProbes()
		exec = func(spec JobSpec) (*Result, error) { return runSpec(spec, probes) }
	}
	if cfg.Name == "" {
		cfg.Name = "sweep"
	}
	retention := cfg.JobRetention
	if retention == 0 {
		retention = DefaultJobRetention
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Service{
		pool:         NewPool(cfg.Workers),
		exec:         exec,
		inject:       cfg.Inject,
		journal:      cfg.Journal,
		sweepJournal: cfg.SweepJournal,
		remote:       cfg.Remote,
		nodeID:       cfg.NodeID,
		realExec:     realExec,
		coreProbes:   probes,
		name:         cfg.Name,
		jobTimeout:   cfg.JobTimeout,
		retry:        cfg.Retry.normalized(),
		maxLive:      cfg.MaxLive,
		maxPerClient: cfg.MaxPerClient,
		retention:    retention,
		metrics:      cfg.Metrics,
		base:         base,
		baseCancel:   cancel,
		jobs:         make(map[string]*Job),
		clients:      make(map[string]int),
	}
	s.cache.inject = cfg.Inject
	s.cache.journal = cfg.Journal
	if cfg.Journal != nil {
		for _, r := range cfg.Journal.Recovered() {
			s.cache.Seed(r.Hash, r)
		}
	}
	s.sweeps = newSweepRegistry(s, cfg.SweepJournal, cfg.SweepRetention)
	cfg.Metrics.bindService(s)
	// Resume journaled sweeps only after metrics are bound, so recovered
	// cell completions are observed like any other traffic. Incomplete
	// sweeps re-run their grids; cells already journaled hit the cache
	// seeded above, so resumption costs lookups, not simulations.
	s.sweeps.recover()
	return s
}

// Name returns the service's metrics namespace.
func (s *Service) Name() string { return s.name }

// runSpec is the real execution kernel: compile and simulate through the
// process-wide experiment cache, with the service's core probes (if any)
// installed on runs that actually simulate.
func runSpec(spec JobSpec, probes *core.Probes) (*Result, error) {
	cfg, opts, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	opts.Probes = probes
	rr, err := experiment.CachedRun(spec.Benchmark, spec.Scheduler, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec:    spec,
		Stats:   rr.Stats.Snapshot(),
		Spilled: rr.Spilled,
		Demoted: rr.Demoted,
	}, nil
}

// ErrDraining is returned by Submit once graceful shutdown has begun.
var ErrDraining = errors.New("sweep: service is draining")

// ErrOverloaded is returned by Submit when the admission window (MaxLive)
// is full; the client should retry after backing off.
var ErrOverloaded = errors.New("sweep: overloaded, retry later")

// ErrClientBusy is returned by Submit when one client exceeds its
// in-flight cap while the service as a whole still has capacity.
var ErrClientBusy = errors.New("sweep: client in-flight limit reached, retry later")

// Submit registers an asynchronous job with no client attribution.
func (s *Service) Submit(spec JobSpec) (*Job, error) { return s.SubmitFor("", spec) }

// SubmitFor registers an asynchronous job on behalf of client and returns
// immediately. Identical specs — concurrent or repeated — share one
// underlying simulation through the cache. Admission control applies
// before the job exists: a full service sheds with ErrOverloaded, a
// client over its in-flight cap is refused with ErrClientBusy, and both
// are counted as shed.
func (s *Service) SubmitFor(client string, spec JobSpec) (*Job, error) {
	return s.SubmitCtx(context.Background(), client, spec)
}

// jobID mints the next job id, prefixed with the node id in cluster
// mode so the minting node is recoverable from the id alone.
func (s *Service) jobID() string {
	n := s.nextID.Add(1)
	if s.nodeID != "" {
		return fmt.Sprintf("%s-j%d", s.nodeID, n)
	}
	return fmt.Sprintf("j%d", n)
}

// SubmitCtx is SubmitFor with request metadata: the request id and
// client id attached to ctx ride along into the job's execution context
// (and across a cluster forward). ctx contributes only values — the
// job's lifetime is still governed by the service and its own timeout,
// not by ctx's cancellation, so a submitter disconnecting does not kill
// the job it was promised.
func (s *Service) SubmitCtx(ctx context.Context, client string, spec JobSpec) (*Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(s.base)
	if timeout := norm.Timeout(s.jobTimeout); timeout > 0 {
		jctx, cancel = context.WithTimeout(s.base, timeout)
	}
	jctx = copyMeta(jctx, ctx)
	job := &Job{
		ID:      s.jobID(),
		Spec:    norm,
		Hash:    hash,
		client:  client,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	if s.maxLive > 0 && s.live >= s.maxLive {
		s.mu.Unlock()
		cancel()
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	if client != "" && s.maxPerClient > 0 && s.clients[client] >= s.maxPerClient {
		s.mu.Unlock()
		cancel()
		s.shed.Add(1)
		return nil, ErrClientBusy
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.live++
	if client != "" {
		s.clients[client]++
	}
	s.mu.Unlock()
	s.submitted.Add(1)

	go func() {
		defer cancel()
		type out struct {
			res *Result
			hit bool
			err error
		}
		ch := make(chan out, 1)
		go func() {
			res, hit, err := s.compute(jctx, norm, hash, job.markRunning, true)
			ch <- out{res, hit, err}
		}()
		select {
		case o := <-ch:
			s.finishJob(job, o.res, o.hit, o.err)
		case <-jctx.Done():
			// The job was cancelled (or timed out) while joined to someone
			// else's computation; release the submitter now. (If this job
			// owned the computation, the inner call observes the same ctx.)
			s.finishJob(job, nil, false, jctx.Err())
		}
	}()
	return job, nil
}

// finishJob records the terminal state, releases the job's admission
// slot exactly once, and applies the retention bound.
func (s *Service) finishJob(job *Job, res *Result, hit bool, err error) {
	if !job.finish(res, hit, err) {
		return
	}
	s.metrics.observeFinished(job)
	s.mu.Lock()
	s.live--
	if job.client != "" {
		if s.clients[job.client]--; s.clients[job.client] <= 0 {
			delete(s.clients, job.client)
		}
	}
	s.evictFinishedLocked(job)
	s.mu.Unlock()
}

// evictFinishedLocked enqueues the freshly finished job on the retention
// queue and evicts the oldest-finished jobs beyond the bound, so the
// registry holds at most live + retention jobs no matter how much
// traffic the daemon has served. Called with s.mu held.
func (s *Service) evictFinishedLocked(job *Job) {
	if s.retention < 0 {
		return // unlimited retention
	}
	s.finishedOrder = append(s.finishedOrder, job.ID)
	evicted := 0
	for len(s.finishedOrder) > s.retention {
		id := s.finishedOrder[0]
		s.finishedOrder = s.finishedOrder[1:]
		delete(s.jobs, id)
		s.orderStale++
		evicted++
	}
	if evicted == 0 {
		return
	}
	s.evicted.Add(int64(evicted))
	s.metrics.observeEvicted(evicted)
	// Compact the submission-order index once evicted IDs outnumber the
	// retained ones, so it stays proportional to the registry.
	if s.orderStale*2 > len(s.order) {
		kept := make([]string, 0, len(s.jobs))
		for _, id := range s.order {
			if _, ok := s.jobs[id]; ok {
				kept = append(kept, id)
			}
		}
		s.order = kept
		s.orderStale = 0
	}
}

// Run executes one spec synchronously: through the cache, deduplicated
// with any concurrent identical request, on the worker pool, with the
// same deadline and retry behaviour as submitted jobs. hit reports
// whether the result came from the cache. In cluster mode the
// computation routes to the owning node.
func (s *Service) Run(ctx context.Context, spec JobSpec) (res *Result, hit bool, err error) {
	return s.run(ctx, spec, true)
}

// RunLocal is Run pinned to this node: the cluster's forwarded-run
// handler uses it, so a forwarded computation can never forward again
// (routing terminates in one hop even with a divergent partition map).
func (s *Service) RunLocal(ctx context.Context, spec JobSpec) (res *Result, hit bool, err error) {
	return s.run(ctx, spec, false)
}

func (s *Service) run(ctx context.Context, spec JobSpec, routed bool) (res *Result, hit bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, false, err
	}
	if timeout := norm.Timeout(s.jobTimeout); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return s.compute(ctx, norm, hash, nil, routed)
}

// Cached returns the completed result for a content hash, if the cache
// holds one, without computing or routing anything.
func (s *Service) Cached(hash string) (*Result, bool) { return s.cache.Get(hash) }

// CachedHashes enumerates the content hash of every completed result
// in the cache, in no particular order — the range-scan seam cluster
// rebalancing and anti-entropy digests iterate over. The journal-backed
// entries recovered at startup are included, so a restarted node
// digests everything it ever committed.
func (s *Service) CachedHashes() []string { return s.cache.Hashes() }

// StoreResult installs a result computed elsewhere — a replication push
// or a replayed hint from a peer — into the cache and journal, after
// verifying the result's content hash matches its spec. Idempotent: a
// hash already cached is left untouched.
func (s *Service) StoreResult(res *Result) error {
	if res == nil || res.Hash == "" {
		return errors.New("sweep: result missing content hash")
	}
	norm, err := res.Spec.Normalize()
	if err != nil {
		return fmt.Errorf("sweep: stored result spec invalid: %w", err)
	}
	hash, err := norm.Hash()
	if err != nil {
		return err
	}
	if hash != res.Hash {
		return fmt.Errorf("sweep: stored result hash %.12s does not match its spec (%.12s)", res.Hash, hash)
	}
	s.cache.Store(res)
	return nil
}

// compute drives one spec to completion through the retry loop: each
// attempt goes through the cache (where cache- and journal-boundary
// faults can strike) onto the pool (where simulation-boundary faults can
// strike). Transient failures back off and retry; terminal failures —
// deterministic simulator errors, cancellation, deadline — return
// immediately.
//
// When routed and the service has a Remote, ownership is consulted
// first: a cell owned by a peer is served from the local replica cache
// if present, forwarded to its owner otherwise, and computed locally as
// the fallback when the forward fails. Fresh local computations are
// offered to the Remote for replication or handback.
func (s *Service) compute(ctx context.Context, spec JobSpec, hash string, onStart func(), routed bool) (*Result, bool, error) {
	if routed && s.remote != nil {
		if owner, local := s.remote.Route(hash); !local {
			if res, ok := s.cache.Get(hash); ok {
				// Replicated (or previously forwarded) copy — serve it
				// without a network hop, and let the cluster verify the
				// owner's copy in the background (read-repair).
				s.remote.ReadRepair(res)
				return res, true, nil
			}
			if onStart != nil {
				onStart()
				onStart = nil
			}
			res, err := s.forward(ctx, owner, spec, hash)
			if err == nil {
				if _, local := s.remote.Route(hash); local {
					// Ownership moved to us while the forward was in
					// flight (a rebalance): we are the owner now, so the
					// copy must be durable, not just a cached replica.
					s.cache.Store(res)
				} else {
					s.cache.Seed(hash, res)
				}
				return res, false, nil
			}
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			// Owner unreachable: compute the cell ourselves. Completed
			// below hands the result back to the owner's shard (directly
			// or through the hint log).
		}
	}
	var lastErr error
	for attempt := 0; attempt < s.retry.MaxAttempts; attempt++ {
		key := fmt.Sprintf("%s#%d", hash, attempt)
		res, hit, err := s.attempt(ctx, spec, hash, key, onStart)
		if err == nil {
			if !hit && s.remote != nil {
				s.remote.Completed(res)
			}
			return res, hit, nil
		}
		lastErr = err
		if !s.retryable(err) || attempt+1 == s.retry.MaxAttempts {
			return nil, hit, err
		}
		s.retries.Add(1)
		backoff := s.retry.backoff(hash, attempt)
		s.metrics.observeBackoff(backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return nil, false, lastErr
}

// forward sends one computation to the owning node through the Remote,
// converting an escaped panic to a *PanicError like any other boundary.
// The "forward" fault-injection site strikes here, keyed by content
// hash, so chaos tests can sever the forwarding path deterministically.
func (s *Service) forward(ctx context.Context, node string, spec JobSpec, hash string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	if err := s.inject.Check("forward", hash); err != nil {
		return nil, err
	}
	return s.remote.RunRemote(ctx, node, spec)
}

// attempt is one pass through cache and pool. A panic escaping the cache
// boundary (injected chaos) is converted to a *PanicError here so it can
// be classified and retried instead of killing the submit goroutine.
func (s *Service) attempt(ctx context.Context, spec JobSpec, hash, key string, onStart func()) (res *Result, hit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, hit = nil, false
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return s.cache.GetOrCompute(hash, key, func() (*Result, error) {
		return s.runOnPool(ctx, spec, hash, key, onStart)
	})
}

// retryable classifies an execution error: cancellation and deadlines are
// final, injected/transient faults (including a panic carrying one, and a
// shared computation that panicked under injection) retry, and everything
// else — a deterministic simulator or spec error — is terminal and never
// retried.
func (s *Service) retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ErrPoolClosed):
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		if f, ok := pe.Value.(error); ok {
			return faultinject.IsTransient(f)
		}
		return false
	}
	if errors.Is(err, conc.ErrComputePanicked) {
		// A joined computation panicked in its owner; whether the panic
		// was injected is invisible from here, but retrying is safe under
		// chaos and cheap otherwise (the owner's retry usually wins the
		// cache first).
		return s.inject.Enabled()
	}
	return faultinject.IsTransient(err)
}

// runOnPool queues one computation and waits for it. The spec only
// executes if ctx is still live when a worker picks it up — cancellation
// while queued skips the simulation entirely. The task is queued under
// the requesting client's tenant key (from ctx), so the pool's
// weighted-fair scheduler interleaves tenants no matter how deep any one
// tenant's backlog runs.
func (s *Service) runOnPool(ctx context.Context, spec JobSpec, hash, key string, onStart func()) (*Result, error) {
	var res *Result
	ch := make(chan error, 1)
	submitErr := s.pool.SubmitAs(ClientIDFrom(ctx), 1, func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if onStart != nil {
			onStart()
		}
		if err := s.inject.Check("sim", key); err != nil {
			return err
		}
		r, err := s.exec(spec)
		if err != nil {
			return err
		}
		r.Hash = hash
		res = r
		return nil
	}, func(err error) {
		ch <- err
	})
	if submitErr != nil {
		return nil, submitErr
	}
	select {
	case err := <-ch:
		if err != nil {
			return nil, err
		}
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Job returns a registered job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every retained job, in submission order.
// Jobs evicted by the retention bound no longer appear.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// DefaultJobPageLimit is the page size JobsPage uses when the caller
// does not specify one.
const DefaultJobPageLimit = 256

// JobsPage returns up to limit job snapshots in submission order,
// starting just past the job with id after ("" starts at the beginning).
// next is the cursor for the following page, empty on the last one. A
// cursor naming an evicted job yields an empty final page — the listing
// it belonged to has aged out, so there is nothing left to continue.
func (s *Service) JobsPage(after string, limit int) (views []JobView, next string) {
	if limit <= 0 {
		limit = DefaultJobPageLimit
	}
	s.mu.Lock()
	start := 0
	if after != "" {
		start = len(s.order)
		for i, id := range s.order {
			if id == after {
				start = i + 1
				break
			}
		}
	}
	jobs := make([]*Job, 0, limit)
	more := false
	for _, id := range s.order[start:] {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(jobs) == limit {
			more = true
			break
		}
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	views = make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	if more {
		next = jobs[len(jobs)-1].ID
	}
	return views, next
}

// Ready reports whether the service can accept a new submission right
// now: not draining and not at its admission limit. The HTTP /readyz
// endpoint exposes it.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	return s.maxLive == 0 || s.live < s.maxLive
}

// Stats aggregates every counter the service exposes.
type Stats struct {
	Submitted int64 `json:"submitted"`
	// Shed counts submissions refused by admission control (full service
	// or per-client cap).
	Shed int64 `json:"shed"`
	// Retries counts transient-failure retries across all jobs.
	Retries int64 `json:"retries"`
	// Evicted counts finished jobs dropped from the registry by the
	// retention bound (their IDs return 404 from the API).
	Evicted int64              `json:"evicted"`
	States  map[JobState]int64 `json:"states"`
	// Live is the number of admitted, unfinished jobs.
	Live  int        `json:"live"`
	Ready bool       `json:"ready"`
	Pool  PoolStats  `json:"pool"`
	Cache CacheStats `json:"cache"`
	// Journal is present when a persistent journal is attached.
	Journal *JournalStats `json:"journal,omitempty"`
	// Sweeps aggregates the sweep-resource registry.
	Sweeps SweepStats `json:"sweeps"`
	// SweepJournal is present when a sweep journal is attached.
	SweepJournal *SweepJournalStats `json:"sweep_journal,omitempty"`
	// Faults counts injected faults by "site/kind" when chaos is on.
	Faults map[string]int64 `json:"faults,omitempty"`
	// Utilization is running workers over total workers, 0..1.
	Utilization float64 `json:"utilization"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted: s.submitted.Load(),
		Shed:      s.shed.Load(),
		Retries:   s.retries.Load(),
		Evicted:   s.evicted.Load(),
		States:    make(map[JobState]int64),
		Ready:     s.Ready(),
		Pool:      s.pool.Stats(),
		Cache:     s.cache.Stats(),
	}
	if s.journal != nil {
		js := s.journal.Stats()
		st.Journal = &js
	}
	st.Sweeps = s.sweeps.stats()
	if s.sweepJournal != nil {
		sjs := s.sweepJournal.Stats()
		st.SweepJournal = &sjs
	}
	if s.inject.Enabled() {
		st.Faults = s.inject.Counts()
	}
	s.mu.Lock()
	st.Live = s.live
	for _, j := range s.jobs {
		st.States[j.State()]++
	}
	s.mu.Unlock()
	if st.Pool.Workers > 0 {
		st.Utilization = float64(st.Pool.Running) / float64(st.Pool.Workers)
	}
	return st
}

// Drain begins graceful shutdown: new submissions are rejected, queued and
// running jobs finish, and Drain returns when every registered job has
// reached a terminal state or ctx expires. The journal, if any, is closed
// once the jobs have settled.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	// Halt running sweeps without journaling a terminal state: their
	// queued cells exit promptly (dead contexts) and the next start
	// resumes them from the sweep journal. Draining a 10k-cell grid to
	// completion is not graceful shutdown.
	s.sweeps.shutdownAll()

	drained := make(chan struct{})
	go func() {
		// Wait for jobs before closing the pool: a freshly registered job
		// enqueues its pool task asynchronously, and closing too early
		// would fail it with ErrPoolClosed.
		for _, j := range jobs {
			<-j.Done()
		}
		s.pool.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		if s.journal != nil {
			s.journal.Close()
		}
		if s.sweepJournal != nil {
			s.sweepJournal.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down immediately: every job context is cancelled and the
// pool is drained of the (now trivially short) remaining tasks. The
// journal is NOT closed by Close — an abrupt shutdown is exactly the case
// the journal's crash recovery handles, and callers that own the journal
// close it themselves.
func (s *Service) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sweeps.shutdownAll()
	s.baseCancel()
	s.pool.Drain()
}
