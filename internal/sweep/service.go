package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"multicluster/internal/experiment"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one tracked unit of work: a normalized spec heading through the
// queue, the pool, and the cache.
type Job struct {
	// ID is unique per service instance; Hash is content-addressed and
	// shared by every job with the same spec.
	ID   string
	Spec JobSpec
	Hash string

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    JobState
	err      error
	result   *Result
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobView is the serializable snapshot of a job for the HTTP API.
type JobView struct {
	ID       string    `json:"id"`
	Hash     string    `json:"hash"`
	State    JobState  `json:"state"`
	Spec     JobSpec   `json:"spec"`
	CacheHit bool      `json:"cache_hit"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:       j.ID,
		Hash:     j.Hash,
		State:    j.state,
		Spec:     j.Spec,
		CacheHit: j.cacheHit,
		Result:   j.result,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the result and error of a finished job.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Cancel cancels the job. A job still in the queue never runs; a job
// already executing finishes its simulation but the submitter stops
// waiting.
func (j *Job) Cancel() { j.cancel() }

func (j *Job) markRunning() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
		j.started = time.Now()
	}
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, hit bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		return
	}
	j.finished = time.Now()
	j.cacheHit = hit
	switch {
	case err == nil:
		j.state = JobDone
		j.result = res
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCanceled
		j.err = err
	default:
		j.state = JobFailed
		j.err = err
	}
	close(j.done)
}

// Config configures a Service.
type Config struct {
	// Workers bounds the worker pool; < 1 means GOMAXPROCS.
	Workers int
	// exec overrides the execution kernel; tests use it to observe or
	// sabotage job execution.
	exec func(spec JobSpec) (*Result, error)
}

// Service is the sweep orchestrator: submitted jobs flow through the
// content-addressed cache (deduplicating identical specs) onto the bounded
// worker pool, and results are retained for every later request.
type Service struct {
	pool  *Pool
	cache Cache
	exec  func(spec JobSpec) (*Result, error)

	base       context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool

	nextID    atomic.Int64
	submitted atomic.Int64
}

// NewService starts a service with its worker pool.
func NewService(cfg Config) *Service {
	exec := cfg.exec
	if exec == nil {
		exec = runSpec
	}
	base, cancel := context.WithCancel(context.Background())
	return &Service{
		pool:       NewPool(cfg.Workers),
		exec:       exec,
		base:       base,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
}

// runSpec is the real execution kernel: compile and simulate through the
// process-wide experiment cache.
func runSpec(spec JobSpec) (*Result, error) {
	cfg, opts, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	rr, err := experiment.CachedRun(spec.Benchmark, spec.Scheduler, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spec:    spec,
		Stats:   rr.Stats.Snapshot(),
		Spilled: rr.Spilled,
		Demoted: rr.Demoted,
	}, nil
}

// ErrDraining is returned by Submit once graceful shutdown has begun.
var ErrDraining = errors.New("sweep: service is draining")

// Submit registers an asynchronous job and returns immediately. Identical
// specs — concurrent or repeated — share one underlying simulation through
// the cache.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(s.base)
	job := &Job{
		ID:      fmt.Sprintf("j%d", s.nextID.Add(1)),
		Spec:    norm,
		Hash:    hash,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	s.submitted.Add(1)

	go func() {
		defer cancel()
		type out struct {
			res *Result
			hit bool
			err error
		}
		ch := make(chan out, 1)
		go func() {
			res, hit, err := s.cache.GetOrCompute(hash, func() (*Result, error) {
				return s.runOnPool(jctx, norm, hash, job.markRunning)
			})
			ch <- out{res, hit, err}
		}()
		select {
		case o := <-ch:
			job.finish(o.res, o.hit, o.err)
		case <-jctx.Done():
			// The job was cancelled while joined to someone else's
			// computation; release the submitter now. (If this job owned
			// the computation, the inner call observes the same ctx.)
			job.finish(nil, false, jctx.Err())
		}
	}()
	return job, nil
}

// Run executes one spec synchronously: through the cache, deduplicated
// with any concurrent identical request, on the worker pool. hit reports
// whether the result came from the cache.
func (s *Service) Run(ctx context.Context, spec JobSpec) (res *Result, hit bool, err error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash, err := norm.Hash()
	if err != nil {
		return nil, false, err
	}
	return s.cache.GetOrCompute(hash, func() (*Result, error) {
		return s.runOnPool(ctx, norm, hash, nil)
	})
}

// runOnPool queues one computation and waits for it. The spec only
// executes if ctx is still live when a worker picks it up — cancellation
// while queued skips the simulation entirely.
func (s *Service) runOnPool(ctx context.Context, spec JobSpec, hash string, onStart func()) (*Result, error) {
	var res *Result
	ch := make(chan error, 1)
	submitErr := s.pool.Submit(func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if onStart != nil {
			onStart()
		}
		r, err := s.exec(spec)
		if err != nil {
			return err
		}
		r.Hash = hash
		res = r
		return nil
	}, func(err error) {
		ch <- err
	})
	if submitErr != nil {
		return nil, submitErr
	}
	select {
	case err := <-ch:
		if err != nil {
			return nil, err
		}
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Job returns a registered job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every registered job, in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Stats aggregates every counter the service exposes.
type Stats struct {
	Submitted int64              `json:"submitted"`
	States    map[JobState]int64 `json:"states"`
	Pool      PoolStats          `json:"pool"`
	Cache     CacheStats         `json:"cache"`
	// Utilization is running workers over total workers, 0..1.
	Utilization float64 `json:"utilization"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted: s.submitted.Load(),
		States:    make(map[JobState]int64),
		Pool:      s.pool.Stats(),
		Cache:     s.cache.Stats(),
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		st.States[j.State()]++
	}
	s.mu.Unlock()
	if st.Pool.Workers > 0 {
		st.Utilization = float64(st.Pool.Running) / float64(st.Pool.Workers)
	}
	return st
}

// Drain begins graceful shutdown: new submissions are rejected, queued and
// running jobs finish, and Drain returns when every registered job has
// reached a terminal state or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		// Wait for jobs before closing the pool: a freshly registered job
		// enqueues its pool task asynchronously, and closing too early
		// would fail it with ErrPoolClosed.
		for _, j := range jobs {
			<-j.Done()
		}
		s.pool.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down immediately: every job context is cancelled and the
// pool is drained of the (now trivially short) remaining tasks.
func (s *Service) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	s.pool.Drain()
}
