package sweep

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"multicluster/internal/obs"
)

// TestScrapeReproducesHistogramPercentiles is the client/server
// consistency proof behind mcbench: latencies observed by the service's
// own sweep.Metrics histograms, exported through the Prometheus text
// format and re-parsed by ParseMetricsText, must yield the same
// percentiles (within one bucket width — the information a fixed-bucket
// histogram is allowed to lose) that the raw samples had.
func TestScrapeReproducesHistogramPercentiles(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	// Known latencies spanning the default duration buckets, seeded so
	// the test is reproducible: log-uniform over [1ms, 20s].
	rng := rand.New(rand.NewSource(7))
	lats := make([]float64, 0, 600)
	for i := 0; i < 600; i++ {
		lats = append(lats, math.Pow(10, -3+4.3*rng.Float64()))
	}
	for _, v := range lats {
		m.totalTime.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scr, err := ParseMetricsText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := scr.Histogram("sweep_job_total_seconds")
	if !ok {
		t.Fatal("sweep_job_total_seconds histogram missing from scrape")
	}
	if h.Count != int64(len(lats)) {
		t.Fatalf("scraped count = %d, want %d", h.Count, len(lats))
	}
	var sum float64
	for _, v := range lats {
		sum += v
	}
	if math.Abs(h.Sum-sum) > 1e-6*sum {
		t.Fatalf("scraped sum = %g, want %g", h.Sum, sum)
	}

	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.50, 0.90, 0.99} {
		got := h.Quantile(q)
		want := sorted[int(math.Ceil(q*float64(len(sorted))))-1]
		// The estimate may not leave the bucket holding the true value,
		// so it is off by strictly less than that bucket's width.
		i := sort.SearchFloat64s(h.Bounds, want)
		if i >= len(h.Bounds) {
			t.Fatalf("q%.2f sample %g beyond the last bucket bound", q, want)
		}
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		}
		width := h.Bounds[i] - lower
		if diff := math.Abs(got - want); diff > width {
			t.Errorf("q%.2f = %g, true percentile %g: off by %g, more than one bucket width %g",
				q, got, want, diff, width)
		}
	}
}

// TestScrapeScalarAndLabeledSeries pins the scalar and labeled lookups
// mcbench relies on for the client/server counter cross-check.
func TestScrapeScalarAndLabeledSeries(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jobs_total", "help text").Add(41)
	reg.Counter("jobs_by_state_total", "by state", obs.L("state", "done")).Add(7)
	reg.Counter("jobs_by_state_total", "by state", obs.L("state", "failed")).Add(2)
	reg.Gauge("pool_live", "live").Set(3.5)
	reg.Histogram("lat_seconds", "latency", []float64{0.1, 1}, obs.L("cluster", "0")).Observe(0.05)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scr, err := ParseMetricsText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("jobs_total"); !ok || v != 41 {
		t.Errorf("jobs_total = %g,%v want 41", v, ok)
	}
	if v, ok := scr.Value("jobs_by_state_total", obs.L("state", "done")); !ok || v != 7 {
		t.Errorf(`jobs_by_state_total{state="done"} = %g,%v want 7`, v, ok)
	}
	if v, ok := scr.Value("jobs_by_state_total", obs.L("state", "failed")); !ok || v != 2 {
		t.Errorf(`jobs_by_state_total{state="failed"} = %g,%v want 2`, v, ok)
	}
	if v, ok := scr.Value("pool_live"); !ok || v != 3.5 {
		t.Errorf("pool_live = %g,%v want 3.5", v, ok)
	}
	if _, ok := scr.Value("jobs_by_state_total"); ok {
		t.Error("unlabeled lookup matched a labeled series")
	}
	h, ok := scr.Histogram("lat_seconds", obs.L("cluster", "0"))
	if !ok || h.Count != 1 || len(h.Bounds) != 2 || h.Cum[0] != 1 {
		t.Errorf("labeled histogram scrape = %+v, ok=%v", h, ok)
	}
}

// TestHistogramSnapshotQuantileEdges pins Quantile's corner cases.
func TestHistogramSnapshotQuantileEdges(t *testing.T) {
	if q := (&HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
	var nilH *HistogramSnapshot
	if q := nilH.Quantile(0.5); q != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", q)
	}
	// All mass in the +Inf bucket: report the last finite edge rather
	// than inventing a number.
	h := &HistogramSnapshot{Bounds: []float64{1, 2}, Cum: []int64{0, 0}, Count: 5}
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("+Inf-bucket quantile = %g, want last finite edge 2", q)
	}
	// Uniform single bucket interpolates linearly from the lower edge.
	h = &HistogramSnapshot{Bounds: []float64{1, 2}, Cum: []int64{0, 10}, Count: 10}
	if q := h.Quantile(0.5); q != 1.5 {
		t.Errorf("mid-bucket quantile = %g, want 1.5", q)
	}
}
