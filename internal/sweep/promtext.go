package sweep

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"multicluster/internal/obs"
)

// This file is the read side of the metrics surface: a small parser for
// the Prometheus text exposition format that GET /metrics serves (and
// internal/obs renders), so the load-bench client (cmd/mcbench) and the
// tests can compare client-observed numbers against the server's own
// counters and histograms without pulling in a metrics client library.

// ScrapedMetrics is one parsed exposition: scalar samples (counters,
// gauges) addressable by name and labels, and reassembled histograms.
type ScrapedMetrics struct {
	scalars map[string]float64
	hists   map[string]*HistogramSnapshot
}

// HistogramSnapshot is a point-in-time cumulative histogram: the finite
// upper bucket edges in ascending order, the cumulative count at each
// edge, and the total count including the implicit +Inf bucket. It is
// the common shape that both the server's scraped histograms and
// mcbench's client-side latency histograms reduce to, so one Quantile
// implementation serves both sides of the comparison.
type HistogramSnapshot struct {
	Bounds []float64 // finite upper edges, ascending
	Cum    []int64   // cumulative observation count at each edge
	Count  int64     // total observations, +Inf bucket included
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// holding the rank-ceil(q·Count) observation and interpolating linearly
// inside it, exactly as Prometheus's histogram_quantile does. The
// estimate therefore never leaves the bucket that holds the true value:
// it is within one bucket width of any sample-exact percentile. Ranks
// landing in the +Inf bucket return the last finite edge; an empty
// histogram returns 0.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var prevCum int64
	for i, edge := range h.Bounds {
		cum := h.Cum[i]
		if rank <= cum {
			lower := 0.0
			if i > 0 {
				lower = h.Bounds[i-1]
			}
			return lower + (edge-lower)*float64(rank-prevCum)/float64(cum-prevCum)
		}
		prevCum = cum
	}
	return h.Bounds[len(h.Bounds)-1]
}

// ParseMetricsText parses a Prometheus text exposition (format 0.0.4).
// Comment and blank lines are skipped; histogram families are recognized
// by their _bucket/_sum/_count series and reassembled into
// HistogramSnapshots keyed by the base family name.
func ParseMetricsText(r io.Reader) (*ScrapedMetrics, error) {
	m := &ScrapedMetrics{
		scalars: make(map[string]float64),
		hists:   make(map[string]*HistogramSnapshot),
	}
	type edge struct {
		le  float64
		cum int64
	}
	buckets := make(map[string][]edge)
	sums := make(map[string]float64)
	counts := make(map[string]int64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok {
			if le, found := takeLabel(labels, "le"); found {
				key := scrapeKey(base, labels)
				bound := math.Inf(1)
				if le != "+Inf" {
					if bound, err = strconv.ParseFloat(le, 64); err != nil {
						return nil, fmt.Errorf("sweep: bad le %q in %q", le, line)
					}
				}
				buckets[key] = append(buckets[key], edge{bound, int64(value)})
				continue
			}
		}
		key := scrapeKey(name, labels)
		m.scalars[key] = value
		if base, ok := strings.CutSuffix(name, "_sum"); ok {
			sums[scrapeKey(base, labels)] = value
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok {
			counts[scrapeKey(base, labels)] = int64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for key, edges := range buckets {
		sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
		h := &HistogramSnapshot{Sum: sums[key], Count: counts[key]}
		for _, e := range edges {
			if math.IsInf(e.le, 1) {
				if h.Count == 0 {
					h.Count = e.cum
				}
				continue
			}
			h.Bounds = append(h.Bounds, e.le)
			h.Cum = append(h.Cum, e.cum)
		}
		m.hists[key] = h
	}
	return m, nil
}

// Value returns the scalar sample (counter or gauge) registered under
// name with exactly the given labels.
func (m *ScrapedMetrics) Value(name string, labels ...obs.Label) (float64, bool) {
	v, ok := m.scalars[scrapeKey(name, labelMap(labels))]
	return v, ok
}

// Histogram returns the reassembled histogram family under name with
// exactly the given labels.
func (m *ScrapedMetrics) Histogram(name string, labels ...obs.Label) (*HistogramSnapshot, bool) {
	h, ok := m.hists[scrapeKey(name, labelMap(labels))]
	return h, ok
}

func labelMap(labels []obs.Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	lm := make(map[string]string, len(labels))
	for _, l := range labels {
		lm[l.Name] = l.Value
	}
	return lm
}

// scrapeKey canonicalizes (name, labels) into one map key: the name plus
// the label pairs sorted by label name.
func scrapeKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(name)
	for _, n := range names {
		sb.WriteByte('{')
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(labels[n])
		sb.WriteByte('}')
	}
	return sb.String()
}

// takeLabel removes name from labels, returning its value.
func takeLabel(labels map[string]string, name string) (string, bool) {
	v, ok := labels[name]
	if ok {
		delete(labels, name)
	}
	return v, ok
}

// parseSample splits one exposition line into its metric name, label
// map, and value. Label values are unescaped (\\, \", \n).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("sweep: unterminated labels in %q", line)
		}
		if labels, err = parseLabels(line[i+1 : end]); err != nil {
			return "", nil, 0, fmt.Errorf("sweep: %v in %q", err, line)
		}
		rest = line[end+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sweep: malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	valueStr := strings.Fields(strings.TrimSpace(rest))
	if len(valueStr) == 0 {
		return "", nil, 0, fmt.Errorf("sweep: missing value in %q", line)
	}
	value, err = parsePromValue(valueStr[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sweep: bad value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` with Prometheus escaping.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		s = s[1:]
		var sb strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			sb.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		labels[name] = sb.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}
