package sweep

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"multicluster/internal/obs"
)

// newMetricsServer is newTestServer with an instrumented service: a fresh
// obs.Registry-backed Metrics, an optional stubbed kernel, and any extra
// Config shaping via mutate.
func newMetricsServer(t *testing.T, workers int, stub *stubExec, mutate func(*Config)) (*httptest.Server, *Service) {
	t.Helper()
	cfg := Config{Workers: workers, Metrics: NewMetrics(obs.NewRegistry())}
	if stub != nil {
		cfg.exec = stub.exec
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc := NewService(cfg)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content type %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestJobRetentionEviction is the registry-growth soak: far more
// submissions than the retention bound must leave the registry bounded,
// evicted ids answering 404, and the eviction counter exported.
func TestJobRetentionEviction(t *testing.T) {
	const retention, total = 8, 40
	stub := &stubExec{}
	ts, svc := newMetricsServer(t, 4, stub, func(cfg *Config) {
		cfg.JobRetention = retention
	})

	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		// Unique seeds so every submission is a distinct job and a distinct
		// cache entry — nothing coalesces.
		job, err := svc.Submit(JobSpec{Benchmark: "compress", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Live > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if got := len(svc.Jobs()); got != retention {
		t.Fatalf("registry holds %d jobs after %d submissions, want retention bound %d", got, total, retention)
	}
	st := svc.Stats()
	if st.Evicted != total-retention {
		t.Fatalf("evicted counter = %d, want %d", st.Evicted, total-retention)
	}

	// Exactly the retained jobs answer 200; every evicted id is 404.
	var ok200, notFound int
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusNotFound:
			notFound++
		default:
			t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
		}
	}
	if ok200 != retention || notFound != total-retention {
		t.Fatalf("job polls: %d ok / %d not-found, want %d/%d", ok200, notFound, retention, total-retention)
	}

	body := scrapeMetrics(t, ts.URL)
	if want := fmt.Sprintf("sweep_jobs_evicted_total %d", total-retention); !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q", want)
	}
	if want := fmt.Sprintf("sweep_jobs_retained %d", retention); !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q", want)
	}
}

// TestJobRetentionUnlimited keeps the pre-retention semantics reachable:
// a negative retention never evicts.
func TestJobRetentionUnlimited(t *testing.T) {
	stub := &stubExec{}
	_, svc := newMetricsServer(t, 2, stub, func(cfg *Config) {
		cfg.JobRetention = -1
	})
	for i := 0; i < 20; i++ {
		if _, err := svc.Submit(JobSpec{Benchmark: "compress", Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Stats().Live > 0 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(svc.Jobs()); got != 20 {
		t.Fatalf("unlimited retention holds %d jobs, want 20", got)
	}
	if ev := svc.Stats().Evicted; ev != 0 {
		t.Fatalf("unlimited retention evicted %d jobs", ev)
	}
}

// TestTable2FormatRejectedBeforeComputation: an unknown ?format= must 400
// without simulating anything.
func TestTable2FormatRejectedBeforeComputation(t *testing.T) {
	stub := &stubExec{}
	ts, svc := newMetricsServer(t, 2, stub, nil)

	resp, err := http.Get(ts.URL + "/v1/table2?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}
	if got := stub.calls.Load(); got != 0 {
		t.Fatalf("rejected request executed %d simulations, want 0", got)
	}
	if done := svc.Stats().Pool.Completed; done != 0 {
		t.Fatalf("rejected request completed %d pool tasks, want 0", done)
	}
}

// TestTable2ClientDisconnect499: a client abandoning the request
// mid-computation is not a server error — it maps to 499 and the
// client-canceled counter, never a 5xx.
func TestTable2ClientDisconnect499(t *testing.T) {
	var once sync.Once
	started := make(chan struct{})
	gate := make(chan struct{})
	exec := func(spec JobSpec) (*Result, error) {
		once.Do(func() { close(started) })
		<-gate
		return &Result{Spec: spec}, nil
	}
	_, svc := newMetricsServer(t, 2, nil, func(cfg *Config) {
		cfg.exec = exec
	})
	// Registered after newMetricsServer so it runs (LIFO) before
	// svc.Close(), releasing the workers Close waits on.
	t.Cleanup(sync.OnceFunc(func() { close(gate) }))
	srv := NewServer(svc)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/table2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(rec, req)
		close(done)
	}()

	<-started // at least one cell is executing
	cancel()  // the client goes away
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler never returned after client cancel")
	}

	if rec.Code != statusClientClosedRequest {
		t.Fatalf("client disconnect: status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if got := svc.metrics.clientCanceled.Value(); got != 1 {
		t.Fatalf("client-canceled counter = %d, want 1", got)
	}

	// And the counter is visible in the exposition.
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), "sweep_http_client_canceled_total 1") {
		t.Fatal("/metrics missing sweep_http_client_canceled_total 1")
	}
}

// nonFlusher hides every optional interface of the wrapped
// ResponseWriter, exactly what a buffering middleware can do.
type nonFlusher struct {
	http.ResponseWriter
}

// TestSweepNDJSONNonFlusher: the NDJSON stream must degrade gracefully —
// complete rows, no panic — when the ResponseWriter cannot flush.
func TestSweepNDJSONNonFlusher(t *testing.T) {
	stub := &stubExec{}
	_, svc := newMetricsServer(t, 2, stub, nil)
	srv := NewServer(svc)

	body := strings.NewReader(`{"benchmarks":["compress","ora"],"machines":["dual"],"schedulers":["none"]}`)
	req := httptest.NewRequest("POST", "/v1/sweeps?mode=inline", body)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(nonFlusher{rec}, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("sweep via non-flusher: status %d, want 200: %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sweep via non-flusher: %d NDJSON rows, want 2:\n%s", len(lines), rec.Body)
	}
}

// TestMetricsExpositionEndToEnd runs one real (unstubbed) simulation
// through the service and checks the scrape carries the core stall-cause
// counters, occupancy histograms, and job-latency histograms the probes
// feed.
func TestMetricsExpositionEndToEnd(t *testing.T) {
	ts, svc := newMetricsServer(t, 2, nil, nil)

	job, err := svc.Submit(JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local", Instructions: 20000})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts.URL, job.ID, JobDone)

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`core_cycles_total `,
		`core_fetch_stall_cycles_total{cause="icache_miss"}`,
		`core_fetch_stall_cycles_total{cause="mispredict"}`,
		`core_distributions_total{kind="dual"}`,
		`core_dispatch_queue_occupancy_bucket{cluster="0",le="+Inf"}`,
		`sweep_job_total_seconds_count 1`,
		`sweep_job_queue_wait_seconds_count 1`,
		`sweep_job_attempts_count 1`,
		`sweep_jobs_finished_total{state="done"} 1`,
		`sweep_jobs_evicted_total 0`,
		`sweep_jobs_submitted_total 1`,
		`sweep_pool_completed_total`,
		`sweep_cache_misses_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The probed core counters must be live, not merely present: a 20k
	// instruction run simulates at least that many cycles.
	if !strings.Contains(body, "core_cycles_total 2") &&
		!strings.Contains(body, "core_cycles_total 3") {
		// Cheap sanity: 20k instructions on a dual machine takes 20k-40k
		// cycles, so the counter starts with 2 or 3.
		t.Errorf("core_cycles_total not in expected range:\n%s", grepLine(body, "core_cycles_total"))
	}
}

func grepLine(body, substr string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			return line
		}
	}
	return "(absent)"
}
