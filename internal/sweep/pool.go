package sweep

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by Submit after Close or Drain.
var ErrPoolClosed = errors.New("sweep: pool closed")

// PanicError wraps a panic recovered from a job so one bad job surfaces as
// that job's failure instead of killing the daemon.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("sweep: job panicked: %v", e.Value) }

// Pool is a bounded worker pool with per-tenant weighted-fair queueing.
// Work is executed by a fixed set of worker goroutines; within one tenant
// tasks run in submission order (FIFO), and across tenants the scheduler
// is a stride/virtual-time WFQ: each tenant's queue carries a virtual
// finish time advanced by 1/weight per dequeued task, and workers always
// pick the backlogged tenant with the smallest virtual time. A tenant
// with 10k queued tasks therefore cannot starve a tenant submitting one
// task at a time — service interleaves proportionally to weight, not to
// backlog size.
//
// Submit (no tenant) enqueues under the empty tenant key, which preserves
// the historical plain-FIFO behaviour when nobody else is queueing. A
// panicking task is isolated (recovered, counted, and reported to its own
// completion callback) and never takes a worker down.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string]*tenantQueue
	ready  tenantHeap // backlogged tenants, min-ordered by virtual time
	vnow   float64    // virtual time of the last dequeue
	closed bool
	wg     sync.WaitGroup

	workers   int
	queued    atomic.Int64 // tasks waiting across all tenant queues
	running   atomic.Int64 // tasks currently executing
	completed atomic.Int64 // tasks finished, success or failure
	failed    atomic.Int64 // tasks that returned an error (incl. panics)
	panics    atomic.Int64 // tasks that panicked
}

// tenantQueue is one tenant's FIFO backlog plus its WFQ accounting.
type tenantQueue struct {
	key    string
	tasks  []func() error
	weight int
	vtime  float64 // virtual start time of the task at the head
	index  int     // position in the ready heap, -1 when idle
}

// tenantHeap orders backlogged tenants by virtual time (ties broken by
// key so scheduling is deterministic under equal load).
type tenantHeap []*tenantQueue

func (h tenantHeap) Len() int { return len(h) }
func (h tenantHeap) Less(i, j int) bool {
	if h[i].vtime != h[j].vtime {
		return h[i].vtime < h[j].vtime
	}
	return h[i].key < h[j].key
}
func (h tenantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *tenantHeap) Push(x any) {
	q := x.(*tenantQueue)
	q.index = len(*h)
	*h = append(*h, q)
}
func (h *tenantHeap) Pop() any {
	old := *h
	q := old[len(old)-1]
	old[len(old)-1] = nil
	q.index = -1
	*h = old[:len(old)-1]
	return q
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Workers   int   `json:"workers"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Panics    int64 `json:"panics"`
	// Tenants is the number of tenants with queued work right now.
	Tenants int `json:"tenants"`
}

// NewPool starts a pool with n workers; n < 1 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n, queues: make(map[string]*tenantQueue)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit appends fn to the anonymous tenant's queue. fn runs on a worker
// goroutine; its error (or wrapped panic) is passed to done, which may be
// nil. Submit never blocks on queue capacity.
func (p *Pool) Submit(fn func() error, done func(error)) error {
	return p.SubmitAs("", 1, fn, done)
}

// SubmitAs appends fn to tenant's queue with the given scheduling weight
// (< 1 means 1; a tenant's weight is updated by its latest submission).
// Tasks of one tenant run FIFO; across tenants the pool shares workers
// in proportion to weight regardless of backlog depth.
func (p *Pool) SubmitAs(tenant string, weight int, fn func() error, done func(error)) error {
	if weight < 1 {
		weight = 1
	}
	task := func() error {
		err := p.runIsolated(fn)
		if done != nil {
			done(err)
		}
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	q := p.queues[tenant]
	if q == nil {
		q = &tenantQueue{key: tenant, index: -1}
		p.queues[tenant] = q
	}
	q.weight = weight
	q.tasks = append(q.tasks, task)
	if q.index < 0 {
		// A tenant re-entering the schedule starts at the current virtual
		// time: it gets its fair share from now on, but cannot bank credit
		// from its idle period to burst ahead of everyone else.
		if q.vtime < p.vnow {
			q.vtime = p.vnow
		}
		heap.Push(&p.ready, q)
	}
	p.queued.Add(1)
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// runIsolated executes fn, converting a panic into a *PanicError.
func (p *Pool) runIsolated(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// next pops the head task of the backlogged tenant with the smallest
// virtual time and advances the clocks. Called with p.mu held; returns
// nil when nothing is queued.
func (p *Pool) next() func() error {
	if len(p.ready) == 0 {
		return nil
	}
	q := p.ready[0]
	task := q.tasks[0]
	q.tasks[0] = nil
	q.tasks = q.tasks[1:]
	p.vnow = q.vtime
	q.vtime += 1 / float64(q.weight)
	if len(q.tasks) == 0 {
		heap.Pop(&p.ready)
		// Idle tenants are forgotten entirely so the map stays proportional
		// to concurrent load, not to every client id ever seen; re-arrival
		// restarts at the then-current virtual time, which is exactly what
		// the re-entry clamp above would have produced anyway.
		delete(p.queues, q.key)
	} else {
		heap.Fix(&p.ready, 0)
	}
	return task
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.ready) == 0 && !p.closed {
			p.cond.Wait()
		}
		task := p.next()
		p.mu.Unlock()
		if task == nil {
			// closed and drained
			return
		}

		p.queued.Add(-1)
		p.running.Add(1)
		err := task()
		p.running.Add(-1)
		p.completed.Add(1)
		if err != nil {
			p.failed.Add(1)
		}
	}
}

// Close stops accepting new work. Workers finish the queues and exit.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Drain closes the pool and blocks until every queued and running task has
// finished — the graceful-shutdown path.
func (p *Pool) Drain() {
	p.Close()
	p.wg.Wait()
}

// Stats snapshots the counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	tenants := len(p.ready)
	p.mu.Unlock()
	return PoolStats{
		Workers:   p.workers,
		Queued:    p.queued.Load(),
		Running:   p.running.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Panics:    p.panics.Load(),
		Tenants:   tenants,
	}
}
