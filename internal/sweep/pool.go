package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by Submit after Close or Drain.
var ErrPoolClosed = errors.New("sweep: pool closed")

// PanicError wraps a panic recovered from a job so one bad job surfaces as
// that job's failure instead of killing the daemon.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("sweep: job panicked: %v", e.Value) }

// Pool is a bounded worker pool over an unbounded FIFO queue. Work is
// executed by a fixed set of worker goroutines, in submission order; a
// panicking task is isolated (recovered, counted, and reported to its own
// completion callback) and never takes a worker down.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func() error
	closed bool
	wg     sync.WaitGroup

	workers   int
	queued    atomic.Int64 // tasks waiting in the queue
	running   atomic.Int64 // tasks currently executing
	completed atomic.Int64 // tasks finished, success or failure
	failed    atomic.Int64 // tasks that returned an error (incl. panics)
	panics    atomic.Int64 // tasks that panicked
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	Workers   int   `json:"workers"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Panics    int64 `json:"panics"`
}

// NewPool starts a pool with n workers; n < 1 means GOMAXPROCS.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit appends fn to the FIFO queue. fn runs on a worker goroutine; its
// error (or wrapped panic) is passed to done, which may be nil. Submit
// never blocks on queue capacity.
func (p *Pool) Submit(fn func() error, done func(error)) error {
	task := func() error {
		err := p.runIsolated(fn)
		if done != nil {
			done(err)
		}
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	p.queue = append(p.queue, task)
	p.queued.Add(1)
	p.cond.Signal()
	p.mu.Unlock()
	return nil
}

// runIsolated executes fn, converting a panic into a *PanicError.
func (p *Pool) runIsolated(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			// closed and drained
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		p.queued.Add(-1)
		p.running.Add(1)
		err := task()
		p.running.Add(-1)
		p.completed.Add(1)
		if err != nil {
			p.failed.Add(1)
		}
	}
}

// Close stops accepting new work. Workers finish the queue and exit.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Drain closes the pool and blocks until every queued and running task has
// finished — the graceful-shutdown path.
func (p *Pool) Drain() {
	p.Close()
	p.wg.Wait()
}

// Stats snapshots the counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Queued:    p.queued.Load(),
		Running:   p.running.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Panics:    p.panics.Load(),
	}
}
