package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multicluster/internal/experiment"
	"multicluster/internal/workload"
)

// stubExec builds a kernel whose executions are observable and gateable.
type stubExec struct {
	calls   atomic.Int64
	started chan string   // receives spec.Benchmark when a run begins
	gate    chan struct{} // runs block on this when non-nil
	panicOn string        // benchmark that panics
}

func (s *stubExec) exec(spec JobSpec) (*Result, error) {
	s.calls.Add(1)
	if s.started != nil {
		s.started <- spec.Benchmark
	}
	if spec.Benchmark == s.panicOn {
		panic("sabotaged job")
	}
	if s.gate != nil {
		<-s.gate
	}
	return &Result{Spec: spec}, nil
}

func newStubService(workers int, stub *stubExec) *Service {
	return NewService(Config{Workers: workers, exec: stub.exec})
}

func TestRunSingleFlightConcurrentIdentical(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	svc := newStubService(4, stub)
	defer svc.Close()

	spec := JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local"}
	const n = 16
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = svc.Run(context.Background(), spec)
		}(i)
	}
	// All sixteen requests funnel into one computation; release it.
	time.AfterFunc(10*time.Millisecond, func() { close(stub.gate) })
	wg.Wait()

	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests executed %d simulations, want 1", n, got)
	}
	want, _ := json.Marshal(results[0])
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		got, _ := json.Marshal(results[i])
		if string(got) != string(want) {
			t.Fatalf("request %d got a different result", i)
		}
	}
	cs := svc.Stats().Cache
	if cs.Misses != 1 || cs.Hits != n-1 {
		t.Fatalf("cache hits=%d misses=%d, want %d/1", cs.Hits, cs.Misses, n-1)
	}
}

func TestCacheHitAccounting(t *testing.T) {
	stub := &stubExec{}
	svc := newStubService(2, stub)
	defer svc.Close()

	spec := JobSpec{Benchmark: "ora"}
	if _, hit, err := svc.Run(context.Background(), spec); err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := svc.Run(context.Background(), spec); err != nil || !hit {
		t.Fatalf("second run: hit=%v err=%v, want hit", hit, err)
	}
	// A different spec misses again.
	if _, hit, err := svc.Run(context.Background(), JobSpec{Benchmark: "ora", Seed: 7}); err != nil || hit {
		t.Fatalf("different spec: hit=%v err=%v, want miss", hit, err)
	}
	cs := svc.Stats().Cache
	if cs.Misses != 2 || cs.Hits != 1 || cs.Entries != 2 {
		t.Fatalf("cache stats = %+v, want 2 misses, 1 hit, 2 entries", cs)
	}
	if stub.calls.Load() != 2 {
		t.Fatalf("executed %d simulations, want 2", stub.calls.Load())
	}
}

func TestCancelMidQueueSkipsSimulation(t *testing.T) {
	stub := &stubExec{started: make(chan string, 8), gate: make(chan struct{})}
	svc := newStubService(1, stub)
	defer svc.Close()

	// Job A occupies the only worker.
	jobA, err := svc.Submit(JobSpec{Benchmark: "compress"})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	if got := <-stub.started; got != "compress" {
		t.Fatalf("first started run = %q", got)
	}

	// Job B waits in the queue; cancel it there.
	jobB, err := svc.Submit(JobSpec{Benchmark: "doduc"})
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	jobB.Cancel()
	<-jobB.Done()
	if st := jobB.State(); st != JobCanceled {
		t.Fatalf("cancelled-in-queue job state = %s, want %s", st, JobCanceled)
	}

	// Release the worker; A finishes, B's queued task is skipped.
	close(stub.gate)
	<-jobA.Done()
	if st := jobA.State(); st != JobDone {
		t.Fatalf("job A state = %s, want %s", st, JobDone)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("%d simulations executed, want 1 (B was cancelled in the queue)", got)
	}
	// The cancelled spec is not poisoned in the cache.
	if entries := svc.Stats().Cache.Entries; entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (only A's result)", entries)
	}
}

func TestPanicInJobIsolated(t *testing.T) {
	stub := &stubExec{panicOn: "gcc1"}
	svc := newStubService(2, stub)
	defer svc.Close()

	job, err := svc.Submit(JobSpec{Benchmark: "gcc1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-job.Done()
	if st := job.State(); st != JobFailed {
		t.Fatalf("panicking job state = %s, want %s", st, JobFailed)
	}
	if _, jerr := job.Result(); jerr == nil {
		t.Fatal("panicking job reported no error")
	} else {
		var pe *PanicError
		if !errors.As(jerr, &pe) {
			t.Fatalf("panicking job error = %v, want *PanicError", jerr)
		}
	}

	// The daemon survives: other jobs still run, and the panicked hash is
	// not poisoned in the cache.
	res, _, err := svc.Run(context.Background(), JobSpec{Benchmark: "ora"})
	if err != nil || res == nil {
		t.Fatalf("job after panic: %v", err)
	}
	st := svc.Stats()
	if st.Pool.Panics != 1 {
		t.Fatalf("pool panics = %d, want 1", st.Pool.Panics)
	}
	if st.Cache.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1 (failures are not cached)", st.Cache.Entries)
	}
}

func TestSubmitDeduplicatesAsyncJobs(t *testing.T) {
	stub := &stubExec{gate: make(chan struct{})}
	svc := newStubService(2, stub)
	defer svc.Close()

	spec := JobSpec{Benchmark: "tomcatv"}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	close(stub.gate)
	for _, j := range jobs {
		<-j.Done()
		if st := j.State(); st != JobDone {
			t.Fatalf("job %s state = %s, want done", j.ID, st)
		}
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("6 identical async jobs executed %d simulations, want 1", got)
	}
	// A job submitted after completion is a pure cache hit.
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v := j.View(); !v.CacheHit || v.State != JobDone {
		t.Fatalf("post-completion job view = %+v, want cache hit", v)
	}
}

func TestDrainFinishesJobsAndRejectsNew(t *testing.T) {
	stub := &stubExec{}
	svc := newStubService(1, stub)

	var jobs []*Job
	for _, b := range []string{"compress", "doduc", "ora"} {
		j, err := svc.Submit(JobSpec{Benchmark: b})
		if err != nil {
			t.Fatalf("submit %s: %v", b, err)
		}
		jobs = append(jobs, j)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, j := range jobs {
		if st := j.State(); st != JobDone {
			t.Fatalf("after drain, job %s state = %s, want done", j.ID, st)
		}
	}
	if _, err := svc.Submit(JobSpec{Benchmark: "su2cor"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
}

// TestRealKernelMatchesOneShotPath runs the genuine execution kernel
// through the service and proves the result is byte-identical to the
// one-shot Compile/Simulate path the CLIs use.
func TestRealKernelMatchesOneShotPath(t *testing.T) {
	svc := NewService(Config{Workers: 2})
	defer svc.Close()

	spec := JobSpec{Benchmark: "compress", Machine: "dual", Scheduler: "local", Instructions: 20_000, Seed: 4242}
	res, _, err := svc.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	b := workload.ByName("compress")
	opts := experiment.DefaultOptions()
	opts.Instructions = 20_000
	opts.ProfileInstructions = 20_000 / 6
	opts.Seed = 4242
	part, err := experiment.SchedulerByName("local", 0)
	if err != nil {
		t.Fatal(err)
	}
	mp, alloc, err := experiment.Compile(b, part, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	direct, err := experiment.Simulate(mp, b, opts.Dual, opts)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}

	want, _ := json.Marshal(direct.Snapshot())
	got, _ := json.Marshal(res.Stats)
	if string(got) != string(want) {
		t.Fatalf("service result differs from one-shot path:\n service: %s\n direct:  %s", got, want)
	}
	if res.Spilled != alloc.Spilled || res.Demoted != alloc.Demoted {
		t.Fatalf("compile counters differ: service %d/%d, direct %d/%d",
			res.Spilled, res.Demoted, alloc.Spilled, alloc.Demoted)
	}
}
