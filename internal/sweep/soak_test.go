package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"multicluster/internal/faultinject"
	"multicluster/internal/workload"
)

// soakExec is a deterministic stand-in kernel: the result is a pure
// function of the spec, so any two runs of the same spec — before or
// after a crash, with or without retries — must produce identical bytes.
type soakExec struct{ stubExec }

func (s *soakExec) exec(spec JobSpec) (*Result, error) {
	s.calls.Add(1)
	return &Result{
		Spec:    spec,
		Spilled: int(spec.Seed % 17),
		Demoted: len(spec.Benchmark),
	}, nil
}

// soakSpecs enumerates n distinct job specs spread over the evaluation
// axes, plus a duplicate of every tenth spec to exercise the single-flight
// join paths under chaos.
func soakSpecs(n int) []JobSpec {
	benches := workload.All()
	machines := []string{"single", "dual"}
	scheds := []string{"none", "local"}
	var specs []JobSpec
	for i := 0; len(specs) < n; i++ {
		spec := JobSpec{
			Benchmark: benches[i%len(benches)].Name,
			Machine:   machines[i%len(machines)],
			Scheduler: scheds[i%len(scheds)],
			Seed:      int64(i + 1),
		}
		specs = append(specs, spec)
		if i%10 == 0 && len(specs) < n {
			specs = append(specs, spec)
		}
	}
	return specs
}

// chaosPlan injects panics, errors, and latency at all three boundaries —
// simulation, cache, and journal — deterministically.
func chaosPlan(t *testing.T, seed int64) *faultinject.Plan {
	t.Helper()
	plan, err := faultinject.ParsePlan(
		"sim:error:0.15,sim:panic:0.05,sim:latency:0.3:200us,"+
			"cache:error:0.08,cache:panic:0.03,cache:latency:0.2:100us,"+
			"journal:error:0.08,journal:panic:0.03,journal:latency:0.2:100us", seed)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

var soakRetry = RetryPolicy{MaxAttempts: 10, Base: 200 * time.Microsecond, Max: 2 * time.Millisecond}

// TestChaosSoak is the headline robustness soak: 240 jobs through a
// journaled service with faults firing at every boundary, under load
// shedding. Zero lost jobs — every admitted job reaches a terminal state,
// every non-shed job completes successfully through retries, and the
// journal plus a full restart reproduce every result byte for byte.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	const jobs = 240
	specs := soakSpecs(jobs)
	dir := t.TempDir()

	// Phase 1: a chaos-free control run pins the expected bytes per hash.
	control := make(map[string]string)
	ctrl := NewService(Config{Workers: 8, exec: (&soakExec{}).exec})
	for _, spec := range specs {
		res, _, err := ctrl.Run(t.Context(), spec)
		if err != nil {
			t.Fatalf("control run %v: %v", spec, err)
		}
		b, _ := json.Marshal(res)
		control[res.Hash] = string(b)
	}
	ctrl.Close()

	// Phase 2: the same workload under chaos, journaled, with admission
	// control tight enough to shed.
	j, err := OpenJournal(filepath.Join(dir, "results.journal"))
	if err != nil {
		t.Fatal(err)
	}
	plan := chaosPlan(t, 7)
	svc := NewService(Config{
		Workers: 8,
		Retry:   soakRetry,
		MaxLive: 64,
		Inject:  plan,
		Journal: j,
		exec:    (&soakExec{}).exec,
	})

	// Submit like a well-behaved client: a shed submission backs off and
	// retries, so every one of the 240 jobs eventually runs while the
	// admission window stays bounded.
	var admitted []*Job
	var shed int
	for _, spec := range specs {
		for {
			job, err := svc.Submit(spec)
			if err == nil {
				admitted = append(admitted, job)
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("submit %v: %v", spec, err)
			}
			shed++
			time.Sleep(500 * time.Microsecond)
		}
	}
	if len(admitted) != jobs {
		t.Fatalf("admitted %d jobs, want all %d", len(admitted), jobs)
	}
	// Whether shedding fires here depends on worker/submitter timing;
	// TestAdmissionShedsWhenFull and TestServerShedding429 assert it
	// deterministically.

	deadline := time.After(2 * time.Minute)
	for _, job := range admitted {
		select {
		case <-job.Done():
		case <-deadline:
			t.Fatalf("lost job %s (%v): never reached a terminal state", job.ID, job.Spec)
		}
	}
	for _, job := range admitted {
		v := job.View()
		if v.State != JobDone {
			t.Fatalf("job %s (%v) ended %s under chaos: %s", v.ID, v.Spec, v.State, v.Error)
		}
		if got := control[v.Hash]; got != "" {
			b, _ := json.Marshal(v.Result)
			if string(b) != got {
				t.Fatalf("job %s result diverged from control:\n chaos:   %s\n control: %s", v.ID, b, got)
			}
		}
	}

	// Chaos genuinely fired at every boundary.
	counts := plan.Counts()
	for _, site := range []string{"sim", "cache", "journal"} {
		fired := false
		for _, kind := range []string{"error", "panic", "latency"} {
			if counts[site+"/"+kind] > 0 {
				fired = true
			}
		}
		if !fired {
			t.Fatalf("no faults fired at the %s boundary: %v", site, counts)
		}
	}
	st := svc.Stats()
	if st.Retries == 0 {
		t.Fatal("soak completed with zero retries; chaos was not exercised")
	}
	t.Logf("soak: %d admitted, %d shed, %d retries, faults %v, journal %+v",
		len(admitted), shed, st.Retries, counts, st.Journal)

	// Phase 3: crash (no drain, no journal close) and restart. Every
	// journaled result replays byte-identical to the control run, and
	// re-running a replayed spec is a pure cache hit.
	svc.Close()
	j2, err := OpenJournal(filepath.Join(dir, "results.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec := j2.Recovered()
	if len(rec) == 0 {
		t.Fatal("journal recovered nothing after a 240-job soak")
	}
	restub := &soakExec{}
	svc2 := NewService(Config{Workers: 8, Retry: soakRetry, Inject: chaosPlan(t, 7), Journal: j2, exec: restub.exec})
	defer svc2.Close()
	for _, r := range rec {
		b, _ := json.Marshal(r)
		if want := control[r.Hash]; want != string(b) {
			t.Fatalf("journal replay diverged from control:\n journal: %s\n control: %s", b, want)
		}
	}
	before := restub.calls.Load()
	res, hit, err := svc2.Run(t.Context(), rec[0].Spec)
	if err != nil || !hit {
		t.Fatalf("replayed spec re-run: hit=%v err=%v", hit, err)
	}
	if b, _ := json.Marshal(res); string(b) != control[res.Hash] {
		t.Fatalf("replayed result diverged after restart")
	}
	if restub.calls.Load() != before {
		t.Fatal("replayed spec re-executed after restart")
	}
}

// TestChaosCrashRestartTable2 drives the REAL kernel: a crash mid-sweep
// (9 of 18 Table 2 cells journaled) followed by a restart under continued
// chaos must serve /v1/table2 byte-identical to an uninterrupted run.
func TestChaosCrashRestartTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	const n = 20_000
	p := Table2Params{Instructions: n, Seed: 4242}
	url := fmt.Sprintf("/v1/table2?n=%d&seed=4242", n)

	fetch := func(base string) []byte {
		resp, err := http.Get(base + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
		}
		return body
	}

	// Uninterrupted reference, no chaos, no journal.
	ref := NewService(Config{Workers: 0})
	refBytes := fetch(newHTTPServer(t, ref).URL)

	// Chaos service A journals the first 9 cells, then dies abruptly.
	// (Journal faults are excluded here so exactly 9 records commit; the
	// soak test covers journal-boundary chaos.)
	dir := t.TempDir()
	plan, err := faultinject.ParsePlan("sim:error:0.2,sim:panic:0.05,sim:latency:0.3:500us,cache:error:0.1", 11)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(filepath.Join(dir, "results.journal"))
	if err != nil {
		t.Fatal(err)
	}
	svcA := NewService(Config{Workers: 4, Retry: soakRetry, Inject: plan, Journal: j})
	cells := table2Cells(p)
	for _, c := range cells[:9] {
		if _, _, err := svcA.Run(t.Context(), c.spec); err != nil {
			t.Fatalf("cell %v under chaos: %v", c.spec, err)
		}
	}
	svcA.Close() // crash: journal never closed, jobs never drained

	// Restart: replay, then finish the sweep under continued chaos.
	j2, err := OpenJournal(filepath.Join(dir, "results.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Recovered()); got != 9 {
		t.Fatalf("journal recovered %d results, want 9", got)
	}
	svcB := NewService(Config{Workers: 4, Retry: soakRetry, Inject: chaosPlan(t, 11), Journal: j2})
	for _, r := range j2.Recovered() {
		if _, ok := svcB.cache.Get(r.Hash); !ok {
			t.Fatalf("replayed hash %s not served from cache", r.Hash)
		}
	}
	gotBytes := fetch(newHTTPServer(t, svcB).URL)
	if string(gotBytes) != string(refBytes) {
		t.Fatalf("table2 after crash/restart differs from uninterrupted run:\n got  %s\n want %s", gotBytes, refBytes)
	}
}
