package isa

import "fmt"

// IssueRules gives the per-cycle issue limits of one cluster (or of the
// whole single-cluster processor), reproducing Table 1 of the paper. All is
// the total number of instructions issued per cycle; the remaining fields
// cap individual classes. The floating-point limits are hierarchical: FPAll
// caps divides and other floating point together, while FPDiv and FPOther
// cap each kind separately. Mem caps loads and stores together.
type IssueRules struct {
	All      int `json:"all"`
	IntMul   int `json:"int_mul"`
	IntOther int `json:"int_other"`
	FPAll    int `json:"fp_all"`
	FPDiv    int `json:"fp_div"`
	FPOther  int `json:"fp_other"`
	Mem      int `json:"mem"`
	Ctrl     int `json:"ctrl"`
}

// SingleClusterRules returns row 1 of Table 1: the eight-way single-cluster
// processor.
func SingleClusterRules() IssueRules {
	return IssueRules{All: 8, IntMul: 8, IntOther: 8, FPAll: 4, FPDiv: 4, FPOther: 4, Mem: 4, Ctrl: 4}
}

// DualClusterRules returns row 2 of Table 1: the per-cluster limits of the
// dual-cluster processor (each cluster issues at most four per cycle).
func DualClusterRules() IssueRules {
	return IssueRules{All: 4, IntMul: 4, IntOther: 4, FPAll: 2, FPDiv: 2, FPOther: 2, Mem: 2, Ctrl: 2}
}

// FourWaySingleRules returns the four-way single-cluster configuration used
// by the paper's four-way/eight-way comparison and by the Palacharla
// cycle-time anchors.
func FourWaySingleRules() IssueRules {
	return IssueRules{All: 4, IntMul: 4, IntOther: 4, FPAll: 2, FPDiv: 2, FPOther: 2, Mem: 2, Ctrl: 2}
}

// TwoWayDualRules returns the per-cluster limits for a dual-cluster
// processor whose aggregate width is four.
func TwoWayDualRules() IssueRules {
	return IssueRules{All: 2, IntMul: 2, IntOther: 2, FPAll: 1, FPDiv: 1, FPOther: 1, Mem: 1, Ctrl: 1}
}

// Scale returns the rules divided by n (per-cluster limits for an n-way
// partition of this configuration), with every limit kept at least one.
func (r IssueRules) Scale(n int) IssueRules {
	d := func(v int) int {
		v /= n
		if v < 1 {
			v = 1
		}
		return v
	}
	return IssueRules{
		All: d(r.All), IntMul: d(r.IntMul), IntOther: d(r.IntOther),
		FPAll: d(r.FPAll), FPDiv: d(r.FPDiv), FPOther: d(r.FPOther),
		Mem: d(r.Mem), Ctrl: d(r.Ctrl),
	}
}

// ClassLimit returns the per-cycle cap for a single class (not counting the
// shared All and FPAll caps, which the issue logic enforces separately).
func (r IssueRules) ClassLimit(c Class) int {
	switch c {
	case ClassIntMul:
		return r.IntMul
	case ClassIntOther:
		return r.IntOther
	case ClassFPDiv:
		return r.FPDiv
	case ClassFPOther:
		return r.FPOther
	case ClassLoad, ClassStore:
		return r.Mem
	case ClassControl:
		return r.Ctrl
	}
	return 0
}

// Validate reports whether the rules are self-consistent.
func (r IssueRules) Validate() error {
	if r.All <= 0 {
		return fmt.Errorf("isa: issue rules: All must be positive, got %d", r.All)
	}
	for c := Class(0); c < NumClasses; c++ {
		if r.ClassLimit(c) <= 0 {
			return fmt.Errorf("isa: issue rules: class %s has non-positive limit", c)
		}
	}
	if r.FPDiv > r.FPAll || r.FPOther > r.FPAll {
		// Permitted but suspicious: the hierarchical FP cap would dominate.
		// Not an error; Table 1 has FPDiv == FPOther == FPAll.
		_ = r
	}
	return nil
}

func (r IssueRules) String() string {
	return fmt.Sprintf("all=%d int-mul=%d int-other=%d fp=%d fp-div=%d fp-other=%d mem=%d ctrl=%d",
		r.All, r.IntMul, r.IntOther, r.FPAll, r.FPDiv, r.FPOther, r.Mem, r.Ctrl)
}
