// Package isa defines the Alpha-like RISC instruction set architecture used
// throughout the multicluster simulator: opcodes, instruction classes,
// architectural registers, the assignment of architectural registers to
// clusters, functional-unit latencies, and the per-cycle issue rules of
// Table 1 of the paper.
//
// The ISA is deliberately small but covers every class the paper's
// evaluation distinguishes: integer multiply, other integer, floating-point
// divide, other floating point, loads, stores, and control flow.
package isa

import "fmt"

// Class identifies one of the instruction classes the issue rules of the
// paper's Table 1 distinguish.
type Class uint8

// Instruction classes, in the column order of Table 1.
const (
	ClassIntMul   Class = iota // integer multiply (6-cycle, pipelined)
	ClassIntOther              // all other integer operations (1-cycle)
	ClassFPDiv                 // floating-point divide (8/16-cycle, not pipelined)
	ClassFPOther               // all other floating point (3-cycle, pipelined)
	ClassLoad                  // memory loads (1-cycle + single load-delay slot)
	ClassStore                 // memory stores (1-cycle)
	ClassControl               // branches, jumps, calls, returns (1-cycle)

	NumClasses = 7
)

var classNames = [NumClasses]string{
	"int-mul", "int-other", "fp-div", "fp-other", "load", "store", "control",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsFP reports whether operands of this class live in the floating-point
// register file.
func (c Class) IsFP() bool { return c == ClassFPDiv || c == ClassFPOther }

// IsMem reports whether the class accesses the data cache.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Op is an opcode of the simulated instruction set.
type Op uint8

// Opcodes. The set is Alpha-flavoured: three-operand register instructions,
// loads and stores with base+displacement addressing, and compare-and-branch
// control flow.
const (
	// Integer operate.
	ADD Op = iota
	SUB
	AND
	OR
	XOR
	SLL   // shift left logical
	SRL   // shift right logical
	CMPLT // set dst to 1 if src1 < src2
	CMPEQ // set dst to 1 if src1 == src2
	MOV   // register move
	LDA   // load address / load immediate: dst = src1 + imm
	MUL   // integer multiply

	// Floating point operate.
	FADD
	FSUB
	FMUL
	FCMP // fp compare, integer result register in FP file
	FMOV
	CVTIF // convert int->fp (reads int reg, writes fp reg)
	CVTFI // convert fp->int
	FDIV  // 32-bit fp divide (8-cycle, not pipelined)
	FDIVD // 64-bit fp divide (16-cycle, not pipelined)

	// Memory.
	LDW // load word into integer register
	LDF // load into floating-point register
	STW // store integer register
	STF // store floating-point register

	// Control flow.
	BEQ  // branch if src1 == 0 (conditional, predicted)
	BNE  // branch if src1 != 0 (conditional, predicted)
	BR   // unconditional direct branch (100% predictable)
	JMP  // indirect jump (assumed 100% predictable per the paper)
	CALL // subroutine call, writes return address (assumed predictable)
	RET  // subroutine return (assumed predictable)

	NumOps = 31
)

var opInfo = [NumOps]struct {
	name  string
	class Class
}{
	ADD:   {"add", ClassIntOther},
	SUB:   {"sub", ClassIntOther},
	AND:   {"and", ClassIntOther},
	OR:    {"or", ClassIntOther},
	XOR:   {"xor", ClassIntOther},
	SLL:   {"sll", ClassIntOther},
	SRL:   {"srl", ClassIntOther},
	CMPLT: {"cmplt", ClassIntOther},
	CMPEQ: {"cmpeq", ClassIntOther},
	MOV:   {"mov", ClassIntOther},
	LDA:   {"lda", ClassIntOther},
	MUL:   {"mul", ClassIntMul},
	FADD:  {"fadd", ClassFPOther},
	FSUB:  {"fsub", ClassFPOther},
	FMUL:  {"fmul", ClassFPOther},
	FCMP:  {"fcmp", ClassFPOther},
	FMOV:  {"fmov", ClassFPOther},
	CVTIF: {"cvtif", ClassFPOther},
	CVTFI: {"cvtfi", ClassFPOther},
	FDIV:  {"fdiv", ClassFPDiv},
	FDIVD: {"fdivd", ClassFPDiv},
	LDW:   {"ldw", ClassLoad},
	LDF:   {"ldf", ClassLoad},
	STW:   {"stw", ClassStore},
	STF:   {"stf", ClassStore},
	BEQ:   {"beq", ClassControl},
	BNE:   {"bne", ClassControl},
	BR:    {"br", ClassControl},
	JMP:   {"jmp", ClassControl},
	CALL:  {"call", ClassControl},
	RET:   {"ret", ClassControl},
}

func (o Op) String() string {
	if int(o) < len(opInfo) {
		return opInfo[o].name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Class returns the instruction class of the opcode.
func (o Op) Class() Class { return opInfo[o].class }

// IsCondBranch reports whether the opcode is a conditional branch, i.e. the
// only control flow the branch predictor must predict (the paper assumes all
// other control flow is 100% predictable).
func (o Op) IsCondBranch() bool { return o == BEQ || o == BNE }

// IsControl reports whether the opcode redirects the fetch stream.
func (o Op) IsControl() bool { return o.Class() == ClassControl }

// Latency returns the functional-unit latency in cycles (Table 1, row 3).
// All units are fully pipelined except the floating-point divider.
func (o Op) Latency() int {
	switch o.Class() {
	case ClassIntMul:
		return 6
	case ClassIntOther:
		return 1
	case ClassFPDiv:
		if o == FDIVD {
			return 16
		}
		return 8
	case ClassFPOther:
		return 3
	case ClassLoad:
		return 1 // plus the single load-delay slot, modelled by the core
	case ClassStore:
		return 1
	case ClassControl:
		return 1
	}
	return 1
}

// Pipelined reports whether the functional unit for the opcode is fully
// pipelined. Only the floating-point divider is not.
func (o Op) Pipelined() bool { return o.Class() != ClassFPDiv }
