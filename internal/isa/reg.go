package isa

import "fmt"

// Reg names an architectural register. The zero value is RegNone (no
// operand), so zero-valued Instructions have no spurious operands. Values
// 1..32 encode the integer registers r0..r31; values 33..64 encode the
// floating-point registers f0..f31.
type Reg uint8

// Architectural register file parameters.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// RegNone marks an unused operand slot; it is the zero value of Reg.
	RegNone Reg = 0
)

// Conventional register roles, following the Alpha calling standard the
// paper's toolchain inherited: r29 is the global pointer, r30 the stack
// pointer, r26 the return-address register, r31/f31 read as zero.
var (
	RegRA   = IntReg(26)
	RegGP   = IntReg(29)
	RegSP   = IntReg(30)
	RegZero = IntReg(31)
	FPZero  = FPReg(31)
)

// IntReg returns the integer register rn.
func IntReg(n int) Reg { return Reg(n + 1) }

// FPReg returns the floating-point register fn.
func FPReg(n int) Reg { return Reg(NumIntRegs + n + 1) }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r > NumIntRegs }

// Valid reports whether r names an actual register (not RegNone).
func (r Reg) Valid() bool { return r != RegNone && r <= NumRegs }

// Index returns the register number within its file (0..31).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r) - NumIntRegs - 1
	}
	return int(r) - 1
}

// Ordinal returns a dense index in [0, NumRegs) across both files, suitable
// for array indexing. It must not be called on RegNone.
func (r Reg) Ordinal() int {
	if !r.Valid() {
		panic("isa: Ordinal of invalid register")
	}
	return int(r) - 1
}

// RegFromOrdinal is the inverse of Ordinal.
func RegFromOrdinal(n int) Reg { return Reg(n + 1) }

// IsZero reports whether r is a hardwired zero register, which is never
// renamed and never creates dependences.
func (r Reg) IsZero() bool { return r == RegZero || r == FPZero }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	default:
		return fmt.Sprintf("r%d", r.Index())
	}
}

// AssignmentScheme selects how local registers map to clusters.
type AssignmentScheme uint8

const (
	// SchemeEvenOdd assigns even-numbered registers to cluster 0 and
	// odd-numbered to cluster 1 — the scheme the paper's evaluation settled
	// on after analysing early simulation results (§4).
	SchemeEvenOdd AssignmentScheme = iota
	// SchemeLowHigh assigns the lower half of each file to cluster 0 and
	// the upper half to cluster 1 — the natural alternative the even/odd
	// choice was measured against. Compilers concentrate usage in the low
	// registers, so this scheme tends to overload cluster 0.
	SchemeLowHigh
)

func (s AssignmentScheme) String() string {
	if s == SchemeLowHigh {
		return "low-high"
	}
	return "even-odd"
}

// Assignment records the static assignment of architectural registers to
// clusters for a dual-cluster processor. Every architectural register is
// either local to exactly one cluster or global (assigned to both clusters,
// with one physical copy per cluster). The paper's evaluation assigns
// even-numbered registers to cluster 0 and odd-numbered registers to
// cluster 1, and designates the stack- and global-pointer registers global.
type Assignment struct {
	scheme AssignmentScheme
	global [NumRegs + 1]bool
}

// NewAssignment returns an even/odd assignment with the given registers
// designated global.
func NewAssignment(globals ...Reg) Assignment {
	return NewAssignmentScheme(SchemeEvenOdd, globals...)
}

// NewAssignmentScheme returns an assignment under the given local-register
// scheme with the given registers designated global.
func NewAssignmentScheme(scheme AssignmentScheme, globals ...Reg) Assignment {
	a := Assignment{scheme: scheme}
	for _, r := range globals {
		if r.Valid() {
			a.global[r] = true
		}
	}
	return a
}

// LowHighAssignment returns the low/high-split alternative with the
// standard globals — the scheme the paper's even/odd choice was evaluated
// against.
func LowHighAssignment() Assignment {
	return NewAssignmentScheme(SchemeLowHigh, RegSP, RegGP, RegZero, FPZero)
}

// Scheme returns the local-register mapping scheme.
func (a Assignment) Scheme() AssignmentScheme { return a.scheme }

// DefaultAssignment returns the assignment used throughout the paper's
// evaluation: SP and GP global, everything else local by parity. The
// hardwired zero registers are also treated as global since they are
// readable everywhere without renaming.
func DefaultAssignment() Assignment {
	return NewAssignment(RegSP, RegGP, RegZero, FPZero)
}

// IsGlobal reports whether r is assigned to both clusters.
func (a Assignment) IsGlobal(r Reg) bool {
	return r.Valid() && (a.global[r] || r.IsZero())
}

// Home returns the cluster a local register is assigned to. It must not be
// called for global registers.
func (a Assignment) Home(r Reg) int {
	if a.IsGlobal(r) {
		panic("isa: Home called on global register " + r.String())
	}
	if a.scheme == SchemeLowHigh {
		if r.Index() < NumIntRegs/2 {
			return 0
		}
		return 1
	}
	return r.Index() & 1
}

// In reports whether register r is readable and writable within cluster c.
func (a Assignment) In(r Reg, c int) bool {
	if !r.Valid() {
		return false
	}
	if a.IsGlobal(r) {
		return true
	}
	return a.Home(r) == c
}

// Globals returns the registers designated global, in ascending order.
func (a Assignment) Globals() []Reg {
	var gs []Reg
	for r := Reg(1); r <= NumRegs; r++ {
		if a.global[r] {
			gs = append(gs, r)
		}
	}
	return gs
}

// LocalRegs returns the local registers of cluster c within the given file
// (fp=false for integer, true for floating point), excluding zero registers.
func (a Assignment) LocalRegs(c int, fp bool) []Reg {
	var rs []Reg
	for n := 0; n < NumIntRegs; n++ {
		r := IntReg(n)
		if fp {
			r = FPReg(n)
		}
		if !a.IsGlobal(r) && a.Home(r) == c {
			rs = append(rs, r)
		}
	}
	return rs
}
