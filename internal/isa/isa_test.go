package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClasses(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassIntOther}, {SUB, ClassIntOther}, {MUL, ClassIntMul},
		{LDA, ClassIntOther}, {CMPLT, ClassIntOther},
		{FADD, ClassFPOther}, {FMUL, ClassFPOther}, {FDIV, ClassFPDiv},
		{FDIVD, ClassFPDiv}, {CVTIF, ClassFPOther},
		{LDW, ClassLoad}, {LDF, ClassLoad}, {STW, ClassStore}, {STF, ClassStore},
		{BEQ, ClassControl}, {BNE, ClassControl}, {BR, ClassControl},
		{JMP, ClassControl}, {CALL, ClassControl}, {RET, ClassControl},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%s.Class() = %s, want %s", c.op, got, c.want)
		}
	}
}

func TestLatenciesMatchTable1(t *testing.T) {
	// Table 1 row 3: int-mul 6, other int 1, fp divide 8/16, other fp 3,
	// loads & stores 1 (single load-delay slot modelled in the core), ctrl 1.
	if got := MUL.Latency(); got != 6 {
		t.Errorf("MUL latency = %d, want 6", got)
	}
	if got := ADD.Latency(); got != 1 {
		t.Errorf("ADD latency = %d, want 1", got)
	}
	if got := FDIV.Latency(); got != 8 {
		t.Errorf("FDIV latency = %d, want 8", got)
	}
	if got := FDIVD.Latency(); got != 16 {
		t.Errorf("FDIVD latency = %d, want 16", got)
	}
	if got := FADD.Latency(); got != 3 {
		t.Errorf("FADD latency = %d, want 3", got)
	}
	for _, op := range []Op{LDW, STW, BEQ, BR} {
		if got := op.Latency(); got != 1 {
			t.Errorf("%s latency = %d, want 1", op, got)
		}
	}
}

func TestOnlyDividerUnpipelined(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		want := op.Class() != ClassFPDiv
		if got := op.Pipelined(); got != want {
			t.Errorf("%s.Pipelined() = %v, want %v", op, got, want)
		}
	}
}

func TestEveryOpHasNameAndClass(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < NumOps; op++ {
		name := op.String()
		if name == "" || name[0] == 'O' && name[1] == 'p' {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("ops %d and %d share the name %q", prev, op, name)
		}
		seen[name] = op
		if op.Class() >= NumClasses {
			t.Errorf("%s has invalid class %d", op, op.Class())
		}
	}
}

func TestRegFileEncoding(t *testing.T) {
	if r := IntReg(5); r.IsFP() || r.Index() != 5 || r.String() != "r5" {
		t.Errorf("IntReg(5) = %v (fp=%v idx=%d)", r, r.IsFP(), r.Index())
	}
	if r := FPReg(7); !r.IsFP() || r.Index() != 7 || r.String() != "f7" {
		t.Errorf("FPReg(7) = %v (fp=%v idx=%d)", r, r.IsFP(), r.Index())
	}
	if !RegZero.IsZero() || !FPReg(31).IsZero() {
		t.Error("r31/f31 must be hardwired zero")
	}
	if IntReg(30) != RegSP || IntReg(29) != RegGP || IntReg(26) != RegRA {
		t.Error("conventional register roles misencoded")
	}
	if RegNone.String() != "-" {
		t.Errorf("RegNone prints as %q", RegNone.String())
	}
}

func TestDefaultAssignment(t *testing.T) {
	a := DefaultAssignment()
	if !a.IsGlobal(RegSP) || !a.IsGlobal(RegGP) {
		t.Fatal("SP and GP must be global in the default assignment")
	}
	if !a.IsGlobal(RegZero) || !a.IsGlobal(FPReg(31)) {
		t.Fatal("zero registers are readable everywhere and must be global")
	}
	// Even registers live in cluster 0, odd in cluster 1.
	for n := 0; n < NumIntRegs; n++ {
		r := IntReg(n)
		if a.IsGlobal(r) {
			continue
		}
		if got, want := a.Home(r), n&1; got != want {
			t.Errorf("Home(r%d) = %d, want %d", n, got, want)
		}
		if !a.In(r, n&1) || a.In(r, 1-(n&1)) {
			t.Errorf("In(r%d) inconsistent with parity", n)
		}
	}
	for _, g := range a.Globals() {
		if !a.In(g, 0) || !a.In(g, 1) {
			t.Errorf("global %s must be in both clusters", g)
		}
	}
}

func TestHomePanicsOnGlobal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Home(SP) should panic for a global register")
		}
	}()
	DefaultAssignment().Home(RegSP)
}

func TestAssignmentPartitionProperty(t *testing.T) {
	// Property: every register is in cluster 0, cluster 1, or both — never
	// neither — and locals are in exactly one.
	a := DefaultAssignment()
	f := func(n uint8) bool {
		r := RegFromOrdinal(int(n) % NumRegs)
		in0, in1 := a.In(r, 0), a.In(r, 1)
		if !in0 && !in1 {
			return false
		}
		if a.IsGlobal(r) {
			return in0 && in1
		}
		return in0 != in1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalRegs(t *testing.T) {
	a := DefaultAssignment()
	for c := 0; c < 2; c++ {
		for _, fp := range []bool{false, true} {
			for _, r := range a.LocalRegs(c, fp) {
				if r.IsFP() != fp {
					t.Errorf("LocalRegs(%d,%v) returned %s of wrong file", c, fp, r)
				}
				if a.IsGlobal(r) || a.Home(r) != c {
					t.Errorf("LocalRegs(%d,%v) returned non-local %s", c, fp, r)
				}
			}
		}
	}
	// Integer cluster 0 locals: even registers 0..28 minus none global even
	// except SP(30). 0,2,...,28 = 15 registers.
	if got := len(a.LocalRegs(0, false)); got != 15 {
		t.Errorf("cluster 0 integer locals = %d, want 15", got)
	}
	// Cluster 1: odd 1..27 minus GP(29) is odd, RA(26) is even... odd regs
	// 1..31 are 16, minus GP(29) and f-zero does not apply, minus r31? r31
	// is even? no: 31 is odd and is the zero register (global). So 16-2=14.
	if got := len(a.LocalRegs(1, false)); got != 14 {
		t.Errorf("cluster 1 integer locals = %d, want 14", got)
	}
}

func TestIssueRulesTable1(t *testing.T) {
	s := SingleClusterRules()
	d := DualClusterRules()
	if s.All != 8 || d.All != 4 {
		t.Fatalf("total issue width: single %d dual %d, want 8 and 4", s.All, d.All)
	}
	if s.FPAll != 4 || d.FPAll != 2 || s.Mem != 4 || d.Mem != 2 || s.Ctrl != 4 || d.Ctrl != 2 {
		t.Errorf("class limits do not match Table 1: single %+v dual %+v", s, d)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	// Per-cluster dual rules are exactly the single rules halved.
	if s.Scale(2) != d {
		t.Errorf("SingleClusterRules().Scale(2) = %+v, want %+v", s.Scale(2), d)
	}
}

func TestIssueRulesScaleFloorsAtOne(t *testing.T) {
	r := TwoWayDualRules().Scale(4)
	if err := r.Validate(); err != nil {
		t.Errorf("scaled rules invalid: %v", err)
	}
	if r.FPDiv != 1 || r.All != 1 {
		t.Errorf("scaling must floor at one, got %+v", r)
	}
}

func TestInstructionStringForms(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: ADD, Dst: IntReg(2), Src1: IntReg(0), Src2: IntReg(1)}, "add   r2, r0, r1"},
		{Instruction{Op: LDA, Dst: IntReg(4), Src1: RegZero, Imm: 16}, "lda   r4, r31, #16"},
		{Instruction{Op: LDW, Dst: IntReg(6), Src1: RegSP, Imm: 8}, "ldw   r6, 8(r30)"},
		{Instruction{Op: STW, Src1: RegSP, Src2: IntReg(6), Imm: -4, Dst: RegNone}, "stw   r6, -4(r30)"},
		{Instruction{Op: BNE, Src1: IntReg(3), Target: 12, Dst: RegNone, Src2: RegNone}, "bne   r3, @12"},
		{Instruction{Op: RET, Src1: RegRA, Dst: RegNone, Src2: RegNone}, "ret   (r26)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSourcesAndDestFilterZeroRegs(t *testing.T) {
	in := Instruction{Op: ADD, Dst: RegZero, Src1: RegZero, Src2: IntReg(3)}
	if d := in.Dest(); d != RegNone {
		t.Errorf("Dest() = %v, want RegNone for zero-register destination", d)
	}
	srcs := in.Sources()
	if len(srcs) != 1 || srcs[0] != IntReg(3) {
		t.Errorf("Sources() = %v, want [r3]", srcs)
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{
		Instrs: []Instruction{
			{Op: ADD, Dst: IntReg(2), Src1: IntReg(0), Src2: IntReg(1), MemID: -1, BrID: -1},
			{Op: BNE, Src1: IntReg(2), Target: 0, Dst: RegNone, Src2: RegNone, MemID: -1, BrID: 0},
		},
		Blocks:      []BlockInfo{{Name: "b0", Start: 0, End: 2}},
		NumBranches: 1,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := *p
	bad.Instrs = append([]Instruction(nil), p.Instrs...)
	bad.Instrs[1].Target = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	bad2 := *p
	bad2.Blocks = []BlockInfo{{Name: "b0", Start: 0, End: 1}}
	if err := bad2.Validate(); err == nil {
		t.Error("non-tiling blocks accepted")
	}
}

func TestPCOfMonotonic(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		pc := PCOf(i)
		if i > 0 && pc != prev+4 {
			t.Fatalf("PCOf(%d) = %#x, want %#x", i, pc, prev+4)
		}
		prev = pc
	}
}

func TestDisassembleContainsBlocks(t *testing.T) {
	p := &Program{
		Instrs: []Instruction{
			{Op: ADD, Dst: IntReg(2), Src1: IntReg(0), Src2: IntReg(1), MemID: -1, BrID: -1},
		},
		Blocks: []BlockInfo{{Name: "entry", Start: 0, End: 1}},
	}
	d := p.Disassemble()
	if want := "entry:"; !containsLine(d, want) {
		t.Errorf("disassembly missing %q:\n%s", want, d)
	}
}

func containsLine(s, sub string) bool {
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		line := s[:i]
		for len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
			line = line[1:]
		}
		if len(line) >= len(sub) && line[:len(sub)] == sub {
			return true
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return false
}

func TestLowHighAssignment(t *testing.T) {
	a := LowHighAssignment()
	if a.Scheme() != SchemeLowHigh {
		t.Fatal("scheme not recorded")
	}
	if got := a.Home(IntReg(3)); got != 0 {
		t.Errorf("r3 home = %d, want 0 under low/high", got)
	}
	if got := a.Home(IntReg(20)); got != 1 {
		t.Errorf("r20 home = %d, want 1 under low/high", got)
	}
	if !a.IsGlobal(RegSP) || !a.IsGlobal(RegGP) {
		t.Error("standard globals missing")
	}
	if got := a.Home(FPReg(3)); got != 0 {
		t.Errorf("f3 home = %d, want 0 under low/high", got)
	}
	// Both schemes partition the same local registers, just differently.
	e := DefaultAssignment()
	for c := 0; c < 2; c++ {
		if len(a.LocalRegs(0, false))+len(a.LocalRegs(1, false)) !=
			len(e.LocalRegs(0, false))+len(e.LocalRegs(1, false)) {
			t.Fatal("schemes disagree on the number of local registers")
		}
		_ = c
	}
	if SchemeEvenOdd.String() == SchemeLowHigh.String() {
		t.Error("scheme names collide")
	}
}
