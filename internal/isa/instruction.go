package isa

import (
	"fmt"
	"strings"
)

// Instruction is one machine instruction of the simulated ISA. Operand
// conventions:
//
//   - Register operate: Dst = op(Src1, Src2) or Dst = op(Src1, Imm) when
//     Src2 is RegNone.
//   - Loads: Dst = mem[Src1 + Imm].
//   - Stores: mem[Src1 + Imm] = Src2.
//   - Conditional branches: test Src1 against zero; Target is the index of
//     the target instruction within the program.
//   - CALL writes the return address to Dst (conventionally RegRA).
//
// MemID and BrID are static identifiers assigned by the code generator so
// that behaviour drivers can attach address and outcome streams to
// individual memory and branch instructions.
type Instruction struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target int // static instruction index for direct control flow
	MemID  int // static memory-operation id, -1 if not a memory op
	BrID   int // static conditional-branch id, -1 if not a conditional branch

	// spillPlus1 is slot+1 for spill-code memory operations, whose
	// addresses are statically known (SpillBase + 8*slot), and 0 otherwise.
	spillPlus1 int
}

// SpillBase is the virtual address of spill slot 0; slot s occupies the
// eight bytes at SpillBase + 8*s.
const SpillBase = 0x7f00_0000

// MarkSpill tags the instruction as spill code accessing the given slot.
func (in *Instruction) MarkSpill(slot int) { in.spillPlus1 = slot + 1 }

// SpillInfo returns the spill slot and true for spill-code memory
// operations.
func (in *Instruction) SpillInfo() (slot int, ok bool) { return in.spillPlus1 - 1, in.spillPlus1 > 0 }

// SpillAddr returns the address of a spill slot.
func SpillAddr(slot int) uint64 { return SpillBase + 8*uint64(slot) }

// Sources returns the architectural source registers of the instruction,
// excluding RegNone and hardwired zero registers (which never create
// dependences or cluster constraints).
func (in *Instruction) Sources() []Reg {
	var srcs []Reg
	if in.Src1 != RegNone && !in.Src1.IsZero() {
		srcs = append(srcs, in.Src1)
	}
	if in.Src2 != RegNone && !in.Src2.IsZero() {
		srcs = append(srcs, in.Src2)
	}
	return srcs
}

// Dest returns the architectural destination register, or RegNone when the
// instruction does not write a register (stores, branches) or writes a
// hardwired zero register.
func (in *Instruction) Dest() Reg {
	if in.Dst == RegNone || in.Dst.IsZero() {
		return RegNone
	}
	return in.Dst
}

func (in *Instruction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", in.Op)
	switch in.Op.Class() {
	case ClassLoad:
		fmt.Fprintf(&b, "%s, %d(%s)", in.Dst, in.Imm, in.Src1)
	case ClassStore:
		fmt.Fprintf(&b, "%s, %d(%s)", in.Src2, in.Imm, in.Src1)
	case ClassControl:
		switch in.Op {
		case BEQ, BNE, BR:
			if in.Src1 != RegNone {
				fmt.Fprintf(&b, "%s, @%d", in.Src1, in.Target)
			} else {
				fmt.Fprintf(&b, "@%d", in.Target)
			}
		case CALL:
			fmt.Fprintf(&b, "%s, @%d", in.Dst, in.Target)
		case JMP, RET:
			fmt.Fprintf(&b, "(%s)", in.Src1)
		}
	default:
		if in.Src2 != RegNone {
			fmt.Fprintf(&b, "%s, %s, %s", in.Dst, in.Src1, in.Src2)
		} else if in.Src1 != RegNone {
			fmt.Fprintf(&b, "%s, %s, #%d", in.Dst, in.Src1, in.Imm)
		} else {
			fmt.Fprintf(&b, "%s, #%d", in.Dst, in.Imm)
		}
	}
	return b.String()
}

// BlockInfo records the half-open instruction index range [Start, End) of a
// basic block within a Program, for diagnostics and per-block statistics.
type BlockInfo struct {
	Name  string
	Start int
	End   int
}

// Program is a machine-code program: a flat instruction array with basic
// block boundaries. Instruction i occupies the four bytes starting at
// PCOf(i); the instruction cache indexes these addresses.
type Program struct {
	Instrs []Instruction
	Blocks []BlockInfo

	// NumMemOps and NumBranches give the number of distinct MemID and BrID
	// values assigned; behaviour drivers size their streams from these.
	NumMemOps   int
	NumBranches int
}

// TextBase is the address of instruction 0, matching a typical text-segment
// base so that instruction addresses do not alias low data addresses.
const TextBase = 0x12000_0000

// PCOf returns the byte address of instruction index i.
func PCOf(i int) uint64 { return TextBase + uint64(i)*4 }

// BlockOf returns the basic block containing instruction index i, or nil.
func (p *Program) BlockOf(i int) *BlockInfo {
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		if i >= b.Start && i < b.End {
			return b
		}
	}
	return nil
}

// Validate checks structural invariants of the program: branch targets in
// range, contiguous non-overlapping blocks, and well-formed operands. It
// returns the first violation found.
func (p *Program) Validate() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case BEQ, BNE, BR, CALL:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("instr %d (%s): branch target %d out of range [0,%d)", i, in, in.Target, len(p.Instrs))
			}
		}
		if in.Op.Class().IsMem() && in.MemID < 0 {
			return fmt.Errorf("instr %d (%s): memory op without MemID", i, in)
		}
		if in.Op.IsCondBranch() && in.BrID < 0 {
			return fmt.Errorf("instr %d (%s): conditional branch without BrID", i, in)
		}
		if in.MemID >= p.NumMemOps {
			return fmt.Errorf("instr %d (%s): MemID %d >= NumMemOps %d", i, in, in.MemID, p.NumMemOps)
		}
		if in.BrID >= p.NumBranches {
			return fmt.Errorf("instr %d (%s): BrID %d >= NumBranches %d", i, in, in.BrID, p.NumBranches)
		}
	}
	prevEnd := 0
	for bi, b := range p.Blocks {
		if b.Start != prevEnd {
			return fmt.Errorf("block %d (%s): starts at %d, want %d (blocks must tile the program)", bi, b.Name, b.Start, prevEnd)
		}
		if b.End < b.Start || b.End > len(p.Instrs) {
			return fmt.Errorf("block %d (%s): bad range [%d,%d)", bi, b.Name, b.Start, b.End)
		}
		prevEnd = b.End
	}
	if len(p.Blocks) > 0 && prevEnd != len(p.Instrs) {
		return fmt.Errorf("blocks end at %d, program has %d instructions", prevEnd, len(p.Instrs))
	}
	return nil
}

// Disassemble renders the program as annotated assembly text.
func (p *Program) Disassemble() string {
	var b strings.Builder
	bi := 0
	for i := range p.Instrs {
		for bi < len(p.Blocks) && p.Blocks[bi].Start == i {
			fmt.Fprintf(&b, "%s:\n", p.Blocks[bi].Name)
			bi++
		}
		fmt.Fprintf(&b, "  %4d: %s\n", i, &p.Instrs[i])
	}
	return b.String()
}
