package isa

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file makes the ISA types that appear in core.Config serializable,
// so processor configurations can cross the sweep-service API boundary and
// participate in content-addressed job hashing without lossy reformatting.

// ParseReg parses the String form of a register: "r0".."r31", "f0".."f31",
// or "-" for RegNone.
func ParseReg(s string) (Reg, error) {
	if s == "-" {
		return RegNone, nil
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return RegNone, fmt.Errorf("isa: malformed register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumIntRegs {
		return RegNone, fmt.Errorf("isa: malformed register %q", s)
	}
	if s[0] == 'f' {
		return FPReg(n), nil
	}
	return IntReg(n), nil
}

// MarshalText implements encoding.TextMarshaler using the String form.
func (r Reg) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Reg) UnmarshalText(text []byte) error {
	v, err := ParseReg(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// MarshalText implements encoding.TextMarshaler using the String form.
func (s AssignmentScheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *AssignmentScheme) UnmarshalText(text []byte) error {
	switch string(text) {
	case "even-odd", "":
		*s = SchemeEvenOdd
	case "low-high":
		*s = SchemeLowHigh
	default:
		return fmt.Errorf("isa: unknown assignment scheme %q", text)
	}
	return nil
}

// assignmentJSON is the wire form of an Assignment.
type assignmentJSON struct {
	Scheme  AssignmentScheme `json:"scheme"`
	Globals []Reg            `json:"globals"`
}

// MarshalJSON implements json.Marshaler. The encoding is canonical for a
// given assignment (scheme plus sorted explicit globals), so it is safe to
// hash for content addressing.
func (a Assignment) MarshalJSON() ([]byte, error) {
	return json.Marshal(assignmentJSON{Scheme: a.scheme, Globals: a.Globals()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var w assignmentJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*a = NewAssignmentScheme(w.Scheme, w.Globals...)
	return nil
}

// String renders the assignment compactly, e.g. "even-odd[r29 r30 r31 f31]".
func (a Assignment) String() string {
	gs := a.Globals()
	names := make([]string, len(gs))
	for i, r := range gs {
		names[i] = r.String()
	}
	return fmt.Sprintf("%s[%s]", a.scheme, strings.Join(names, " "))
}
