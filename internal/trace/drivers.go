package trace

// ScriptDriver replays a fixed block path and a fixed per-memory-op address
// sequence; useful for tests and for the microbenchmark programs whose
// behaviour is fully known in advance.
type ScriptDriver struct {
	// Path is the block sequence after the entry block. When the path is
	// exhausted the run ends.
	Path []string
	// Addrs maps a static memory-op ID to its address sequence; each
	// dynamic execution consumes one element. When a sequence is exhausted
	// its last element repeats; a missing entry yields address 0x1000.
	Addrs map[int][]uint64

	pos     int
	addrPos map[int]int
}

// Reset implements Driver.
func (d *ScriptDriver) Reset() {
	d.pos = 0
	d.addrPos = make(map[int]int, len(d.Addrs))
}

// NextBlock implements Driver.
func (d *ScriptDriver) NextBlock(cur string, succs []string) (string, bool) {
	if d.pos >= len(d.Path) {
		return "", false
	}
	next := d.Path[d.pos]
	d.pos++
	return next, true
}

// Addr implements Driver.
func (d *ScriptDriver) Addr(memID int) uint64 {
	seq := d.Addrs[memID]
	if len(seq) == 0 {
		return 0x1000
	}
	i := d.addrPos[memID]
	if i >= len(seq) {
		i = len(seq) - 1
	} else {
		d.addrPos[memID] = i + 1
	}
	return seq[i]
}

// SliceReader replays a pre-materialized entry slice; useful in tests.
type SliceReader struct {
	Entries []Entry
	pos     int
}

// Next implements Reader.
func (r *SliceReader) Next() (Entry, bool) {
	if r.pos >= len(r.Entries) {
		return Entry{}, false
	}
	e := r.Entries[r.pos]
	r.pos++
	return e, true
}

// Collect materializes up to max entries from a reader.
func Collect(r Reader, max int) []Entry {
	var out []Entry
	for max <= 0 || len(out) < max {
		e, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}
