package trace

import (
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/regalloc"
)

// lowerFigure6 compiles Figure 6 natively for use as a trace target.
func lowerFigure6(t *testing.T) *isa.Program {
	t.Helper()
	alloc, err := regalloc.Allocate(il.Figure6(), nil, regalloc.Config{
		Assignment: isa.DefaultAssignment(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestGeneratorFollowsScriptedPath(t *testing.T) {
	mp := lowerFigure6(t)
	// bb1 → bb2 → (BR, no driver decision) → bb4 → bb4 → bb5 (end).
	d := &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}
	g, err := NewGenerator(mp, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := Collect(g, 0)

	// Count dynamic instructions: bb1(3) + bb2(3) + bb4(5)×2 + bb5(2) = 18.
	if len(entries) != 18 {
		t.Fatalf("trace length = %d, want 18", len(entries))
	}
	// The bb1 branch (to bb3) must be not-taken; the bb4 loop branch taken
	// once then not-taken.
	var condOutcomes []bool
	for _, e := range entries {
		if e.Instr.Op.IsCondBranch() {
			condOutcomes = append(condOutcomes, e.Taken)
		}
	}
	want := []bool{false, true, false}
	if len(condOutcomes) != len(want) {
		t.Fatalf("conditional branches = %v, want %v", condOutcomes, want)
	}
	for i := range want {
		if condOutcomes[i] != want[i] {
			t.Fatalf("conditional branches = %v, want %v", condOutcomes, want)
		}
	}
}

func TestGeneratorSuppliesAddresses(t *testing.T) {
	mp := lowerFigure6(t)
	d := &ScriptDriver{
		Path:  []string{"bb2", "bb4", "bb5"},
		Addrs: map[int][]uint64{0: {0x2000}, 1: {0x2008}},
	}
	g, err := NewGenerator(mp, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	for _, e := range Collect(g, 0) {
		if e.Instr.Op.Class().IsMem() {
			addrs = append(addrs, e.Addr)
		}
	}
	if len(addrs) != 2 || addrs[0] != 0x2000 || addrs[1] != 0x2008 {
		t.Errorf("addresses = %#x, want [0x2000 0x2008]", addrs)
	}
}

func TestGeneratorHonoursMaxInstrs(t *testing.T) {
	mp := lowerFigure6(t)
	// Loop forever in bb4.
	path := make([]string, 1000)
	path[0] = "bb2"
	for i := 1; i < len(path); i++ {
		path[i] = "bb4"
	}
	d := &ScriptDriver{Path: path}
	g, err := NewGenerator(mp, d, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Collect(g, 0)); got != 50 {
		t.Errorf("trace length = %d, want 50 (capped)", got)
	}
}

func TestGeneratorEndsWhenDriverStops(t *testing.T) {
	mp := lowerFigure6(t)
	d := &ScriptDriver{Path: nil} // stop immediately after bb1
	g, err := NewGenerator(mp, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := Collect(g, 0)
	// All of bb1 executes, ending at its terminator.
	if len(entries) != 3 {
		t.Errorf("trace length = %d, want 3 (bb1 only)", len(entries))
	}
}

func TestProfileMatchesPath(t *testing.T) {
	p := il.Figure6()
	// bb1 →(choice) bb2 →(BR, free) bb4 →(choice) bb4 →(choice) bb4
	// →(choice) bb5: bb4 runs three times.
	d := &ScriptDriver{Path: []string{"bb2", "bb4", "bb4", "bb5"}}
	counts := Profile(p, d, 0)
	want := map[string]int64{"bb1": 1, "bb2": 1, "bb4": 3, "bb5": 1}
	for name, c := range want {
		if counts[name] != c {
			t.Errorf("count[%s] = %d, want %d", name, counts[name], c)
		}
	}
	if counts["bb3"] != 0 {
		t.Errorf("bb3 counted %d, never visited", counts["bb3"])
	}
	// EstExec fields updated in place.
	if p.Block("bb4").EstExec != 3 {
		t.Errorf("bb4 EstExec = %d, want 3", p.Block("bb4").EstExec)
	}
}

func TestProfileAndTraceSeeSamePath(t *testing.T) {
	// The block sequence observed in the machine trace must equal the
	// profile counts — the property that makes profile-guided partitioning
	// faithful.
	p := il.Figure6()
	mp := lowerFigure6(t)
	path := []string{"bb3", "bb4", "bb4", "bb4", "bb4", "bb5"}
	counts := Profile(p, &ScriptDriver{Path: path}, 0)

	g, err := NewGenerator(mp, &ScriptDriver{Path: path}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int64{}
	for _, e := range Collect(g, 0) {
		if b := mp.BlockOf(e.Index); b != nil && e.Index == b.Start {
			seen[b.Name]++
		}
	}
	for name, c := range counts {
		if seen[name] != c {
			t.Errorf("block %s: profile %d, trace %d", name, c, seen[name])
		}
	}
}

func TestSpillAddressesAreStatic(t *testing.T) {
	// Build a program that spills, lower it, and check spill ops get
	// SpillBase addresses without consulting the driver.
	b := il.NewBuilder("spilly")
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = b.Int(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	e := b.Block("entry", 1)
	for i, id := range ids {
		e.Const(id, int64(i))
	}
	sum := b.Int("sum")
	e.Op(isa.ADD, sum, ids[0], ids[1])
	for i := 2; i < len(ids); i++ {
		e.Op(isa.ADD, sum, sum, ids[i])
	}
	e.Ret(sum)
	prog := b.MustFinish()

	alloc, err := regalloc.Allocate(prog, nil, regalloc.Config{Assignment: isa.DefaultAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Spilled == 0 {
		t.Fatal("expected spills")
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mp, &ScriptDriver{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	spillSeen := 0
	for _, entry := range Collect(g, 0) {
		if slot, ok := entry.Instr.SpillInfo(); ok {
			spillSeen++
			if entry.Addr != isa.SpillAddr(slot) {
				t.Errorf("spill op addr = %#x, want %#x", entry.Addr, isa.SpillAddr(slot))
			}
		}
	}
	if spillSeen == 0 {
		t.Error("no spill operations in trace")
	}
}

func TestSliceReader(t *testing.T) {
	r := &SliceReader{Entries: []Entry{{Index: 1}, {Index: 2}}}
	e, ok := r.Next()
	if !ok || e.Index != 1 {
		t.Fatal("first entry wrong")
	}
	if got := Collect(r, 0); len(got) != 1 || got[0].Index != 2 {
		t.Fatal("collect after partial read wrong")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("reader not exhausted")
	}
}

func BenchmarkGenerator(b *testing.B) {
	mp := lowerFigure6(&testing.T{})
	path := make([]string, 4096)
	path[0] = "bb2"
	for i := 1; i < len(path); i++ {
		path[i] = "bb4"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		g, err := NewGenerator(mp, &ScriptDriver{Path: path}, 4096)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
	}
}
