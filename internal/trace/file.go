package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"multicluster/internal/isa"
)

// Binary trace format: traces are expensive to regenerate for long runs
// and replaying a recorded trace guarantees every machine configuration
// sees the identical dynamic stream. The encoding is a small varint
// format:
//
//	header:  magic "MCTR" | version (uvarint) | program instruction count (uvarint)
//	entry:   index-delta (varint, relative to previous index)
//	         flags (1 byte: bit0 taken, bit1 has-address)
//	         address (uvarint, present when bit1 set)
//
// Sequential code emits index deltas of +1, so typical entries cost two
// bytes. The static program is NOT stored; the reader re-binds entries to
// the program it is given and validates the instruction count.

const (
	traceMagic   = "MCTR"
	traceVersion = 1

	flagTaken   = 1 << 0
	flagHasAddr = 1 << 1
)

// ErrTraceFormat reports a malformed or mismatched trace stream.
var ErrTraceFormat = errors.New("trace: bad trace stream")

// Writer encodes entries to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	prev    int64
	count   int64
	started bool
	nInstrs int
}

// NewWriter starts a trace for the given program on w.
func NewWriter(w io.Writer, prog *isa.Program) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{traceVersion, uint64(len(prog.Instrs))} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw, nInstrs: len(prog.Instrs)}, nil
}

// Write appends one entry.
func (tw *Writer) Write(e Entry) error {
	if e.Index < 0 || e.Index >= tw.nInstrs {
		return fmt.Errorf("%w: entry index %d out of program range %d", ErrTraceFormat, e.Index, tw.nInstrs)
	}
	var buf [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutVarint(buf[:], int64(e.Index)-tw.prev)
	tw.prev = int64(e.Index)

	flags := byte(0)
	if e.Taken {
		flags |= flagTaken
	}
	hasAddr := e.Instr != nil && e.Instr.Op.Class().IsMem()
	if hasAddr {
		flags |= flagHasAddr
	}
	buf[n] = flags
	n++
	if hasAddr {
		n += binary.PutUvarint(buf[n:], e.Addr)
	}
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns the number of entries written.
func (tw *Writer) Count() int64 { return tw.count }

// Flush completes the trace.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Record materializes up to max entries from a reader into w.
func Record(w io.Writer, prog *isa.Program, r Reader, max int64) (int64, error) {
	tw, err := NewWriter(w, prog)
	if err != nil {
		return 0, err
	}
	for max <= 0 || tw.Count() < max {
		e, ok := r.Next()
		if !ok {
			break
		}
		if err := tw.Write(e); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// FileReader decodes a recorded trace, re-binding entries to prog. It
// implements Reader.
type FileReader struct {
	r    *bufio.Reader
	prog *isa.Program
	prev int64
	err  error
}

// NewFileReader validates the header and prepares to stream entries.
func NewFileReader(r io.Reader, prog *isa.Program) (*FileReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrTraceFormat)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrTraceFormat, version)
	}
	nInstrs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrTraceFormat)
	}
	if int(nInstrs) != len(prog.Instrs) {
		return nil, fmt.Errorf("%w: trace recorded against a %d-instruction program, got %d", ErrTraceFormat, nInstrs, len(prog.Instrs))
	}
	return &FileReader{r: br, prog: prog}, nil
}

// Next implements Reader.
func (fr *FileReader) Next() (Entry, bool) {
	if fr.err != nil {
		return Entry{}, false
	}
	delta, err := binary.ReadVarint(fr.r)
	if err != nil {
		if err != io.EOF {
			fr.err = err
		}
		return Entry{}, false
	}
	idx := fr.prev + delta
	if idx < 0 || idx >= int64(len(fr.prog.Instrs)) {
		fr.err = fmt.Errorf("%w: index %d out of range", ErrTraceFormat, idx)
		return Entry{}, false
	}
	fr.prev = idx
	flags, err := fr.r.ReadByte()
	if err != nil {
		fr.err = fmt.Errorf("%w: truncated entry", ErrTraceFormat)
		return Entry{}, false
	}
	e := Entry{Index: int(idx), Instr: &fr.prog.Instrs[idx], Taken: flags&flagTaken != 0}
	if flags&flagHasAddr != 0 {
		addr, err := binary.ReadUvarint(fr.r)
		if err != nil {
			fr.err = fmt.Errorf("%w: truncated address", ErrTraceFormat)
			return Entry{}, false
		}
		e.Addr = addr
	}
	return e, true
}

// Err returns the first decoding error, if any, once Next has returned
// false.
func (fr *FileReader) Err() error { return fr.err }
