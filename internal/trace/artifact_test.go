package trace

import (
	"testing"
)

// TestRunEndingControlEntryTaken pins the direction convention of the
// entry that ends a run: an unconditional control transfer (here bb5's
// RET) executed like every other one and is recorded taken, while a
// conditional branch the driver never resolved stays not-taken. Before
// the fix the RET case was recorded not-taken, so the final control
// instruction of every trace reached the simulator with an arbitrary
// direction.
func TestRunEndingControlEntryTaken(t *testing.T) {
	mp := lowerFigure6(t)

	// Path exhausts at bb5, whose RET ends the run.
	g, err := NewGenerator(mp, &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := Collect(g, 0)
	last := entries[len(entries)-1]
	if !last.Instr.Op.IsControl() || last.Instr.Op.IsCondBranch() {
		t.Fatalf("final entry is %v, want an unconditional control transfer", last.Instr.Op)
	}
	if !last.Taken {
		t.Errorf("run-ending unconditional control recorded not-taken; unconditional transfers always take their target")
	}

	// Path exhausts at bb4's loop branch: a conditional branch with no
	// driver decision ends the run and is recorded not-taken by the
	// documented convention.
	g, err = NewGenerator(mp, &ScriptDriver{Path: []string{"bb2", "bb4"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries = Collect(g, 0)
	last = entries[len(entries)-1]
	if !last.Instr.Op.IsCondBranch() {
		t.Fatalf("final entry is %v, want a conditional branch", last.Instr.Op)
	}
	if last.Taken {
		t.Errorf("run-ending unresolved conditional branch recorded taken, want the pinned not-taken convention")
	}
}

// TestArtifactMatchesGenerator pins the tentpole property: a materialized
// artifact replays entry-for-entry identically to a fresh generator walk,
// including addresses, branch directions, and the run-ending entry.
func TestArtifactMatchesGenerator(t *testing.T) {
	mp := lowerFigure6(t)
	path := []string{"bb2", "bb4", "bb4", "bb4", "bb5"}
	addrs := map[int][]uint64{0: {0x2000, 0x2010, 0x2020}, 1: {0x3000}}

	g, err := NewGenerator(mp, &ScriptDriver{Path: path, Addrs: addrs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(g, 0)

	art, err := Materialize(mp, &ScriptDriver{Path: path, Addrs: addrs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if art.Len() != len(want) {
		t.Fatalf("artifact Len = %d, want %d", art.Len(), len(want))
	}
	got := Collect(art.NewReader(), 0)
	if len(got) != len(want) {
		t.Fatalf("artifact replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: artifact %+v, generator %+v", i, got[i], want[i])
		}
	}
}

// TestArtifactReadersAreIndependent checks that concurrent cursors do not
// share position state.
func TestArtifactReadersAreIndependent(t *testing.T) {
	mp := lowerFigure6(t)
	art, err := Materialize(mp, &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := art.NewReader(), art.NewReader()
	e1, _ := r1.Next()
	e1b, _ := r1.Next()
	e2, _ := r2.Next()
	if e1 != e2 {
		t.Errorf("two readers disagree on entry 0: %+v vs %+v", e1, e2)
	}
	if e1b == e2 {
		t.Errorf("reader positions are shared: second Next on r1 returned entry 0 again")
	}
}

// TestArtifactHonoursMaxInstrs mirrors the generator's budget cap.
func TestArtifactHonoursMaxInstrs(t *testing.T) {
	mp := lowerFigure6(t)
	path := make([]string, 1000)
	path[0] = "bb2"
	for i := 1; i < len(path); i++ {
		path[i] = "bb4"
	}
	art, err := Materialize(mp, &ScriptDriver{Path: path}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if art.Len() != 50 {
		t.Errorf("artifact Len = %d, want 50 (capped)", art.Len())
	}
}

// BenchmarkArtifactCursor measures the per-entry replay cost (the value
// batched sweeps pay instead of a generator walk per cell).
func BenchmarkArtifactCursor(b *testing.B) {
	mp := lowerFigure6(&testing.T{})
	path := make([]string, 4096)
	path[0] = "bb2"
	for i := 1; i < len(path); i++ {
		path[i] = "bb4"
	}
	art, err := Materialize(mp, &ScriptDriver{Path: path}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += art.Len() {
		r := art.NewReader()
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
	}
}
