package trace

import (
	"fmt"
	"math"

	"multicluster/internal/isa"
)

// Source produces independent readers over one dynamic instruction
// stream. An Artifact is the canonical implementation: many simulations
// can walk the same materialized trace concurrently, each through its own
// cursor.
type Source interface {
	NewReader() Reader
}

// Artifact is a materialized, read-only dynamic instruction stream: the
// full output of one generator walk packed into columnar storage so that
// many simulations can replay it without re-running the driver. Per
// dynamic instruction it stores the static index (4 bytes) and the branch
// direction (1 bit); effective addresses are stored only for memory
// operations, in stream order. At the default 300k-instruction budget an
// artifact is ~2 MB — cheap enough to cache per (workload, seed, budget)
// and share across every machine configuration of a sweep.
//
// An Artifact is immutable after Materialize and safe for concurrent use.
type Artifact struct {
	prog  *isa.Program
	index []int32  // static instruction index, one per dynamic instruction
	addrs []uint64 // effective addresses of memory operations, in stream order
	taken []uint64 // branch-direction bitset, one bit per dynamic instruction
}

// Materialize runs a full generator walk of prog under driver (at most
// maxInstrs dynamic instructions, 0 meaning unlimited) and packs the
// resulting stream into an Artifact. The entries a cursor replays are
// byte-identical to the generator's — the golden cross-check suite pins
// this.
func Materialize(prog *isa.Program, driver Driver, maxInstrs int64) (*Artifact, error) {
	if int64(len(prog.Instrs)) > math.MaxInt32 {
		return nil, fmt.Errorf("trace: program too large to materialize (%d static instructions)", len(prog.Instrs))
	}
	g, err := NewGenerator(prog, driver, maxInstrs)
	if err != nil {
		return nil, err
	}
	a := &Artifact{prog: prog}
	if maxInstrs > 0 {
		a.index = make([]int32, 0, maxInstrs)
		a.taken = make([]uint64, 0, (maxInstrs+63)/64)
	}
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		pos := len(a.index)
		a.index = append(a.index, int32(e.Index))
		if pos&63 == 0 {
			a.taken = append(a.taken, 0)
		}
		if e.Taken {
			a.taken[pos>>6] |= 1 << (uint(pos) & 63)
		}
		if e.Instr.Op.Class().IsMem() {
			a.addrs = append(a.addrs, e.Addr)
		}
	}
	return a, nil
}

// Len returns the number of dynamic instructions in the artifact.
func (a *Artifact) Len() int { return len(a.index) }

// Program returns the machine program the artifact was generated from.
func (a *Artifact) Program() *isa.Program { return a.prog }

// NewReader implements Source: an independent, zero-copy cursor over the
// artifact. Each Next reconstructs one Entry without allocating.
func (a *Artifact) NewReader() Reader { return &Cursor{a: a} }

// Cursor replays an Artifact from the beginning; the SliceReader of the
// packed representation. Not safe for concurrent use — take one cursor
// per simulation.
type Cursor struct {
	a   *Artifact
	pos int
	mem int // next unread entry of a.addrs
}

// Next implements Reader.
func (c *Cursor) Next() (Entry, bool) {
	if c.pos >= len(c.a.index) {
		return Entry{}, false
	}
	idx := int(c.a.index[c.pos])
	in := &c.a.prog.Instrs[idx]
	e := Entry{
		Index: idx,
		Instr: in,
		Taken: c.a.taken[c.pos>>6]>>(uint(c.pos)&63)&1 == 1,
	}
	if in.Op.Class().IsMem() {
		e.Addr = c.a.addrs[c.mem]
		c.mem++
	}
	c.pos++
	return e, true
}
