package trace

import (
	"bytes"
	"strings"
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/regalloc"
)

func roundTrip(t *testing.T, prog *isa.Program, entries []Entry) []Entry {
	t.Helper()
	var buf bytes.Buffer
	n, err := Record(&buf, prog, &SliceReader{Entries: entries}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(entries)) {
		t.Fatalf("recorded %d of %d entries", n, len(entries))
	}
	fr, err := NewFileReader(&buf, prog)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(fr, 0)
	if fr.Err() != nil {
		t.Fatal(fr.Err())
	}
	return got
}

func TestTraceRoundTrip(t *testing.T) {
	mp := lowerFigure6(t)
	d := &ScriptDriver{
		Path:  []string{"bb2", "bb4", "bb4", "bb5"},
		Addrs: map[int][]uint64{0: {0x2000}, 1: {0x2008}},
	}
	g, err := NewGenerator(mp, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(g, 0)
	got := roundTrip(t, mp, want)
	if len(got) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Taken != want[i].Taken || got[i].Addr != want[i].Addr {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Instr != &mp.Instrs[want[i].Index] {
			t.Fatalf("entry %d: instruction not re-bound to the program", i)
		}
	}
}

func TestTraceCompactness(t *testing.T) {
	// Sequential straight-line code must cost ~2 bytes per entry.
	mp := lowerFigure6(t)
	g, err := NewGenerator(mp, &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	entries := Collect(g, 0)
	var buf bytes.Buffer
	if _, err := Record(&buf, mp, &SliceReader{Entries: entries}, 0); err != nil {
		t.Fatal(err)
	}
	perEntry := float64(buf.Len()) / float64(len(entries))
	if perEntry > 4 {
		t.Errorf("%.1f bytes per entry; the varint encoding should be ≤ 4 here", perEntry)
	}
}

func TestTraceRejectsWrongProgram(t *testing.T) {
	mp := lowerFigure6(t)
	g, err := NewGenerator(mp, &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, mp, g, 0); err != nil {
		t.Fatal(err)
	}
	other := &isa.Program{Instrs: make([]isa.Instruction, 3)}
	if _, err := NewFileReader(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("trace accepted against a different program")
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	mp := lowerFigure6(t)
	if _, err := NewFileReader(strings.NewReader("not a trace"), mp); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewFileReader(strings.NewReader(""), mp); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTraceTruncationSurfacesError(t *testing.T) {
	mp := lowerFigure6(t)
	g, err := NewGenerator(mp, &ScriptDriver{Path: []string{"bb2", "bb4", "bb5"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, mp, g, 0); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	fr, err := NewFileReader(bytes.NewReader(cut), mp)
	if err != nil {
		t.Fatal(err)
	}
	Collect(fr, 0)
	if fr.Err() == nil {
		t.Fatal("truncated trace read without error")
	}
}

func TestWriterRejectsOutOfRangeIndex(t *testing.T) {
	mp := lowerFigure6(t)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(Entry{Index: len(mp.Instrs) + 5}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRecordHonoursMax(t *testing.T) {
	mp := lowerFigure6(t)
	path := make([]string, 100)
	path[0] = "bb2"
	for i := 1; i < len(path); i++ {
		path[i] = "bb4"
	}
	g, err := NewGenerator(mp, &ScriptDriver{Path: path}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, mp, g, 25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("recorded %d, want 25", n)
	}
}

// lowerForFileTests ensures the helpers compile when figure6 changes shape.
func TestFileHelpersCompile(t *testing.T) {
	b := il.NewBuilder("t")
	x := b.Int("x")
	bb := b.Block("entry", 1)
	bb.Const(x, 1)
	bb.Ret(x)
	alloc, err := regalloc.Allocate(b.MustFinish(), nil, regalloc.Config{Assignment: isa.DefaultAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codegen.Lower(alloc); err != nil {
		t.Fatal(err)
	}
}
