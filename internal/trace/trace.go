// Package trace turns a machine program plus a behaviour driver into the
// dynamic instruction stream the cycle-level simulator consumes — the role
// ATOM instrumentation played in the paper's methodology. A Driver supplies
// the control-flow path (which successor each block takes) and the memory
// addresses of each static memory operation; the generator walks the
// machine code accordingly and emits one Entry per dynamic instruction.
//
// The same Driver, run over the IL program with Profile, produces the
// per-block execution estimates the local scheduler sorts by — guaranteeing
// the profile and the simulated run see the same path.
package trace

import (
	"fmt"

	"multicluster/internal/il"
	"multicluster/internal/isa"
)

// Driver supplies the dynamic behaviour of one program run. Implementations
// must be deterministic for a given construction (seeded), and NextBlock
// must be independent of Addr so that an IL-level profiling walk and a
// machine-level trace walk follow identical paths.
type Driver interface {
	// Reset returns the driver to its initial state.
	Reset()
	// NextBlock chooses the dynamic successor of block cur among succs.
	// Returning ok=false ends the run. For blocks with no successors
	// (returns) succs is empty and the driver may name any block.
	NextBlock(cur string, succs []string) (next string, ok bool)
	// Addr returns the effective address for the next dynamic execution of
	// the static memory operation memID.
	Addr(memID int) uint64
}

// Entry is one dynamic instruction.
type Entry struct {
	// Index is the static instruction index; the PC is isa.PCOf(Index).
	Index int
	// Instr points at the static instruction within the program.
	Instr *isa.Instruction
	// Addr is the effective address for memory operations.
	Addr uint64
	// Taken is the resolved direction for conditional branches;
	// unconditional control transfers are always recorded taken. The one
	// exception is a conditional branch that ends the run (the driver
	// declined to choose a successor): it has no resolved direction and is
	// recorded not-taken by convention, pinned by tests so materialized
	// artifacts and live generators agree byte for byte.
	Taken bool
}

// Reader yields a dynamic instruction stream.
type Reader interface {
	// Next returns the next entry; ok=false at end of trace.
	Next() (e Entry, ok bool)
}

// Generator walks a machine program under a driver, producing entries
// lazily.
type Generator struct {
	prog      *isa.Program
	driver    Driver
	maxInstrs int64

	emitted int64
	pc      int // next static instruction index
	done    bool
	byName  map[string]*isa.BlockInfo
	blockOf []*isa.BlockInfo

	// succCache memoizes, per static instruction index, the successor-name
	// list handed to the driver at that point (conditional branches and
	// implicit fall-throughs), so the hot generate loop does not rebuild
	// it on every dynamic execution. Drivers must treat it as read-only.
	succCache [][]string
}

// NewGenerator builds a lazy trace over prog driven by driver, emitting at
// most maxInstrs dynamic instructions (0 means unlimited). The driver is
// Reset.
func NewGenerator(prog *isa.Program, driver Driver, maxInstrs int64) (*Generator, error) {
	if len(prog.Instrs) == 0 || len(prog.Blocks) == 0 {
		return nil, fmt.Errorf("trace: empty program")
	}
	g := &Generator{prog: prog, driver: driver, maxInstrs: maxInstrs}
	g.byName = make(map[string]*isa.BlockInfo, len(prog.Blocks))
	g.blockOf = make([]*isa.BlockInfo, len(prog.Instrs))
	g.succCache = make([][]string, len(prog.Instrs))
	for i := range prog.Blocks {
		b := &prog.Blocks[i]
		g.byName[b.Name] = b
		for j := b.Start; j < b.End; j++ {
			g.blockOf[j] = b
		}
	}
	driver.Reset()
	g.pc = prog.Blocks[0].Start
	return g, nil
}

// Next implements Reader.
func (g *Generator) Next() (Entry, bool) {
	if g.done || (g.maxInstrs > 0 && g.emitted >= g.maxInstrs) {
		return Entry{}, false
	}
	in := &g.prog.Instrs[g.pc]
	e := Entry{Index: g.pc, Instr: in}

	if in.Op.Class().IsMem() {
		if slot, ok := in.SpillInfo(); ok {
			e.Addr = isa.SpillAddr(slot)
		} else {
			e.Addr = g.driver.Addr(in.MemID)
		}
	}

	cur := g.blockOf[g.pc]
	switch {
	case in.Op.IsControl():
		next, ok := g.nextBlock(cur, in)
		if !ok {
			// The run ends here, but the final control instruction still
			// executed: an unconditional transfer (RET, JMP) takes its
			// target like every other one, so it must not reach the
			// simulator with an arbitrary not-taken direction. A
			// conditional branch ending the run has no driver-resolved
			// direction and stays not-taken by the documented convention.
			e.Taken = !in.Op.IsCondBranch()
			g.done = true
			g.emitted++
			return e, true
		}
		if in.Op.IsCondBranch() {
			e.Taken = next.Start == in.Target
		} else {
			e.Taken = true
		}
		if e.Taken || !in.Op.IsCondBranch() {
			g.pc = next.Start
		} else {
			g.pc = g.pc + 1 // fall through
		}
	case g.pc+1 == cur.End:
		// Implicit fall-through at block end.
		next, ok := g.nextBlock(cur, nil)
		if !ok {
			g.done = true
			g.emitted++
			return e, true
		}
		g.pc = next.Start
	default:
		g.pc++
	}
	g.emitted++
	return e, true
}

// nextBlock consults the driver for the successor of cur. For direct
// unconditional control flow (BR, CALL) the single successor is implied and
// the driver is not consulted.
func (g *Generator) nextBlock(cur *isa.BlockInfo, in *isa.Instruction) (*isa.BlockInfo, bool) {
	if in != nil && (in.Op == isa.BR || in.Op == isa.CALL) {
		return g.blockOf[in.Target], true
	}
	succs := g.succsOf(cur, in)
	name, ok := g.driver.NextBlock(cur.Name, succs)
	if !ok {
		return nil, false
	}
	nb := g.byName[name]
	if nb == nil {
		panic(fmt.Sprintf("trace: driver chose unknown block %q from %q", name, cur.Name))
	}
	if len(succs) > 0 && !contains(succs, name) {
		panic(fmt.Sprintf("trace: driver chose %q, not a successor of %q (%v)", name, cur.Name, succs))
	}
	return nb, true
}

// succsOf reconstructs the successor names of a machine block: the
// fall-through (next block in layout) and/or the branch target. For RET and
// JMP the successor set is open (nil) and the driver chooses freely. The
// list depends only on the static instruction (g.pc is not advanced until
// after the driver is consulted), so it is built once and memoized.
func (g *Generator) succsOf(cur *isa.BlockInfo, in *isa.Instruction) []string {
	if in != nil && (in.Op == isa.RET || in.Op == isa.JMP) {
		return nil
	}
	if s := g.succCache[g.pc]; s != nil {
		return s
	}
	var s []string
	switch {
	case in == nil:
		// Implicit fall-through.
		s = []string{g.blockOf[cur.End].Name}
	case in.Op == isa.BEQ || in.Op == isa.BNE:
		fall := g.blockOf[cur.End].Name
		taken := g.blockOf[in.Target].Name
		s = []string{fall, taken}
	default:
		s = []string{g.blockOf[in.Target].Name}
	}
	g.succCache[g.pc] = s
	return s
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Profile executes the driver's control-flow path over the IL program for
// at most maxInstrs dynamic IL instructions and stores the resulting
// per-block execution counts into the blocks' EstExec fields (the estimate
// of how many times each block's first instruction executes). The driver is
// Reset before and after, so the same driver can then generate the trace.
func Profile(p *il.Program, driver Driver, maxInstrs int64) map[string]int64 {
	driver.Reset()
	defer driver.Reset()
	counts := make(map[string]int64, len(p.Blocks))
	var executed int64
	cur := p.Block(p.Entry)
	for cur != nil && (maxInstrs <= 0 || executed < maxInstrs) {
		counts[cur.Name]++
		executed += int64(len(cur.Instrs))
		// Direct unconditional control flow is not a driver decision — the
		// generator follows BR/CALL targets without consulting the driver,
		// and the profile walk must consume driver decisions identically.
		if t := cur.Terminator(); t != nil && (t.Op == isa.BR || t.Op == isa.CALL) {
			cur = p.Block(cur.Succs[0])
			continue
		}
		next, ok := driver.NextBlock(cur.Name, cur.Succs)
		if !ok {
			break
		}
		cur = p.Block(next)
	}
	for _, b := range p.Blocks {
		b.EstExec = counts[b.Name]
	}
	return counts
}
