// Package workload provides the six synthetic benchmarks that stand in for
// the paper's SPEC92 programs (compress, doduc, gcc1, ora, su2cor,
// tomcatv). ATOM-instrumented Alpha binaries are unavailable, so each
// benchmark is an IL program plus a deterministic behaviour driver,
// engineered to match the published character of the original: instruction
// mix, branch behaviour, dependence structure, and memory locality. The
// schedulers and the simulator observe only those properties, so the
// substitution exercises the same code paths as the originals (see
// DESIGN.md §2).
package workload

import (
	"math/rand"

	"multicluster/internal/il"
	"multicluster/internal/trace"
)

// Benchmark bundles an IL program with a factory for its behaviour driver.
type Benchmark struct {
	// Name is the SPEC92 benchmark the workload models.
	Name string
	// Description summarizes the behaviour being modelled.
	Description string
	// Program is the IL program (before partitioning and allocation).
	Program *il.Program
	// NewDriver returns a fresh deterministic driver for one run. Drivers
	// run forever; cap runs with the trace generator's maxInstrs.
	NewDriver func(seed int64) trace.Driver
}

// All returns the six benchmarks in the paper's Table 2 order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress(), Doduc(), Gcc1(), Ora(), Su2cor(), Tomcatv(),
	}
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// driver is the shared behaviour-driver engine: block decisions come from
// per-block chooser functions over a control RNG plus integer state, and
// memory addresses come from per-operation generators over a separate
// memory RNG (so profiling, which consults only NextBlock, stays in
// lockstep with trace generation, which consults both).
type driver struct {
	seed  int64
	ctrl  *rand.Rand
	mem   *rand.Rand
	state map[string]int64
	// choose maps a block name to its successor decision.
	choose map[string]func(d *driver, succs []string) string
	// addr maps a static memory-operation ID to its address generator.
	addr map[int]func(d *driver) uint64
}

func newDriver(seed int64) *driver {
	d := &driver{seed: seed}
	d.Reset()
	return d
}

// Reset implements trace.Driver.
func (d *driver) Reset() {
	d.ctrl = rand.New(rand.NewSource(d.seed))
	d.mem = rand.New(rand.NewSource(d.seed ^ 0x1e3779b97f4a7c15))
	d.state = make(map[string]int64)
}

// NextBlock implements trace.Driver.
func (d *driver) NextBlock(cur string, succs []string) (string, bool) {
	if f, ok := d.choose[cur]; ok {
		return f(d, succs), true
	}
	if len(succs) == 1 {
		return succs[0], true
	}
	if len(succs) == 0 {
		return "", false
	}
	return succs[0], true
}

// Addr implements trace.Driver.
func (d *driver) Addr(memID int) uint64 {
	if f, ok := d.addr[memID]; ok {
		return f(d)
	}
	return 0x1000
}

// Decision helpers. Each returns a chooser closure.

// withProb takes the second successor (the branch-taken target of a
// conditional, by the builder's [fallthrough, taken] convention) with
// probability p.
func withProb(p float64, taken, fallthru string) func(*driver, []string) string {
	return func(d *driver, _ []string) string {
		if d.ctrl.Float64() < p {
			return taken
		}
		return fallthru
	}
}

// loop iterates `body` for `trips` iterations per entry, then exits. The
// counter keys on the block name so nested loops don't collide.
func loop(name string, trips int64, body, exit string) func(*driver, []string) string {
	return func(d *driver, _ []string) string {
		d.state[name]++
		if d.state[name]%trips == 0 {
			return exit
		}
		return body
	}
}

// loopGeom iterates with a geometric trip count of the given mean (a
// data-dependent inner loop).
func loopGeom(mean float64, body, exit string) func(*driver, []string) string {
	p := 1 / mean
	return func(d *driver, _ []string) string {
		if d.ctrl.Float64() < p {
			return exit
		}
		return body
	}
}

// Address-generator helpers.

// seqAddr walks an address stream with the given stride from base.
func seqAddr(key string, base uint64, stride uint64) func(*driver) uint64 {
	return func(d *driver) uint64 {
		n := d.state["addr."+key]
		d.state["addr."+key] = n + 1
		return base + uint64(n)*stride
	}
}

// randAddr draws uniformly from [base, base+size), 8-byte aligned: a
// hash-table or pointer-chasing access pattern.
func randAddr(base, size uint64) func(*driver) uint64 {
	return func(d *driver) uint64 {
		return base + (uint64(d.mem.Int63n(int64(size/8))) * 8)
	}
}

// hotColdAddr hits a small hot region with probability pHot, otherwise a
// large cold region — typical scalar-vs-heap behaviour.
func hotColdAddr(pHot float64, hotBase, hotSize, coldBase, coldSize uint64) func(*driver) uint64 {
	hot := randAddr(hotBase, hotSize)
	cold := randAddr(coldBase, coldSize)
	return func(d *driver) uint64 {
		if d.mem.Float64() < pHot {
			return hot(d)
		}
		return cold(d)
	}
}

// stackAddr models spill-area/stack-frame scalar traffic: a few fixed slots.
func stackAddr(base uint64, slots int64) func(*driver) uint64 {
	return func(d *driver) uint64 {
		return base + uint64(d.mem.Int63n(slots))*8
	}
}

// vectorAddr streams through a long vector with the given element stride,
// restarting each pass: su2cor/tomcatv array sweeps. Distinct keys give
// distinct arrays.
func vectorAddr(key string, base uint64, elems, stride uint64) func(*driver) uint64 {
	return func(d *driver) uint64 {
		n := d.state["addr."+key]
		d.state["addr."+key] = (n + 1) % int64(elems)
		return base + uint64(n)*stride
	}
}

// Memory-map constants shared by the workloads: distinct regions so streams
// don't alias.
const (
	regionStack  = 0x0100_0000
	regionInput  = 0x0200_0000
	regionOutput = 0x0300_0000
	regionTable  = 0x0400_0000 // large hash tables (compress)
	regionHeap   = 0x0800_0000 // pointer-chasing heap (gcc1)
	regionVecA   = 0x1000_0000
	regionVecB   = 0x1400_0000
	regionVecC   = 0x1800_0000
	regionVecD   = 0x1c00_0000
)
