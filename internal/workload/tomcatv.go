package workload

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Tomcatv models SPEC92 tomcatv: vectorized mesh generation. Each inner
// iteration reads neighbouring points from two coordinate arrays (a 2D
// stencil), computes the transformation derivatives with a wide FP
// multiply-add mix plus two divides, and writes residual arrays. Loops are
// long and perfectly predictable; the several-array working set streams
// through the cache.
func Tomcatv() *Benchmark {
	b := il.NewBuilder("tomcatv")

	sp := b.GlobalValue("SP", il.KindInt)
	gp := b.GlobalValue("GP", il.KindInt)

	x0, x1, x2 := b.FP("x0"), b.FP("x1"), b.FP("x2")
	y0, y1, y2 := b.FP("y0"), b.FP("y1"), b.FP("y2")
	dxdxi, dydxi := b.FP("dxdxi"), b.FP("dydxi")
	aj, det := b.FP("aj"), b.FP("det")
	rx, ry := b.FP("rx"), b.FP("ry")
	relax := b.FP("relax")
	col := b.Int("col")
	row := b.Int("row")

	addr := map[int]func(*driver) uint64{}

	const meshElems = 32 * 1024

	init := b.Block("init", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDF, relax, gp, 0)
	init.Const(col, 0)
	init.Const(row, 0)
	init.FallTo("col_loop")

	// Stencil reads: three neighbouring X points and three Y points.
	colLoop := b.Block("col_loop", 100)
	addr[b.MemCount()] = vectorAddr("x0", regionVecA, meshElems, 8)
	colLoop.Load(isa.LDF, x0, sp, 0)
	addr[b.MemCount()] = vectorAddr("x1", regionVecA+8, meshElems, 8)
	colLoop.Load(isa.LDF, x1, sp, 8)
	addr[b.MemCount()] = vectorAddr("x2", regionVecA+16, meshElems, 8)
	colLoop.Load(isa.LDF, x2, sp, 16)
	addr[b.MemCount()] = vectorAddr("y0", regionVecB, meshElems, 8)
	colLoop.Load(isa.LDF, y0, sp, 24)
	addr[b.MemCount()] = vectorAddr("y1", regionVecB+8, meshElems, 8)
	colLoop.Load(isa.LDF, y1, sp, 32)
	addr[b.MemCount()] = vectorAddr("y2", regionVecB+16, meshElems, 8)
	colLoop.Load(isa.LDF, y2, sp, 40)
	colLoop.FallTo("derivs")

	// Transformation derivatives and the Jacobian, with the divides the
	// original is known for.
	derivs := b.Block("derivs", 100)
	derivs.Op(isa.FSUB, dxdxi, x2, x0)
	derivs.Op(isa.FSUB, dydxi, y2, y0)
	derivs.Op(isa.FMUL, aj, dxdxi, dydxi)
	derivs.Op(isa.FMUL, det, x1, y1)
	derivs.Op(isa.FADD, det, det, aj)
	derivs.Op(isa.FDIV, rx, dxdxi, det)
	derivs.Op(isa.FDIV, ry, dydxi, det)
	derivs.Op(isa.FMUL, rx, rx, relax)
	derivs.Op(isa.FMUL, ry, ry, relax)
	derivs.FallTo("store_res")

	// Residual writes and loop control.
	storeRes := b.Block("store_res", 100)
	addr[b.MemCount()] = vectorAddr("rx", regionVecC, meshElems, 8)
	storeRes.Store(isa.STF, sp, rx, 0)
	addr[b.MemCount()] = vectorAddr("ry", regionVecD, meshElems, 8)
	storeRes.Store(isa.STF, sp, ry, 8)
	storeRes.OpImm(isa.ADD, col, col, 1)
	storeRes.CondBr(isa.BNE, col, "col_loop", "row_end")

	rowEnd := b.Block("row_end", 1)
	rowEnd.OpImm(isa.ADD, row, row, 1)
	rowEnd.Const(col, 0)
	rowEnd.CondBr(isa.BNE, row, "col_loop", "done")

	done := b.Block("done", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	done.Store(isa.STF, sp, det, 0)
	done.Ret(row)

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "tomcatv",
		Description: "mesh-generation stencil: six streaming FP loads, multiply-add mix with two divides, two streaming stores per point",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"store_res": loop("cols", 256, "col_loop", "row_end"),
				"row_end":   withProb(1.0, "col_loop", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
