package workload

import (
	"fmt"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Su2cor models SPEC92 su2cor: quantum-physics correlation functions over
// lattice data. Its core is vectorizable SAXPY-like sweeps — streaming
// loads from long arrays, independent multiply-add chains (abundant ILP),
// streaming stores, and highly-predictable long-trip-count loops, with a
// working set well beyond the data cache. The sweep is unrolled by four,
// as the original's vectorized inner loops are, which keeps the eight-way
// machine near its memory-issue ceiling — the regime where a partitioned
// machine's per-cluster limits and dual-distribution overhead bite.
func Su2cor() *Benchmark {
	b := il.NewBuilder("su2cor")

	sp := b.GlobalValue("SP", il.KindInt)
	gp := b.GlobalValue("GP", il.KindInt)

	const unroll = 4
	// Declared chain-major (a_i, b_i, c_i per unrolled element), the order
	// a compiler walking the unrolled source would first define them in.
	fa := make([]int, unroll)
	fb := make([]int, unroll)
	fc := make([]int, unroll)
	for i := 0; i < unroll; i++ {
		fa[i] = b.FP(fmt.Sprintf("fa%d", i))
		fb[i] = b.FP(fmt.Sprintf("fb%d", i))
		fc[i] = b.FP(fmt.Sprintf("fc%d", i))
	}
	fscale := b.FP("fscale")
	i1 := b.Int("i1")
	outer := b.Int("outer")

	addr := map[int]func(*driver) uint64{}

	const vecElems = 64 * 1024 // 512 KB per array, 8× the data cache
	stride := uint64(8 * unroll)

	init := b.Block("init", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDF, fscale, gp, 0)
	init.Const(i1, 0)
	init.Const(outer, 0)
	init.FallTo("inner")

	// The sweep body: c[i] = a[i]*scale + b[i] for four adjacent elements,
	// with independent chains (ILP for the scheduler to spread across
	// clusters).
	inner := b.Block("inner", 100)
	for i := 0; i < unroll; i++ {
		addr[b.MemCount()] = vectorAddr(fmt.Sprintf("a%d", i), regionVecA+uint64(8*i), vecElems, stride)
		inner.Load(isa.LDF, fa[i], sp, int64(8*i))
	}
	for i := 0; i < unroll; i++ {
		addr[b.MemCount()] = vectorAddr(fmt.Sprintf("b%d", i), regionVecB+uint64(8*i), vecElems, stride)
		inner.Load(isa.LDF, fb[i], sp, int64(64+8*i))
	}
	for i := 0; i < unroll; i++ {
		inner.Op(isa.FMUL, fc[i], fa[i], fscale)
	}
	for i := 0; i < unroll; i++ {
		inner.Op(isa.FADD, fc[i], fc[i], fb[i])
	}
	for i := 0; i < unroll; i++ {
		addr[b.MemCount()] = vectorAddr(fmt.Sprintf("c%d", i), regionVecC+uint64(8*i), vecElems, stride)
		inner.Store(isa.STF, sp, fc[i], int64(128+8*i))
	}
	inner.OpImm(isa.ADD, i1, i1, unroll)
	inner.CondBr(isa.BNE, i1, "inner", "reduce")

	// Correlation reduction at the end of each sweep.
	reduce := b.Block("reduce", 2)
	addr[b.MemCount()] = vectorAddr("r", regionVecD, 4096, 8)
	reduce.Load(isa.LDF, fb[0], gp, 8)
	reduce.Op(isa.FMUL, fb[0], fb[0], fc[0])
	reduce.Op(isa.FADD, fscale, fscale, fb[0])
	reduce.OpImm(isa.ADD, outer, outer, 1)
	reduce.CondBr(isa.BNE, outer, "inner", "done")

	done := b.Block("done", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	done.Store(isa.STF, sp, fscale, 0)
	done.Ret(outer)

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "su2cor",
		Description: "vectorizable FP sweeps: streaming loads/stores over 512 KB arrays, four unrolled multiply-add chains, predictable loops",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"inner":  loop("inner", 256, "inner", "reduce"),
				"reduce": withProb(1.0, "inner", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
