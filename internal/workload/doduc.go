package workload

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Doduc models SPEC92 doduc: a Monte Carlo simulation of a nuclear reactor
// component. Its signature is floating-point code with frequent,
// moderately-predictable branching between small basic blocks, deep FP
// dependence chains, occasional divides, and a small (cache-resident) data
// set accessed through table lookups.
func Doduc() *Benchmark {
	b := il.NewBuilder("doduc")

	sp := b.GlobalValue("SP", il.KindInt)
	gp := b.GlobalValue("GP", il.KindInt)

	fa, fb, fc := b.FP("fa"), b.FP("fb"), b.FP("fc")
	fd, fe, fg := b.FP("fd"), b.FP("fe"), b.FP("fg")
	fh, ft, fv := b.FP("fh"), b.FP("ft"), b.FP("fv")
	fcond := b.FP("fcond")
	icond := b.Int("icond")
	i1 := b.Int("i1")
	idx := b.Int("idx")
	taddr := b.Int("taddr")

	addr := map[int]func(*driver) uint64{}

	init := b.Block("init", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	init.Load(isa.LDF, fa, sp, 0)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	init.Load(isa.LDF, fb, sp, 8)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	init.Load(isa.LDF, fe, sp, 16)
	init.Const(i1, 0)
	init.Const(idx, 0)
	init.FallTo("outer")

	// The sampling step: a chained FP computation ending in a comparison
	// that selects between two treatment paths.
	outer := b.Block("outer", 100)
	outer.Op(isa.FMUL, ft, fa, fb)
	outer.Op(isa.FADD, ft, ft, fc)
	outer.Op(isa.FSUB, fv, ft, fd)
	outer.Op(isa.FCMP, fcond, fv, fe)
	outer.OpImm(isa.CVTFI, icond, fcond, 0)
	outer.CondBr(isa.BNE, icond, "path_a", "path_b")

	// Common path: multiply-accumulate chain plus loop bookkeeping.
	pathB := b.Block("path_b", 62)
	pathB.Op(isa.FMUL, fb, fb, fe)
	pathB.Op(isa.FADD, fb, fb, ft)
	pathB.Op(isa.FADD, fg, fg, fb)
	pathB.OpImm(isa.ADD, i1, i1, 1)
	pathB.Jump("merge")

	// Rarer path: includes the expensive divide and a deeper chain.
	pathA := b.Block("path_a", 38)
	pathA.Op(isa.FDIV, fd, ft, fe)
	pathA.Op(isa.FMUL, fh, fd, fd)
	pathA.Op(isa.FADD, fh, fh, fg)
	pathA.Op(isa.FSUB, fg, fh, fb)
	pathA.FallTo("merge")

	// Table lookup (cache-resident) and the loop test.
	merge := b.Block("merge", 100)
	merge.OpImm(isa.AND, idx, i1, 0x3f8)
	merge.Op(isa.ADD, taddr, idx, gp)
	addr[b.MemCount()] = randAddr(regionStack+4096, 8<<10)
	merge.Load(isa.LDF, fv, taddr, 0)
	merge.Op(isa.FADD, fc, fc, fv)
	merge.OpImm(isa.ADD, icond, i1, 1)
	merge.CondBr(isa.BNE, icond, "outer", "done")

	done := b.Block("done", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	done.Store(isa.STF, sp, fg, 24)
	done.Ret(i1)

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "doduc",
		Description: "Monte Carlo FP kernel: small blocks, 60/40 data-dependent paths, FP chains with divides, cache-resident tables",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"outer": withProb(0.38, "path_a", "path_b"),
				"merge": withProb(1.0, "outer", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
