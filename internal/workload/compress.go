package workload

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Compress models SPEC92 compress: LZW compression. The dynamic behaviour
// is an integer character loop — sequential input reads, a shift/xor hash,
// probes into a hash table far larger than the data cache (the source of
// compress's cache sensitivity), secondary probing on collisions, and
// bit-packing output every few codes. Branches are data-dependent and only
// moderately predictable; there is no floating point.
func Compress() *Benchmark {
	b := il.NewBuilder("compress")

	sp := b.GlobalValue("SP", il.KindInt)
	gp := b.GlobalValue("GP", il.KindInt)

	inPtr := b.Int("in_ptr")
	ent := b.Int("ent")
	c := b.Int("c")
	fcode := b.Int("fcode")
	hash := b.Int("hash")
	hval := b.Int("hval")
	cmp := b.Int("cmp")
	code := b.Int("code")
	free := b.Int("free")
	bitbuf := b.Int("bitbuf")
	bits := b.Int("bits")
	outw := b.Int("outw")
	t1 := b.Int("t1")
	t2 := b.Int("t2")
	t3 := b.Int("t3")

	addr := map[int]func(*driver) uint64{}

	init := b.Block("init", 1)
	init.Const(ent, 0)
	init.Const(free, 257)
	init.Const(bitbuf, 0)
	init.Const(bits, 0)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDW, inPtr, sp, 16) // input pointer from the frame
	init.FallTo("loop_top")

	// Per-character work: load the byte, build fcode and the hash.
	top := b.Block("loop_top", 100)
	addr[b.MemCount()] = seqAddr("in", regionInput, 1)
	top.Load(isa.LDW, c, inPtr, 0)
	top.OpImm(isa.ADD, inPtr, inPtr, 1)
	top.OpImm(isa.SLL, t1, c, 16)
	top.Op(isa.OR, fcode, t1, ent)
	top.OpImm(isa.SLL, t2, c, 8)
	top.Op(isa.XOR, hash, t2, ent)
	top.OpImm(isa.AND, hash, hash, 0xffff)
	top.FallTo("probe")

	// Primary hash-table probe: the table is 512 KB, eight times the data
	// cache, so these accesses miss often.
	probe := b.Block("probe", 100)
	probe.Op(isa.ADD, t3, hash, gp)
	addr[b.MemCount()] = randAddr(regionTable, 512<<10)
	probe.Load(isa.LDW, hval, t3, 0)
	probe.Op(isa.CMPEQ, cmp, hval, fcode)
	probe.CondBr(isa.BNE, cmp, "hit", "probe_miss")

	// Collision handling: empty slot test.
	miss := b.Block("probe_miss", 40)
	addr[b.MemCount()] = randAddr(regionTable+512<<10, 256<<10)
	miss.Load(isa.LDW, code, t3, 4)
	miss.CondBr(isa.BEQ, code, "free_slot", "probe2")

	// Secondary probing walks the table with a rehash displacement.
	probe2 := b.Block("probe2", 20)
	probe2.OpImm(isa.SRL, t1, hash, 4)
	probe2.Op(isa.SUB, hash, hash, t1)
	probe2.OpImm(isa.AND, hash, hash, 0xffff)
	probe2.Op(isa.ADD, t3, hash, gp)
	addr[b.MemCount()] = randAddr(regionTable, 512<<10)
	probe2.Load(isa.LDW, hval, t3, 0)
	probe2.Op(isa.CMPEQ, cmp, hval, fcode)
	probe2.CondBr(isa.BEQ, cmp, "probe2", "free_slot")

	// Install a new code in the free slot and emit the current entry.
	freeSlot := b.Block("free_slot", 35)
	addr[b.MemCount()] = randAddr(regionTable, 512<<10)
	freeSlot.Store(isa.STW, t3, fcode, 0)
	addr[b.MemCount()] = randAddr(regionTable+512<<10, 256<<10)
	freeSlot.Store(isa.STW, t3, free, 4)
	freeSlot.OpImm(isa.ADD, free, free, 1)
	freeSlot.OpImm(isa.MOV, ent, c, 0)
	freeSlot.Jump("continue")

	// Hit: follow the chain code.
	hit := b.Block("hit", 65)
	addr[b.MemCount()] = randAddr(regionTable+512<<10, 256<<10)
	hit.Load(isa.LDW, ent, t3, 4)
	hit.FallTo("continue")

	// Output pacing: pack bits and occasionally write a word.
	cont := b.Block("continue", 100)
	cont.OpImm(isa.SLL, bitbuf, bitbuf, 9)
	cont.Op(isa.OR, bitbuf, bitbuf, ent)
	cont.OpImm(isa.ADD, bits, bits, 9)
	cont.OpImm(isa.CMPLT, t1, bits, 32)
	cont.CondBr(isa.BEQ, t1, "emit", "next")

	next := b.Block("next", 100)
	next.OpImm(isa.ADD, t2, c, 1) // trivial per-iteration work
	next.CondBr(isa.BNE, t2, "loop_top", "done")

	done := b.Block("done", 1)
	done.Ret(ent)

	emit := b.Block("emit", 12)
	emit.OpImm(isa.SRL, outw, bitbuf, 16)
	addr[b.MemCount()] = seqAddr("out", regionOutput, 4)
	emit.Store(isa.STW, sp, outw, 0)
	emit.Const(bits, 0)
	emit.Jump("next")

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "compress",
		Description: "LZW compression: integer hash probing over a 768 KB table, data-dependent branches, bit-packed output",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"probe":      withProb(0.62, "hit", "probe_miss"),
				"probe_miss": withProb(0.60, "free_slot", "probe2"),
				"probe2":     loopGeom(1.7, "probe2", "free_slot"),
				"continue":   withProb(0.88, "next", "emit"),
				"next":       withProb(1.0, "loop_top", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
