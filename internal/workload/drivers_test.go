package workload

import (
	"testing"
)

func TestSeqAddrStrides(t *testing.T) {
	d := newDriver(1)
	gen := seqAddr("k", 0x1000, 16)
	for i := 0; i < 5; i++ {
		if got, want := gen(d), uint64(0x1000+16*i); got != want {
			t.Fatalf("access %d = %#x, want %#x", i, got, want)
		}
	}
	// Distinct keys advance independently.
	gen2 := seqAddr("other", 0x2000, 8)
	if got := gen2(d); got != 0x2000 {
		t.Errorf("independent stream started at %#x", got)
	}
	if got := gen(d); got != 0x1000+16*5 {
		t.Errorf("first stream perturbed: %#x", got)
	}
}

func TestVectorAddrWraps(t *testing.T) {
	d := newDriver(1)
	gen := vectorAddr("v", 0x4000, 4, 8)
	var first []uint64
	for i := 0; i < 4; i++ {
		first = append(first, gen(d))
	}
	for i := 0; i < 4; i++ {
		if got := gen(d); got != first[i] {
			t.Fatalf("pass 2 access %d = %#x, want wrap to %#x", i, got, first[i])
		}
	}
}

func TestRandAddrStaysInRegionAndAligned(t *testing.T) {
	d := newDriver(3)
	gen := randAddr(0x10000, 4096)
	for i := 0; i < 1000; i++ {
		a := gen(d)
		if a < 0x10000 || a >= 0x10000+4096 {
			t.Fatalf("address %#x out of region", a)
		}
		if a%8 != 0 {
			t.Fatalf("address %#x not 8-byte aligned", a)
		}
	}
}

func TestHotColdAddrRespectsRegions(t *testing.T) {
	d := newDriver(5)
	gen := hotColdAddr(0.7, 0x1000, 256, 0x100000, 4096)
	hot, cold := 0, 0
	for i := 0; i < 2000; i++ {
		a := gen(d)
		switch {
		case a >= 0x1000 && a < 0x1000+256:
			hot++
		case a >= 0x100000 && a < 0x100000+4096:
			cold++
		default:
			t.Fatalf("address %#x in neither region", a)
		}
	}
	frac := float64(hot) / 2000
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("hot fraction = %.2f, want ≈ 0.7", frac)
	}
}

func TestStackAddrSlots(t *testing.T) {
	d := newDriver(7)
	gen := stackAddr(0x8000, 4)
	for i := 0; i < 100; i++ {
		a := gen(d)
		if a < 0x8000 || a >= 0x8000+4*8 || a%8 != 0 {
			t.Fatalf("stack address %#x outside the 4 slots", a)
		}
	}
}

func TestLoopHelperTripCount(t *testing.T) {
	d := newDriver(9)
	ch := loop("L", 3, "body", "exit")
	var seq []string
	for i := 0; i < 9; i++ {
		seq = append(seq, ch(d, nil))
	}
	want := []string{"body", "body", "exit", "body", "body", "exit", "body", "body", "exit"}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("loop sequence %v, want %v", seq, want)
		}
	}
}

func TestLoopGeomMean(t *testing.T) {
	d := newDriver(11)
	ch := loopGeom(4, "body", "exit")
	trips, runs := 0, 0
	cur := 0
	for i := 0; i < 200000; i++ {
		if ch(d, nil) == "exit" {
			runs++
			trips += cur
			cur = 0
		} else {
			cur++
		}
	}
	mean := float64(trips)/float64(runs) + 1 // +1 for the exit decision itself
	if mean < 3.4 || mean > 4.6 {
		t.Errorf("geometric loop mean = %.2f, want ≈ 4", mean)
	}
}

func TestWithProbBias(t *testing.T) {
	d := newDriver(13)
	ch := withProb(0.3, "a", "b")
	a := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if ch(d, nil) == "a" {
			a++
		}
	}
	if frac := float64(a) / n; frac < 0.28 || frac > 0.32 {
		t.Errorf("taken fraction = %.3f, want ≈ 0.30", frac)
	}
}

func TestCtrlAndMemRNGIndependent(t *testing.T) {
	// Consuming memory addresses must not perturb control decisions: the
	// profile walk (no Addr calls) and the trace walk (with Addr calls)
	// must see identical block sequences.
	d1, d2 := newDriver(17), newDriver(17)
	ch1 := withProb(0.5, "a", "b")
	ch2 := withProb(0.5, "a", "b")
	mem := randAddr(0x1000, 4096)
	for i := 0; i < 1000; i++ {
		c1 := ch1(d1, nil)
		mem(d1) // extra memory traffic on d1 only
		c2 := ch2(d2, nil)
		if c1 != c2 {
			t.Fatalf("decision %d diverged after memory traffic: %s vs %s", i, c1, c2)
		}
	}
}

func TestDefaultNextBlockFallbacks(t *testing.T) {
	d := newDriver(19)
	if next, ok := d.NextBlock("unknown", []string{"only"}); !ok || next != "only" {
		t.Errorf("single successor fallback = %q/%v", next, ok)
	}
	if _, ok := d.NextBlock("unknown", nil); ok {
		t.Error("no-successor fallback should end the run")
	}
	if a := d.Addr(999); a == 0 {
		t.Error("unknown memID should still return a usable address")
	}
}
