package workload

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Ora models SPEC92 ora: optical ray tracing through lens surfaces. The
// kernel is a tiny, perfectly-predictable loop dominated by serial
// floating-point dependence chains through divides and square roots
// (modelled as Newton steps around the non-pipelined divider), with almost
// no memory traffic. Its long-latency chains keep dual-distributed copies
// and transfer-buffer entries alive for many cycles — the behaviour behind
// ora's replay pathology in the paper's Table 2.
func Ora() *Benchmark {
	b := il.NewBuilder("ora")

	sp := b.GlobalValue("SP", il.KindInt)

	fx, fy, fz := b.FP("fx"), b.FP("fy"), b.FP("fz")
	fa, fb, fc := b.FP("fa"), b.FP("fb"), b.FP("fc")
	fr, fs, facc := b.FP("fr"), b.FP("fs"), b.FP("facc")
	i1 := b.Int("i1")

	addr := map[int]func(*driver) uint64{}

	init := b.Block("init", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDF, fa, sp, 0)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDF, fb, sp, 8)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDF, fz, sp, 16)
	init.Const(i1, 0)
	init.FallTo("ray")

	// Trace one ray through a surface: intersection (divide), refraction
	// (square root via a Newton step: divide + multiply-add), and the
	// direction update — one long serial chain.
	ray := b.Block("ray", 100)
	ray.Op(isa.FMUL, fx, fx, fa)
	ray.Op(isa.FADD, fx, fx, fb)
	ray.Op(isa.FDIVD, fy, fx, fz) // intersection parameter
	ray.Op(isa.FMUL, fr, fy, fy)
	ray.Op(isa.FSUB, fr, fr, fc)
	ray.Op(isa.FDIV, fs, fr, fy) // Newton step for the square root
	ray.Op(isa.FADD, fs, fs, fy)
	ray.Op(isa.FMUL, fz, fs, fa)
	ray.Op(isa.FADD, facc, facc, fs)
	ray.OpImm(isa.ADD, i1, i1, 1)
	ray.FallTo("surface")

	// Second surface with the same structure, accumulating into the image.
	surface := b.Block("surface", 100)
	surface.Op(isa.FMUL, fx, fs, fb)
	surface.Op(isa.FADD, fx, fx, facc)
	surface.Op(isa.FDIVD, fy, fx, fs)
	surface.Op(isa.FMUL, fc, fy, fb)
	surface.Op(isa.FADD, facc, facc, fy)
	surface.OpImm(isa.ADD, i1, i1, 1)
	surface.CondBr(isa.BNE, i1, "ray", "done")

	done := b.Block("done", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	done.Store(isa.STF, sp, facc, 24)
	done.Ret(i1)

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "ora",
		Description: "ray-tracing FP kernel: serial divide/sqrt chains, perfectly predictable loop, negligible memory traffic",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"surface": withProb(1.0, "ray", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
