package workload

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Gcc1 models SPEC92 gcc (cc1): compiling preprocessed C. Its dynamic
// character is irregular integer code — walks over heap-allocated tree
// nodes with poor spatial locality, tag dispatching through chains of
// data-dependent branches near 50/50, short basic blocks, frequent stores
// of intermediate state, and a high control-flow fraction that punishes
// branch predictors.
func Gcc1() *Benchmark {
	b := il.NewBuilder("gcc1")

	sp := b.GlobalValue("SP", il.KindInt)
	gp := b.GlobalValue("GP", il.KindInt)

	node := b.Int("node")
	tag := b.Int("tag")
	lhs := b.Int("lhs")
	rhs := b.Int("rhs")
	val := b.Int("val")
	acc := b.Int("acc")
	tmp := b.Int("tmp")
	cnd := b.Int("cnd")
	work := b.Int("work")
	cost := b.Int("cost")
	ra := b.Int("ra")

	addr := map[int]func(*driver) uint64{}

	init := b.Block("init", 1)
	addr[b.MemCount()] = stackAddr(regionStack, 8)
	init.Load(isa.LDW, node, sp, 0)
	init.Const(acc, 0)
	init.Const(cost, 0)
	init.FallTo("walk")

	// Fetch the next tree node: pointer chase with mostly-cold heap
	// accesses plus a hot recently-touched region.
	walk := b.Block("walk", 100)
	addr[b.MemCount()] = hotColdAddr(0.55, regionHeap, 32<<10, regionHeap+(1<<20), 4<<20)
	walk.Load(isa.LDW, tag, node, 0)
	addr[b.MemCount()] = hotColdAddr(0.55, regionHeap, 32<<10, regionHeap+(1<<20), 4<<20)
	walk.Load(isa.LDW, node, node, 8)
	walk.OpImm(isa.AND, cnd, tag, 1)
	walk.CondBr(isa.BNE, cnd, "expr", "leaf")

	// Leaf node: cheap accumulate.
	leaf := b.Block("leaf", 44)
	leaf.OpImm(isa.SRL, val, tag, 4)
	leaf.Op(isa.ADD, acc, acc, val)
	leaf.Jump("store_state")

	// Expression node: second dispatch level.
	expr := b.Block("expr", 56)
	expr.OpImm(isa.AND, cnd, tag, 2)
	expr.CondBr(isa.BNE, cnd, "binop", "unop")

	unop := b.Block("unop", 25)
	unop.OpImm(isa.XOR, val, tag, -1)
	unop.OpImm(isa.SRL, val, val, 2)
	unop.Op(isa.SUB, acc, acc, val)
	unop.Jump("fold")

	binop := b.Block("binop", 31)
	addr[b.MemCount()] = hotColdAddr(0.5, regionHeap, 32<<10, regionHeap+(1<<20), 4<<20)
	binop.Load(isa.LDW, lhs, node, 16)
	addr[b.MemCount()] = hotColdAddr(0.5, regionHeap, 32<<10, regionHeap+(1<<20), 4<<20)
	binop.Load(isa.LDW, rhs, node, 24)
	binop.Op(isa.ADD, val, lhs, rhs)
	binop.OpImm(isa.AND, cnd, val, 4)
	binop.CondBr(isa.BNE, cnd, "fold_mul", "fold")

	// Constant folding paths.
	fold := b.Block("fold", 42)
	fold.OpImm(isa.SLL, tmp, val, 1)
	fold.Op(isa.ADD, acc, acc, tmp)
	fold.Jump("cost_calc")

	foldMul := b.Block("fold_mul", 14)
	foldMul.Op(isa.MUL, tmp, val, val)
	foldMul.Op(isa.ADD, acc, acc, tmp)
	foldMul.FallTo("cost_calc")

	// rtx cost bookkeeping: table lookup keyed by tag bits.
	costCalc := b.Block("cost_calc", 56)
	costCalc.OpImm(isa.AND, tmp, tag, 0xf8)
	costCalc.Op(isa.ADD, work, tmp, gp)
	addr[b.MemCount()] = randAddr(regionStack+64<<10, 16<<10)
	costCalc.Load(isa.LDW, val, work, 0)
	costCalc.Op(isa.ADD, cost, cost, val)
	costCalc.FallTo("store_state")

	// Spill walker state to the stack frame, as register-starved compiler
	// code constantly does.
	storeState := b.Block("store_state", 100)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	storeState.Store(isa.STW, sp, acc, 32)
	addr[b.MemCount()] = stackAddr(regionStack, 16)
	storeState.Store(isa.STW, sp, cost, 40)
	storeState.OpImm(isa.AND, cnd, acc, 3)
	storeState.CondBr(isa.BEQ, cnd, "emit_insn", "next_node")

	nextNode := b.Block("next_node", 75)
	nextNode.OpImm(isa.ADD, tmp, cost, 1)
	nextNode.CondBr(isa.BNE, tmp, "walk", "done")

	done := b.Block("done", 1)
	done.Ret(acc)

	// Instruction emission: compilers do this through a helper, so model
	// the call/return machinery too.
	emit := b.Block("emit_insn", 25)
	emit.OpImm(isa.OR, val, acc, 1)
	emit.Call(ra, "emit_fn")

	emitFn := b.Block("emit_fn", 25)
	addr[b.MemCount()] = seqAddr("insns", regionOutput+1<<20, 8)
	emitFn.Store(isa.STW, sp, val, 0)
	addr[b.MemCount()] = seqAddr("insns2", regionOutput+2<<20, 8)
	emitFn.Store(isa.STW, sp, cost, 8)
	emitFn.RetTo(ra, "next_node")

	prog := b.MustFinish()
	return &Benchmark{
		Name:        "gcc1",
		Description: "compiler-like integer code: pointer-chasing tree walk, 50/50 tag dispatch, short blocks, heavy stores",
		Program:     prog,
		NewDriver: func(seed int64) trace.Driver {
			d := newDriver(seed)
			d.choose = map[string]func(*driver, []string) string{
				"walk":        withProb(0.56, "expr", "leaf"),
				"expr":        withProb(0.55, "binop", "unop"),
				"binop":       withProb(0.45, "fold_mul", "fold"),
				"store_state": withProb(0.25, "emit_insn", "next_node"),
				"emit_fn":     withProb(1.0, "next_node", "next_node"),
				"next_node":   withProb(1.0, "walk", "done"),
			}
			d.addr = addr
			return d
		},
	}
}
