package workload

import (
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
)

func TestAllBenchmarksValidate(t *testing.T) {
	bs := All()
	if len(bs) != 6 {
		t.Fatalf("benchmarks = %d, want 6", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if err := b.Program.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if names[b.Name] {
			t.Errorf("duplicate benchmark name %s", b.Name)
		}
		names[b.Name] = true
		if b.Description == "" {
			t.Errorf("%s: missing description", b.Name)
		}
	}
	for _, want := range []string{"compress", "doduc", "gcc1", "ora", "su2cor", "tomcatv"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
		if ByName(want) == nil {
			t.Errorf("ByName(%s) = nil", want)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

func TestDriversAreDeterministic(t *testing.T) {
	for _, b := range All() {
		c1 := trace.Profile(b.Program, b.NewDriver(1), 20000)
		c2 := trace.Profile(b.Program, b.NewDriver(1), 20000)
		for name, n := range c1 {
			if c2[name] != n {
				t.Errorf("%s: block %s counts differ across identical seeds: %d vs %d", b.Name, name, n, c2[name])
			}
		}
	}
}

func TestDriversRunForever(t *testing.T) {
	// Drivers never terminate on their own; profiling must hit the cap.
	for _, b := range All() {
		total := int64(0)
		for _, n := range trace.Profile(b.Program, b.NewDriver(1), 5000) {
			total += n
		}
		if total < 100 {
			t.Errorf("%s: only %d blocks executed under a 5000-instruction cap", b.Name, total)
		}
	}
}

func TestProfileReachesHotBlocks(t *testing.T) {
	// Every block with a large static estimate-by-design must actually be
	// hot under the driver: the hottest block must dominate the entry.
	for _, b := range All() {
		counts := trace.Profile(b.Program, b.NewDriver(2), 50000)
		var max int64
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		if max < 100*counts[b.Program.Entry] {
			t.Errorf("%s: hottest block ran %d times vs entry %d; loops not looping", b.Name, max, counts[b.Program.Entry])
		}
	}
}

// compile runs the full static pipeline for one benchmark.
func compile(t *testing.T, b *Benchmark, clustered bool, seed int64) *isa.Program {
	t.Helper()
	trace.Profile(b.Program, b.NewDriver(seed), 50000)
	var part *partition.Result
	if clustered {
		part = partition.Local{}.Partition(b.Program)
	}
	alloc, err := regalloc.Allocate(b.Program, part, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         clustered,
		OtherClusterSpill: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return mp
}

func TestFullPipelineBothModes(t *testing.T) {
	for _, b := range All() {
		for _, clustered := range []bool{false, true} {
			mp := compile(t, b, clustered, 7)
			gen, err := trace.NewGenerator(mp, b.NewDriver(7), 5000)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			cfg := core.DualCluster4Way()
			cfg.MaxCycles = 2_000_000
			p, err := core.New(cfg, gen)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			stats, err := p.Run()
			if err != nil {
				t.Fatalf("%s clustered=%v: %v", b.Name, clustered, err)
			}
			if stats.Stop != core.StopTraceEnd {
				t.Fatalf("%s clustered=%v: did not drain: %v", b.Name, clustered, stats)
			}
			if stats.Instructions < 4900 {
				t.Errorf("%s clustered=%v: retired %d of ~5000", b.Name, clustered, stats.Instructions)
			}
			if ipc := stats.IPC(); ipc <= 0.05 || ipc > 8 {
				t.Errorf("%s clustered=%v: implausible IPC %.3f", b.Name, clustered, ipc)
			}
		}
	}
}

func TestInstructionMixes(t *testing.T) {
	// Broad-brush checks that each workload has the character it claims.
	mix := func(b *Benchmark) map[isa.Class]float64 {
		mp := compile(t, b, false, 3)
		gen, err := trace.NewGenerator(mp, b.NewDriver(3), 30000)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[isa.Class]float64{}
		total := 0.0
		for {
			e, ok := gen.Next()
			if !ok {
				break
			}
			counts[e.Instr.Op.Class()]++
			total++
		}
		for k := range counts {
			counts[k] /= total
		}
		return counts
	}

	fp := func(m map[isa.Class]float64) float64 { return m[isa.ClassFPDiv] + m[isa.ClassFPOther] }
	memf := func(m map[isa.Class]float64) float64 { return m[isa.ClassLoad] + m[isa.ClassStore] }

	if m := mix(ByName("compress")); fp(m) != 0 || m[isa.ClassControl] < 0.1 {
		t.Errorf("compress mix off: fp=%.2f ctrl=%.2f (want integer-only, branchy)", fp(m), m[isa.ClassControl])
	}
	if m := mix(ByName("ora")); fp(m) < 0.4 || memf(m) > 0.05 {
		t.Errorf("ora mix off: fp=%.2f mem=%.2f (want FP-dominant, near-zero memory)", fp(m), memf(m))
	}
	if m := mix(ByName("ora")); m[isa.ClassFPDiv] < 0.08 {
		t.Errorf("ora divide fraction %.3f, want ≥ 0.08", m[isa.ClassFPDiv])
	}
	if m := mix(ByName("su2cor")); memf(m) < 0.3 || fp(m) < 0.2 {
		t.Errorf("su2cor mix off: mem=%.2f fp=%.2f (want streaming FP)", memf(m), fp(m))
	}
	if m := mix(ByName("gcc1")); m[isa.ClassControl] < 0.15 || fp(m) != 0 {
		t.Errorf("gcc1 mix off: ctrl=%.2f fp=%.2f (want branchy integer)", m[isa.ClassControl], fp(m))
	}
	if m := mix(ByName("tomcatv")); fp(m) < 0.35 || memf(m) < 0.25 {
		t.Errorf("tomcatv mix off: fp=%.2f mem=%.2f", fp(m), memf(m))
	}
	if m := mix(ByName("doduc")); fp(m) < 0.4 || m[isa.ClassControl] < 0.08 {
		t.Errorf("doduc mix off: fp=%.2f ctrl=%.2f", fp(m), m[isa.ClassControl])
	}
}

func TestMemoryLocalityDiffers(t *testing.T) {
	// compress must miss in the data cache far more than ora.
	runOne := func(b *Benchmark) core.Stats {
		mp := compile(t, b, false, 11)
		gen, err := trace.NewGenerator(mp, b.NewDriver(11), 30000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.SingleCluster8Way()
		cfg.MaxCycles = 5_000_000
		p, err := core.New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	c, o := runOne(ByName("compress")), runOne(ByName("ora"))
	if mr := c.DCache.MissRate(); mr < 0.2 {
		t.Errorf("compress dcache miss rate %.3f, want hash-table-hostile (≥ 0.2)", mr)
	}
	// Ora touches memory only at init/exit: its per-instruction data
	// traffic must be negligible (its handful of cold accesses all miss,
	// so the rate itself is uninformative).
	if perIns := float64(o.DCache.Accesses) / float64(o.Instructions); perIns > 0.01 {
		t.Errorf("ora data accesses per instruction = %.4f, want ~0", perIns)
	}
}

func TestBranchPredictabilityDiffers(t *testing.T) {
	mispred := func(b *Benchmark) float64 {
		mp := compile(t, b, false, 13)
		gen, err := trace.NewGenerator(mp, b.NewDriver(13), 40000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.SingleCluster8Way()
		cfg.MaxCycles = 5_000_000
		p, err := core.New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats.MispredictRate()
	}
	g, s := mispred(ByName("gcc1")), mispred(ByName("su2cor"))
	if g < 0.05 {
		t.Errorf("gcc1 mispredict rate %.3f, want branchy-unpredictable (≥ 0.05)", g)
	}
	if s > 0.02 {
		t.Errorf("su2cor mispredict rate %.3f, want near-perfect loops", s)
	}
	if g <= s {
		t.Errorf("gcc1 (%.3f) must mispredict more than su2cor (%.3f)", g, s)
	}
}

func TestGlobalRegistersCarrySPandGP(t *testing.T) {
	// Every workload designates exactly its stack/global pointers as
	// global candidates (§3.1 step 3).
	for _, b := range All() {
		var globals []string
		for _, v := range b.Program.Values {
			if v.GlobalCandidate {
				globals = append(globals, v.Name)
			}
		}
		if len(globals) == 0 || len(globals) > 2 {
			t.Errorf("%s: global candidates %v, want SP (and GP)", b.Name, globals)
		}
	}
}

func TestSpillCodeAppearsUnderClusteredAllocation(t *testing.T) {
	// The clustered allocator halves each cluster's register supply; at
	// least one workload should demote or spill, and all must still lower.
	sawPressure := false
	for _, b := range All() {
		trace.Profile(b.Program, b.NewDriver(5), 50000)
		part := partition.Local{}.Partition(b.Program)
		alloc, err := regalloc.Allocate(b.Program, part, regalloc.Config{
			Assignment:        isa.DefaultAssignment(),
			Clustered:         true,
			OtherClusterSpill: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if alloc.Spilled > 0 || alloc.Demoted > 0 {
			sawPressure = true
		}
	}
	_ = sawPressure // pressure is workload-dependent; reaching here means all allocated
}

var sink *il.Program

func BenchmarkBuildAllWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range All() {
			sink = w.Program
		}
	}
}
