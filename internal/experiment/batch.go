package experiment

// This file is the batched half of the execution kernel: materialized
// trace artifacts cached next to compiles in the run memo, and
// CachedRunBatch — N machine configurations of one binary stepped over the
// shared artifact by core.RunBatch. Sweep cells that share a (workload,
// seed, budget) therefore share one trace-generation walk and recycle
// simulation storage between members, instead of paying both per cell.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"multicluster/internal/core"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

// artifactMaxInstrs caps the budget a trace is materialized at. An
// artifact costs ~9 bytes per dynamic instruction; past this cap runs fall
// back to live generation rather than holding tens of megabytes resident.
const artifactMaxInstrs = 2_000_000

// artifactCacheBound bounds how many artifacts stay resident in the run
// memo; the least recently used is forgotten (and regenerated on demand if
// a later run needs it again).
const artifactCacheBound = 32

// maxBatch caps how many sibling configurations one batch owner simulates
// inline. Larger groups split into several batches, each still sharing the
// cached artifact.
const maxBatch = 16

// traceKey addresses a materialized trace artifact: everything that
// determines the dynamic stream — the compiled binary (whose key carries
// the workload, seed, and profile budget) plus the instruction budget.
type traceKey struct {
	Kind    string     `json:"kind"` // "trace"
	Compile compileKey `json:"compile"`
	Instrs  int64      `json:"instructions"`
}

// traceGenerations counts full trace-generation walks, process-wide.
var traceGenerations atomic.Int64

// TraceGenerations returns how many trace-generation walks (artifact
// materializations) the process has performed — the observable behind "the
// trace is generated once per (workload, seed, budget), not once per
// cell", which the batching tests and benchmarks assert on.
func TraceGenerations() int64 { return traceGenerations.Load() }

// artifactLRU orders resident artifact keys, most recently used last, so
// the memo holds at most artifactCacheBound artifacts.
var artifactLRU struct {
	mu   sync.Mutex
	keys []string
}

// touchArtifact marks key most recently used and evicts beyond the bound.
func touchArtifact(key string) {
	l := &artifactLRU
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, k := range l.keys {
		if k == key {
			copy(l.keys[i:], l.keys[i+1:])
			l.keys[len(l.keys)-1] = key
			return
		}
	}
	l.keys = append(l.keys, key)
	for len(l.keys) > artifactCacheBound {
		runMemo.Forget(l.keys[0])
		l.keys = append(l.keys[:0], l.keys[1:]...)
	}
}

// cachedArtifact returns the materialized trace for (binary, budget),
// generating it at most once per key process-wide. A nil artifact with a
// nil error means the budget exceeds artifactMaxInstrs and the caller
// should fall back to a live generator.
func cachedArtifact(benchName string, ck compileKey, mp *isa.Program, opts Options) (*trace.Artifact, error) {
	if opts.Instructions > artifactMaxInstrs {
		return nil, nil
	}
	key := hashKey(traceKey{Kind: "trace", Compile: ck, Instrs: opts.Instructions})
	av, err, _ := runMemo.Do(key, func() (any, error) {
		traceGenerations.Add(1)
		b := workload.ByName(benchName)
		art, err := trace.Materialize(mp, b.NewDriver(opts.Seed), opts.Instructions)
		if err != nil {
			return nil, err
		}
		return art, nil
	})
	if err != nil {
		return nil, err
	}
	touchArtifact(key)
	return av.(*trace.Artifact), nil
}

// BatchGroupKey returns the content key of the trace artifact a run of
// (benchmark, scheduler, options) feeds from. Runs with equal keys share
// one compiled binary and one materialized trace, so a sweep batches them
// together. The empty string means the run cannot batch (unknown
// benchmark/scheduler, or a budget beyond the materialization cap).
func BatchGroupKey(benchName, schedName string, opts Options) string {
	opts = opts.withDefaults()
	if opts.Instructions > artifactMaxInstrs {
		return ""
	}
	if workload.ByName(benchName) == nil {
		return ""
	}
	if _, err := SchedulerByName(schedName, opts.Window); err != nil {
		return ""
	}
	ck := buildCompileKey(benchName, schedName, opts)
	return hashKey(traceKey{Kind: "trace", Compile: ck, Instrs: opts.Instructions})
}

// CachedRunBatch is CachedRun over N machine configurations of one binary.
// Results are identical to N CachedRun calls (same memo keys, same
// byte-identical statistics) but cheaper: all members feed from one cached
// trace artifact, and members simulated together recycle their dynamic
// instruction storage (see core.RunBatch). Configurations already resident
// in the run memo are served from it, so interleaving CachedRun and
// CachedRunBatch never recomputes.
//
// opts.Probes, when set, observes every member simulated by this call —
// including members computed on behalf of a later configuration in cfgs —
// exactly as it observes every cell a sweep computes.
func CachedRunBatch(benchName, schedName string, cfgs []core.Config, opts Options) ([]RunResult, error) {
	opts = opts.withDefaults()
	if len(cfgs) == 0 {
		return nil, nil
	}
	if workload.ByName(benchName) == nil {
		return nil, fmt.Errorf("experiment: unknown benchmark %q", benchName)
	}
	if _, err := SchedulerByName(schedName, opts.Window); err != nil {
		return nil, err
	}
	ck := buildCompileKey(benchName, schedName, opts)
	bin, err := cachedCompile(benchName, schedName, ck, opts)
	if err != nil {
		return nil, err
	}

	full := make([]core.Config, len(cfgs))
	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.MaxCycles == 0 {
			cfg.MaxCycles = opts.Instructions * 40
		}
		full[i] = cfg
		keys[i] = hashKey(runKey{Kind: "run", Compile: ck, Machine: cfg, Instrs: opts.Instructions})
	}

	results := make([]RunResult, len(cfgs))
	for i := range full {
		i := i
		rv, err, _ := runMemo.Do(keys[i], func() (any, error) {
			return computeBatchFrom(i, full, keys, benchName, ck, bin, opts)
		})
		if err != nil {
			return nil, err
		}
		results[i] = RunResult{
			Stats:   rv.(core.Stats),
			Spilled: bin.alloc.Spilled,
			Demoted: bin.alloc.Demoted,
		}
	}
	return results, nil
}

// computeBatchFrom computes the run-memo entry for cfgs[i], batching in
// every sibling configuration not yet resident (capped at maxBatch) so one
// core.RunBatch pass fills their entries too. It runs under the memo's
// single flight for keys[i]; sibling results are Seeded, which is a no-op
// for any key another flight claimed in the meantime — at worst a sibling
// is computed twice, never wrongly.
func computeBatchFrom(i int, cfgs []core.Config, keys []string, benchName string, ck compileKey, bin compiledBinary, opts Options) (any, error) {
	art, err := cachedArtifact(benchName, ck, bin.mp, opts)
	if err != nil {
		return nil, err
	}
	if art == nil {
		// Budget beyond the materialization cap: no shared artifact to
		// batch over, simulate this member alone from a live generator.
		return simulateCell(benchName, ck, bin, cfgs[i], opts)
	}

	members := []int{i}
	seen := map[string]bool{keys[i]: true}
	for j := range cfgs {
		if len(members) >= maxBatch {
			break
		}
		if seen[keys[j]] {
			continue
		}
		if _, _, ok := runMemo.Get(keys[j]); ok {
			continue
		}
		seen[keys[j]] = true
		members = append(members, j)
	}

	mcfgs := make([]core.Config, len(members))
	for k, j := range members {
		mcfgs[k] = cfgs[j]
	}
	stats, err := core.RunBatchProbes(mcfgs, art, opts.Probes)
	if err != nil {
		// A sibling aborted the batch; recover this member alone so its
		// entry reflects only its own outcome.
		s, serr := SimulateReader(art.NewReader(), benchName, cfgs[i], opts)
		if serr != nil {
			return nil, serr
		}
		return s, nil
	}
	for k, j := range members[1:] {
		if s := stats[k+1]; s.Stop == core.StopTraceEnd {
			runMemo.Seed(keys[j], s)
		}
	}
	if stats[0].Stop != core.StopTraceEnd {
		return nil, fmt.Errorf("%s: simulation hit the cycle limit (%v)", benchName, stats[0])
	}
	return stats[0], nil
}
