package experiment

import (
	"fmt"
	"strings"

	"multicluster/internal/cycletime"
	"multicluster/internal/isa"
)

// FormatTable1 renders the configuration table of the paper (issue rules
// and functional-unit latencies).
func FormatTable1() string {
	var b strings.Builder
	s, d := isa.SingleClusterRules(), isa.DualClusterRules()
	fmt.Fprintln(&b, "Table 1: instruction-issue rules and functional-unit latencies")
	fmt.Fprintln(&b, "                          all  int-mul  int-other  fp-all  fp-div  fp-other  ld/st  ctrl")
	fmt.Fprintf(&b, "  single, per cycle      %4d  %7d  %9d  %6d  %6d  %8d  %5d  %4d\n",
		s.All, s.IntMul, s.IntOther, s.FPAll, s.FPDiv, s.FPOther, s.Mem, s.Ctrl)
	fmt.Fprintf(&b, "  dual, per cluster      %4d  %7d  %9d  %6d  %6d  %8d  %5d  %4d\n",
		d.All, d.IntMul, d.IntOther, d.FPAll, d.FPDiv, d.FPOther, d.Mem, d.Ctrl)
	fmt.Fprintf(&b, "  latency (cycles)        -   %7d  %9d    -    %6s  %8d  %5s  %4d\n",
		isa.MUL.Latency(), isa.ADD.Latency(), "8/16", isa.FADD.Latency(), "1*", isa.BR.Latency())
	fmt.Fprintln(&b, "  * plus a single load-delay slot; the FP divider is not pipelined")
	return b.String()
}

// FormatTable2 renders rows in the paper's layout: percentage speedup
// ratios for the unscheduled ("none") and local-scheduler binaries.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: speedup ratios 100 - 100*(C_dual/C_single); negative = slowdown")
	fmt.Fprintln(&b, "  benchmark      none    local")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s  %+5.0f    %+5.0f\n", r.Benchmark, r.NonePct, r.LocalPct)
	}
	return b.String()
}

// FormatTable2Detail adds the secondary statistics the paper's analysis
// leans on: dual-distribution fraction, replays, mispredict and cache
// rates, and issue disorder.
func FormatTable2Detail(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Per-run detail (dual-cluster machine):")
	fmt.Fprintln(&b, "  benchmark     binary  cycles      IPC    dual%%  replays  mispred%%  dmiss%%  disorder")
	for _, r := range rows {
		for _, c := range []struct {
			name  string
			stats interface {
				IPC() float64
				DualFraction() float64
				MispredictRate() float64
				MeanDisorder() float64
			}
			cycles  int64
			replays int64
			dmiss   float64
		}{
			{"single", r.SingleStats, r.SingleCycles, r.SingleStats.Replays, r.SingleStats.DCache.MissRate()},
			{"none", r.NoneStats, r.DualNoneCycles, r.NoneStats.Replays, r.NoneStats.DCache.MissRate()},
			{"local", r.LocalStats, r.DualLocalCycles, r.LocalStats.Replays, r.LocalStats.DCache.MissRate()},
		} {
			fmt.Fprintf(&b, "  %-12s  %-6s  %8d  %5.2f  %6.1f  %7d  %8.2f  %6.2f  %8.2f\n",
				r.Benchmark, c.name, c.cycles, c.stats.IPC(), 100*c.stats.DualFraction(),
				c.replays, 100*c.stats.MispredictRate(), 100*c.dmiss, c.stats.MeanDisorder())
		}
	}
	return b.String()
}

// CycleTimeReport reproduces the §4.2 analysis: the worst-case slowdown
// across the local-scheduler rows, the clock reduction needed to break
// even, the Palacharla anchors, and the per-benchmark net run-time speedup
// at both feature sizes.
func CycleTimeReport(rows []Table2Row) string {
	var b strings.Builder
	worst := 1.0
	for _, r := range rows {
		if ratio := r.CycleRatio(true); ratio > worst {
			worst = ratio
		}
	}
	m35, m18 := cycletime.Process035(), cycletime.Process018()
	fmt.Fprintln(&b, "Cycle-time analysis (Palacharla-style model, 4-issue cluster vs 8-issue single):")
	fmt.Fprintf(&b, "  worst-case local-scheduler slowdown: %.0f%% more cycles (ratio %.2f)\n", 100*(worst-1), worst)
	fmt.Fprintf(&b, "  clock-period reduction needed to break even: %.0f%%\n", 100*cycletime.RequiredClockReduction(worst))
	fmt.Fprintf(&b, "  0.35um: 4-issue %.0f ps, 8-issue %.0f ps (+%.0f%%)\n",
		m35.CycleTimePs(4), m35.CycleTimePs(8), 100*m35.WidthIncrease(4, 8))
	fmt.Fprintf(&b, "  0.18um: 4-issue %.0f ps, 8-issue %.0f ps (+%.0f%%)\n",
		m18.CycleTimePs(4), m18.CycleTimePs(8), 100*m18.WidthIncrease(4, 8))
	if um := cycletime.CrossoverFeatureUm(worst, 4, 8, 0.10, 0.50); um > 0 {
		fmt.Fprintf(&b, "  break-even feature size for the worst case: %.2f um\n", um)
	}
	fmt.Fprintln(&b, "  net run-time speedup of the dual-cluster machine (local scheduler):")
	fmt.Fprintln(&b, "    benchmark      @0.35um   @0.18um")
	for _, r := range rows {
		ratio := r.CycleRatio(true)
		fmt.Fprintf(&b, "    %-12s  %8.2fx  %8.2fx\n",
			r.Benchmark, m35.NetSpeedup(ratio, 4, 8), m18.NetSpeedup(ratio, 4, 8))
	}
	return b.String()
}
