package experiment

import (
	"encoding/json"
	"testing"

	"multicluster/internal/core"
	"multicluster/internal/workload"
)

// TestWithDefaultsClampsProfileBudget is the regression test for the
// profile-budget derivation: Instructions/6 floors to zero for budgets
// under six, and zero means *unlimited* to trace.Profile — before the
// clamp, a 3-instruction run profiled the driver's whole path.
func TestWithDefaultsClampsProfileBudget(t *testing.T) {
	for _, instrs := range []int64{1, 2, 3, 4, 5} {
		o := (Options{Instructions: instrs}).withDefaults()
		if o.ProfileInstructions != 1 {
			t.Errorf("Instructions=%d: ProfileInstructions = %d, want 1", instrs, o.ProfileInstructions)
		}
	}
	if o := (Options{Instructions: 6}).withDefaults(); o.ProfileInstructions != 1 {
		t.Errorf("Instructions=6: ProfileInstructions = %d, want 1", o.ProfileInstructions)
	}
	if o := (Options{Instructions: 60_000}).withDefaults(); o.ProfileInstructions != 10_000 {
		t.Errorf("Instructions=60000: ProfileInstructions = %d, want 10000", o.ProfileInstructions)
	}
	// An explicit budget is never rewritten.
	if o := (Options{Instructions: 3, ProfileInstructions: 7}).withDefaults(); o.ProfileInstructions != 7 {
		t.Errorf("explicit ProfileInstructions rewritten to %d", o.ProfileInstructions)
	}
}

// batchMachines is the four-machine grid the batch tests step over.
func batchMachines() []core.Config {
	return []core.Config{
		core.SingleCluster8Way(),
		core.DualCluster4Way(),
		core.SingleCluster4Way(),
		core.DualCluster2Way(),
	}
}

// TestCachedRunBatchMatchesUncached proves a batch over four machines is
// byte-identical to the uncached Compile/Simulate path for every member.
func TestCachedRunBatchMatchesUncached(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 424242 // private key space for this test

	cfgs := batchMachines()
	batched, err := CachedRunBatch("ora", "none", cfgs, opts)
	if err != nil {
		t.Fatalf("CachedRunBatch: %v", err)
	}
	if len(batched) != len(cfgs) {
		t.Fatalf("got %d results, want %d", len(batched), len(cfgs))
	}

	b := workload.ByName("ora")
	mp, _, err := Compile(b, nil, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i, cfg := range cfgs {
		direct, err := Simulate(mp, b, cfg, opts)
		if err != nil {
			t.Fatalf("Simulate member %d: %v", i, err)
		}
		want, _ := json.Marshal(direct)
		got, _ := json.Marshal(batched[i].Stats)
		if string(got) != string(want) {
			t.Errorf("member %d: batched stats differ from uncached path:\n batch: %s\ndirect: %s", i, got, want)
		}
	}
}

// TestCachedRunBatchSharesMemoWithCachedRun proves batch and solo paths
// address the same cache entries: a batch fills the memo for every member,
// so later CachedRun calls are pure hits — and a pre-existing solo entry
// is served to the batch, not recomputed.
func TestCachedRunBatchSharesMemoWithCachedRun(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 434343 // private key space for this test

	cfgs := batchMachines()
	// Pre-seed one member through the solo path.
	solo, err := CachedRun("ora", "none", cfgs[1], opts)
	if err != nil {
		t.Fatalf("CachedRun: %v", err)
	}

	_, m0 := RunCacheStats()
	batched, err := CachedRunBatch("ora", "none", cfgs, opts)
	if err != nil {
		t.Fatalf("CachedRunBatch: %v", err)
	}
	_, m1 := RunCacheStats()
	// The batch adds exactly one computation: the batch owner's run (which
	// covers the two remaining members by seeding). Compile and trace are
	// hits from the solo run.
	if got := m1 - m0; got != 1 {
		t.Fatalf("batch after solo executed %d computations, want 1", got)
	}
	want, _ := json.Marshal(solo.Stats)
	got, _ := json.Marshal(batched[1].Stats)
	if string(got) != string(want) {
		t.Error("batch result for the pre-seeded member differs from the solo run")
	}

	_, m2 := RunCacheStats()
	for i, cfg := range cfgs {
		r, err := CachedRun("ora", "none", cfg, opts)
		if err != nil {
			t.Fatalf("CachedRun member %d: %v", i, err)
		}
		want, _ := json.Marshal(batched[i].Stats)
		got, _ := json.Marshal(r.Stats)
		if string(got) != string(want) {
			t.Errorf("member %d: solo result differs from batch", i)
		}
	}
	if _, m3 := RunCacheStats(); m3 != m2 {
		t.Errorf("solo runs after a batch recomputed %d entries, want 0", m3-m2)
	}
}

// TestTraceGeneratedOncePerArtifact is the generation-count assertion of
// the issue: across a batch over four machines plus repeated solo runs of
// the same (workload, seed, budget), the trace is generated exactly once.
func TestTraceGeneratedOncePerArtifact(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 454545 // private key space for this test

	before := TraceGenerations()
	if _, err := CachedRunBatch("compress", "none", batchMachines(), opts); err != nil {
		t.Fatalf("CachedRunBatch: %v", err)
	}
	for _, cfg := range batchMachines() {
		if _, err := CachedRun("compress", "none", cfg, opts); err != nil {
			t.Fatalf("CachedRun: %v", err)
		}
	}
	if got := TraceGenerations() - before; got != 1 {
		t.Errorf("trace generated %d times for one (workload, seed, budget), want exactly 1", got)
	}
}

// TestBatchGroupKey pins the grouping contract: same binary and budget
// batch together, anything that changes the trace separates, and
// unbatchable specs return the empty key.
func TestBatchGroupKey(t *testing.T) {
	opts := shortOpts()
	base := BatchGroupKey("ora", "none", opts)
	if base == "" {
		t.Fatal("batchable spec returned an empty group key")
	}
	if got := BatchGroupKey("ora", "none", opts); got != base {
		t.Error("identical specs got different group keys")
	}
	if got := BatchGroupKey("ora", "local", opts); got == base {
		t.Error("different scheduler shares a group key")
	}
	other := opts
	other.Seed++
	if got := BatchGroupKey("ora", "none", other); got == base {
		t.Error("different seed shares a group key")
	}
	big := opts
	big.Instructions = artifactMaxInstrs + 1
	if got := BatchGroupKey("ora", "none", big); got != "" {
		t.Error("budget beyond the materialization cap still grouped")
	}
	if got := BatchGroupKey("nope", "none", opts); got != "" {
		t.Error("unknown benchmark got a group key")
	}
}
