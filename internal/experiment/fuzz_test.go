package experiment

import (
	"fmt"
	"math/rand"
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
)

// randomProgram builds a structurally-valid random IL program: a chain of
// blocks with fall-throughs, conditional branches (taken target anywhere),
// and back edges, over a random population of int and FP live ranges.
func randomProgram(rng *rand.Rand) *il.Program {
	b := il.NewBuilder(fmt.Sprintf("fuzz%d", rng.Int63()))
	sp := b.GlobalValue("SP", il.KindInt)

	nInt := 3 + rng.Intn(20)
	nFP := rng.Intn(12)
	ints := make([]int, nInt)
	for i := range ints {
		ints[i] = b.Int(fmt.Sprintf("i%d", i))
	}
	fps := make([]int, nFP)
	for i := range fps {
		fps[i] = b.FP(fmt.Sprintf("f%d", i))
	}
	ri := func() int { return ints[rng.Intn(len(ints))] }
	rf := func() int { return fps[rng.Intn(len(fps))] }

	nBlocks := 2 + rng.Intn(8)
	names := make([]string, nBlocks)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}

	for bi := 0; bi < nBlocks; bi++ {
		blk := b.Block(names[bi], int64(1+rng.Intn(100)))
		// Seed every block with a definition so conditions are written
		// somewhere, then add random work.
		blk.Const(ri(), int64(rng.Intn(100)))
		for n := rng.Intn(8); n > 0; n-- {
			switch rng.Intn(8) {
			case 0, 1, 2:
				blk.Op(isa.ADD, ri(), ri(), ri())
			case 3:
				blk.Op(isa.MUL, ri(), ri(), ri())
			case 4:
				if nFP > 0 {
					blk.Op(isa.FMUL, rf(), rf(), rf())
				} else {
					blk.OpImm(isa.SUB, ri(), ri(), 1)
				}
			case 5:
				blk.Load(isa.LDW, ri(), sp, int64(rng.Intn(64)))
			case 6:
				blk.Store(isa.STW, sp, ri(), int64(rng.Intn(64)))
			case 7:
				if nFP > 0 {
					blk.Load(isa.LDF, rf(), sp, int64(rng.Intn(64)))
				} else {
					blk.OpImm(isa.SLL, ri(), ri(), 2)
				}
			}
		}
		switch {
		case bi == nBlocks-1:
			blk.Ret(ri())
		case rng.Intn(3) == 0:
			blk.FallTo(names[bi+1])
		default:
			// The taken target may be any block (including a back edge);
			// the fall-through must be the next block in layout.
			target := names[rng.Intn(nBlocks)]
			op := isa.BNE
			if rng.Intn(2) == 0 {
				op = isa.BEQ
			}
			blk.CondBr(op, ri(), target, names[bi+1])
		}
	}
	return b.MustFinish()
}

// randomWalkDriver follows CFG edges uniformly at random and supplies
// random (but seeded) addresses.
type randomWalkDriver struct {
	seed int64
	rng  *rand.Rand
}

func (d *randomWalkDriver) Reset() { d.rng = rand.New(rand.NewSource(d.seed)) }

func (d *randomWalkDriver) NextBlock(cur string, succs []string) (string, bool) {
	if len(succs) == 0 {
		return "", false
	}
	return succs[d.rng.Intn(len(succs))], true
}

func (d *randomWalkDriver) Addr(int) uint64 {
	return 0x100000 + uint64(d.rng.Intn(1<<18))*8
}

func TestFuzzWholePipeline(t *testing.T) {
	partitioners := []partition.Partitioner{
		partition.Local{}, partition.Hash{}, partition.RoundRobin{}, partition.Affinity{},
	}
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		prog := randomProgram(rng)
		driver := &randomWalkDriver{seed: int64(seed) * 77}
		trace.Profile(prog, driver, 3000)

		// Native allocation plus every partitioner must colour, verify,
		// lower, and simulate cleanly on both machines.
		modes := []struct {
			name string
			part partition.Partitioner
		}{{"native", nil}}
		for _, pt := range partitioners {
			modes = append(modes, struct {
				name string
				part partition.Partitioner
			}{pt.Name(), pt})
		}
		for _, mode := range modes {
			var pr *partition.Result
			clustered := mode.part != nil
			if clustered {
				pr = mode.part.Partition(prog)
				if err := pr.Validate(prog); err != nil {
					t.Fatalf("seed %d %s: %v", seed, mode.name, err)
				}
			}
			alloc, err := regalloc.Allocate(prog, pr, regalloc.Config{
				Assignment:        isa.DefaultAssignment(),
				Clustered:         clustered,
				OtherClusterSpill: true,
			})
			if err != nil {
				t.Fatalf("seed %d %s: allocate: %v", seed, mode.name, err)
			}
			if err := alloc.Verify(isa.DefaultAssignment(), clustered); err != nil {
				t.Fatalf("seed %d %s: verify: %v", seed, mode.name, err)
			}
			mp, err := codegen.Lower(alloc)
			if err != nil {
				t.Fatalf("seed %d %s: lower: %v", seed, mode.name, err)
			}
			for _, cfg := range []core.Config{core.SingleCluster8Way(), core.DualCluster4Way()} {
				cfg.MaxCycles = 2_000_000
				gen, err := trace.NewGenerator(mp, driver, 3000)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, mode.name, err)
				}
				p, err := core.New(cfg, gen)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, mode.name, err)
				}
				stats, err := p.Run()
				if err != nil {
					t.Fatalf("seed %d %s (clusters=%d): %v", seed, mode.name, cfg.Clusters, err)
				}
				if stats.Stop != core.StopTraceEnd {
					t.Fatalf("seed %d %s (clusters=%d): stuck: %v", seed, mode.name, cfg.Clusters, stats)
				}
				if stats.Instructions == 0 {
					t.Fatalf("seed %d %s: nothing retired", seed, mode.name)
				}
			}
		}
	}
}

func TestFuzzSingleClusterInvariantToAllocation(t *testing.T) {
	// On the single-cluster machine, register names are irrelevant: every
	// allocation of the same program must produce identical cycle counts.
	for seed := 0; seed < 8; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		prog := randomProgram(rng)
		driver := &randomWalkDriver{seed: int64(seed)}
		trace.Profile(prog, driver, 3000)

		var cycles []int64
		for _, pt := range []partition.Partitioner{nil, partition.Local{}, partition.RoundRobin{}} {
			var pr *partition.Result
			clustered := pt != nil
			if clustered {
				pr = pt.Partition(prog)
			}
			alloc, err := regalloc.Allocate(prog, pr, regalloc.Config{
				Assignment:        isa.DefaultAssignment(),
				Clustered:         clustered,
				OtherClusterSpill: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if alloc.Spilled > 0 {
				continue // spill code changes the instruction stream; skip
			}
			mp, err := codegen.Lower(alloc)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := trace.NewGenerator(mp, driver, 3000)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.SingleCluster8Way()
			cfg.MaxCycles = 2_000_000
			p, err := core.New(cfg, gen)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			cycles = append(cycles, stats.Cycles)
		}
		for i := 1; i < len(cycles); i++ {
			if cycles[i] != cycles[0] {
				t.Fatalf("seed %d: single-cluster cycles differ across allocations: %v", seed, cycles)
			}
		}
	}
}
