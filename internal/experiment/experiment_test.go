package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"multicluster/internal/core"
	"multicluster/internal/partition"
	"multicluster/internal/workload"
)

// fastOpts keeps unit-test runs quick while staying long enough for the
// predictor and caches to warm.
func fastOpts() Options {
	opts := DefaultOptions()
	opts.Instructions = 40_000
	opts.ProfileInstructions = 10_000
	return opts
}

func TestCompileBothModes(t *testing.T) {
	opts := fastOpts()
	for _, b := range workload.All() {
		if _, _, err := Compile(b, nil, opts); err != nil {
			t.Errorf("%s native: %v", b.Name, err)
		}
		if _, alloc, err := Compile(b, partition.Local{}, opts); err != nil {
			t.Errorf("%s local: %v", b.Name, err)
		} else if alloc.Prog == nil {
			t.Errorf("%s local: nil program", b.Name)
		}
	}
}

func TestTable2RowShape(t *testing.T) {
	opts := fastOpts()
	row, err := Table2Bench(workload.ByName("doduc"), opts)
	if err != nil {
		t.Fatal(err)
	}
	// The headline multicluster trends: the unscheduled binary slows down
	// on the dual-cluster machine, and the local scheduler recovers a
	// substantial part of that slowdown.
	if row.NonePct >= 0 {
		t.Errorf("doduc none = %+.1f%%, want a slowdown", row.NonePct)
	}
	if row.LocalPct <= row.NonePct {
		t.Errorf("local (%+.1f%%) must improve on none (%+.1f%%) for doduc", row.LocalPct, row.NonePct)
	}
	// Dual-distribution fraction must drop under the local scheduler.
	if row.LocalStats.DualFraction() >= row.NoneStats.DualFraction() {
		t.Errorf("local dual fraction %.2f not below none %.2f",
			row.LocalStats.DualFraction(), row.NoneStats.DualFraction())
	}
	// Consistency of the derived fields.
	if row.SingleCycles != row.SingleStats.Cycles || row.DualNoneCycles != row.NoneStats.Cycles {
		t.Error("cycle fields inconsistent with stats")
	}
	if r := row.CycleRatio(false); r < 1 {
		t.Errorf("none cycle ratio %.3f < 1 contradicts the slowdown", r)
	}
}

func TestTable2SingleClusterNeverDualDistributes(t *testing.T) {
	opts := fastOpts()
	row, err := Table2Bench(workload.ByName("compress"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.SingleStats.DualDist != 0 {
		t.Errorf("single-cluster run dual-distributed %d instructions", row.SingleStats.DualDist)
	}
	if row.NoneStats.DualDist == 0 {
		t.Error("the unscheduled binary should dual-distribute on the dual-cluster machine")
	}
}

func TestLocalSchedulerReducesDualEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full six-benchmark sweep")
	}
	opts := fastOpts()
	rows, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.LocalStats.DualFraction() > r.NoneStats.DualFraction()+1e-9 {
			t.Errorf("%s: local dual %.2f exceeds none %.2f", r.Benchmark,
				r.LocalStats.DualFraction(), r.NoneStats.DualFraction())
		}
		if r.NonePct > 1 {
			t.Errorf("%s: unscheduled binary sped up by %.1f%% on the dual machine", r.Benchmark, r.NonePct)
		}
	}
}

func TestReportsRender(t *testing.T) {
	t1 := FormatTable1()
	for _, frag := range []string{"single, per cycle", "dual, per cluster", "8/16"} {
		if !strings.Contains(t1, frag) {
			t.Errorf("Table 1 output missing %q:\n%s", frag, t1)
		}
	}
	rows := []Table2Row{{
		Benchmark:       "compress",
		SingleCycles:    100,
		DualNoneCycles:  114,
		DualLocalCycles: 94,
		NonePct:         -14,
		LocalPct:        +6,
	}}
	t2 := FormatTable2(rows)
	if !strings.Contains(t2, "compress") || !strings.Contains(t2, "-14") || !strings.Contains(t2, "+6") {
		t.Errorf("Table 2 output malformed:\n%s", t2)
	}
	ct := CycleTimeReport(rows)
	for _, frag := range []string{"0.35um", "0.18um", "net run-time speedup"} {
		if !strings.Contains(ct, frag) {
			t.Errorf("cycle-time report missing %q:\n%s", frag, ct)
		}
	}
	det := FormatTable2Detail(rows)
	if !strings.Contains(det, "replays") {
		t.Errorf("detail report missing replay column:\n%s", det)
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := speedupPct(100, 125); got != -25 {
		t.Errorf("speedupPct(100,125) = %v, want -25", got)
	}
	if got := speedupPct(100, 94); got != 6 {
		t.Errorf("speedupPct(100,94) = %v, want +6", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	d := o.withDefaults()
	if d.Instructions == 0 || d.ProfileInstructions == 0 {
		t.Error("defaults not applied")
	}
	if d.Single.Clusters != 1 || d.Dual.Clusters != 2 {
		t.Error("default configurations wrong")
	}
	if d.Single.MaxCycles == 0 || d.Dual.MaxCycles == 0 {
		t.Error("runaway guard not set")
	}
}

func TestDeterministicRuns(t *testing.T) {
	opts := fastOpts()
	b := workload.ByName("gcc1")
	r1, err := Table2Bench(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Table2Bench(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SingleCycles != r2.SingleCycles || r1.DualNoneCycles != r2.DualNoneCycles || r1.DualLocalCycles != r2.DualLocalCycles {
		t.Errorf("non-deterministic results: %+v vs %+v", r1, r2)
	}
}

func TestSimulateRejectsOverrun(t *testing.T) {
	opts := fastOpts()
	opts.Dual.MaxCycles = 10 // absurdly small: must be reported as an error
	b := workload.ByName("compress")
	mp, _, err := Compile(b, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(mp, b, opts.Dual, opts); err == nil {
		t.Error("hitting MaxCycles must surface as an error")
	}
}

func TestMasterPolicyAblation(t *testing.T) {
	// The alternate policy maximizes transfers; the majority policy must
	// dual-distribute no more than it.
	opts := fastOpts()
	b := workload.ByName("doduc")
	mp, _, err := Compile(b, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfgMaj := opts.withDefaults().Dual
	cfgAlt := cfgMaj
	cfgAlt.MasterSelect = core.MasterAlternate
	sMaj, err := Simulate(mp, b, cfgMaj, opts)
	if err != nil {
		t.Fatal(err)
	}
	sAlt, err := Simulate(mp, b, cfgAlt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sMaj.OperandForwards+sMaj.ResultForwards > sAlt.OperandForwards+sAlt.ResultForwards {
		t.Errorf("majority policy produced more transfers (%d) than alternate (%d)",
			sMaj.OperandForwards+sMaj.ResultForwards, sAlt.OperandForwards+sAlt.ResultForwards)
	}
}

func TestExportFormats(t *testing.T) {
	rows := []Table2Row{{
		Benchmark:       "compress",
		SingleCycles:    100,
		DualNoneCycles:  114,
		DualLocalCycles: 94,
		NonePct:         -14,
		LocalPct:        6,
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []RowExport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Benchmark != "compress" || decoded[0].NonePct != -14 {
		t.Errorf("decoded %+v", decoded)
	}

	buf.Reset()
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV round trip: %v", err)
	}
	if len(recs) != 2 || recs[1][0] != "compress" {
		t.Errorf("CSV records %v", recs)
	}

	buf.Reset()
	if err := WriteRows(&buf, rows, "text"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compress") {
		t.Error("text format missing data")
	}
	if err := WriteRows(&buf, rows, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestScenarioTimelinesContent(t *testing.T) {
	out := ScenarioTimelines()
	for _, frag := range []string{
		"scenario 2 (Figure 2)", "scenario 5 (Figure 5)",
		"forwards an operand", "suspends",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("scenario timelines missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "ERROR") {
		t.Errorf("scenario timelines contain an error:\n%s", out)
	}
}

func TestFigure6ReportContent(t *testing.T) {
	out := Figure6Report()
	for _, frag := range []string{"bb4", "global register", "assignment order"} {
		if !strings.Contains(out, frag) {
			t.Errorf("figure 6 report missing %q:\n%s", frag, out)
		}
	}
	// The paper's traversal order appears as numbered lines 1..5.
	if !strings.Contains(out, "1. bb4") || !strings.Contains(out, "5. bb2") {
		t.Errorf("traversal order not rendered:\n%s", out)
	}
}

func TestCompareAssignmentsShape(t *testing.T) {
	opts := fastOpts()
	cmp, err := CompareAssignments("doduc", opts)
	if err != nil {
		t.Fatal(err)
	}
	// The local scheduler chooses registers itself, so the local column is
	// scheme-insensitive to within a few percent; the none column may
	// differ arbitrarily.
	if d := cmp.EvenOdd.LocalPct - cmp.LowHigh.LocalPct; d > 6 || d < -6 {
		t.Errorf("local scheduler scheme-sensitive: even/odd %+.1f vs low/high %+.1f", cmp.EvenOdd.LocalPct, cmp.LowHigh.LocalPct)
	}
	if _, err := CompareAssignments("nope", opts); err == nil {
		t.Error("unknown benchmark accepted")
	}
	txt := FormatAssignmentComparison([]AssignmentComparison{cmp})
	if !strings.Contains(txt, "doduc") || !strings.Contains(txt, "low-high") {
		t.Errorf("comparison rendering:\n%s", txt)
	}
}

func TestFourWayOptionsShape(t *testing.T) {
	opts := FourWayOptions()
	if opts.Single.Rules.All != 4 || opts.Dual.Rules.All != 2 {
		t.Errorf("four-way study widths: single %d, dual %d", opts.Single.Rules.All, opts.Dual.Rules.All)
	}
	if opts.Single.QueueSize != opts.Dual.QueueSize*2 {
		t.Errorf("aggregate queue mismatch: %d vs 2×%d", opts.Single.QueueSize, opts.Dual.QueueSize)
	}
}

func TestPostScheduleOptionRuns(t *testing.T) {
	opts := fastOpts()
	opts.PostSchedule = true
	row, err := Table2Bench(workload.ByName("tomcatv"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.SingleCycles == 0 || row.DualLocalCycles == 0 {
		t.Fatalf("empty results: %+v", row)
	}
}
