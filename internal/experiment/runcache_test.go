package experiment

import (
	"encoding/json"
	"sync"
	"testing"

	"multicluster/internal/workload"
)

// shortOpts keeps cache tests fast.
func shortOpts() Options {
	opts := DefaultOptions()
	opts.Instructions = 20_000
	opts.ProfileInstructions = 5_000
	return opts
}

// TestCachedRunDeterministicAndDeduped proves the content-addressed cache
// returns the identical result for a repeated spec without recomputing,
// and that the cached result is byte-identical to the uncached
// Compile/Simulate path.
func TestCachedRunDeterministicAndDeduped(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 1234 // private key space for this test

	h0, m0 := RunCacheStats()
	first, err := CachedRun("compress", "local", opts.Dual, opts)
	if err != nil {
		t.Fatalf("CachedRun: %v", err)
	}
	_, m1 := RunCacheStats()
	if m1-m0 != 3 { // one compile + one trace artifact + one simulate
		t.Fatalf("first run executed %d computations, want 3", m1-m0)
	}

	second, err := CachedRun("compress", "local", opts.Dual, opts)
	if err != nil {
		t.Fatalf("CachedRun (repeat): %v", err)
	}
	h2, m2 := RunCacheStats()
	if m2 != m1 {
		t.Fatalf("repeat run recomputed (%d new misses)", m2-m1)
	}
	if h2-h0 != 2 {
		t.Fatalf("repeat run recorded %d hits, want 2", h2-h0)
	}

	// Byte-identical to the one-shot path.
	b := workload.ByName("compress")
	part, err := SchedulerByName("local", opts.Window)
	if err != nil {
		t.Fatal(err)
	}
	mp, _, err := Compile(b, part, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	direct, err := Simulate(mp, b, opts.Dual, opts)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	want, _ := json.Marshal(direct)
	got1, _ := json.Marshal(first.Stats)
	got2, _ := json.Marshal(second.Stats)
	if string(got1) != string(want) || string(got2) != string(want) {
		t.Fatalf("cached result differs from one-shot path:\n cached: %s\n direct: %s", got1, want)
	}
}

// TestCompareAssignmentsSharesBaseline proves the single-cluster baseline
// is computed once even though both assignment schemes need it: the
// low/high comparison adds only the runs that actually differ.
func TestCompareAssignmentsSharesBaseline(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 5678 // private key space for this test

	_, m0 := RunCacheStats()
	if _, err := CompareAssignments("ora", opts); err != nil {
		t.Fatalf("CompareAssignments: %v", err)
	}
	_, m1 := RunCacheStats()

	// Even/odd row: native compile, native trace artifact, one batched
	// simulation covering both native machines (the dual entry is seeded
	// from the batch, not recomputed), local compile, local trace, local
	// simulation = 6. Low/high row: the native compile and the
	// single-cluster simulation are assignment-independent only in effect,
	// not in key (the compile key includes the assignment), so it adds its
	// own 6; but the repeated single-cluster baseline *within* each row
	// costs nothing extra.
	perRow := int64(6)
	if got := m1 - m0; got != 2*perRow {
		t.Fatalf("CompareAssignments executed %d computations, want %d", got, 2*perRow)
	}

	// A second comparison over the same spec is entirely cache-served.
	if _, err := CompareAssignments("ora", opts); err != nil {
		t.Fatalf("CompareAssignments (repeat): %v", err)
	}
	_, m2 := RunCacheStats()
	if m2 != m1 {
		t.Fatalf("repeat comparison recomputed %d entries", m2-m1)
	}
}

// TestConcurrentIdenticalRunsSingleFlight submits the same spec from many
// goroutines and proves exactly one simulation ran.
func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	opts := shortOpts()
	opts.Seed = 9999 // private key space for this test

	_, m0 := RunCacheStats()
	const n = 12
	results := make([]RunResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = CachedRun("ora", "none", opts.Dual, opts)
		}(i)
	}
	wg.Wait()
	_, m1 := RunCacheStats()
	if got := m1 - m0; got != 3 {
		t.Fatalf("%d concurrent identical runs executed %d computations, want 3 (compile, trace, simulate)", n, got)
	}
	want, _ := json.Marshal(results[0].Stats)
	for i := 1; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		got, _ := json.Marshal(results[i].Stats)
		if string(got) != string(want) {
			t.Fatalf("run %d diverged", i)
		}
	}
}
