package experiment

import (
	"fmt"
	"sort"
	"strings"

	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/trace"
)

// scenario describes one of the §2.1 execution scenarios (Figures 2–5 plus
// the single-distribution base case) as a three-instruction micro-program.
type scenario struct {
	title   string
	comment string
	instrs  []isa.Instruction
}

func regOp(op isa.Op, dst, s1, s2 isa.Reg) isa.Instruction {
	return isa.Instruction{Op: op, Dst: dst, Src1: s1, Src2: s2, MemID: -1, BrID: -1}
}

func constOp(dst isa.Reg, imm int64) isa.Instruction {
	return isa.Instruction{Op: isa.LDA, Dst: dst, Src1: isa.RegZero, Imm: imm, MemID: -1, BrID: -1}
}

// scenarios builds the five micro-programs under the evaluation's even/odd
// register assignment (even → cluster 0, odd → cluster 1, SP global).
func scenarios() []scenario {
	r := func(n int) isa.Reg { return isa.IntReg(n) }
	return []scenario{
		{
			title:   "scenario 1: all registers in one cluster (single distribution)",
			comment: "r0 = r2 + r4, everything cluster 0",
			instrs:  []isa.Instruction{constOp(r(2), 1), constOp(r(4), 2), regOp(isa.ADD, r(0), r(2), r(4))},
		},
		{
			title:   "scenario 2 (Figure 2): source operand forwarded to the master",
			comment: "r0 = r2 + r1: r1 lives in cluster 1, the slave forwards it",
			instrs:  []isa.Instruction{constOp(r(2), 1), constOp(r(1), 2), regOp(isa.ADD, r(0), r(2), r(1))},
		},
		{
			title:   "scenario 3 (Figure 3): result forwarded to the destination's cluster",
			comment: "r1 = r0 + r2: sources cluster 0, destination cluster 1",
			instrs:  []isa.Instruction{constOp(r(0), 1), constOp(r(2), 2), regOp(isa.ADD, r(1), r(0), r(2))},
		},
		{
			title:   "scenario 4 (Figure 4): global destination",
			comment: "sp = r0 + r2: both clusters receive a copy of the result",
			instrs:  []isa.Instruction{constOp(r(0), 1), constOp(r(2), 2), regOp(isa.ADD, isa.RegSP, r(0), r(2))},
		},
		{
			title:   "scenario 5 (Figure 5): operand forward and global destination",
			comment: "sp = r1 + r0: the slave forwards r1, suspends, wakes for the result",
			instrs:  []isa.Instruction{constOp(r(1), 1), constOp(r(0), 2), regOp(isa.ADD, isa.RegSP, r(1), r(0))},
		},
	}
}

// ScenarioTimelines reproduces Figures 2–5: it executes each scenario's
// micro-program on the dual-cluster machine (perfect caches, so the
// timings are the pure pipeline events) and renders the event times of the
// dual-distributed add.
func ScenarioTimelines() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Execution scenarios (Figures 2-5): event cycles for the final add")
	cfg := core.DualCluster4Way()
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0
	for _, sc := range scenarios() {
		entries := make([]trace.Entry, len(sc.instrs))
		instrs := append([]isa.Instruction(nil), sc.instrs...)
		for i := range instrs {
			entries[i] = trace.Entry{Index: i, Instr: &instrs[i]}
		}
		tls, _, err := core.CollectTimeline(cfg, &trace.SliceReader{Entries: entries})
		if err != nil {
			fmt.Fprintf(&b, "  %s: ERROR %v\n", sc.title, err)
			continue
		}
		tl := tls[len(tls)-1]
		fmt.Fprintf(&b, "\n%s\n  %s\n", sc.title, sc.comment)
		fmt.Fprintf(&b, "  distributed cycle %d; master (cluster %d) issued %d, result %d",
			tl.Distributed, tl.MasterCluster, tl.MasterIssue, tl.Result)
		if tl.Dual {
			role := "receives the result"
			if tl.OperandForward && tl.ResultForward {
				role = "forwards an operand, suspends, wakes for the result"
			} else if tl.OperandForward {
				role = "forwards an operand"
			}
			fmt.Fprintf(&b, "; slave (cluster %d) issued %d (%s)", 1-tl.MasterCluster, tl.SlaveIssue, role)
		}
		fmt.Fprintf(&b, "; complete %d\n", tl.Done)
	}
	return b.String()
}

// Figure6Report reproduces the §3.5 walk-through: the block traversal order
// and the live-range assignment order of the local scheduler on the
// figure's control-flow graph.
func Figure6Report() string {
	var b strings.Builder
	p := il.Figure6()
	res := partition.Local{}.Partition(p)
	m := partition.Measure(p, res)

	fmt.Fprintln(&b, "Figure 6: local-scheduler walk-through")
	fmt.Fprintln(&b, "  block traversal order (execution estimate, then static size):")
	for i, blk := range partition.SortedBlocks(p) {
		fmt.Fprintf(&b, "    %d. %-4s (estimate %d, %d instructions)\n", i+1, blk.Name, blk.EstExec, len(blk.Instrs))
	}
	fmt.Fprintln(&b, "  live-range assignment order (bottom-up within each block):")
	for i, id := range res.Order {
		fmt.Fprintf(&b, "    %d. %-3s -> cluster %d\n", i+1, p.Value(id).Name, res.Of(id))
	}
	fmt.Fprintf(&b, "  S stays a global register; resulting distribution: %s\n", m)
	return b.String()
}

// FormatTimeline renders collected instruction timelines as a table, one
// row per retired instruction — a textual pipeline diagram in the style of
// the paper's scenario figures.
func FormatTimeline(tls []core.InstrTimeline) string {
	var b strings.Builder
	fmt.Fprintln(&b, "  seq  instruction             dist  m.issue  s.issue  result  done  placement")
	for _, tl := range tls {
		slave := "      -"
		place := fmt.Sprintf("cluster %d", tl.MasterCluster)
		if tl.Dual {
			slave = fmt.Sprintf("%7d", tl.SlaveIssue)
			role := "result recv"
			if tl.OperandForward && tl.ResultForward {
				role = "op fwd + suspend"
			} else if tl.OperandForward {
				role = "op fwd"
			}
			place = fmt.Sprintf("master c%d, slave c%d (%s)", tl.MasterCluster, 1-tl.MasterCluster, role)
		}
		fmt.Fprintf(&b, "  %3d  %-22s  %4d  %7d  %s  %6d  %4d  %s\n",
			tl.Seq, tl.Text, tl.Distributed, tl.MasterIssue, slave, tl.Result, tl.Done, place)
	}
	return b.String()
}

// FormatHotSpots renders the top-N static instructions of a profiled run:
// execution count, mean issue delay, dual-distribution share, and
// mispredict count, annotated with the disassembly and owning block.
func FormatHotSpots(mp *isa.Program, stats core.Stats, n int) string {
	type entry struct {
		idx int
		pc  core.PCStat
	}
	var es []entry
	for idx, pc := range stats.Profile {
		es = append(es, entry{idx, pc})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].pc.Count != es[j].pc.Count {
			return es[i].pc.Count > es[j].pc.Count
		}
		return es[i].idx < es[j].idx
	})
	if n > len(es) {
		n = len(es)
	}
	var b strings.Builder
	fmt.Fprintln(&b, "  count     delay  dual%  mispred  block  instruction")
	for _, e := range es[:n] {
		block := ""
		if bi := mp.BlockOf(e.idx); bi != nil {
			block = bi.Name
		}
		fmt.Fprintf(&b, "  %8d  %5.1f  %5.1f  %7d  %-6s %s\n",
			e.pc.Count,
			float64(e.pc.IssueDelaySum)/float64(e.pc.Count),
			100*float64(e.pc.DualCount)/float64(e.pc.Count),
			e.pc.Mispredicts, block, &mp.Instrs[e.idx])
	}
	return b.String()
}
