package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"multicluster/internal/conc"
	"multicluster/internal/core"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/workload"
)

// This file is the execution kernel shared by every campaign and by the
// sweep service: named registries for machines and schedulers, and a
// content-addressed, single-flight memo over Compile and Simulate. The
// memo is what makes repeated baselines free — Table2Bench simulates the
// native binary on two machines from one compile, and CompareAssignments
// recomputes its single-cluster baseline zero times instead of twice.

// MachineNames lists the named processor configurations, in menu order.
func MachineNames() []string { return []string{"single", "dual", "single4", "dual2"} }

// MachineByName resolves a named processor configuration: "single" (8-way
// single cluster), "dual" (2×4-way multicluster), "single4", "dual2".
func MachineByName(name string) (core.Config, error) {
	switch name {
	case "single":
		return core.SingleCluster8Way(), nil
	case "dual":
		return core.DualCluster4Way(), nil
	case "single4":
		return core.SingleCluster4Way(), nil
	case "dual2":
		return core.DualCluster2Way(), nil
	}
	return core.Config{}, fmt.Errorf("experiment: unknown machine %q (single, dual, single4, dual2)", name)
}

// SchedulerNames lists the named schedulers, in menu order.
func SchedulerNames() []string { return []string{"none", "local", "hash", "roundrobin", "affinity"} }

// SchedulerByName resolves a named scheduler. "none" is the native,
// cluster-oblivious allocation (a nil Partitioner).
func SchedulerByName(name string, window int) (partition.Partitioner, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "local":
		return partition.Local{Window: window}, nil
	case "hash":
		return partition.Hash{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "affinity":
		return partition.Affinity{}, nil
	}
	return nil, fmt.Errorf("experiment: unknown scheduler %q (none, local, hash, roundrobin, affinity)", name)
}

// RunResult is the outcome of one compile+simulate run: the simulation
// statistics plus the compile-side counters worth reporting across an API.
type RunResult struct {
	Stats   core.Stats
	Spilled int
	Demoted int
}

// runMemo memoizes compiled binaries and simulation results across every
// campaign in the process. Entries are immutable once computed: machine
// programs are read-only during simulation and Stats are value types.
var runMemo conc.Memo

// hashKey canonicalizes any JSON-encodable key structure into a hex
// content hash.
func hashKey(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Key structures are plain data; this cannot fail at runtime.
		panic(fmt.Sprintf("experiment: unhashable key: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// compileKey captures everything that determines the output of Compile.
type compileKey struct {
	Kind      string         `json:"kind"` // "compile"
	Benchmark string         `json:"benchmark"`
	Scheduler string         `json:"scheduler"`
	Window    int            `json:"window"`
	Seed      int64          `json:"seed"`
	Profile   int64          `json:"profile_instructions"`
	PostSched bool           `json:"post_schedule"`
	Assign    isa.Assignment `json:"assignment"`
}

// runKey captures everything that determines the output of Simulate: the
// compiled binary's key plus the machine and the dynamic budget.
type runKey struct {
	Kind    string      `json:"kind"` // "run"
	Compile compileKey  `json:"compile"`
	Machine core.Config `json:"machine"`
	Instrs  int64       `json:"instructions"`
}

type compiledBinary struct {
	mp    *isa.Program
	alloc *regalloc.Result
}

// buildCompileKey canonicalizes the compile-determining options into a
// compileKey. Only the local scheduler reads the window; it is folded out
// of the key for the others so equivalent specs share one entry.
func buildCompileKey(benchName, schedName string, opts Options) compileKey {
	window := opts.Window
	if schedName != "local" {
		window = 0
	}
	return compileKey{
		Kind:      "compile",
		Benchmark: benchName,
		Scheduler: schedName,
		Window:    window,
		Seed:      opts.Seed,
		Profile:   opts.ProfileInstructions,
		PostSched: opts.PostSchedule,
		Assign:    opts.Dual.Assignment,
	}
}

// cachedCompile returns the compiled binary for ck, compiling it once
// process-wide.
func cachedCompile(benchName, schedName string, ck compileKey, opts Options) (compiledBinary, error) {
	cv, err, _ := runMemo.Do(hashKey(ck), func() (any, error) {
		// A fresh benchmark instance per compile: profiling refreshes the
		// IL program's block estimates in place, so the instance must not
		// be shared with a concurrent compile.
		b := workload.ByName(benchName)
		part, err := SchedulerByName(schedName, opts.Window)
		if err != nil {
			return nil, err
		}
		mp, alloc, err := Compile(b, part, opts)
		if err != nil {
			return nil, err
		}
		return compiledBinary{mp: mp, alloc: alloc}, nil
	})
	if err != nil {
		return compiledBinary{}, err
	}
	return cv.(compiledBinary), nil
}

// CachedRun compiles the named benchmark under the named scheduler and
// simulates it on cfg, memoizing both steps in the process-wide
// content-addressed cache. Identical (benchmark, scheduler, machine,
// options) requests — concurrent or sequential — share one computation;
// results are byte-identical to the uncached Compile/Simulate path because
// the underlying simulation is deterministic in (spec, seed).
//
// When the budget permits, the simulation feeds from a materialized trace
// artifact cached next to the compile (see cachedArtifact), so every
// machine configuration of the same binary shares one trace-generation
// walk.
func CachedRun(benchName, schedName string, cfg core.Config, opts Options) (RunResult, error) {
	opts = opts.withDefaults()
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = opts.Instructions * 40
	}
	if workload.ByName(benchName) == nil {
		return RunResult{}, fmt.Errorf("experiment: unknown benchmark %q", benchName)
	}
	if _, err := SchedulerByName(schedName, opts.Window); err != nil {
		return RunResult{}, err
	}
	ck := buildCompileKey(benchName, schedName, opts)
	bin, err := cachedCompile(benchName, schedName, ck, opts)
	if err != nil {
		return RunResult{}, err
	}

	rv, err, _ := runMemo.Do(hashKey(runKey{Kind: "run", Compile: ck, Machine: cfg, Instrs: opts.Instructions}), func() (any, error) {
		return simulateCell(benchName, ck, bin, cfg, opts)
	})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Stats:   rv.(core.Stats),
		Spilled: bin.alloc.Spilled,
		Demoted: bin.alloc.Demoted,
	}, nil
}

// simulateCell computes one run-memo entry: artifact-fed when the budget
// permits materialization, generator-fed otherwise. The two paths are
// byte-identical.
func simulateCell(benchName string, ck compileKey, bin compiledBinary, cfg core.Config, opts Options) (any, error) {
	art, err := cachedArtifact(benchName, ck, bin.mp, opts)
	if err != nil {
		return nil, err
	}
	var stats core.Stats
	if art != nil {
		stats, err = SimulateReader(art.NewReader(), benchName, cfg, opts)
	} else {
		stats, err = Simulate(bin.mp, workload.ByName(benchName), cfg, opts)
	}
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// RunCacheStats reports the process-wide run-memo counters: how many
// compile/simulate computations were served from the cache versus executed.
func RunCacheStats() (hits, misses int64) {
	return runMemo.Hits(), runMemo.Misses()
}
