package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// RowExport is the flat, machine-readable form of one Table 2 row, suitable
// for plotting or regression tracking.
type RowExport struct {
	Benchmark string `json:"benchmark"`

	SingleCycles    int64 `json:"single_cycles"`
	DualNoneCycles  int64 `json:"dual_none_cycles"`
	DualLocalCycles int64 `json:"dual_local_cycles"`

	NonePct  float64 `json:"none_pct"`
	LocalPct float64 `json:"local_pct"`

	NoneDualPct  float64 `json:"none_dual_pct"`
	LocalDualPct float64 `json:"local_dual_pct"`

	NoneReplays  int64 `json:"none_replays"`
	LocalReplays int64 `json:"local_replays"`

	SingleIPC float64 `json:"single_ipc"`
	NoneIPC   float64 `json:"none_ipc"`
	LocalIPC  float64 `json:"local_ipc"`

	MispredictPct float64 `json:"mispredict_pct"`
	DCacheMissPct float64 `json:"dcache_miss_pct"`
}

// Export flattens a Table 2 row.
func (r Table2Row) Export() RowExport {
	return RowExport{
		Benchmark:       r.Benchmark,
		SingleCycles:    r.SingleCycles,
		DualNoneCycles:  r.DualNoneCycles,
		DualLocalCycles: r.DualLocalCycles,
		NonePct:         r.NonePct,
		LocalPct:        r.LocalPct,
		NoneDualPct:     100 * r.NoneStats.DualFraction(),
		LocalDualPct:    100 * r.LocalStats.DualFraction(),
		NoneReplays:     r.NoneStats.Replays,
		LocalReplays:    r.LocalStats.Replays,
		SingleIPC:       r.SingleStats.IPC(),
		NoneIPC:         r.NoneStats.IPC(),
		LocalIPC:        r.LocalStats.IPC(),
		MispredictPct:   100 * r.LocalStats.MispredictRate(),
		DCacheMissPct:   100 * r.LocalStats.DCache.MissRate(),
	}
}

// WriteJSON emits the rows as an indented JSON array.
func WriteJSON(w io.Writer, rows []Table2Row) error {
	out := make([]RowExport, len(rows))
	for i, r := range rows {
		out[i] = r.Export()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV emits the rows as CSV with a header line.
func WriteCSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "single_cycles", "dual_none_cycles", "dual_local_cycles",
		"none_pct", "local_pct", "none_dual_pct", "local_dual_pct",
		"none_replays", "local_replays", "single_ipc", "none_ipc", "local_ipc",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, r := range rows {
		e := r.Export()
		rec := []string{
			e.Benchmark, d(e.SingleCycles), d(e.DualNoneCycles), d(e.DualLocalCycles),
			f(e.NonePct), f(e.LocalPct), f(e.NoneDualPct), f(e.LocalDualPct),
			d(e.NoneReplays), d(e.LocalReplays), f(e.SingleIPC), f(e.NoneIPC), f(e.LocalIPC),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRows dispatches on a format name: "text", "json", or "csv".
func WriteRows(w io.Writer, rows []Table2Row, format string) error {
	switch format {
	case "", "text":
		_, err := io.WriteString(w, FormatTable2(rows))
		return err
	case "json":
		return WriteJSON(w, rows)
	case "csv":
		return WriteCSV(w, rows)
	}
	return fmt.Errorf("experiment: unknown format %q (text, json, csv)", format)
}
