package experiment

import (
	"fmt"
	"strings"

	"multicluster/internal/core"
	"multicluster/internal/isa"
	"multicluster/internal/workload"
)

// FourWayOptions returns the four-way aggregate study the paper mentions
// alongside its eight-way results (§4): a 4-issue single cluster against a
// dual-cluster machine of two 2-issue clusters.
func FourWayOptions() Options {
	opts := DefaultOptions()
	opts.Single = core.SingleCluster4Way()
	opts.Dual = core.DualCluster2Way()
	return opts
}

// WithAssignment returns the options with the dual-cluster machine (and
// the clustered register allocator) using the given register-to-cluster
// assignment.
func (o Options) WithAssignment(a isa.Assignment) Options {
	o.Dual.Assignment = a
	return o
}

// AssignmentComparison reruns one benchmark's Table 2 row under both
// register-to-cluster assignments — the analysis that led the authors to
// even/odd (§4: "determined through the analysis of early simulation
// results").
type AssignmentComparison struct {
	Benchmark string
	EvenOdd   Table2Row
	LowHigh   Table2Row
}

// CompareAssignments evaluates even/odd versus low/high for the named
// benchmark.
func CompareAssignments(name string, opts Options) (AssignmentComparison, error) {
	cmp := AssignmentComparison{Benchmark: name}
	b := workload.ByName(name)
	if b == nil {
		return cmp, fmt.Errorf("unknown benchmark %q", name)
	}
	var err error
	cmp.EvenOdd, err = Table2Bench(b, opts.WithAssignment(isa.DefaultAssignment()))
	if err != nil {
		return cmp, fmt.Errorf("even/odd: %w", err)
	}
	cmp.LowHigh, err = Table2Bench(b, opts.WithAssignment(isa.LowHighAssignment()))
	if err != nil {
		return cmp, fmt.Errorf("low/high: %w", err)
	}
	return cmp, nil
}

// FormatAssignmentComparison renders the scheme comparison.
func FormatAssignmentComparison(cmps []AssignmentComparison) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Register-to-cluster assignment comparison (speedup %, none / local):")
	fmt.Fprintln(&b, "  benchmark      even-odd           low-high")
	for _, c := range cmps {
		fmt.Fprintf(&b, "  %-12s  %+5.0f / %+5.0f      %+5.0f / %+5.0f\n",
			c.Benchmark, c.EvenOdd.NonePct, c.EvenOdd.LocalPct, c.LowHigh.NonePct, c.LowHigh.LocalPct)
	}
	return b.String()
}
