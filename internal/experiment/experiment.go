// Package experiment wires the full methodology of §4 together: profile a
// workload, partition and allocate its live ranges, lower to machine code,
// generate the dynamic trace, and simulate it on single- and dual-cluster
// processors. It regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index).
package experiment

import (
	"context"
	"fmt"
	"sync"

	"multicluster/internal/codegen"
	"multicluster/internal/conc"
	"multicluster/internal/core"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/sched"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

// Options configures one evaluation campaign.
type Options struct {
	// Instructions is the dynamic instruction budget per simulation.
	Instructions int64
	// ProfileInstructions is the dynamic budget of the profiling pass that
	// feeds the local scheduler (footnote 1 of §3.5).
	ProfileInstructions int64
	// Seed drives the behaviour drivers; the same seed is used for the
	// profiling run and every simulation so all binaries see one workload.
	Seed int64
	// Window is the local scheduler's imbalance threshold (0 = default).
	Window int
	// PostSchedule applies the post-pass list scheduler (methodology step
	// 6) after register allocation.
	PostSchedule bool
	// Single and Dual are the processor configurations; zero values mean
	// the paper's eight-way machines.
	Single, Dual core.Config
	// Probes, when non-nil, is installed on every processor Simulate
	// constructs (see core.Probes). Probes observe without perturbing the
	// simulation, and they are deliberately excluded from the
	// content-addressed run keys — which also means a CachedRun served
	// from the memo never re-simulates and therefore never fires them.
	Probes *core.Probes
}

// DefaultOptions returns the evaluation setup used throughout: the paper's
// eight-way configurations and a 300k-instruction budget, large enough for
// the caches and predictors to reach steady state while keeping a full
// Table 2 run under a minute.
func DefaultOptions() Options {
	return Options{
		Instructions:        300_000,
		ProfileInstructions: 50_000,
		Seed:                42,
		Single:              core.SingleCluster8Way(),
		Dual:                core.DualCluster4Way(),
	}
}

func (o Options) withDefaults() Options {
	if o.Instructions == 0 {
		o.Instructions = 300_000
	}
	if o.ProfileInstructions == 0 {
		// The divide floors to zero for budgets under six instructions, and
		// zero means *unlimited* to trace.Profile — a tiny simulation would
		// profile the driver's entire path. Clamp to at least one.
		if o.ProfileInstructions = o.Instructions / 6; o.ProfileInstructions < 1 {
			o.ProfileInstructions = 1
		}
	}
	if o.Single.Clusters == 0 {
		o.Single = core.SingleCluster8Way()
	}
	if o.Dual.Clusters == 0 {
		o.Dual = core.DualCluster4Way()
	}
	if o.Single.MaxCycles == 0 {
		o.Single.MaxCycles = o.Instructions * 40
	}
	if o.Dual.MaxCycles == 0 {
		o.Dual.MaxCycles = o.Instructions * 40
	}
	return o
}

// Compile runs the static pipeline for one benchmark. A nil partitioner
// selects native (cluster-oblivious) allocation — the paper's "no
// rescheduling" binaries. The benchmark's block profile estimates are
// refreshed from a profiling run first.
func Compile(b *workload.Benchmark, part partition.Partitioner, opts Options) (*isa.Program, *regalloc.Result, error) {
	opts = opts.withDefaults()
	trace.Profile(b.Program, b.NewDriver(opts.Seed), opts.ProfileInstructions)
	var pr *partition.Result
	clustered := false
	if part != nil {
		pr = part.Partition(b.Program)
		if err := pr.Validate(b.Program); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		clustered = true
	}
	alloc, err := regalloc.Allocate(b.Program, pr, regalloc.Config{
		Assignment:        opts.Dual.Assignment,
		Clustered:         clustered,
		OtherClusterSpill: true,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if opts.PostSchedule {
		alloc = sched.PostPass(alloc)
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return mp, alloc, nil
}

// Simulate runs one binary for one benchmark on one configuration, feeding
// the processor from a live trace generator.
func Simulate(mp *isa.Program, b *workload.Benchmark, cfg core.Config, opts Options) (core.Stats, error) {
	opts = opts.withDefaults()
	gen, err := trace.NewGenerator(mp, b.NewDriver(opts.Seed), opts.Instructions)
	if err != nil {
		return core.Stats{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	return SimulateReader(gen, b.Name, cfg, opts)
}

// SimulateReader runs one configuration over an already-constructed dynamic
// instruction stream — a live generator or a cursor over a materialized
// trace.Artifact. The stream fully determines the simulation, so the two
// feeding paths produce byte-identical statistics (the golden suite pins
// this). name labels errors.
func SimulateReader(r trace.Reader, name string, cfg core.Config, opts Options) (core.Stats, error) {
	opts = opts.withDefaults()
	p, err := core.New(cfg, r)
	if err != nil {
		return core.Stats{}, fmt.Errorf("%s: %w", name, err)
	}
	if opts.Probes != nil {
		p.SetProbes(opts.Probes)
	}
	stats, err := p.Run()
	if err != nil {
		return stats, fmt.Errorf("%s: %w", name, err)
	}
	if stats.Stop != core.StopTraceEnd {
		return stats, fmt.Errorf("%s: simulation hit the cycle limit (%v)", name, stats)
	}
	return stats, nil
}

// Table2Row is one line of the paper's Table 2: the percentage
// speedup/slowdown of the dual-cluster machine relative to the eight-way
// single-cluster machine, for the native binary ("none") and the
// local-scheduler binary ("local"). Negative values are slowdowns, exactly
// as the paper prints them (100 − 100·Cdual/Csingle).
type Table2Row struct {
	Benchmark string

	SingleCycles    int64
	DualNoneCycles  int64
	DualLocalCycles int64

	NonePct  float64
	LocalPct float64

	SingleStats core.Stats
	NoneStats   core.Stats
	LocalStats  core.Stats
}

// speedupPct converts a cycle pair into the paper's percentage form.
func speedupPct(single, dual int64) float64 {
	return 100 - 100*float64(dual)/float64(single)
}

// CycleRatio returns Cdual/Csingle for the given column.
func (r Table2Row) CycleRatio(local bool) float64 {
	if local {
		return float64(r.DualLocalCycles) / float64(r.SingleCycles)
	}
	return float64(r.DualNoneCycles) / float64(r.SingleCycles)
}

// Table2Bench computes one benchmark's Table 2 row. For the registry
// benchmarks every compile and simulation goes through the process-wide
// content-addressed cache, so the native binary is compiled once for its
// two machines and repeated baselines (e.g. the single-cluster run shared
// by both assignment schemes in CompareAssignments) are computed once per
// process.
func Table2Bench(b *workload.Benchmark, opts Options) (Table2Row, error) {
	opts = opts.withDefaults()
	row := Table2Row{Benchmark: b.Name}

	if workload.ByName(b.Name) != nil {
		single, none, local, err := table2Runs(b.Name, opts)
		if err != nil {
			return row, err
		}
		return NewTable2Row(b.Name, single, none, local), nil
	}

	// Ad-hoc benchmark outside the registry: run uncached.
	native, _, err := Compile(b, nil, opts)
	if err != nil {
		return row, err
	}
	local, _, err := Compile(b, partition.Local{Window: opts.Window}, opts)
	if err != nil {
		return row, err
	}

	var single, none, localStats core.Stats
	if single, err = Simulate(native, b, opts.Single, opts); err != nil {
		return row, fmt.Errorf("single-cluster: %w", err)
	}
	if none, err = Simulate(native, b, opts.Dual, opts); err != nil {
		return row, fmt.Errorf("dual/none: %w", err)
	}
	if localStats, err = Simulate(local, b, opts.Dual, opts); err != nil {
		return row, fmt.Errorf("dual/local: %w", err)
	}
	return NewTable2Row(b.Name, single, none, localStats), nil
}

// table2Runs performs the three cached runs behind one Table 2 row. The
// native binary's two machines run as one batch over the shared trace
// artifact; the local binary (different machine program, different trace)
// runs on its own.
func table2Runs(bench string, opts Options) (single, none, local core.Stats, err error) {
	nat, err := CachedRunBatch(bench, "none", []core.Config{opts.Single, opts.Dual}, opts)
	if err != nil {
		return single, none, local, fmt.Errorf("native binary: %w", err)
	}
	lr, err := CachedRun(bench, "local", opts.Dual, opts)
	if err != nil {
		return single, none, local, fmt.Errorf("dual/local: %w", err)
	}
	return nat[0].Stats, nat[1].Stats, lr.Stats, nil
}

// NewTable2Row assembles a Table 2 row from the three runs behind it: the
// native binary on the single-cluster machine, the native binary on the
// dual-cluster machine, and the local-scheduler binary on the dual-cluster
// machine.
func NewTable2Row(bench string, single, none, local core.Stats) Table2Row {
	row := Table2Row{
		Benchmark:   bench,
		SingleStats: single,
		NoneStats:   none,
		LocalStats:  local,
	}
	row.SingleCycles = single.Cycles
	row.DualNoneCycles = none.Cycles
	row.DualLocalCycles = local.Cycles
	row.NonePct = speedupPct(row.SingleCycles, row.DualNoneCycles)
	row.LocalPct = speedupPct(row.SingleCycles, row.DualLocalCycles)
	return row
}

// Table2 computes the full table over the paper's six benchmarks. The
// benchmarks are independent (each gets its own workload instance, drivers,
// and processors), so they run concurrently — bounded by the process-wide
// conc.CPU semaphore so nested campaigns cannot oversubscribe the machine;
// results stay in the paper's order and are deterministic.
func Table2(opts Options) ([]Table2Row, error) {
	benches := workload.All()
	rows := make([]Table2Row, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b *workload.Benchmark) {
			defer wg.Done()
			if errs[i] = conc.CPU.Acquire(context.Background()); errs[i] != nil {
				return
			}
			defer conc.CPU.Release()
			rows[i], errs[i] = Table2Bench(b, opts)
		}(i, b)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return rows, fmt.Errorf("%s: %w", benches[i].Name, err)
		}
	}
	return rows, nil
}
