package regalloc

import (
	"fmt"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
)

// cloneProgram deep-copies an IL program so spill rewriting never mutates
// the caller's input.
func cloneProgram(p *il.Program) *il.Program {
	cp := &il.Program{
		Name:   p.Name,
		Entry:  p.Entry,
		Values: append([]il.Value(nil), p.Values...),
	}
	for _, b := range p.Blocks {
		nb := &il.Block{
			Name:    b.Name,
			EstExec: b.EstExec,
			Instrs:  append([]il.Instr(nil), b.Instrs...),
			Succs:   append([]string(nil), b.Succs...),
		}
		cp.Blocks = append(cp.Blocks, nb)
	}
	return cp
}

// rewrite implements the spill phase: every value in spilled gets a stack
// slot; each use is preceded by a reload into a fresh temporary and each
// definition is followed by a store from a fresh temporary. The
// temporaries have minimal live ranges, keeping the next colouring round
// strictly easier, and inherit the spilled value's cluster so clustered
// allocations stay consistent.
func (st *state) rewrite(spilled []int) {
	slot := make(map[int]int, len(spilled))
	for _, v := range spilled {
		if st.noSpill[v] {
			panic(fmt.Sprintf("regalloc: attempted to spill no-spill value %q", st.prog.Value(v).Name))
		}
		s := len(st.slotOf)
		st.slotOf[v] = s
		slot[v] = s
	}

	for _, b := range st.prog.Blocks {
		out := make([]il.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i]

			// Reload spilled sources.
			reloadTemp := map[int]int{}
			for _, src := range []*int{&in.Src1, &in.Src2} {
				v := *src
				if v == il.None {
					continue
				}
				s, isSpilled := slot[v]
				if !isSpilled {
					continue
				}
				t, dup := reloadTemp[v]
				if !dup {
					t = st.newTemp(v)
					reloadTemp[v] = t
					ld := il.Instr{Op: loadOp(st.prog.Value(t).Kind), Dst: t, Src1: il.None, Src2: il.None}
					ld.MarkSpill(s)
					out = append(out, ld)
				}
				*src = t
			}

			// Redirect a spilled definition through a temporary + store.
			if v := in.Dst; v != il.None {
				if s, isSpilled := slot[v]; isSpilled {
					t := st.newTemp(v)
					in.Dst = t
					out = append(out, in)
					str := il.Instr{Op: storeOp(st.prog.Value(t).Kind), Dst: il.None, Src1: il.None, Src2: t}
					str.MarkSpill(s)
					out = append(out, str)
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// newTemp creates a fresh spill temporary mirroring value v's kind and
// cluster, exempt from future spilling.
func (st *state) newTemp(v int) int {
	id := len(st.prog.Values)
	val := il.Value{
		ID:   id,
		Name: fmt.Sprintf("%s.s%d", st.prog.Value(v).Name, id),
		Kind: st.prog.Value(v).Kind,
	}
	st.prog.Values = append(st.prog.Values, val)
	cl := st.cluster[v]
	if cl == partition.Global {
		// A spilled global candidate should not occur (globals are few and
		// get dedicated registers), but keep the invariant total.
		cl = 0
	}
	st.cluster = append(st.cluster, cl)
	st.noSpill = append(st.noSpill, true)
	st.demoted = append(st.demoted, false)
	return id
}

func loadOp(k il.Kind) isa.Op {
	if k == il.KindFP {
		return isa.LDF
	}
	return isa.LDW
}

func storeOp(k il.Kind) isa.Op {
	if k == il.KindFP {
		return isa.STF
	}
	return isa.STW
}
