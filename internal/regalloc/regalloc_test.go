package regalloc

import (
	"fmt"
	"testing"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
)

func defaultCfg(clustered bool) Config {
	return Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         clustered,
		OtherClusterSpill: true,
	}
}

func TestAllocateFigure6Native(t *testing.T) {
	p := il.Figure6()
	res, err := Allocate(p, nil, defaultCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(isa.DefaultAssignment(), false); err != nil {
		t.Fatal(err)
	}
	if res.Spilled != 0 {
		t.Errorf("figure 6 needs no spills, got %d", res.Spilled)
	}
	// The global candidate S must land in a designated global register.
	for id, v := range res.Prog.Values {
		if v.GlobalCandidate {
			if r := res.RegOf[id]; !isa.DefaultAssignment().IsGlobal(r) {
				t.Errorf("global candidate %s got local register %v", v.Name, r)
			}
		}
	}
}

func TestAllocateFigure6Clustered(t *testing.T) {
	p := il.Figure6()
	part := partition.Local{}.Partition(p)
	res, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(isa.DefaultAssignment(), true); err != nil {
		t.Fatal(err)
	}
	// Every local live range's register parity must match its cluster.
	a := isa.DefaultAssignment()
	for id := range res.Prog.Values {
		if res.Prog.Values[id].GlobalCandidate {
			continue
		}
		r := res.RegOf[id]
		if a.Home(r) != res.Cluster[id] {
			t.Errorf("value %s: cluster %d but register %v (cluster %d)", res.Prog.Values[id].Name, res.Cluster[id], r, a.Home(r))
		}
	}
}

func TestInputProgramNotMutated(t *testing.T) {
	p := highPressureProgram(40)
	before := p.StaticInstrCount()
	if _, err := Allocate(p, nil, defaultCfg(false)); err != nil {
		t.Fatal(err)
	}
	if p.StaticInstrCount() != before {
		t.Error("Allocate mutated its input program")
	}
}

// highPressureProgram builds a block with n simultaneously-live integer
// values, forcing spills once n exceeds the allocatable register count.
func highPressureProgram(n int) *il.Program {
	b := il.NewBuilder(fmt.Sprintf("pressure%d", n))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = b.Int(fmt.Sprintf("v%d", i))
	}
	sum := b.Int("sum")
	e := b.Block("entry", 100)
	for i, id := range ids {
		e.Const(id, int64(i))
	}
	// Use all values after all definitions so they are simultaneously live.
	e.Op(isa.ADD, sum, ids[0], ids[1])
	for i := 2; i < n; i++ {
		e.Op(isa.ADD, sum, sum, ids[i])
	}
	e.Ret(sum)
	return b.MustFinish()
}

func TestSpillingUnderPressureNative(t *testing.T) {
	// 29 allocatable integer registers in native mode (32 minus SP, GP,
	// r31); 40 simultaneously-live values must spill, and the resulting
	// allocation must still verify.
	p := highPressureProgram(40)
	res, err := Allocate(p, nil, defaultCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Fatal("expected spills with 40 simultaneously-live values")
	}
	if err := res.Verify(isa.DefaultAssignment(), false); err != nil {
		t.Fatal(err)
	}
	if res.NumSlots != res.Spilled {
		t.Errorf("NumSlots %d != Spilled %d", res.NumSlots, res.Spilled)
	}
	// Spill code must be marked with slots.
	spillOps := 0
	for _, blk := range res.Prog.Blocks {
		for i := range blk.Instrs {
			if slot, ok := blk.Instrs[i].SpillInfo(); ok {
				if slot < 0 || slot >= res.NumSlots {
					t.Errorf("spill op references slot %d of %d", slot, res.NumSlots)
				}
				spillOps++
			}
		}
	}
	if spillOps == 0 {
		t.Error("no spill instructions inserted")
	}
}

func TestOtherClusterSpillPreferredOverMemory(t *testing.T) {
	// 20 simultaneously-live values all partitioned into cluster 0, which
	// has only 15 local integer registers: with OtherClusterSpill the
	// overflow should be demoted to cluster 1's registers, not spilled.
	p := highPressureProgram(20)
	part := &partition.Result{Cluster: make([]int, p.NumValues())}
	for i := range part.Cluster {
		part.Cluster[i] = 0
	}
	res, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Demoted == 0 {
		t.Error("expected demotions into the other cluster")
	}
	if res.Spilled != 0 {
		t.Errorf("expected no memory spills (cluster 1 has room), got %d", res.Spilled)
	}
}

func TestMemorySpillWhenBothClustersFull(t *testing.T) {
	p := highPressureProgram(40)
	part := partition.RoundRobin{}.Partition(p)
	res, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Error("40 live values cannot fit in 29 registers; expected spills")
	}
	if err := res.Verify(isa.DefaultAssignment(), true); err != nil {
		// Demoted values legitimately sit in the "wrong" cluster; Verify
		// in clustered mode accounts for that via res.Cluster updates.
		t.Fatal(err)
	}
}

func TestWithoutOtherClusterSpillGoesToMemory(t *testing.T) {
	p := highPressureProgram(20)
	part := &partition.Result{Cluster: make([]int, p.NumValues())}
	cfg := defaultCfg(true)
	cfg.OtherClusterSpill = false
	res, err := Allocate(p, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spilled == 0 {
		t.Error("without other-cluster spilling, overflow must go to memory")
	}
	if res.Demoted != 0 {
		t.Errorf("demotions disabled but Demoted = %d", res.Demoted)
	}
}

func TestClusteredRequiresPartitioning(t *testing.T) {
	if _, err := Allocate(il.Figure6(), nil, defaultCfg(true)); err == nil {
		t.Fatal("clustered allocation without a partitioning must fail")
	}
}

func TestFPAllocation(t *testing.T) {
	b := il.NewBuilder("fp")
	x := b.Int("x")
	f1, f2, f3 := b.FP("f1"), b.FP("f2"), b.FP("f3")
	e := b.Block("entry", 1)
	e.Const(x, 3)
	e.OpImm(isa.CVTIF, f1, x, 0)
	e.Op(isa.FMUL, f2, f1, f1)
	e.Op(isa.FADD, f3, f2, f1)
	e.OpImm(isa.CVTFI, x, f3, 0)
	e.Ret(x)
	p := b.MustFinish()
	part := partition.Local{}.Partition(p)
	res, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(isa.DefaultAssignment(), true); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{f1, f2, f3} {
		if !res.RegOf[id].IsFP() {
			t.Errorf("FP value got integer register %v", res.RegOf[id])
		}
	}
	if res.RegOf[x].IsFP() {
		t.Errorf("int value got FP register %v", res.RegOf[x])
	}
}

func TestRewrittenProgramStillValidates(t *testing.T) {
	p := highPressureProgram(45)
	res, err := Allocate(p, nil, defaultCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
}

func TestDeterministicAllocation(t *testing.T) {
	p := il.Figure6()
	part := partition.Local{}.Partition(p)
	a, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Allocate(p, part, defaultCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.RegOf {
		if a.RegOf[id] != b2.RegOf[id] {
			t.Fatalf("nondeterministic register for value %d: %v vs %v", id, a.RegOf[id], b2.RegOf[id])
		}
	}
}

func BenchmarkAllocateClustered(b *testing.B) {
	p := il.Figure6()
	part := partition.Local{}.Partition(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Allocate(p, part, defaultCfg(true)); err != nil {
			b.Fatal(err)
		}
	}
}
