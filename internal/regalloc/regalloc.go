// Package regalloc allocates the live ranges of an IL program to
// architectural registers using Briggs-style optimistic graph colouring
// (§3.4 of the paper): the colouring phase is separated from the spilling
// phase, nodes that fail to simplify are pushed optimistically, and spills
// rewrite the program with short-lived temporaries before the allocator
// iterates.
//
// Two modes are supported. In clustered mode the allowed register set of
// each live range is restricted to the registers of the cluster chosen by
// the partitioner (even registers belong to cluster 0, odd to cluster 1);
// spilling "first to a local register in the other cluster" falls out of
// retrying the colouring with the relaxed set before resorting to memory.
// In native mode (cluster-oblivious, modelling the standard system
// compiler) any allocatable register of the right file may be used; the
// cluster of each live range then *emerges* from the parity of whatever
// register it received — exactly how the paper's "no rescheduling" binaries
// behave on the dual-cluster machine.
package regalloc

import (
	"fmt"
	"sort"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/liveness"
	"multicluster/internal/partition"
)

// Config controls one allocation.
type Config struct {
	// Assignment maps architectural registers to clusters and designates
	// the global registers. The zero value is unusable; use
	// isa.DefaultAssignment().
	Assignment isa.Assignment
	// Clustered enforces the partitioner's cluster choice on the allowed
	// register set of every local live range.
	Clustered bool
	// OtherClusterSpill allows a clustered allocation to retry an
	// uncolourable live range with the other cluster's registers before
	// spilling it to memory (§3.4). Ignored in native mode.
	OtherClusterSpill bool
	// MaxIterations bounds the spill-and-retry loop; zero means 16.
	MaxIterations int
}

// Result is a completed allocation. Prog is a rewritten copy of the input
// program (spill code inserted); RegOf and Cluster cover Prog's live
// ranges, including allocator-created spill temporaries.
type Result struct {
	Prog    *il.Program
	RegOf   []isa.Reg
	Cluster []int // partition.Global or a cluster number, per live range
	// NumSlots is the number of spill slots used.
	NumSlots int
	// Spilled counts live ranges spilled to memory; Demoted counts live
	// ranges recoloured into the other cluster instead of memory.
	Spilled, Demoted int
	// Iterations is the number of colouring rounds run.
	Iterations int
}

// Allocate colours the live ranges of p. The partitioning part must cover
// p's values; in native mode it may be nil.
func Allocate(p *il.Program, part *partition.Result, cfg Config) (*Result, error) {
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 16
	}
	if cfg.Clustered && part == nil {
		return nil, fmt.Errorf("regalloc: clustered allocation requires a partitioning")
	}
	st := &state{cfg: cfg, prog: cloneProgram(p)}
	st.initClusters(part)
	for round := 0; ; round++ {
		if round >= cfg.MaxIterations {
			return nil, fmt.Errorf("regalloc: no colouring after %d rounds (%d values)", round, st.prog.NumValues())
		}
		spilled := st.colour()
		if len(spilled) == 0 {
			return st.result(round + 1)
		}
		st.rewrite(spilled)
	}
}

type state struct {
	cfg  Config
	prog *il.Program

	cluster    []int       // per value
	noSpill    []bool      // spill temps and terminator-defined values
	regOf      []isa.Reg   // per value, RegNone until coloured
	demoted    []bool      // recoloured into the other cluster
	slotOf     map[int]int // original spilled value -> slot
	numDemoted int
}

func (st *state) initClusters(part *partition.Result) {
	n := st.prog.NumValues()
	st.cluster = make([]int, n)
	st.noSpill = make([]bool, n)
	st.demoted = make([]bool, n)
	st.slotOf = make(map[int]int)
	for id := 0; id < n; id++ {
		v := st.prog.Value(id)
		switch {
		case v.GlobalCandidate:
			st.cluster[id] = partition.Global
		case st.cfg.Clustered:
			st.cluster[id] = part.Of(id)
		default:
			st.cluster[id] = partition.Unassigned // derived from register later
		}
	}
	// Values defined by block terminators cannot have a store inserted
	// after their definition, so exempt them from spilling.
	for _, b := range st.prog.Blocks {
		if t := b.Terminator(); t != nil && t.Dst != il.None {
			st.noSpill[t.Dst] = true
		}
	}
}

// allowed returns the registers value id may be coloured with.
func (st *state) allowed(id int) []isa.Reg {
	v := st.prog.Value(id)
	fp := v.Kind == il.KindFP
	a := st.cfg.Assignment
	if v.GlobalCandidate {
		var gs []isa.Reg
		for _, g := range a.Globals() {
			if g.IsFP() == fp && !g.IsZero() {
				gs = append(gs, g)
			}
		}
		return gs
	}
	if st.cfg.Clustered {
		return a.LocalRegs(st.cluster[id], fp)
	}
	// Native mode: any local register of the file, in ascending register
	// order rotated by the live range's creation (≈ first-definition)
	// order. A cluster-oblivious system compiler hands consecutive
	// temporaries to consecutively-defined values, so the registers named
	// by one instruction routinely straddle the even/odd cluster
	// assignment — exactly why the paper's unscheduled binaries
	// dual-distribute so much of their instruction stream.
	regs := append([]isa.Reg(nil), a.LocalRegs(0, fp)...)
	regs = append(regs, a.LocalRegs(1, fp)...)
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	rot := id % len(regs)
	return append(regs[rot:len(regs):len(regs)], regs[:rot]...)
}

// conflicts reports whether values a and b compete for registers (their
// allowed sets can intersect). Cheap approximation by file and cluster.
func (st *state) conflicts(a, b int) bool {
	va, vb := st.prog.Value(a), st.prog.Value(b)
	if (va.Kind == il.KindFP) != (vb.Kind == il.KindFP) {
		return false
	}
	if va.GlobalCandidate != vb.GlobalCandidate {
		return false
	}
	if st.cfg.Clustered && !va.GlobalCandidate {
		return st.cluster[a] == st.cluster[b]
	}
	return true
}

// colour runs one Briggs round: simplify, optimistic push, select. It
// returns the values that must be spilled to memory (after any
// other-cluster demotion).
func (st *state) colour() []int {
	n := st.prog.NumValues()
	info := liveness.Analyze(st.prog)
	g := info.Interference()
	st.regOf = make([]isa.Reg, n)

	cost := st.spillCosts()
	effDeg := make([]int, n)
	for v := 0; v < n; v++ {
		g.Neighbors(v, func(u int) {
			if st.conflicts(v, u) {
				effDeg[v]++
			}
		})
	}

	removed := make([]bool, n)
	stack := make([]int, 0, n)
	remaining := n
	for remaining > 0 {
		// Simplify: remove any node with effective degree below its colour
		// count, lowest ID first for determinism.
		progress := false
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			if effDeg[v] < len(st.allowed(v)) {
				st.push(v, g, removed, effDeg, &stack)
				remaining--
				progress = true
			}
		}
		if progress {
			continue
		}
		// Blocked: optimistically push the cheapest spill candidate.
		best, bestScore := -1, 0.0
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			score := cost[v] / float64(effDeg[v]+1)
			if st.noSpill[v] {
				score = 1e18 // effectively never chosen while alternatives exist
			}
			if best == -1 || score < bestScore {
				best, bestScore = v, score
			}
		}
		st.push(best, g, removed, effDeg, &stack)
		remaining--
	}

	// Select in reverse push order.
	var spills []int
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		if r := st.pickReg(v, g, st.allowed(v)); r != isa.RegNone {
			st.regOf[v] = r
			continue
		}
		// Uncolourable with its own cluster's registers: try the other
		// cluster (spill "first to a local register in the other cluster").
		if st.cfg.Clustered && st.cfg.OtherClusterSpill && !st.prog.Value(v).GlobalCandidate {
			other := 1 - st.cluster[v]
			alt := st.cfg.Assignment.LocalRegs(other, st.prog.Value(v).Kind == il.KindFP)
			if r := st.pickRegRelaxed(v, g, alt); r != isa.RegNone {
				st.regOf[v] = r
				st.cluster[v] = other
				if !st.demoted[v] {
					st.demoted[v] = true
					st.numDemoted++
				}
				continue
			}
		}
		spills = append(spills, v)
	}
	return spills
}

func (st *state) push(v int, g *liveness.Graph, removed []bool, effDeg []int, stack *[]int) {
	removed[v] = true
	*stack = append(*stack, v)
	g.Neighbors(v, func(u int) {
		if !removed[u] && st.conflicts(v, u) {
			effDeg[u]--
		}
	})
}

// pickReg returns the first register in allowed not taken by an
// already-coloured interfering neighbour.
func (st *state) pickReg(v int, g *liveness.Graph, allowed []isa.Reg) isa.Reg {
	taken := map[isa.Reg]bool{}
	g.Neighbors(v, func(u int) {
		if r := st.regOf[u]; r != isa.RegNone {
			taken[r] = true
		}
	})
	for _, r := range allowed {
		if !taken[r] {
			return r
		}
	}
	return isa.RegNone
}

// pickRegRelaxed is pickReg for a candidate set outside v's nominal
// cluster; interference with *any* coloured neighbour of the same file
// still disqualifies a register.
func (st *state) pickRegRelaxed(v int, g *liveness.Graph, allowed []isa.Reg) isa.Reg {
	return st.pickReg(v, g, allowed)
}

// spillCosts estimates the dynamic access count of each live range,
// weighting each reference by its block's execution estimate.
func (st *state) spillCosts() []float64 {
	cost := make([]float64, st.prog.NumValues())
	for _, b := range st.prog.Blocks {
		w := float64(b.EstExec)
		if w <= 0 {
			w = 1
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, id := range in.Operands() {
				cost[id] += w
			}
		}
	}
	return cost
}

func (st *state) result(iters int) (*Result, error) {
	// Native mode: derive each value's cluster from its register parity,
	// matching the hardware's even/odd interpretation.
	for id := range st.cluster {
		if st.cluster[id] == partition.Unassigned {
			r := st.regOf[id]
			if r == isa.RegNone {
				return nil, fmt.Errorf("regalloc: value %q left uncoloured", st.prog.Value(id).Name)
			}
			st.cluster[id] = r.Index() & 1
		}
	}
	return &Result{
		Prog:       st.prog,
		RegOf:      st.regOf,
		Cluster:    st.cluster,
		NumSlots:   len(st.slotOf),
		Spilled:    len(st.slotOf),
		Demoted:    st.numDemoted,
		Iterations: iters,
	}, nil
}

// Verify checks that the allocation respects interference: no two
// simultaneously-live values share a register, kinds match files, and
// clustered locals received registers of their cluster.
func (r *Result) Verify(a isa.Assignment, clustered bool) error {
	info := liveness.Analyze(r.Prog)
	g := info.Interference()
	for v := 0; v < g.N(); v++ {
		rv := r.RegOf[v]
		if rv == isa.RegNone {
			return fmt.Errorf("regalloc: value %q has no register", r.Prog.Value(v).Name)
		}
		if (r.Prog.Value(v).Kind == il.KindFP) != rv.IsFP() {
			return fmt.Errorf("regalloc: value %q (%v) got register %v of wrong file", r.Prog.Value(v).Name, r.Prog.Value(v).Kind, rv)
		}
		if clustered && !r.Prog.Value(v).GlobalCandidate {
			if a.IsGlobal(rv) {
				return fmt.Errorf("regalloc: local value %q got global register %v", r.Prog.Value(v).Name, rv)
			}
			if a.Home(rv) != r.Cluster[v] {
				return fmt.Errorf("regalloc: value %q in cluster %d got register %v of cluster %d", r.Prog.Value(v).Name, r.Cluster[v], rv, a.Home(rv))
			}
		}
		var err error
		g.Neighbors(v, func(u int) {
			if err == nil && u > v && r.RegOf[u] == rv {
				err = fmt.Errorf("regalloc: interfering values %q and %q share %v", r.Prog.Value(v).Name, r.Prog.Value(u).Name, rv)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
