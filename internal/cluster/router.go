package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"multicluster/internal/sweep"
)

// Forwarding headers. Origin names the node a request was forwarded
// from (one hop only — a request carrying it is always served locally,
// so routing can never loop); Deadline carries the forwarder's context
// deadline as unix microseconds so the owner enforces the same budget.
const (
	headerOrigin   = "X-MC-Origin"
	headerDeadline = "X-MC-Deadline"
)

// maxForwardBody caps forwarded specs and pushed results. Results carry
// a full stats snapshot but stay well under a megabyte.
const maxForwardBody = 4 << 20

// Handler wraps the node's local HTTP surface (the sweep server) with
// the cluster layer: the /cluster/v1/* peer endpoints, and cross-node
// routing of job lookups whose node-prefixed ids name another owner.
// Everything else — submissions, sweeps, table2 — is served by the
// local handler, whose computations route through the ring internally.
func (n *Node) Handler(local http.Handler) http.Handler {
	r := &router{node: n, local: local, mux: http.NewServeMux()}
	r.mux.HandleFunc("GET /cluster/v1/ping", r.handlePing)
	r.mux.HandleFunc("POST /cluster/v1/run", r.handleRun)
	r.mux.HandleFunc("POST /cluster/v1/result", r.handleResult)
	r.mux.HandleFunc("GET /cluster/v1/result/{hash}", r.handleResultGet)
	r.mux.HandleFunc("GET /cluster/v1/digest", r.handleDigest)
	r.mux.HandleFunc("POST /cluster/v1/leave", r.handleLeave)
	r.mux.HandleFunc("POST /cluster/v1/member", r.handleMember)
	r.mux.HandleFunc("GET /cluster/v1/status", r.handleStatus)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob)
	r.mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleJob)
	r.mux.HandleFunc("GET /v1/sweeps/{id}", r.handleSweepByID)
	r.mux.HandleFunc("GET /v1/sweeps/{id}/results", r.handleSweepByID)
	r.mux.HandleFunc("DELETE /v1/sweeps/{id}", r.handleSweepByID)
	r.mux.Handle("/", local)
	return r
}

type router struct {
	node  *Node
	local http.Handler
	mux   *http.ServeMux
}

func (r *router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// writeError emits the same structured error envelope the sweep server
// uses, so every error body in the system — local handler, peer
// endpoint, or proxy hop — has one shape.
func (r *router) writeError(w http.ResponseWriter, status int, code string, err error) {
	sweep.WriteAPIError(w, status, code, err.Error())
}

// handlePing answers a peer heartbeat: identity, ring version, and the
// caller's partition-map catch-up. Receiving a ping is also direct
// evidence the caller is alive, so it marks the sender up (prompting
// hint replay on a rejoin without waiting for our next probe).
func (r *router) handlePing(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	pr := r.node.members.handlePing(q.Get("from"), q.Get("url"), parseSince(q.Get("ring")))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(pr)
}

// handleRun executes a forwarded spec locally — never re-forwarding —
// under the forwarder's deadline, with its request id and client id
// threaded into the execution context.
func (r *router) handleRun(w http.ResponseWriter, req *http.Request) {
	if r.node.svc == nil {
		r.writeError(w, http.StatusServiceUnavailable, sweep.CodeUnavailable, errors.New("cluster: node has no service attached"))
		return
	}
	var spec sweep.JobSpec
	req.Body = http.MaxBytesReader(w, req.Body, maxForwardBody)
	if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, fmt.Errorf("decoding forwarded spec: %w", err))
		return
	}
	ctx := req.Context()
	if v := req.Header.Get(headerDeadline); v != "" {
		if micros, err := strconv.ParseInt(v, 10, 64); err == nil {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.UnixMicro(micros))
			defer cancel()
		}
	}
	if id := req.Header.Get("X-Request-ID"); id != "" {
		ctx = sweep.WithRequestID(ctx, id)
	}
	if client := req.Header.Get("X-Client-ID"); client != "" {
		ctx = sweep.WithClientID(ctx, client)
	}
	res, _, err := r.node.svc.RunLocal(ctx, spec)
	if err != nil {
		status, code := http.StatusInternalServerError, sweep.CodeInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status, code = http.StatusGatewayTimeout, sweep.CodeTimeout
		}
		r.writeError(w, status, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(res)
}

// handleResult accepts a result from a peer — replica fan-out or a
// replayed hint — and installs it in the local cache and journal.
// Idempotent: a duplicate store is a no-op, which is what makes
// at-least-once hint replay safe.
func (r *router) handleResult(w http.ResponseWriter, req *http.Request) {
	if r.node.svc == nil {
		r.writeError(w, http.StatusServiceUnavailable, sweep.CodeUnavailable, errors.New("cluster: node has no service attached"))
		return
	}
	var res sweep.Result
	req.Body = http.MaxBytesReader(w, req.Body, maxForwardBody)
	if err := json.NewDecoder(req.Body).Decode(&res); err != nil {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, fmt.Errorf("decoding pushed result: %w", err))
		return
	}
	if err := r.node.svc.StoreResult(&res); err != nil {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidSpec, err)
		return
	}
	r.node.metrics.storedResults.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// handleResultGet serves one cached result to a peer — the transfer
// half of anti-entropy's pull leg and read-repair's verification probe.
func (r *router) handleResultGet(w http.ResponseWriter, req *http.Request) {
	if r.node.svc == nil {
		r.writeError(w, http.StatusServiceUnavailable, sweep.CodeUnavailable, errors.New("cluster: node has no service attached"))
		return
	}
	hash := req.PathValue("hash")
	res, ok := r.node.svc.Cached(hash)
	if !ok {
		r.writeError(w, http.StatusNotFound, sweep.CodeNotFound, fmt.Errorf("cluster: no cached result for %s", hash))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(res)
}

// handleDigest serves the anti-entropy digest: of everything this node
// holds, the per-range summary of what the `for` node should hold, with
// full hash lists for any buckets named in `list`.
func (r *router) handleDigest(w http.ResponseWriter, req *http.Request) {
	if r.node.svc == nil {
		r.writeError(w, http.StatusServiceUnavailable, sweep.CodeUnavailable, errors.New("cluster: node has no service attached"))
		return
	}
	q := req.URL.Query()
	forID := q.Get("for")
	if forID == "" {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, errors.New("cluster: digest needs ?for=<node id>"))
		return
	}
	dv := r.node.digestFor(forID, parseBucketList(q.Get("list")))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(dv)
}

// handleLeave runs a graceful decommission: the operator's entry point
// for planned removal. Returns the drain report; a 409 with the report
// means some results could not be delivered and the node stayed in the
// ring (leaving), ready for a retry.
func (r *router) handleLeave(w http.ResponseWriter, req *http.Request) {
	rep, err := r.node.Decommission(req.Context())
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err != nil {
		w.WriteHeader(http.StatusConflict)
	}
	json.NewEncoder(w).Encode(rep)
}

// handleMember applies a planned membership event announced by a peer.
func (r *router) handleMember(w http.ResponseWriter, req *http.Request) {
	var ev memberEvent
	req.Body = http.MaxBytesReader(w, req.Body, 4096)
	if err := json.NewDecoder(req.Body).Decode(&ev); err != nil {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, fmt.Errorf("decoding member event: %w", err))
		return
	}
	if ev.ID == "" {
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, errors.New("cluster: member event needs an id"))
		return
	}
	switch ev.Event {
	case "leaving":
		// Only our own decommission marks us leaving; see integrate.
		if ev.ID != r.node.self.ID {
			r.node.ring.SetLeaving(ev.ID)
		}
	case "left":
		r.node.members.removeMember(ev.ID)
	default:
		r.writeError(w, http.StatusBadRequest, sweep.CodeInvalidRequest, fmt.Errorf("cluster: unknown member event %q", ev.Event))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReadyz layers cluster health onto the local readiness probe: a
// node that is mid-decommission or cut off from a majority of its peers
// answers 503 so load balancers stop routing to it, even though its
// local service would admit work.
func (r *router) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if r.node.Leaving() {
		http.Error(w, "leaving cluster", http.StatusServiceUnavailable)
		return
	}
	if r.node.members.DownMajority() {
		http.Error(w, "degraded: majority of peers down", http.StatusServiceUnavailable)
		return
	}
	r.local.ServeHTTP(w, req)
}

// statusView is the cluster introspection document.
type statusView struct {
	Node         string           `json:"node"`
	Health       string           `json:"health"` // ok | degraded | leaving
	Leaving      bool             `json:"leaving,omitempty"`
	RingVersion  uint64           `json:"ring_version"`
	Members      []Member         `json:"members"`
	Peers        []PeerView       `json:"peers"`
	HintsPending map[string]int64 `json:"hints_pending,omitempty"`
}

func (r *router) handleStatus(w http.ResponseWriter, req *http.Request) {
	n := r.node
	sv := statusView{
		Node:        n.self.ID,
		Health:      "ok",
		Leaving:     n.Leaving(),
		RingVersion: n.ring.Version(),
		Members:     n.ring.Members(),
		Peers:       n.members.Peers(),
	}
	if n.members.DownMajority() {
		sv.Health = "degraded"
	}
	if n.Leaving() {
		sv.Health = "leaving"
	}
	for _, peer := range n.hints.Peers() {
		if sv.HintsPending == nil {
			sv.HintsPending = make(map[string]int64)
		}
		sv.HintsPending[peer] = n.hints.PendingFor(peer)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sv)
}

// splitJobID extracts the owning node from a node-prefixed job id
// ("n2-j17" → "n2"). ok is false for unprefixed (single-node) ids.
func splitJobID(id string) (node string, ok bool) { return splitResourceID(id, "-j") }

// splitSweepID is splitJobID for sweep ids ("n2-s4" → "n2").
func splitSweepID(id string) (node string, ok bool) { return splitResourceID(id, "-s") }

// splitResourceID extracts the node prefix ahead of sep+digits.
func splitResourceID(id, sep string) (node string, ok bool) {
	i := strings.LastIndex(id, sep)
	if i <= 0 {
		return "", false
	}
	seq := id[i+len(sep):]
	if seq == "" {
		return "", false
	}
	for _, c := range seq {
		if c < '0' || c > '9' {
			return "", false
		}
	}
	return id[:i], true
}

// handleJob routes a job lookup or cancel by its node-prefixed id: ids
// minted by another node are proxied to it (one hop), everything else
// is served locally.
func (r *router) handleJob(w http.ResponseWriter, req *http.Request) {
	r.routeByID(w, req, splitJobID)
}

// handleSweepByID routes sweep progress/results/cancel the same way: a
// sweep lives on (and resumes on) the node that minted its id, so every
// node can answer for any sweep in the cluster with one proxy hop.
func (r *router) handleSweepByID(w http.ResponseWriter, req *http.Request) {
	r.routeByID(w, req, splitSweepID)
}

// routeByID serves the request locally unless its node-prefixed resource
// id names a live peer, in which case the request proxies to it.
func (r *router) routeByID(w http.ResponseWriter, req *http.Request, split func(string) (string, bool)) {
	id := req.PathValue("id")
	node, ok := split(id)
	if !ok || node == r.node.self.ID || req.Header.Get(headerOrigin) != "" {
		r.local.ServeHTTP(w, req)
		return
	}
	base, known := r.node.ring.URL(node)
	if !known || base == "" {
		// Not a member we know — let the local registry answer (404).
		r.local.ServeHTTP(w, req)
		return
	}
	if r.node.members.State(node) != PeerUp {
		w.Header().Set("Retry-After", "1")
		r.writeError(w, http.StatusServiceUnavailable, sweep.CodeUnavailable, fmt.Errorf("cluster: owning node %s is down", node))
		return
	}
	r.proxyJob(w, req, node, base)
}

// proxyJob forwards one resource request to the owning node verbatim,
// propagating the request id and client identity and marking the hop.
// Query parameters ride along so sweep result cursors survive the proxy,
// and the streamed body is flushed as it arrives so a long-running
// result stream reaches the client incrementally.
func (r *router) proxyJob(w http.ResponseWriter, req *http.Request, node, base string) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, base+req.URL.RequestURI(), nil)
	if err != nil {
		r.writeError(w, http.StatusBadGateway, sweep.CodeBadGateway, err)
		return
	}
	out.Header.Set(headerOrigin, r.node.self.ID)
	if id := req.Header.Get("X-Request-ID"); id != "" {
		out.Header.Set("X-Request-ID", id)
	}
	if client := req.Header.Get("X-Client-ID"); client != "" {
		out.Header.Set("X-Client-ID", client)
	}
	r.node.metrics.proxied.Inc()
	resp, err := r.node.client.Do(out)
	if err != nil {
		r.node.members.ReportFailure(node)
		r.writeError(w, http.StatusBadGateway, sweep.CodeBadGateway, fmt.Errorf("cluster: proxying to %s: %w", node, err))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Location", "Deprecation", "X-Sweep-Cursor"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
