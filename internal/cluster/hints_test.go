package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

func testHintLog(t *testing.T) *HintLog {
	t.Helper()
	h, err := OpenHintLog(t.TempDir(), 0, 0, NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func hintResult(i int) *sweep.Result {
	return &sweep.Result{
		Spec: sweep.JobSpec{Benchmark: "compress", Seed: int64(i + 1)},
		Hash: fmt.Sprintf("hash-%04d", i),
	}
}

func TestHintSpoolReplayRoundtrip(t *testing.T) {
	h := testHintLog(t)
	const n = 5
	for i := 0; i < n; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.PendingFor("n2"); got != n {
		t.Fatalf("PendingFor = %d, want %d", got, n)
	}
	if peers := h.Peers(); len(peers) != 1 || peers[0] != "n2" {
		t.Fatalf("Peers = %v", peers)
	}

	var delivered []string
	sent, err := h.Replay("n2", func(r *sweep.Result) error {
		delivered = append(delivered, r.Hash)
		return nil
	})
	if err != nil || sent != n {
		t.Fatalf("Replay = %d, %v; want %d, nil", sent, err, n)
	}
	for i, hash := range delivered {
		if want := fmt.Sprintf("hash-%04d", i); hash != want {
			t.Fatalf("replay out of order: delivered[%d] = %s, want %s", i, hash, want)
		}
	}
	if got := h.PendingFor("n2"); got != 0 {
		t.Fatalf("backlog after full replay = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(h.dir, "n2"+hintSuffix)); !os.IsNotExist(err) {
		t.Errorf("drained hint log should be deleted, stat err = %v", err)
	}
}

func TestHintReplayFailureKeepsLog(t *testing.T) {
	h := testHintLog(t)
	const n = 3
	for i := 0; i < n; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("peer vanished again")
	calls := 0
	sent, err := h.Replay("n2", func(*sweep.Result) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || sent != 1 {
		t.Fatalf("Replay = %d, %v; want 1, %v", sent, err, boom)
	}
	// At-least-once: the whole log survives a partial replay, and a later
	// attempt delivers everything (duplicates are idempotent downstream).
	if got := h.PendingFor("n2"); got != n {
		t.Fatalf("backlog after failed replay = %d, want %d", got, n)
	}
	sent, err = h.Replay("n2", func(*sweep.Result) error { return nil })
	if err != nil || sent != n {
		t.Fatalf("retry Replay = %d, %v; want %d, nil", sent, err, n)
	}
}

// TestHintLogRestartRecovery proves a restart of the hinting node keeps
// its obligations: a fresh HintLog over the same directory counts and
// replays the backlog spooled by its predecessor.
func TestHintLogRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics(obs.NewRegistry())
	h, err := OpenHintLog(dir, 0, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: no close, just a new HintLog over the same directory.
	h2, err := OpenHintLog(dir, 0, 0, NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.PendingFor("n2"); got != 4 {
		t.Fatalf("recovered backlog = %d, want 4", got)
	}
	if got := h2.Pending(); got != 4 {
		t.Fatalf("total recovered backlog = %d, want 4", got)
	}
	sent, err := h2.Replay("n2", func(*sweep.Result) error { return nil })
	if err != nil || sent != 4 {
		t.Fatalf("Replay after restart = %d, %v; want 4, nil", sent, err)
	}
}

// TestHintLogRecordBound: a per-peer log over its record bound drops
// its oldest hints (compacting to three quarters of the bound) and
// counts every drop.
func TestHintLogRecordBound(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	h, err := OpenHintLog(t.TempDir(), 4, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	pending := h.PendingFor("n2")
	if pending != 4 {
		t.Fatalf("bounded backlog = %d, want 4", pending)
	}
	if got := m.hintsDropped.Value(); got != total-pending {
		t.Errorf("cluster_hints_dropped_total = %d, want %d", got, total-pending)
	}
	// The survivors are the newest hints, still in append order.
	var hashes []string
	if _, err := h.Replay("n2", func(r *sweep.Result) error {
		hashes = append(hashes, r.Hash)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, hash := range hashes {
		if want := fmt.Sprintf("hash-%04d", total-int(pending)+i); hash != want {
			t.Fatalf("survivor %d = %s, want %s (oldest-first truncation)", i, hash, want)
		}
	}
}

// TestHintLogByteBound: the byte axis truncates the same way, keeping a
// newest suffix that fits under the bound.
func TestHintLogByteBound(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	const maxBytes = 4 << 10
	dir := t.TempDir()
	h, err := OpenHintLog(dir, 0, maxBytes, m)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	pending := h.PendingFor("n2")
	if pending == total || pending == 0 {
		t.Fatalf("byte bound left %d of %d hints — no truncation happened", pending, total)
	}
	if m.hintsDropped.Value() != total-pending {
		t.Errorf("cluster_hints_dropped_total = %d, want %d", m.hintsDropped.Value(), total-pending)
	}
	if fi, err := os.Stat(filepath.Join(dir, "n2"+hintSuffix)); err != nil || fi.Size() > maxBytes {
		t.Errorf("hint log size %d over the %d bound (stat err %v)", fi.Size(), maxBytes, err)
	}
	var hashes []string
	if _, err := h.Replay("n2", func(r *sweep.Result) error {
		hashes = append(hashes, r.Hash)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, hash := range hashes {
		if want := fmt.Sprintf("hash-%04d", total-int(pending)+i); hash != want {
			t.Fatalf("survivor %d = %s, want %s", i, hash, want)
		}
	}
}

// TestHintLogTornTailRecovery mirrors the journal's corruption tests: a
// crash mid-append leaves a truncated final record, and reopening the
// hint log drops exactly that record, keeping every fully written hint.
func TestHintLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	h, err := OpenHintLog(dir, 0, 0, NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Spool("n2", hintResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "n2"+hintSuffix)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-body, as a crash between write and sync
	// would.
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	h2, err := OpenHintLog(dir, 0, 0, NewMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatalf("reopening a torn hint log must recover, not fail: %v", err)
	}
	if got := h2.PendingFor("n2"); got != 2 {
		t.Fatalf("backlog after torn-tail recovery = %d, want 2", got)
	}
	var hashes []string
	sent, err := h2.Replay("n2", func(r *sweep.Result) error {
		hashes = append(hashes, r.Hash)
		return nil
	})
	if err != nil || sent != 2 {
		t.Fatalf("Replay = %d, %v; want 2, nil", sent, err)
	}
	if hashes[0] != "hash-0000" || hashes[1] != "hash-0001" {
		t.Fatalf("surviving hints = %v, want the two fully written ones", hashes)
	}

	// The log stays usable for new hints after recovery-by-truncation.
	if err := h2.Spool("n2", hintResult(9)); err != nil {
		t.Fatal(err)
	}
	if got := h2.PendingFor("n2"); got != 1 {
		t.Fatalf("backlog after post-recovery spool = %d, want 1", got)
	}
}
