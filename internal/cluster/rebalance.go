package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"multicluster/internal/sweep"
)

// DecommissionReport summarizes a graceful leave for the operator.
type DecommissionReport struct {
	Node string `json:"node"`
	// Streamed counts owned results delivered to the members that
	// inherit them.
	Streamed int `json:"streamed"`
	// Failed counts results no remaining member would accept; when
	// non-zero the node stays in the ring (marked leaving) so a retry
	// can finish the drain.
	Failed int `json:"failed"`
	// Remaining is the active member count after the leave.
	Remaining int  `json:"remaining"`
	Removed   bool `json:"removed"`
}

// memberEvent is the planned-membership-change announcement POSTed to
// /cluster/v1/member on every peer: "leaving" marks the node as
// draining (it owns nothing but stays addressable), "left" removes it.
// Receivers record the change in their own delta history, so one
// successful delivery is enough for the event to gossip everywhere —
// the leaver's own history dies with it.
type memberEvent struct {
	ID    string `json:"id"`
	Event string `json:"event"`
}

// Decommission executes a planned, graceful leave: mark this node
// leaving (locally and on every reachable peer), stream every cached
// result to the members that now own it, and — only if nothing failed
// to stream — remove the node from the ring and announce the removal.
//
// Every result goes to every member of its new replica set; a result
// whose whole replica set is unreachable goes to any up member instead
// (anti-entropy relocates it from there), and only counts as failed
// when no member at all would take it. A failed drain leaves the node
// in the leaving state: it owns nothing, keeps serving, and a retried
// Decommission picks up where this one stopped (deliveries are
// idempotent).
func (n *Node) Decommission(ctx context.Context) (*DecommissionReport, error) {
	n.decomMu.Lock()
	defer n.decomMu.Unlock()

	rep := &DecommissionReport{Node: n.self.ID}
	n.leaving.Store(true)
	n.ring.SetLeaving(n.self.ID)
	n.broadcast(ctx, memberEvent{ID: n.self.ID, Event: "leaving"})

	if n.svc != nil && n.ring.Active() > 0 {
		for _, hash := range n.svc.CachedHashes() {
			if err := ctx.Err(); err != nil {
				return rep, fmt.Errorf("cluster: decommission interrupted after %d results: %w", rep.Streamed, err)
			}
			res, ok := n.svc.Cached(hash)
			if !ok {
				continue
			}
			if n.stream(res) {
				rep.Streamed++
				n.metrics.rebalanceStreamed.Inc()
			} else {
				rep.Failed++
			}
		}
	}
	if rep.Failed > 0 {
		rep.Remaining = n.ring.Active()
		return rep, fmt.Errorf("cluster: decommission incomplete: %d of %d results not delivered; node stays in leaving state, retry to finish the drain",
			rep.Failed, rep.Failed+rep.Streamed)
	}

	n.ring.Remove(n.self.ID)
	n.broadcast(ctx, memberEvent{ID: n.self.ID, Event: "left"})
	rep.Remaining = n.ring.Active()
	rep.Removed = true
	return rep, nil
}

// stream delivers one result during a drain, reporting success when at
// least one member accepted it. Preference order: the members of the
// result's new replica set, then — if none of them took it — any up
// member at all, trusting anti-entropy to relocate it.
func (n *Node) stream(res *sweep.Result) bool {
	owners := n.ring.Owners(res.Hash, n.replicas)
	delivered := false
	for _, o := range owners {
		if o == n.self.ID {
			continue
		}
		if n.members.State(o) == PeerUp && n.push(o, res) == nil {
			delivered = true
		}
	}
	if delivered {
		return true
	}
	isOwner := make(map[string]bool, len(owners))
	for _, o := range owners {
		isOwner[o] = true
	}
	for _, p := range n.members.Peers() {
		if isOwner[p.ID] || p.State != PeerUp || n.ring.Leaving(p.ID) {
			continue
		}
		if n.push(p.ID, res) == nil {
			return true
		}
	}
	return false
}

// broadcast POSTs a membership event to every other member,
// best-effort: a member that misses it learns through gossip from one
// that did not.
func (n *Node) broadcast(ctx context.Context, ev memberEvent) {
	body, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, m := range n.ring.Members() {
		if m.ID == n.self.ID || m.URL == "" {
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, n.pushTimeout)
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, m.URL+"/cluster/v1/member", bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(headerOrigin, n.self.ID)
		resp, err := n.client.Do(req)
		cancel()
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
}
