package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// PeerState is a peer's liveness as judged by this node.
type PeerState string

const (
	// PeerUp means the peer is answering heartbeats (or was never yet
	// probed — peers start optimistically up so routing is attempted
	// immediately and the first failures demote them).
	PeerUp PeerState = "up"
	// PeerDown means FailThreshold consecutive probes (or forwards)
	// failed; writes owed to the peer spool as hints until it returns.
	PeerDown PeerState = "down"
)

// DefaultHeartbeat is the probe interval when Config.Heartbeat is zero.
const DefaultHeartbeat = 2 * time.Second

// jitteredInterval spreads a per-node interval deterministically into
// [85%, 115%) of d, keyed by the node id. Identically configured nodes
// would otherwise probe in lockstep — every heartbeat tick across the
// cluster landing in the same instant — and a synchronized thundering
// herd is exactly what a struggling peer does not need. Deterministic
// (no RNG) so a node's cadence is stable across restarts and
// reproducible in tests.
func jitteredInterval(id string, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	frac := 0.85 + 0.3*float64(hashPoint("heartbeat-jitter:"+id)>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// DefaultFailThreshold is how many consecutive failures mark a peer
// down when Config.FailThreshold is zero.
const DefaultFailThreshold = 3

type peerEntry struct {
	id       string
	state    PeerState
	failures int
	lastSeen time.Time
	ringSeen uint64 // the peer's ring version we last integrated
}

// PeerView is the serializable snapshot of one peer for status APIs.
type PeerView struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	State    PeerState `json:"state"`
	Failures int       `json:"failures,omitempty"`
	LastSeen time.Time `json:"last_seen,omitzero"`
}

// Membership tracks peer liveness with periodic HTTP heartbeats against
// each peer's ping endpoint and exchanges partition-map deltas on every
// probe. Failure detection is purely local: a peer is marked down after
// FailThreshold consecutive failures and up again on the first success
// (or on receiving any ping from it), and transitions never mutate the
// ring — ownership stays put and hinted handoff bridges the outage.
type Membership struct {
	self   Member
	ring   *Ring
	client *http.Client
	// interval is the configured probe interval (and per-probe timeout);
	// tick is the jittered loop period actually slept between rounds.
	interval      time.Duration
	tick          time.Duration
	failThreshold int
	metrics       *Metrics
	// onUp fires on every down→up transition (probe success or inbound
	// ping), synchronously — the node replays hints from it.
	onUp func(id string)

	mu    sync.Mutex
	peers map[string]*peerEntry
}

func newMembership(self Member, ring *Ring, seeds []Member, client *http.Client, interval time.Duration, failThreshold int, metrics *Metrics, onUp func(string)) *Membership {
	if interval <= 0 {
		interval = DefaultHeartbeat
	}
	if failThreshold <= 0 {
		failThreshold = DefaultFailThreshold
	}
	m := &Membership{
		self:          self,
		ring:          ring,
		client:        client,
		interval:      interval,
		tick:          jitteredInterval(self.ID, interval),
		failThreshold: failThreshold,
		metrics:       metrics,
		onUp:          onUp,
		peers:         make(map[string]*peerEntry),
	}
	ring.Add(self)
	for _, s := range seeds {
		m.addMember(s)
	}
	return m
}

// addMember installs a discovered or seeded member into the ring and
// peer table. Self is never a peer.
func (m *Membership) addMember(mem Member) {
	if mem.ID == "" || mem.ID == m.self.ID {
		return
	}
	m.ring.Add(mem)
	m.mu.Lock()
	if m.peers[mem.ID] == nil {
		m.peers[mem.ID] = &peerEntry{id: mem.ID, state: PeerUp}
	}
	m.mu.Unlock()
}

// removeMember drops a member announced as removed by a peer delta.
func (m *Membership) removeMember(id string) {
	if id == "" || id == m.self.ID {
		return
	}
	m.ring.Remove(id)
	m.mu.Lock()
	delete(m.peers, id)
	m.mu.Unlock()
}

// State returns this node's judgement of peer id; unknown peers are
// down (there is nowhere to send their traffic).
func (m *Membership) State(id string) PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.peers[id]; p != nil {
		return p.state
	}
	return PeerDown
}

// Peers snapshots every known peer, for the status endpoint and the
// node's hint-replay sweep.
func (m *Membership) Peers() []PeerView {
	m.mu.Lock()
	views := make([]PeerView, 0, len(m.peers))
	for _, p := range m.peers {
		views = append(views, PeerView{ID: p.id, State: p.state, Failures: p.failures, LastSeen: p.lastSeen})
	}
	m.mu.Unlock()
	for i := range views {
		if u, ok := m.ring.URL(views[i].ID); ok {
			views[i].URL = u
		}
	}
	return views
}

func (m *Membership) countState(s PeerState) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.peers {
		if p.state == s {
			n++
		}
	}
	return n
}

// DownMajority reports whether a majority of known peers are down —
// the degraded signal surfaced through /readyz and the cluster status
// endpoint. A node that cannot reach most of its cluster is more
// likely isolated than surrounded by failures, and a load balancer
// should stop routing to it. A node with no peers (single-node mode,
// or a seed list not yet learned) is never degraded.
func (m *Membership) DownMajority() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.peers) == 0 {
		return false
	}
	down := 0
	for _, p := range m.peers {
		if p.state == PeerDown {
			down++
		}
	}
	return down*2 > len(m.peers)
}

// Observe records direct evidence of life from a peer — an inbound ping
// names its sender — adding unknown members to the ring (transitive
// discovery through seed peers) and marking the sender up.
func (m *Membership) Observe(mem Member) {
	if mem.ID == "" || mem.ID == m.self.ID {
		return
	}
	m.addMember(mem)
	m.reportSuccess(mem.ID)
}

// ReportFailure feeds passive failure detection: a failed forward or
// push counts like a failed heartbeat, so a dead peer is demoted by the
// traffic it is breaking, not only by the next probe.
func (m *Membership) ReportFailure(id string) {
	m.mu.Lock()
	p := m.peers[id]
	if p == nil {
		m.mu.Unlock()
		return
	}
	p.failures++
	transition := p.state == PeerUp && p.failures >= m.failThreshold
	if transition {
		p.state = PeerDown
	}
	m.mu.Unlock()
	if transition {
		m.metrics.peerDown.Inc()
	}
}

// reportSuccess resets the failure count and promotes the peer,
// firing onUp on a down→up transition.
func (m *Membership) reportSuccess(id string) {
	m.mu.Lock()
	p := m.peers[id]
	if p == nil {
		m.mu.Unlock()
		return
	}
	p.failures = 0
	p.lastSeen = time.Now()
	transition := p.state == PeerDown
	if transition {
		p.state = PeerUp
	}
	m.mu.Unlock()
	if transition {
		m.metrics.peerUp.Inc()
		if m.onUp != nil {
			m.onUp(id)
		}
	}
}

// pingResponse is the heartbeat exchange: the responder identifies
// itself, reports its partition-map version, and catches the caller up
// with deltas — or a full snapshot when the caller is too far behind.
type pingResponse struct {
	Node        string     `json:"node"`
	RingVersion uint64     `json:"ring_version"`
	Deltas      []Delta    `json:"deltas,omitempty"`
	Snapshot    *RingState `json:"snapshot,omitempty"`
}

// Tick probes every known peer once, concurrently, and returns when all
// probes have resolved. The heartbeat loop calls it on an interval;
// tests call it directly for deterministic control.
func (m *Membership) Tick(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range m.Peers() {
		if p.URL == "" {
			continue
		}
		wg.Add(1)
		go func(p PeerView) {
			defer wg.Done()
			m.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

// Start runs the heartbeat loop until ctx is done. The loop period is
// the configured interval with a deterministic per-node jitter, so a
// fleet of identically configured nodes fans its probes out across the
// window instead of thundering in unison.
func (m *Membership) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(m.tick)
		defer t.Stop()
		for {
			m.Tick(ctx)
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
}

// probe heartbeats one peer: GET its ping endpoint, identifying
// ourselves (so the peer learns us and marks us up) and naming the last
// ring version of theirs we integrated, then applies the delta or
// snapshot the response carries.
func (m *Membership) probe(ctx context.Context, p PeerView) {
	m.mu.Lock()
	var since uint64
	if e := m.peers[p.ID]; e != nil {
		since = e.ringSeen
	}
	m.mu.Unlock()

	u := fmt.Sprintf("%s/cluster/v1/ping?from=%s&url=%s&ring=%d",
		p.URL, url.QueryEscape(m.self.ID), url.QueryEscape(m.self.URL), since)
	ctx, cancel := context.WithTimeout(ctx, m.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		m.probeFailed(p.ID)
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		m.probeFailed(p.ID)
		return
	}
	defer resp.Body.Close()
	var pr pingResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&pr) != nil {
		m.probeFailed(p.ID)
		return
	}
	m.metrics.heartbeats.Inc()
	m.integrate(p.ID, &pr)
	m.reportSuccess(p.ID)
}

func (m *Membership) probeFailed(id string) {
	m.metrics.heartbeatErrs.Inc()
	m.ReportFailure(id)
}

// integrate applies a heartbeat response's partition-map changes: adds
// and removals from the delta list, or the union of a full snapshot.
// Snapshots only ever add — removals must arrive as explicit deltas, so
// a stale snapshot can never evict live members (or ourselves).
func (m *Membership) integrate(id string, pr *pingResponse) {
	if pr.Snapshot != nil {
		for _, mem := range pr.Snapshot.Members {
			m.addMember(mem)
		}
		m.metrics.snapshotsTaken.Inc()
	}
	for _, d := range pr.Deltas {
		if d.Add != nil {
			m.addMember(*d.Add)
		}
		if d.Leave != "" && d.Leave != m.self.ID {
			// A stale "we are leaving" replay must not strand a rejoined
			// node; only our own decommission marks us leaving.
			m.ring.SetLeaving(d.Leave)
		}
		if d.Remove != "" {
			m.removeMember(d.Remove)
		}
		m.metrics.deltasApplied.Inc()
	}
	m.mu.Lock()
	if p := m.peers[id]; p != nil {
		p.ringSeen = pr.RingVersion
	}
	m.mu.Unlock()
}

// handlePing builds the response to an inbound heartbeat: our identity
// and ring version, plus the catch-up for the caller's since version.
func (m *Membership) handlePing(from, fromURL string, since uint64) pingResponse {
	if from != "" {
		m.Observe(Member{ID: from, URL: fromURL})
	}
	pr := pingResponse{Node: m.self.ID, RingVersion: m.ring.Version()}
	if deltas, ok := m.ring.DeltasSince(since); ok {
		pr.Deltas = deltas
	} else {
		snap := m.ring.Snapshot()
		pr.Snapshot = &snap
	}
	return pr
}

// parseSince parses the ring query parameter of a ping.
func parseSince(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}
