// Package cluster turns mcserved into an N-node sweep cluster: a
// virtual-node consistent-hash ring partitions the content-addressed
// result space across nodes by JobSpec hash, a membership layer tracks
// peer liveness with HTTP heartbeats and exchanges partition-map deltas,
// a stateless routing layer forwards non-owned work to its owner (and
// proxies job lookups by id), and hinted handoff spools writes owed to a
// down node into local CRC32 logs that replay when the peer returns.
//
// The layering follows the control-plane/data-plane split of the
// SNIPPETS.md design docs: routing is stateless (any node can serve any
// request, forwarding as needed), ownership is a pure function of the
// member set, and map updates travel as cheap deltas rather than
// whole-table broadcasts. Failure handling prefers availability: when an
// owner is unreachable the receiving node computes the cell itself and
// hands the result back through the hint log, so a mid-sweep node kill
// loses no results.
//
// A Node plugs into internal/sweep as its Remote: every job, sweep cell,
// and Table 2 cell funnels through Service.compute, which consults the
// ring and either computes locally, serves a replicated cache hit, or
// forwards to the owner.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"multicluster/internal/faultinject"
	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

// ParsePeers parses a -peers flag value: comma-separated id=url pairs,
// e.g. "n1=http://10.0.0.1:8742,n2=http://10.0.0.2:8742".
func ParsePeers(s string) ([]Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var members []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		members = append(members, Member{ID: id, URL: strings.TrimRight(u, "/")})
	}
	return members, nil
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's id and the base URL peers reach it at.
	Self Member
	// Seeds are the statically configured peers; more may be learned
	// transitively through heartbeat delta exchange.
	Seeds []Member
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Replicas is the total number of nodes that hold each owned result,
	// primary included; <= 1 means no replica fan-out.
	Replicas int
	// HintDir is the directory for per-peer hint logs.
	HintDir string
	// Heartbeat is the peer probe interval (0 = DefaultHeartbeat).
	Heartbeat time.Duration
	// FailThreshold is the consecutive-failure count that marks a peer
	// down (0 = DefaultFailThreshold).
	FailThreshold int
	// Metrics receives the cluster_* instruments; nil means a private
	// registry (instruments still work, nothing is exposed).
	Metrics *Metrics
	// Inject is the fault-injection plan shared with the sweep service;
	// the forwarding boundary checks the "forward" site. Nil means off.
	Inject *faultinject.Plan
	// Client issues forwards, pushes, and heartbeats; nil means a client
	// with sane timeouts.
	Client *http.Client
	// PushTimeout bounds one replication/hint-replay push (0 = 5s).
	PushTimeout time.Duration
	// AntiEntropy is the interval between background digest-exchange
	// rounds (0 = DefaultAntiEntropy, negative disables the background
	// loop; Sync still reconciles on demand).
	AntiEntropy time.Duration
	// HintMaxRecords bounds each per-peer hint log in records
	// (0 = DefaultHintMaxRecords, negative means unbounded).
	HintMaxRecords int64
	// HintMaxBytes bounds each per-peer hint log in bytes
	// (0 = DefaultHintMaxBytes, negative means unbounded).
	HintMaxBytes int64
}

// DefaultAntiEntropy is the digest-exchange interval when
// Config.AntiEntropy is zero.
const DefaultAntiEntropy = 15 * time.Second

// DefaultHintMaxRecords bounds a per-peer hint log to this many records
// when Config.HintMaxRecords is zero.
const DefaultHintMaxRecords = 4096

// DefaultHintMaxBytes bounds a per-peer hint log to this many bytes
// when Config.HintMaxBytes is zero.
const DefaultHintMaxBytes = 32 << 20

// Node is one member of the sweep cluster. It implements sweep.Remote,
// so a sweep.Service constructed with Config.Remote pointing here routes
// every computation through the ring.
type Node struct {
	self        Member
	ring        *Ring
	members     *Membership
	hints       *HintLog
	metrics     *Metrics
	inject      *faultinject.Plan
	client      *http.Client
	replicas    int
	pushTimeout time.Duration
	antiEntropy time.Duration

	// leaving flips once Decommission starts and never clears; decomMu
	// serializes concurrent decommission requests.
	leaving atomic.Bool
	decomMu sync.Mutex

	// repaired dedups read-repair probes per hash so a hot replica-local
	// key verifies the owner once, not on every hit.
	repairMu sync.Mutex
	repaired map[string]struct{}

	svc *sweep.Service
}

// NewNode builds a node: ring seeded with self and peers, hint logs
// recovered from HintDir, membership ready to probe. Call AttachService
// with the node's sweep.Service before serving traffic, and Start to
// begin heartbeats.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("cluster: node id required")
	}
	if cfg.HintDir == "" {
		return nil, errors.New("cluster: hint directory required (hinted handoff needs disk)")
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = NewMetrics(obs.NewRegistry())
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 0} // per-request contexts bound every call
	}
	pushTimeout := cfg.PushTimeout
	if pushTimeout <= 0 {
		pushTimeout = 5 * time.Second
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	antiEntropy := cfg.AntiEntropy
	switch {
	case antiEntropy == 0:
		antiEntropy = DefaultAntiEntropy
	case antiEntropy < 0:
		antiEntropy = 0
	}
	hintMaxRecords := cfg.HintMaxRecords
	switch {
	case hintMaxRecords == 0:
		hintMaxRecords = DefaultHintMaxRecords
	case hintMaxRecords < 0:
		hintMaxRecords = 0
	}
	hintMaxBytes := cfg.HintMaxBytes
	switch {
	case hintMaxBytes == 0:
		hintMaxBytes = DefaultHintMaxBytes
	case hintMaxBytes < 0:
		hintMaxBytes = 0
	}
	hints, err := OpenHintLog(cfg.HintDir, hintMaxRecords, hintMaxBytes, metrics)
	if err != nil {
		return nil, err
	}
	n := &Node{
		self:        cfg.Self,
		ring:        NewRing(cfg.VNodes),
		hints:       hints,
		metrics:     metrics,
		inject:      cfg.Inject,
		client:      client,
		replicas:    replicas,
		pushTimeout: pushTimeout,
		antiEntropy: antiEntropy,
		repaired:    make(map[string]struct{}),
	}
	n.members = newMembership(cfg.Self, n.ring, cfg.Seeds, client, cfg.Heartbeat, cfg.FailThreshold, metrics, n.replayHintsFor)
	metrics.bindNode(n)
	return n, nil
}

// AttachService binds the local sweep service the node serves forwarded
// runs and stored results through. Must be called before the node's
// HTTP handler receives traffic.
func (n *Node) AttachService(svc *sweep.Service) { n.svc = svc }

// ID returns the node's id.
func (n *Node) ID() string { return n.self.ID }

// Ring returns the node's partition map.
func (n *Node) Ring() *Ring { return n.ring }

// Members returns the node's membership layer.
func (n *Node) Members() *Membership { return n.members }

// Hints returns the node's hint log.
func (n *Node) Hints() *HintLog { return n.hints }

// Start launches the heartbeat loop, the periodic hint-replay sweep,
// and (unless disabled) the anti-entropy reconciler, until ctx is done.
func (n *Node) Start(ctx context.Context) {
	n.members.Start(ctx)
	go func() {
		t := time.NewTicker(n.members.tick)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n.ReplayPending()
			}
		}
	}()
	if n.antiEntropy > 0 {
		go func() {
			// One synchronous round up front: the Tick inside Sync
			// introduces a joining node to its peers, and the
			// anti-entropy round that follows pulls the key ranges the
			// join now owns — a new node starts warm instead of cold.
			n.Sync(ctx)
			t := time.NewTicker(jitteredInterval(n.self.ID, n.antiEntropy))
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					n.AntiEntropyRound(ctx)
				}
			}
		}()
	}
}

// Sync runs one synchronous round of the background work — probe every
// peer, replay any hint backlog whose owner is up, then reconcile
// digests with every up peer. Tests and operators use it for
// deterministic convergence.
func (n *Node) Sync(ctx context.Context) {
	n.members.Tick(ctx)
	n.ReplayPending()
	n.AntiEntropyRound(ctx)
}

// Healthy reports whether this node should receive traffic: it is not
// mid-decommission and can reach at least half of its known peers.
func (n *Node) Healthy() bool {
	return !n.leaving.Load() && !n.members.DownMajority()
}

// Leaving reports whether this node has begun a graceful decommission.
func (n *Node) Leaving() bool { return n.leaving.Load() }

// ReplayPending replays the hint backlog of every up peer.
func (n *Node) ReplayPending() {
	for _, peer := range n.hints.Peers() {
		if n.members.State(peer) == PeerUp {
			n.replayHintsFor(peer)
		}
	}
}

// replayHintsFor drains one peer's hint log into its result endpoint.
// Fired on down→up transitions and by the periodic sweep; a failure
// keeps the log for the next round.
func (n *Node) replayHintsFor(peer string) {
	if n.hints.PendingFor(peer) == 0 {
		return
	}
	_, err := n.hints.Replay(peer, func(res *sweep.Result) error {
		return n.push(peer, res)
	})
	if err != nil {
		n.members.ReportFailure(peer)
	}
}

// Route implements sweep.Remote: the ring owner of the content hash,
// and whether that is us (an empty ring or unknown owner degrades to
// local).
func (n *Node) Route(hash string) (string, bool) {
	owner := n.ring.Owner(hash)
	return owner, owner == "" || owner == n.self.ID
}

// RunRemote implements sweep.Remote: execute spec on the owner node,
// propagating ctx's deadline plus the request id and client id it
// carries. The caller (Service.compute) falls back to local computation
// on any error.
func (n *Node) RunRemote(ctx context.Context, node string, spec sweep.JobSpec) (*sweep.Result, error) {
	if n.members.State(node) != PeerUp {
		n.metrics.forwardErrors.Inc()
		n.metrics.localFallbacks.Inc()
		return nil, fmt.Errorf("cluster: owner %s is down", node)
	}
	base, ok := n.ring.URL(node)
	if !ok || base == "" {
		n.metrics.forwardErrors.Inc()
		n.metrics.localFallbacks.Inc()
		return nil, fmt.Errorf("cluster: no URL for owner %s", node)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding forwarded spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/cluster/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerOrigin, n.self.ID)
	if id := sweep.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	if client := sweep.ClientIDFrom(ctx); client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	if deadline, ok := ctx.Deadline(); ok {
		req.Header.Set(headerDeadline, strconv.FormatInt(deadline.UnixMicro(), 10))
	}
	n.metrics.forwards.Inc()
	resp, err := n.client.Do(req)
	if err != nil {
		n.metrics.forwardErrors.Inc()
		n.metrics.localFallbacks.Inc()
		n.members.ReportFailure(node)
		return nil, fmt.Errorf("cluster: forwarding to %s: %w", node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.metrics.forwardErrors.Inc()
		n.metrics.localFallbacks.Inc()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: owner %s answered %d: %s", node, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var res sweep.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		n.metrics.forwardErrors.Inc()
		n.metrics.localFallbacks.Inc()
		return nil, fmt.Errorf("cluster: decoding forwarded result from %s: %w", node, err)
	}
	return &res, nil
}

// Completed implements sweep.Remote: called for every locally computed
// result. On the owner it fans the result out to the replica set; on a
// non-owner (a local fallback while the owner was unreachable) it hands
// the result to the owner's shard — pushed directly when the peer looks
// up, spooled as a hint otherwise.
func (n *Node) Completed(res *sweep.Result) {
	if res == nil || res.Hash == "" {
		return
	}
	owners := n.ring.Owners(res.Hash, n.replicas)
	// Nobody else to converge with: an empty ring, or we are the whole
	// replica set. (Size is deliberately not the guard — after a peer
	// decommissions out of a two-node ring, results computed for it
	// mid-drain must still reach it.)
	if len(owners) == 0 || (len(owners) == 1 && owners[0] == n.self.ID) {
		return
	}
	if owners[0] == n.self.ID {
		for _, rep := range owners[1:] {
			n.deliver(rep, res)
		}
		return
	}
	// We computed a cell we do not own; its shard (and replicas) must
	// still converge on holding it.
	for _, owner := range owners {
		if owner != n.self.ID {
			n.deliver(owner, res)
		}
	}
}

// deliver gets one result to one peer: an immediate push when the peer
// is believed up, the hint log otherwise (or when the push fails).
func (n *Node) deliver(peer string, res *sweep.Result) {
	if n.members.State(peer) == PeerUp {
		if err := n.push(peer, res); err == nil {
			return
		}
		n.members.ReportFailure(peer)
	}
	n.hints.Spool(peer, res)
}

// push POSTs one result to peer's result endpoint, bounded by the push
// timeout. Used for replica fan-out and hint replay; the receiving side
// is idempotent.
func (n *Node) push(peer string, res *sweep.Result) error {
	base, ok := n.ring.URL(peer)
	if !ok || base == "" {
		return fmt.Errorf("cluster: no URL for peer %s", peer)
	}
	body, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("cluster: encoding result: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.pushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/cluster/v1/result", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerOrigin, n.self.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		n.metrics.replicationErrs.Inc()
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		n.metrics.replicationErrs.Inc()
		return fmt.Errorf("cluster: peer %s refused result: %d", peer, resp.StatusCode)
	}
	n.metrics.replications.Inc()
	return nil
}

// maxRepairDedup bounds the read-repair dedup set; when full it is
// reset wholesale — a re-probe of an already-verified hash is an
// idempotent no-op, so occasional forgetting only costs a GET.
const maxRepairDedup = 8192

// ReadRepair implements sweep.Remote: called when a request for a
// non-owned hash was served from the local replica cache. It verifies
// asynchronously that every up member of the hash's replica set still
// holds the result, pushing our copy to any that lost it (a rebuilt
// disk, a truncated hint log). Each hash is verified once per dedup
// epoch; the serving path is never blocked.
func (n *Node) ReadRepair(res *sweep.Result) {
	if res == nil || res.Hash == "" || n.ring.Size() < 2 {
		return
	}
	if !n.markRepaired(res.Hash) {
		return
	}
	go n.readRepair(res)
}

// markRepaired records hash in the dedup set, reporting whether this is
// the first sighting this epoch.
func (n *Node) markRepaired(hash string) bool {
	n.repairMu.Lock()
	defer n.repairMu.Unlock()
	if _, ok := n.repaired[hash]; ok {
		return false
	}
	if len(n.repaired) >= maxRepairDedup {
		n.repaired = make(map[string]struct{})
	}
	n.repaired[hash] = struct{}{}
	return true
}

// readRepair performs one asynchronous verification pass for res.
func (n *Node) readRepair(res *sweep.Result) {
	for _, owner := range n.ring.Owners(res.Hash, n.replicas) {
		if owner == n.self.ID || n.members.State(owner) != PeerUp {
			continue
		}
		base, ok := n.ring.URL(owner)
		if !ok || base == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.pushTimeout)
		have, err := n.fetchResult(ctx, base, res.Hash)
		cancel()
		if err != nil {
			n.members.ReportFailure(owner)
			continue
		}
		if have != nil {
			continue
		}
		if err := n.push(owner, res); err == nil {
			n.metrics.readRepairs.Inc()
		} else {
			n.members.ReportFailure(owner)
		}
	}
}
