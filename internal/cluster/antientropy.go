package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"multicluster/internal/sweep"
)

// Anti-entropy is the convergence backstop: hinted handoff repairs the
// outages it saw, but hints can be lost (a truncated log, a crashed
// hinter, a partition neither side noticed). The reconciler exchanges
// compact per-range digests with each up peer and transfers only the
// results the digests prove missing, so replicas converge without ever
// shipping the whole cache. A joining node gets its warm start from the
// same mechanism — its first round pulls every range it now owns.
//
// The key space is cut into digestBuckets ranges by the top bits of the
// ring position, so a bucket corresponds to a contiguous arc of the
// ring and a single ownership change dirties few buckets.
const digestBuckets = 64

// digestBucket maps a content hash to its range bucket.
func digestBucket(hash string) int {
	return int(hashPoint(hash) >> 58)
}

// rangeDigest folds a sorted hash list into one comparable value.
func rangeDigest(hashes []string) uint64 {
	h := fnv.New64a()
	for _, s := range hashes {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// bucketDigest summarizes one non-empty range bucket.
type bucketDigest struct {
	Bucket int    `json:"bucket"`
	Count  int    `json:"count"`
	Digest uint64 `json:"digest"`
}

// digestView is the digest endpoint's document: the responder's summary
// of every cached result the `for` node should hold, bucketed by ring
// range, plus full hash lists for any explicitly requested buckets.
type digestView struct {
	Node        string           `json:"node"`
	For         string           `json:"for"`
	RingVersion uint64           `json:"ring_version"`
	Total       int              `json:"total"`
	Buckets     []bucketDigest   `json:"buckets,omitempty"`
	Hashes      map[int][]string `json:"hashes,omitempty"`
}

// dueBuckets returns, bucketed and sorted, every locally cached hash
// whose replica set includes forID — the results forID should hold.
func (n *Node) dueBuckets(forID string) map[int][]string {
	out := make(map[int][]string)
	if n.svc == nil {
		return out
	}
	for _, h := range n.svc.CachedHashes() {
		for _, o := range n.ring.Owners(h, n.replicas) {
			if o == forID {
				b := digestBucket(h)
				out[b] = append(out[b], h)
				break
			}
		}
	}
	for b := range out {
		sort.Strings(out[b])
	}
	return out
}

// digestFor builds the digest document for forID, listing full hash
// contents for the requested buckets.
func (n *Node) digestFor(forID string, list []int) digestView {
	due := n.dueBuckets(forID)
	dv := digestView{Node: n.self.ID, For: forID, RingVersion: n.ring.Version()}
	buckets := make([]int, 0, len(due))
	for b := range due {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		dv.Total += len(due[b])
		dv.Buckets = append(dv.Buckets, bucketDigest{Bucket: b, Count: len(due[b]), Digest: rangeDigest(due[b])})
	}
	for _, b := range list {
		if hashes, ok := due[b]; ok {
			if dv.Hashes == nil {
				dv.Hashes = make(map[int][]string)
			}
			dv.Hashes[b] = hashes
		}
	}
	return dv
}

// AntiEntropyRound reconciles once with every up peer: for each peer, a
// push leg (results the peer should hold and lacks travel to it) and a
// pull leg (results we should hold and lack travel to us). A peer error
// abandons that peer's exchange — the next round retries.
func (n *Node) AntiEntropyRound(ctx context.Context) {
	if n.svc == nil {
		return
	}
	for _, p := range n.members.Peers() {
		if p.URL == "" || p.State != PeerUp {
			continue
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		n.antiEntropyWith(ctx, p)
	}
}

func (n *Node) antiEntropyWith(ctx context.Context, p PeerView) {
	n.metrics.aeRounds.Inc()
	if err := n.aePush(ctx, p); err != nil {
		n.metrics.aeErrors.Inc()
		n.members.ReportFailure(p.ID)
		return
	}
	if err := n.aePull(ctx, p); err != nil {
		n.metrics.aeErrors.Inc()
		n.members.ReportFailure(p.ID)
	}
}

// aePush closes the peer's gaps: of the results the peer should hold,
// push those we hold and its digest proves it lacks.
func (n *Node) aePush(ctx context.Context, p PeerView) error {
	mine := n.dueBuckets(p.ID)
	if len(mine) == 0 {
		return nil
	}
	theirs, err := n.fetchDigest(ctx, p.URL, p.ID, nil)
	if err != nil {
		return err
	}
	mismatched := diffBuckets(mine, theirs.Buckets)
	if len(mismatched) == 0 {
		return nil
	}
	n.metrics.digestMismatches.Add(int64(len(mismatched)))
	listed, err := n.fetchDigest(ctx, p.URL, p.ID, mismatched)
	if err != nil {
		return err
	}
	for _, b := range mismatched {
		theirSet := make(map[string]bool, len(listed.Hashes[b]))
		for _, h := range listed.Hashes[b] {
			theirSet[h] = true
		}
		for _, h := range mine[b] {
			if theirSet[h] {
				continue
			}
			res, ok := n.svc.Cached(h)
			if !ok {
				continue
			}
			if err := n.push(p.ID, res); err != nil {
				return err
			}
			n.metrics.aePushed.Inc()
		}
	}
	return nil
}

// aePull closes our own gaps: of the results we should hold, fetch
// those the peer's digest proves it holds and we lack.
func (n *Node) aePull(ctx context.Context, p PeerView) error {
	mine := n.dueBuckets(n.self.ID)
	theirs, err := n.fetchDigest(ctx, p.URL, n.self.ID, nil)
	if err != nil {
		return err
	}
	if theirs.Total == 0 {
		return nil
	}
	mismatched := diffBuckets(mine, theirs.Buckets)
	if len(mismatched) == 0 {
		return nil
	}
	n.metrics.digestMismatches.Add(int64(len(mismatched)))
	listed, err := n.fetchDigest(ctx, p.URL, n.self.ID, mismatched)
	if err != nil {
		return err
	}
	for _, b := range mismatched {
		mySet := make(map[string]bool, len(mine[b]))
		for _, h := range mine[b] {
			mySet[h] = true
		}
		for _, h := range listed.Hashes[b] {
			if mySet[h] {
				continue
			}
			res, err := n.fetchResult(ctx, p.URL, h)
			if err != nil {
				return err
			}
			if res == nil {
				continue // evicted between digest and fetch
			}
			if err := n.svc.StoreResult(res); err != nil {
				continue // corrupt transfer; the digest stays unequal and the next round retries
			}
			n.metrics.aePulled.Inc()
		}
	}
	return nil
}

// diffBuckets returns, sorted, every bucket where mine and theirs
// disagree and at least one side has content.
func diffBuckets(mine map[int][]string, theirs []bucketDigest) []int {
	theirMap := make(map[int]bucketDigest, len(theirs))
	for _, b := range theirs {
		theirMap[b.Bucket] = b
	}
	var out []int
	for b := 0; b < digestBuckets; b++ {
		m, t := mine[b], theirMap[b]
		if len(m) == 0 && t.Count == 0 {
			continue
		}
		if len(m) != t.Count || (len(m) > 0 && rangeDigest(m) != t.Digest) {
			out = append(out, b)
		}
	}
	return out
}

// fetchDigest GETs a peer's digest document for forID, asking for the
// hash lists of the listed buckets.
func (n *Node) fetchDigest(ctx context.Context, base, forID string, list []int) (*digestView, error) {
	u := base + "/cluster/v1/digest?for=" + url.QueryEscape(forID)
	if len(list) > 0 {
		parts := make([]string, len(list))
		for i, b := range list {
			parts[i] = strconv.Itoa(b)
		}
		u += "&list=" + strings.Join(parts, ",")
	}
	ctx, cancel := context.WithTimeout(ctx, n.pushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerOrigin, n.self.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: digest from %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: digest from %s: status %d", base, resp.StatusCode)
	}
	var dv digestView
	if err := json.NewDecoder(resp.Body).Decode(&dv); err != nil {
		return nil, fmt.Errorf("cluster: decoding digest from %s: %w", base, err)
	}
	return &dv, nil
}

// fetchResult GETs one cached result from a peer; a 404 (evicted or
// never held) returns nil without error.
func (n *Node) fetchResult(ctx context.Context, base, hash string) (*sweep.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, n.pushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/cluster/v1/result/"+url.PathEscape(hash), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(headerOrigin, n.self.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching result from %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: fetching result from %s: status %d", base, resp.StatusCode)
	}
	var res sweep.Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxForwardBody)).Decode(&res); err != nil {
		return nil, fmt.Errorf("cluster: decoding fetched result from %s: %w", base, err)
	}
	return &res, nil
}

// parseBucketList parses the digest endpoint's list parameter: a
// comma-separated bucket index list. Out-of-range and malformed entries
// are dropped.
func parseBucketList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= digestBuckets {
			continue
		}
		out = append(out, b)
	}
	return out
}
