package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"multicluster/internal/sweep"
)

// HintLog is the hinted-handoff spool: results owed to a peer that
// cannot receive them right now are appended to a per-peer log on local
// disk and replayed when the peer returns. Each log is a sweep.Journal
// — the same length-prefixed CRC32 record format as the result journal
// — so hints survive a crash of the hinting node and a torn tail from a
// crash mid-append is truncated on reopen, exactly like the journal.
//
// Delivery is at-least-once: a replay that fails partway keeps the
// whole log for the next attempt. Duplicates are harmless — results are
// content-addressed and stores are idempotent.
//
// Each per-peer log is bounded in records and bytes: a peer that stays
// down does not grow an unbounded spool on every node that owes it
// writes. When a bound is exceeded the oldest hints are dropped
// (counted by cluster_hints_dropped_total) — anti-entropy is the
// backstop that re-converges whatever truncation lost.
type HintLog struct {
	dir        string
	maxRecords int64 // per-peer record bound; <= 0 means unbounded
	maxBytes   int64 // per-peer byte bound; <= 0 means unbounded
	metrics    *Metrics

	mu   sync.Mutex
	logs map[string]*hintFile
}

// hintFile is one peer's spool. Its own lock serializes appends and
// replays per peer without blocking traffic to other peers.
type hintFile struct {
	mu   sync.Mutex
	path string
	j    *sweep.Journal // nil until the first spool (or recovery scan)
}

const hintSuffix = ".hints"

// OpenHintLog opens the spool directory, recovering any hint logs left
// by a previous process so their backlog is counted and replayable
// immediately. maxRecords and maxBytes bound each per-peer log (<= 0
// means unbounded on that axis).
func OpenHintLog(dir string, maxRecords int64, maxBytes int64, metrics *Metrics) (*HintLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: hint dir: %w", err)
	}
	h := &HintLog{dir: dir, maxRecords: maxRecords, maxBytes: maxBytes, metrics: metrics, logs: make(map[string]*hintFile)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: hint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, hintSuffix) {
			continue
		}
		peer, err := url.PathUnescape(strings.TrimSuffix(name, hintSuffix))
		if err != nil {
			continue
		}
		// Opening replays the records (counting them) and truncates any
		// torn tail from a crash mid-append.
		j, err := sweep.OpenJournal(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("cluster: recovering hints for %s: %w", peer, err)
		}
		h.logs[peer] = &hintFile{path: j.Path(), j: j}
	}
	return h, nil
}

func (h *HintLog) file(peer string) *hintFile {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.logs[peer]
	if f == nil {
		f = &hintFile{path: filepath.Join(h.dir, url.PathEscape(peer)+hintSuffix)}
		h.logs[peer] = f
	}
	return f
}

// Spool appends one result to peer's hint log, creating it on first
// use. The record is fsynced before Spool returns.
func (h *HintLog) Spool(peer string, res *sweep.Result) error {
	f := h.file(peer)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.j == nil {
		j, err := sweep.OpenJournal(f.path)
		if err != nil {
			h.metrics.hintSpoolErrors.Inc()
			return fmt.Errorf("cluster: opening hint log for %s: %w", peer, err)
		}
		f.j = j
	}
	if err := f.j.Append(res); err != nil {
		h.metrics.hintSpoolErrors.Inc()
		return err
	}
	h.metrics.hintsSpooled.Inc()
	h.enforceBoundsLocked(f)
	return nil
}

// enforceBoundsLocked compacts f's log when it exceeds either bound,
// dropping the oldest hints. Called with f.mu held, after a successful
// append. Compaction targets three quarters of each bound so the cost
// is amortized — one rewrite absorbs a quarter-bound of further growth
// — rather than paid on every append at the ceiling. Best-effort: a
// compaction failure keeps (or reopens) the oversized log, and the next
// append retries.
func (h *HintLog) enforceBoundsLocked(f *hintFile) {
	if h.maxRecords <= 0 && h.maxBytes <= 0 {
		return
	}
	overRecords := h.maxRecords > 0 && f.j.Stats().Records > h.maxRecords
	overBytes := false
	if h.maxBytes > 0 {
		if fi, err := os.Stat(f.path); err == nil && fi.Size() > h.maxBytes {
			overBytes = true
		}
	}
	if !overRecords && !overBytes {
		return
	}

	// Reopen for a consistent read of every record, pick the newest
	// suffix that fits comfortably under both bounds, and atomically
	// replace the log with a rewrite of just that suffix.
	if err := f.j.Close(); err != nil {
		f.j = nil
		return
	}
	j, err := sweep.OpenJournal(f.path)
	if err != nil {
		f.j = nil
		return
	}
	all := j.Recovered()
	j.Close()
	f.j = nil

	keepFrom := 0
	if h.maxRecords > 0 {
		target := h.maxRecords - h.maxRecords/4
		if int64(len(all)) > target {
			keepFrom = len(all) - int(target)
		}
	}
	if h.maxBytes > 0 {
		target := h.maxBytes - h.maxBytes/4
		var total int64
		from := len(all)
		for i := len(all) - 1; i >= keepFrom; i-- {
			b, err := json.Marshal(all[i])
			if err != nil {
				break
			}
			// 8 bytes of length+CRC framing per journal record.
			rec := int64(len(b)) + 8
			if total+rec > target {
				break
			}
			total += rec
			from = i
		}
		// A bound smaller than a single record must not wipe the log:
		// the newest hint always survives.
		if from == len(all) && len(all) > 0 {
			from = len(all) - 1
		}
		keepFrom = from
	}
	if keepFrom == 0 {
		// Bounds were exceeded but the headroom walk kept everything
		// (e.g. unmarshalable estimate); reopen and move on.
		if j, err := sweep.OpenJournal(f.path); err == nil {
			f.j = j
		}
		return
	}

	tmp := f.path + ".compact"
	os.Remove(tmp)
	nj, err := sweep.OpenJournal(tmp)
	if err != nil {
		if j, err := sweep.OpenJournal(f.path); err == nil {
			f.j = j
		}
		return
	}
	for _, res := range all[keepFrom:] {
		if err := nj.Append(res); err != nil {
			nj.Close()
			os.Remove(tmp)
			if j, err := sweep.OpenJournal(f.path); err == nil {
				f.j = j
			}
			return
		}
	}
	if err := nj.Close(); err != nil {
		os.Remove(tmp)
		if j, err := sweep.OpenJournal(f.path); err == nil {
			f.j = j
		}
		return
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		if j, err := sweep.OpenJournal(f.path); err == nil {
			f.j = j
		}
		return
	}
	if j, err := sweep.OpenJournal(f.path); err == nil {
		f.j = j
	}
	h.metrics.hintsDropped.Add(int64(keepFrom))
}

// PendingFor returns the number of hints spooled for peer.
func (h *HintLog) PendingFor(peer string) int64 {
	h.mu.Lock()
	f := h.logs[peer]
	h.mu.Unlock()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.j == nil {
		return 0
	}
	return f.j.Stats().Records
}

// Pending returns the total hint backlog across all peers — the
// cluster_hints_pending gauge.
func (h *HintLog) Pending() int64 {
	h.mu.Lock()
	files := make([]*hintFile, 0, len(h.logs))
	for _, f := range h.logs {
		files = append(files, f)
	}
	h.mu.Unlock()
	var n int64
	for _, f := range files {
		f.mu.Lock()
		if f.j != nil {
			n += f.j.Stats().Records
		}
		f.mu.Unlock()
	}
	return n
}

// Peers lists every peer with a spooled backlog.
func (h *HintLog) Peers() []string {
	h.mu.Lock()
	peers := make([]string, 0, len(h.logs))
	for p := range h.logs {
		peers = append(peers, p)
	}
	h.mu.Unlock()
	out := peers[:0]
	for _, p := range peers {
		if h.PendingFor(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Replay delivers every hint spooled for peer through send, in append
// order, and deletes the log once all are delivered. If any send fails
// the log is kept intact (already-sent hints included — delivery is
// at-least-once and stores are idempotent) and Replay returns how many
// were delivered before the failure.
func (h *HintLog) Replay(peer string, send func(*sweep.Result) error) (int, error) {
	f := h.file(peer)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.j == nil {
		return 0, nil
	}
	// Reopen for a consistent read of everything appended so far; the
	// reopened journal is positioned for appends, so a failed replay
	// leaves the log usable for further spooling.
	if err := f.j.Close(); err != nil {
		return 0, fmt.Errorf("cluster: closing hint log for %s: %w", peer, err)
	}
	j, err := sweep.OpenJournal(f.path)
	if err != nil {
		f.j = nil
		return 0, fmt.Errorf("cluster: reopening hint log for %s: %w", peer, err)
	}
	f.j = j
	sent := 0
	for _, res := range j.Recovered() {
		if err := send(res); err != nil {
			h.metrics.hintReplayErrors.Inc()
			h.metrics.hintsReplayed.Add(int64(sent))
			return sent, err
		}
		sent++
	}
	j.Close()
	f.j = nil
	if err := os.Remove(f.path); err != nil && !os.IsNotExist(err) {
		return sent, fmt.Errorf("cluster: removing drained hint log for %s: %w", peer, err)
	}
	h.metrics.hintsReplayed.Add(int64(sent))
	return sent, nil
}
