package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multicluster/internal/sweep"
)

// specsOwnedBy collects n distinct specs whose content hash the ring
// assigns to owner.
func specsOwnedBy(t *testing.T, ring *Ring, owner string, n int) []sweep.JobSpec {
	t.Helper()
	var specs []sweep.JobSpec
	for seed := int64(1); seed < 2000 && len(specs) < n; seed++ {
		spec := sweep.JobSpec{Benchmark: "compress", Seed: seed, Instructions: testInstructions}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := norm.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(hash) == owner {
			specs = append(specs, spec)
		}
	}
	if len(specs) < n {
		t.Fatalf("found only %d of %d specs owned by %s", len(specs), n, owner)
	}
	return specs
}

func mustHash(t *testing.T, spec sweep.JobSpec) string {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := norm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// TestDecommissionMidSweepZeroLoss is the planned-rebalancing
// acceptance: decommission a node in the middle of a sweep and lose
// nothing — every cell lands in the survivor's cache, the departed node
// is out of both rings, and /v1/table2 stays byte-identical to a
// single-node reference.
func TestDecommissionMidSweepZeroLoss(t *testing.T) {
	// Single-node reference output.
	ref := sweep.NewService(sweep.Config{Workers: 4})
	defer ref.Close()
	refSrv := httptest.NewServer(sweep.NewServer(ref))
	defer refSrv.Close()
	const query = "/v1/table2?n=2000&seed=7&format=json"
	status, want := httpGet(t, refSrv.URL+query)
	if status != http.StatusOK {
		t.Fatalf("reference table2: %d %s", status, want)
	}

	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())

	ctx := context.Background()

	// Give b something it alone holds, so the drain provably streams.
	warm := specOwnedBy(t, a.node.ring, "b")
	if _, _, err := a.svc.Run(ctx, warm); err != nil {
		t.Fatal(err)
	}

	grid := sweep.Grid{
		Machines:     []string{"single", "dual"},
		Schedulers:   []string{"none", "local"},
		Seeds:        []int64{1, 2, 3},
		Instructions: testInstructions,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rows, total, err := a.svc.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}

	// Decommission b after the first row, while the sweep is mid-flight.
	var rep DecommissionReport
	got := 0
	for row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d failed: %s", row.Index, row.Error)
		}
		got++
		if got == 1 {
			resp, err := http.Post(b.url()+"/cluster/v1/leave", "application/json", nil)
			if err != nil {
				t.Fatalf("leave: %v", err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("leave: status %d, report %+v", resp.StatusCode, rep)
			}
		}
	}
	if got != total {
		t.Fatalf("sweep delivered %d of %d rows across a decommission", got, total)
	}

	if !rep.Removed || rep.Failed != 0 {
		t.Fatalf("decommission report %+v: want removed, zero failures", rep)
	}
	if rep.Streamed == 0 {
		t.Error("decommission streamed nothing despite b holding a result")
	}
	if b.node.metrics.rebalanceStreamed.Value() != int64(rep.Streamed) {
		t.Errorf("cluster_rebalance_streamed_total = %d, report says %d",
			b.node.metrics.rebalanceStreamed.Value(), rep.Streamed)
	}

	// b is gone from its own ring and from a's.
	if ms := b.node.ring.Members(); len(ms) != 1 || ms[0].ID != "a" {
		t.Errorf("b's ring after leave: %v, want just a", ms)
	}
	if ms := a.node.ring.Members(); len(ms) != 1 || ms[0].ID != "a" {
		t.Errorf("a's ring after b left: %v, want just a", ms)
	}

	// The departed node reports leaving through readiness and status.
	if status, body := httpGet(t, b.url()+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz on a decommissioned node = %d %s, want 503", status, body)
	}
	var sv statusView
	if _, body := httpGet(t, b.url()+"/cluster/v1/status"); true {
		if err := json.Unmarshal(body, &sv); err != nil {
			t.Fatal(err)
		}
	}
	if sv.Health != "leaving" || !sv.Leaving {
		t.Errorf("decommissioned status = %+v, want health=leaving", sv)
	}

	// Zero loss: every cell of the sweep (and the warm-up cell) is in
	// a's cache — computed, forwarded-and-seeded, or streamed over.
	for _, spec := range append(specs, warm) {
		hash := mustHash(t, spec)
		if _, ok := a.svc.Cached(hash); !ok {
			t.Errorf("survivor lost cell %s (%s seed %d)", hash[:12], spec.Benchmark, spec.Seed)
		}
	}

	// And the user-visible artifact is unchanged.
	status, gotBody := httpGet(t, a.url()+query)
	if status != http.StatusOK {
		t.Fatalf("table2 after decommission: %d", status)
	}
	if !bytes.Equal(gotBody, want) {
		t.Errorf("table2 after decommission differs from single-node reference:\nwant %s\ngot  %s", want, gotBody)
	}
}

// TestAntiEntropyHealsPartition is the anti-entropy acceptance: hints
// are deliberately bounded so a dead peer's backlog truncates, and
// after the peer returns the digest exchange — not the (lossy) hint
// replay — restores every missing result. Per-range digests end equal
// and cluster_hints_pending ends 0.
func TestAntiEntropyHealsPartition(t *testing.T) {
	dirB := t.TempDir()
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{hintMaxRecords: 2})
	b := startNode(t, "b", "", dirB, []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())
	addrB := b.addr

	// Partition: b dies before computing anything.
	b.kill()

	ctx := context.Background()
	specs := specsOwnedBy(t, a.node.ring, "b", 5)
	for _, spec := range specs {
		if _, _, err := a.svc.Run(ctx, spec); err != nil {
			t.Fatalf("run with dead owner: %v", err)
		}
	}

	// The bound truncated the backlog: 5 results owed, only 2 spooled.
	if n := a.node.hints.PendingFor("b"); n != 2 {
		t.Fatalf("bounded hint backlog = %d, want 2", n)
	}
	dropped := a.node.metrics.hintsDropped.Value()
	if dropped != 3 {
		t.Fatalf("cluster_hints_dropped_total = %d, want 3", dropped)
	}

	// Heal: b comes back cold (same dir, empty journal). Hint replay
	// delivers the surviving 2; anti-entropy must supply the rest.
	b2 := startNode(t, "b", addrB, dirB, []Member{a.member()}, nodeOpts{})
	a.node.Sync(ctx)

	if n := a.node.hints.Pending(); n != 0 {
		t.Fatalf("cluster_hints_pending = %d after heal, want 0", n)
	}
	if pushed := a.node.metrics.aePushed.Value(); pushed != 3 {
		t.Errorf("cluster_antientropy_pushed_total = %d, want 3 (the dropped hints)", pushed)
	}
	if a.node.metrics.aeRounds.Value() == 0 {
		t.Error("no anti-entropy rounds recorded")
	}
	for _, spec := range specs {
		hash := mustHash(t, spec)
		if _, ok := b2.svc.Cached(hash); !ok {
			t.Errorf("anti-entropy did not restore cell %s", hash[:12])
		}
	}

	// Per-range digests agree: what a says b should hold is exactly
	// what b holds for itself.
	da, db := a.node.digestFor("b", nil), b2.node.digestFor("b", nil)
	if da.Total != db.Total || len(da.Buckets) != len(db.Buckets) {
		t.Fatalf("digest totals diverge after heal: a=%+v b=%+v", da, db)
	}
	for i := range da.Buckets {
		if da.Buckets[i] != db.Buckets[i] {
			t.Errorf("digest bucket %d diverges: %+v vs %+v", da.Buckets[i].Bucket, da.Buckets[i], db.Buckets[i])
		}
	}

	// A further round finds nothing to do — the exchange converged.
	pushed := a.node.metrics.aePushed.Value()
	a.node.AntiEntropyRound(ctx)
	if a.node.metrics.aePushed.Value() != pushed {
		t.Error("anti-entropy kept pushing after convergence")
	}
}

// TestJoinPullsOwnedRangesNoRecompute: a node joining a populated
// cluster pulls the key ranges it now owns through its first
// anti-entropy round instead of recomputing them — the whole cluster's
// compute count does not grow.
func TestJoinPullsOwnedRangesNoRecompute(t *testing.T) {
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})

	grid := sweep.Grid{
		Machines:     []string{"single", "dual"},
		Schedulers:   []string{"none"},
		Seeds:        []int64{1, 2, 3, 4},
		Instructions: testInstructions,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rows, _, err := a.svc.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	for row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d: %s", row.Index, row.Error)
		}
	}

	// c joins; its first Sync introduces it to a and pulls its ranges.
	c := startNode(t, "c", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	c.node.Sync(ctx)

	owned := 0
	for _, spec := range specs {
		hash := mustHash(t, spec)
		if c.node.ring.Owner(hash) != "c" {
			continue
		}
		owned++
		if _, ok := c.svc.Cached(hash); !ok {
			t.Errorf("joined node missing owned cell %s", hash[:12])
		}
	}
	if owned == 0 {
		t.Fatal("ring assigned c no cells — test proves nothing")
	}
	if pulled := c.node.metrics.aePulled.Value(); pulled < int64(owned) {
		t.Errorf("cluster_antientropy_pulled_total = %d, want >= %d", pulled, owned)
	}
	if misses := c.svc.Stats().Cache.Misses; misses != 0 {
		t.Errorf("join recomputed %d cells instead of pulling them", misses)
	}

	// Re-running the sweep anywhere computes nothing new.
	before := a.svc.Stats().Cache.Misses + c.svc.Stats().Cache.Misses
	rows, _, err = c.svc.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	for row := range rows {
		if row.Error != "" {
			t.Fatalf("post-join row %d: %s", row.Index, row.Error)
		}
	}
	after := a.svc.Stats().Cache.Misses + c.svc.Stats().Cache.Misses
	if after != before {
		t.Errorf("post-join sweep recomputed %d cells; the cluster already held every result", after-before)
	}
}

// TestReadRepairRefreshesOwner: a replica-local cache hit for a
// non-owned hash verifies the owner still holds the result and pushes
// our copy when it does not.
func TestReadRepairRefreshesOwner(t *testing.T) {
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())

	// Divergence: a holds a replica of a b-owned result that b lost
	// (installed directly, as a stale journal recovery would).
	spec := specOwnedBy(t, a.node.ring, "b")
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash := mustHash(t, spec)
	if err := a.svc.StoreResult(&sweep.Result{Spec: norm, Hash: hash}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.svc.Cached(hash); ok {
		t.Fatal("test setup broken: owner already has the result")
	}

	// Serving the spec from a is a replica-local hit → async repair.
	res, hit, err := a.svc.Run(context.Background(), spec)
	if err != nil || !hit || res.Hash != hash {
		t.Fatalf("replica hit: res=%v hit=%v err=%v", res, hit, err)
	}

	// Poll the counter, not the owner's cache: the metric ticks after the
	// push round-trip completes, so it is the last observable step.
	deadline := time.Now().Add(5 * time.Second)
	for a.node.metrics.readRepairs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("read-repair never restored the owner's copy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := b.svc.Cached(hash); !ok {
		t.Fatal("repair counted but the owner still lacks the result")
	}
	if n := a.node.metrics.readRepairs.Value(); n != 1 {
		t.Errorf("cluster_read_repairs_total = %d, want 1", n)
	}

	// A second hit dedups: no new repair probe for the same hash.
	if _, hit, err := a.svc.Run(context.Background(), spec); err != nil || !hit {
		t.Fatalf("second hit: %v %v", hit, err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := a.node.metrics.readRepairs.Value(); n != 1 {
		t.Errorf("repeat hit re-repaired: counter = %d, want 1", n)
	}
}

// TestReadyzDegradedOnPeerMajorityDown: a node cut off from most of its
// cluster answers 503 on /readyz and reports degraded in status, so
// load balancers stop routing to the likely-isolated node.
func TestReadyzDegradedOnPeerMajorityDown(t *testing.T) {
	dead := []Member{
		{ID: "x", URL: "http://127.0.0.1:1"},
		{ID: "y", URL: "http://127.0.0.1:1"},
	}
	a := startNode(t, "a", "", t.TempDir(), dead, nodeOpts{})

	// Peers start optimistically up: ready until proven isolated.
	if status, body := httpGet(t, a.url()+"/readyz"); status != http.StatusOK {
		t.Fatalf("GET /readyz before probing = %d %s, want 200", status, body)
	}

	a.node.Sync(context.Background())
	if !a.node.members.DownMajority() {
		t.Fatal("both seed peers unreachable, DownMajority should hold")
	}
	status, body := httpGet(t, a.url()+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Errorf("GET /readyz while isolated = %d %q, want 503 degraded", status, body)
	}
	var sv statusView
	_, body = httpGet(t, a.url()+"/cluster/v1/status")
	if err := json.Unmarshal(body, &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Health != "degraded" {
		t.Errorf("status health = %q, want degraded", sv.Health)
	}
	var metricsText strings.Builder
	if err := a.reg.WriteText(&metricsText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsText.String(), "cluster_degraded 1") {
		t.Error("cluster_degraded gauge did not flip to 1")
	}
}

// TestDigestEndpointValidation nails the digest endpoint's contract.
func TestDigestEndpointValidation(t *testing.T) {
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	if status, _ := httpGet(t, a.url()+"/cluster/v1/digest"); status != http.StatusBadRequest {
		t.Errorf("digest without ?for= %d, want 400", status)
	}
	spec := sweep.JobSpec{Benchmark: "compress", Seed: 1, Instructions: testInstructions}
	if _, _, err := a.svc.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	hash := mustHash(t, spec)
	b := digestBucket(hash)
	status, body := httpGet(t, fmt.Sprintf("%s/cluster/v1/digest?for=a&list=%d,notanumber,999", a.url(), b))
	if status != http.StatusOK {
		t.Fatalf("digest: %d %s", status, body)
	}
	var dv digestView
	if err := json.Unmarshal(body, &dv); err != nil {
		t.Fatal(err)
	}
	if dv.Total != 1 || len(dv.Hashes[b]) != 1 || dv.Hashes[b][0] != hash {
		t.Errorf("digest view %+v, want the one cached hash listed in bucket %d", dv, b)
	}
	// The transfer endpoint serves it; unknown hashes 404.
	if status, _ := httpGet(t, a.url()+"/cluster/v1/result/"+hash); status != http.StatusOK {
		t.Errorf("GET result/%s = %d, want 200", hash[:12], status)
	}
	if status, _ := httpGet(t, a.url()+"/cluster/v1/result/nosuchhash"); status != http.StatusNotFound {
		t.Errorf("GET result/nosuchhash = %d, want 404", status)
	}
}
