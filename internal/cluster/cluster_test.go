package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"multicluster/internal/faultinject"
	"multicluster/internal/obs"
	"multicluster/internal/sweep"
)

// testInstructions keeps every simulated cell tiny so the two-node
// tests exercise routing, not the simulator.
const testInstructions = 2000

// testNode is one in-process cluster member: a real sweep service with
// a journal, a cluster node, and an HTTP server on a real TCP port.
type testNode struct {
	t    *testing.T
	id   string
	addr string
	dir  string
	reg  *obs.Registry
	node *Node
	svc  *sweep.Service
	srv  *http.Server
}

type nodeOpts struct {
	replicas       int
	hintMaxRecords int64
	inject         *faultinject.Plan
	wrap           func(http.Handler) http.Handler
}

// startNode boots one member. addr "" picks a fresh port; passing a
// previous node's addr (with the same dir) restarts it in place —
// journal and hint logs recover from disk.
func startNode(t *testing.T, id, addr, dir string, seeds []Member, opts nodeOpts) *testNode {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	journal, err := sweep.OpenJournal(filepath.Join(dir, "results.journal"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	node, err := NewNode(Config{
		Self:     Member{ID: id, URL: "http://" + ln.Addr().String()},
		Seeds:    seeds,
		Replicas: opts.replicas,
		HintDir:  filepath.Join(dir, "hints"),
		// Probes are driven explicitly with Sync; the huge interval only
		// sets the probe timeout.
		Heartbeat:      time.Hour,
		FailThreshold:  1,
		HintMaxRecords: opts.hintMaxRecords,
		Metrics:        NewMetrics(reg),
		Inject:         opts.inject,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := sweep.NewService(sweep.Config{
		Workers: 4,
		Journal: journal,
		NodeID:  id,
		Remote:  node,
		Inject:  opts.inject,
	})
	node.AttachService(svc)
	handler := node.Handler(sweep.NewServer(svc))
	if opts.wrap != nil {
		handler = opts.wrap(handler)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	n := &testNode{t: t, id: id, addr: ln.Addr().String(), dir: dir, reg: reg, node: node, svc: svc, srv: srv}
	t.Cleanup(n.kill)
	return n
}

func (n *testNode) url() string { return "http://" + n.addr }

// kill stops the node abruptly: the listener closes and in-flight
// connections are cut, as a crash would.
func (n *testNode) kill() {
	n.srv.Close()
	n.svc.Close()
}

func (n *testNode) member() Member { return Member{ID: n.id, URL: n.url()} }

// specOwnedBy finds a spec whose content hash the ring assigns to owner,
// varying the seed until one lands there.
func specOwnedBy(t *testing.T, ring *Ring, owner string) sweep.JobSpec {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		spec := sweep.JobSpec{Benchmark: "compress", Seed: seed, Instructions: testInstructions}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := norm.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(hash) == owner {
			return spec
		}
	}
	t.Fatalf("no spec owned by %s in 1000 seeds", owner)
	return sweep.JobSpec{}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTwoNodeTable2Identical is the tentpole acceptance: a two-node
// cluster serves /v1/table2 byte-identically to a single-node daemon,
// with part of the grid genuinely computed on the peer.
func TestTwoNodeTable2Identical(t *testing.T) {
	// Single-node reference.
	ref := sweep.NewService(sweep.Config{Workers: 4})
	defer ref.Close()
	refSrv := httptest.NewServer(sweep.NewServer(ref))
	defer refSrv.Close()

	const query = "/v1/table2?n=2000&seed=7&format=json"
	status, want := httpGet(t, refSrv.URL+query)
	if status != http.StatusOK {
		t.Fatalf("reference table2: %d %s", status, want)
	}

	// Two-node cluster: b seeds from a, a is told about b directly.
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())

	status, got := httpGet(t, a.url()+query)
	if status != http.StatusOK {
		t.Fatalf("cluster table2: %d %s", status, got)
	}
	if string(got) != string(want) {
		t.Errorf("two-node table2 differs from single-node:\nwant %s\ngot  %s", want, got)
	}
	if a.node.metrics.forwards.Value() == 0 {
		t.Error("no cells were forwarded to the peer — the table2 grid should split across owners")
	}
	// And the same request against the peer is also identical (replica
	// cache hits plus forwards in the other direction).
	status, got = httpGet(t, b.url()+query)
	if status != http.StatusOK || string(got) != string(want) {
		t.Errorf("table2 from node b: status %d, identical=%v", status, string(got) == string(want))
	}
}

// TestClusterKillRejoinZeroLoss is the hinted-handoff acceptance: kill a
// node mid-sweep, finish the sweep with zero lost cells (sheds to local
// compute + hint logs), then rejoin the node and watch the backlog
// drain to it — cluster_hints_pending returns to 0 and every cell the
// dead node owned lands in its cache.
func TestClusterKillRejoinZeroLoss(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := startNode(t, "a", "", dirA, nil, nodeOpts{})
	b := startNode(t, "b", "", dirB, []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())
	addrB := b.addr

	grid := sweep.Grid{
		Machines:     []string{"single"},
		Schedulers:   []string{"none"},
		Seeds:        []int64{1, 2, 3},
		Instructions: testInstructions,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rows, total, err := a.svc.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(specs) {
		t.Fatalf("grid expands to %d, sweep says %d", len(specs), total)
	}

	// Kill b after the first row: the rest of the sweep must shed its
	// b-owned cells to local compute and the hint log.
	got := 0
	for row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d failed: %s", row.Index, row.Error)
		}
		if row.Result == nil {
			t.Fatalf("row %d has no result", row.Index)
		}
		got++
		if got == 1 {
			b.kill()
		}
	}
	if got != total {
		t.Fatalf("sweep delivered %d of %d rows after mid-sweep kill", got, total)
	}

	// Everything a does not own should now be spooled for b (cells b
	// finished before dying were forwarded, not hinted — both are fine;
	// at least some of 18 cells must have been orphaned mid-flight).
	pending := a.node.hints.PendingFor("b")
	if pending == 0 {
		t.Fatal("expected a hint backlog for the killed node")
	}
	if st := a.node.members.State("b"); st != PeerDown {
		t.Fatalf("killed peer state = %s, want down", st)
	}

	// Rejoin: a fresh process on the same address over the same data
	// directory. Its first ping tells a it is back, and a drains the
	// backlog into it synchronously.
	b2 := startNode(t, "b", addrB, dirB, []Member{a.member()}, nodeOpts{})
	b2.node.Sync(ctx)

	if n := a.node.hints.PendingFor("b"); n != 0 {
		t.Fatalf("hint backlog after rejoin = %d, want 0", n)
	}
	var metricsText strings.Builder
	if err := a.reg.WriteText(&metricsText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsText.String(), "cluster_hints_pending 0") {
		t.Errorf("cluster_hints_pending did not return to 0:\n%s", metricsText.String())
	}
	if a.node.metrics.hintsReplayed.Value() != int64(pending) {
		t.Errorf("hints replayed = %d, spooled = %d", a.node.metrics.hintsReplayed.Value(), pending)
	}

	// Zero loss: every cell b owns is in b's cache — recovered from its
	// own journal or handed back through the hint log.
	owned := 0
	for _, spec := range specs {
		hash, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if a.node.ring.Owner(hash) != "b" {
			continue
		}
		owned++
		res, ok := b2.svc.Cached(hash)
		if !ok {
			t.Errorf("b lost cell %s (%s seed %d) across kill+rejoin", hash[:12], spec.Benchmark, spec.Seed)
			continue
		}
		if res.Hash != hash {
			t.Errorf("cell %s stored under wrong hash %s", hash[:12], res.Hash[:12])
		}
	}
	if owned == 0 {
		t.Fatal("ring assigned b no cells — test proves nothing")
	}
}

// TestClusterTransitiveDiscovery: nodes seeded only with one peer learn
// the rest through heartbeat delta exchange.
func TestClusterTransitiveDiscovery(t *testing.T) {
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	c := startNode(t, "c", "", t.TempDir(), []Member{a.member()}, nodeOpts{})

	ctx := context.Background()
	// b and c introduce themselves to a; a's map then carries both, and
	// the next probes hand each the other.
	b.node.Sync(ctx)
	c.node.Sync(ctx)
	b.node.Sync(ctx)

	for _, n := range []*testNode{a, b, c} {
		members := n.node.ring.Members()
		if len(members) != 3 {
			t.Errorf("node %s sees %d members (%v), want 3", n.id, len(members), members)
		}
	}
	// All three agree on every owner.
	for seed := int64(1); seed <= 50; seed++ {
		spec := sweep.JobSpec{Benchmark: "compress", Seed: seed, Instructions: testInstructions}
		norm, _ := spec.Normalize()
		hash, _ := norm.Hash()
		oa, ob, oc := a.node.ring.Owner(hash), b.node.ring.Owner(hash), c.node.ring.Owner(hash)
		if oa != ob || ob != oc {
			t.Fatalf("owner of %s diverges: a=%s b=%s c=%s", hash[:12], oa, ob, oc)
		}
	}
}

// TestForwardFaultInjection severs the forwarding path with the
// "forward" injection site: every non-owned cell must fall back to
// local computation and still produce a correct result.
func TestForwardFaultInjection(t *testing.T) {
	plan, err := faultinject.ParsePlan("forward:error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{inject: plan})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())

	spec := specOwnedBy(t, a.node.ring, "b")
	res, hit, err := a.svc.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("run with severed forwarding: %v", err)
	}
	if hit {
		t.Error("first run should not be a cache hit")
	}
	if res == nil || res.Hash == "" {
		t.Fatal("no result from local fallback")
	}
	if a.node.metrics.forwards.Value() != 0 {
		t.Error("injection should have cut the forward before the network")
	}
	counts := plan.Counts()
	faults := 0
	for site, n := range counts {
		if strings.HasPrefix(site, "forward/") {
			faults += int(n)
		}
	}
	if faults == 0 {
		t.Errorf("no forward faults recorded: %v", counts)
	}
}

// TestClusterHeaderPropagationAndJobProxy checks the request-metadata
// path end to end: a forwarded run carries the submitter's request id,
// client id, and origin node, and a job id minted on one node resolves
// from any other.
func TestClusterHeaderPropagationAndJobProxy(t *testing.T) {
	var mu sync.Mutex
	forwarded := make(map[string]string)
	capture := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/cluster/v1/run" {
				mu.Lock()
				forwarded["request"] = r.Header.Get("X-Request-ID")
				forwarded["client"] = r.Header.Get("X-Client-ID")
				forwarded["origin"] = r.Header.Get("X-MC-Origin")
				mu.Unlock()
			}
			next.ServeHTTP(w, r)
		})
	}

	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{wrap: capture})
	a.node.members.addMember(b.member())

	spec := specOwnedBy(t, a.node.ring, "b")
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, a.url()+"/v1/jobs", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "req-e2e-42")
	req.Header.Set("X-Client-ID", "client-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view sweep.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if !strings.HasPrefix(view.ID, "a-j") {
		t.Fatalf("job id %q should carry the minting node's prefix", view.ID)
	}

	// Wait for the job (and so the forward) to finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := httpGet(t, a.url()+"/v1/jobs/"+view.ID)
		if status != http.StatusOK {
			t.Fatalf("poll: %d %s", status, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.State == sweep.JobDone || view.State == sweep.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != sweep.JobDone {
		t.Fatalf("job finished %s: %s", view.State, view.Error)
	}

	mu.Lock()
	got := map[string]string{"request": forwarded["request"], "client": forwarded["client"], "origin": forwarded["origin"]}
	mu.Unlock()
	want := map[string]string{"request": "req-e2e-42", "client": "client-e2e", "origin": "a"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("forwarded %s header = %q, want %q", k, got[k], v)
		}
	}

	// The job id resolves from the peer too, via the lookup proxy.
	status, body := httpGet(t, b.url()+"/v1/jobs/"+view.ID)
	if status != http.StatusOK {
		t.Fatalf("proxied lookup: %d %s", status, body)
	}
	var proxied sweep.JobView
	if err := json.Unmarshal(body, &proxied); err != nil {
		t.Fatal(err)
	}
	if proxied.ID != view.ID || proxied.State != sweep.JobDone {
		t.Errorf("proxied view = %s/%s, want %s/done", proxied.ID, proxied.State, view.ID)
	}
	if b.node.metrics.proxied.Value() == 0 {
		t.Error("lookup should have been proxied to the minting node")
	}

	// An id no member minted stays a local 404.
	if status, _ := httpGet(t, b.url()+"/v1/jobs/zz-j999"); status != http.StatusNotFound {
		t.Errorf("unknown-node job id: %d, want 404", status)
	}
}

// TestClusterSoak pushes a larger randomized-ish load through two nodes
// with chaos on the forward path, then verifies the cluster converged:
// every cell everywhere, no lost results. Kept deterministic via the
// fault plan's fixed seed. Heavier than the rest — used by the
// soak-cluster make target and still fast enough for the default run.
func TestClusterSoak(t *testing.T) {
	plan, err := faultinject.ParsePlan("forward:error:0.3", 7)
	if err != nil {
		t.Fatal(err)
	}
	a := startNode(t, "a", "", t.TempDir(), nil, nodeOpts{inject: plan})
	b := startNode(t, "b", "", t.TempDir(), []Member{a.member()}, nodeOpts{})
	a.node.members.addMember(b.member())

	grid := sweep.Grid{
		Machines:     []string{"single", "dual"},
		Schedulers:   []string{"none", "local"},
		Seeds:        []int64{1, 2},
		Instructions: testInstructions,
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rows, total, err := a.svc.Sweep(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for row := range rows {
		if row.Error != "" {
			t.Fatalf("row %d: %s", row.Index, row.Error)
		}
		seen++
	}
	if seen != total || total != len(specs) {
		t.Fatalf("sweep under chaos: %d rows of %d (%d specs)", seen, total, len(specs))
	}
	// Drain any hints produced by chaos-induced local fallbacks, then
	// check convergence: every spec resolvable from both nodes.
	a.node.Sync(ctx)
	b.node.Sync(ctx)
	if n := a.node.hints.Pending(); n != 0 {
		t.Fatalf("hints still pending after sync: %d", n)
	}
	for _, spec := range specs {
		hash, _ := spec.Hash()
		owner := a.node.ring.Owner(hash)
		var holder *testNode
		if owner == "a" {
			holder = a
		} else {
			holder = b
		}
		if _, ok := holder.svc.Cached(hash); !ok {
			t.Errorf("owner %s missing cell %s (%s)", owner, hash[:12], spec.Benchmark)
		}
	}
}
