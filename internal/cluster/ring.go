package cluster

import (
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Member is one node of the partition map: a stable id and the base URL
// its HTTP endpoints are served from. A member marked Leaving is mid
// graceful decommission: it stays reachable (its URL still resolves,
// hints still drain to it) but owns nothing — ownership is a function
// of the non-leaving member set, so new work routes to the members that
// inherit its ranges while it streams its data away.
type Member struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Leaving bool   `json:"leaving,omitempty"`
}

// Delta is one versioned change to the partition map — the unit peers
// exchange on heartbeats instead of re-broadcasting the whole member
// table. Version is the ring's version after the change was applied, in
// the originating node's own monotonic sequence. Leave marks a member
// as gracefully leaving without removing it.
type Delta struct {
	Version uint64  `json:"version"`
	Add     *Member `json:"add,omitempty"`
	Remove  string  `json:"remove,omitempty"`
	Leave   string  `json:"leave,omitempty"`
}

// RingState is a full snapshot of the partition map, sent only when a
// peer has fallen too far behind the bounded delta history.
type RingState struct {
	Version uint64   `json:"version"`
	Members []Member `json:"members"`
}

// DefaultVNodes is the virtual-node count per member when Config.VNodes
// is zero: enough points that three-to-eight-node rings split the key
// space within a few percent of even.
const DefaultVNodes = 64

// maxDeltaHistory bounds the retained delta log; a peer asking for older
// history receives a full snapshot instead.
const maxDeltaHistory = 64

type ringPoint struct {
	point uint64
	node  string
}

// Ring is a virtual-node consistent-hash ring over the cluster members,
// keyed by JobSpec content hash. Each member contributes vnodes points;
// a key is owned by the member whose point follows the key's point
// clockwise. Every mutation bumps a local version and appends a Delta,
// so peers can catch up with cheap change-sets rather than whole-table
// broadcasts (the Hazelcast partition-migration lesson).
//
// Ownership is a function of the non-leaving member set only — a
// member that is down keeps its partitions, and writes owed to it spool
// as hints until it returns. That keeps the map stable under flapping
// and makes hinted handoff, not rebalancing, the failure-time
// mechanism. Rebalancing happens only on planned change: a member
// marked leaving (graceful decommission) drops out of ownership while
// staying addressable, and a removal retires it entirely.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	version uint64
	members map[string]Member
	active  int // members contributing points (not leaving)
	points  []ringPoint
	history []Delta
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]Member)}
}

// hashPoint maps a string to a ring position. FNV-64a alone has weak
// avalanche in its high bits when inputs differ only in a short suffix
// ("n1#0" vs "n1#1"), which would bunch a member's vnodes together, so
// the sum is passed through a splitmix64 finalizer.
func hashPoint(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add installs (or updates the URL or leaving flag of) a member,
// reporting whether the ring changed. A new member bumps the version
// and records a delta. Add never clears an existing Leaving flag —
// leaving is one-way until the member is removed, so a stale snapshot
// or seed list cannot resurrect ownership a decommission already gave
// away. (A member that missed the removal and then sees the node
// rejoin keeps it marked leaving until the remove+add deltas arrive;
// the cost is misrouted forwards, not lost data, exactly like the
// documented snapshot-removal limitation.)
func (r *Ring) Add(m Member) bool {
	if m.ID == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.members[m.ID]; ok {
		leaving := old.Leaving || m.Leaving
		urlChanged := m.URL != "" && m.URL != old.URL
		if !urlChanged && leaving == old.Leaving {
			return false
		}
		if m.URL == "" {
			m.URL = old.URL
		}
		m.Leaving = leaving
		r.members[m.ID] = m
		r.record(Delta{Add: &m})
		if leaving != old.Leaving {
			// Placement changed: the member's points leave the ring.
			r.rebuildLocked()
		}
		return true
	}
	r.members[m.ID] = m
	r.record(Delta{Add: &m})
	r.rebuildLocked()
	return true
}

// SetLeaving marks a member as gracefully leaving: it keeps its URL and
// peer entry but contributes no points, so every key it owned routes to
// the members that inherit its ranges. Reports whether the ring
// changed.
func (r *Ring) SetLeaving(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[id]
	if !ok || m.Leaving {
		return false
	}
	m.Leaving = true
	r.members[id] = m
	r.record(Delta{Leave: id})
	r.rebuildLocked()
	return true
}

// Leaving reports whether id is a member marked as leaving.
func (r *Ring) Leaving(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[id]
	return ok && m.Leaving
}

// Remove drops a member, reporting whether the ring changed.
func (r *Ring) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return false
	}
	delete(r.members, id)
	r.record(Delta{Remove: id})
	r.rebuildLocked()
	return true
}

// record bumps the version and appends d to the bounded history. Called
// with r.mu held.
func (r *Ring) record(d Delta) {
	r.version++
	d.Version = r.version
	r.history = append(r.history, d)
	if len(r.history) > maxDeltaHistory {
		r.history = r.history[len(r.history)-maxDeltaHistory:]
	}
}

// rebuildLocked regenerates the sorted point list from the member set.
// Leaving members contribute no points — they own nothing while they
// stream their data to the inheritors. Member counts are small (a
// handful of nodes), so a full rebuild per mutation is cheaper than it
// looks and trivially correct.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	r.active = 0
	for id, m := range r.members {
		if m.Leaving {
			continue
		}
		r.active++
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hashPoint(id + "#" + strconv.Itoa(i)), id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		return r.points[i].node < r.points[j].node
	})
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.searchLocked(key)].node
}

// Owners returns up to n distinct members for key, primary first,
// walking the ring clockwise — the replica set of the key.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.active {
		n = r.active
	}
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.searchLocked(key); len(owners) < n && i < len(r.points); i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			owners = append(owners, node)
		}
	}
	return owners
}

// searchLocked finds the index of the first point at or after key's
// position, wrapping to 0. Called with r.mu held (read or write).
func (r *Ring) searchLocked(key string) int {
	p := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Version returns the ring's local version.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Members returns the member set sorted by id.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// URL returns the base URL of a member.
func (r *Ring) URL(id string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[id]
	return m.URL, ok
}

// Size returns the number of members, leaving ones included.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Active returns the number of members currently contributing
// ownership points (not marked leaving).
func (r *Ring) Active() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.active
}

// DeltasSince returns the changes after version v, oldest first. ok is
// false when v predates the retained history (or is from the future of
// a restarted peer) — the caller should send or request a full snapshot
// instead.
func (r *Ring) DeltasSince(v uint64) ([]Delta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v > r.version {
		return nil, false
	}
	if v == r.version {
		return nil, true
	}
	// history covers (version-len(history), version]
	if len(r.history) == 0 || r.history[0].Version > v+1 {
		return nil, false
	}
	out := make([]Delta, 0, r.version-v)
	for _, d := range r.history {
		if d.Version > v {
			out = append(out, d)
		}
	}
	return out, true
}

// Snapshot returns the full partition map.
func (r *Ring) Snapshot() RingState {
	return RingState{Version: r.Version(), Members: r.Members()}
}
