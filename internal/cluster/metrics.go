package cluster

import (
	"multicluster/internal/obs"
)

// Metrics is the cluster layer's observability surface, registered in
// the same obs.Registry as the sweep instruments so one GET /metrics
// scrape covers the whole node. NewNode synthesizes a private registry
// when the caller does not supply one, so inside the package a node's
// metrics are never nil.
type Metrics struct {
	reg *obs.Registry

	forwards       *obs.Counter // runs forwarded to their owner
	forwardErrors  *obs.Counter // forwards that failed (fell back local)
	localFallbacks *obs.Counter // non-owned cells computed locally
	proxied        *obs.Counter // job lookups proxied to the owning node

	replications     *obs.Counter
	replicationErrs  *obs.Counter
	storedResults    *obs.Counter // results accepted from peers
	hintsSpooled     *obs.Counter
	hintsReplayed    *obs.Counter
	hintReplayErrors *obs.Counter
	hintSpoolErrors  *obs.Counter
	hintsDropped     *obs.Counter // hints truncated oldest-first by the log bound

	readRepairs       *obs.Counter // missing copies refreshed after a replica hit
	aeRounds          *obs.Counter // per-peer anti-entropy reconciliations
	aeErrors          *obs.Counter // reconciliations abandoned on a peer error
	aePushed          *obs.Counter // results pushed to a peer that lacked them
	aePulled          *obs.Counter // results pulled from a peer holding them
	digestMismatches  *obs.Counter // digest buckets that differed and forced a hash exchange
	rebalanceStreamed *obs.Counter // results streamed to new owners on decommission

	heartbeats     *obs.Counter
	heartbeatErrs  *obs.Counter
	peerUp         *obs.Counter
	peerDown       *obs.Counter
	deltasApplied  *obs.Counter
	snapshotsTaken *obs.Counter
}

// NewMetrics registers the cluster instrument families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	m.forwards = reg.Counter("cluster_forwards_total",
		"Runs forwarded to the owning node.")
	m.forwardErrors = reg.Counter("cluster_forward_errors_total",
		"Forwarded runs that failed and fell back to local computation.")
	m.localFallbacks = reg.Counter("cluster_local_fallbacks_total",
		"Non-owned cells computed locally because the owner was unreachable.")
	m.proxied = reg.Counter("cluster_lookups_proxied_total",
		"Job lookups proxied to the node that owns the job id.")
	m.replications = reg.Counter("cluster_replications_total",
		"Results pushed to peers (replica fan-out and owner handback).")
	m.replicationErrs = reg.Counter("cluster_replication_errors_total",
		"Result pushes that failed and were spooled as hints instead.")
	m.storedResults = reg.Counter("cluster_results_stored_total",
		"Results accepted from peers (replication pushes and hint replays).")
	m.hintsSpooled = reg.Counter("cluster_hints_spooled_total",
		"Results spooled into per-peer hint logs for later handoff.")
	m.hintsReplayed = reg.Counter("cluster_hints_replayed_total",
		"Hinted results delivered to their owner after it returned.")
	m.hintReplayErrors = reg.Counter("cluster_hint_replay_errors_total",
		"Hint replay rounds that failed and kept their log for retry.")
	m.hintSpoolErrors = reg.Counter("cluster_hint_spool_errors_total",
		"Hints that could not be written to the local hint log.")
	m.hintsDropped = reg.Counter("cluster_hints_dropped_total",
		"Hints truncated oldest-first because a per-peer hint log exceeded its record or byte bound.")
	m.readRepairs = reg.Counter("cluster_read_repairs_total",
		"Results pushed to a replica-set member found missing its copy after a replica-local read.")
	m.aeRounds = reg.Counter("cluster_antientropy_rounds_total",
		"Per-peer anti-entropy reconciliation rounds.")
	m.aeErrors = reg.Counter("cluster_antientropy_errors_total",
		"Anti-entropy rounds abandoned because the peer failed mid-exchange.")
	m.aePushed = reg.Counter("cluster_antientropy_pushed_total",
		"Results pushed to a peer that should hold them but did not.")
	m.aePulled = reg.Counter("cluster_antientropy_pulled_total",
		"Results pulled from a peer because this node should hold them but did not.")
	m.digestMismatches = reg.Counter("cluster_digest_mismatch_buckets_total",
		"Anti-entropy digest buckets that differed and forced a per-hash exchange.")
	m.rebalanceStreamed = reg.Counter("cluster_rebalance_streamed_total",
		"Results streamed to their new owners during a graceful decommission.")
	m.heartbeats = reg.Counter("cluster_heartbeats_total",
		"Successful peer heartbeats.")
	m.heartbeatErrs = reg.Counter("cluster_heartbeat_errors_total",
		"Failed peer heartbeats.")
	m.peerUp = reg.Counter("cluster_peer_transitions_total",
		"Peer state transitions, by new state.", obs.L("to", "up"))
	m.peerDown = reg.Counter("cluster_peer_transitions_total",
		"Peer state transitions, by new state.", obs.L("to", "down"))
	m.deltasApplied = reg.Counter("cluster_ring_deltas_applied_total",
		"Partition-map deltas applied from peer heartbeats.")
	m.snapshotsTaken = reg.Counter("cluster_ring_snapshots_total",
		"Full partition-map snapshots applied because the delta history was exhausted.")
	return m
}

// bindNode registers the scrape-time samplers that read the node's
// live state: ring version, peer counts by state, and hint backlog.
func (m *Metrics) bindNode(n *Node) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("cluster_ring_version",
		"Local version of the consistent-hash partition map.",
		func() float64 { return float64(n.ring.Version()) })
	m.reg.GaugeFunc("cluster_ring_members",
		"Members of the consistent-hash ring, this node included.",
		func() float64 { return float64(n.ring.Size()) })
	m.reg.GaugeFunc("cluster_peers",
		"Known peers by liveness state.",
		func() float64 { return float64(n.members.countState(PeerUp)) }, obs.L("state", "up"))
	m.reg.GaugeFunc("cluster_peers",
		"Known peers by liveness state.",
		func() float64 { return float64(n.members.countState(PeerDown)) }, obs.L("state", "down"))
	m.reg.GaugeFunc("cluster_hints_pending",
		"Hinted results spooled locally, awaiting their owner's return.",
		func() float64 { return float64(n.hints.Pending()) })
	m.reg.GaugeFunc("cluster_degraded",
		"1 when this node is leaving the ring or a majority of its known peers are down.",
		func() float64 {
			if n.Healthy() {
				return 0
			}
			return 1
		})
}
