package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"multicluster/internal/obs"
)

func testMembership(onUp func(string)) *Membership {
	ring := NewRing(8)
	self := Member{ID: "self", URL: "http://self"}
	seeds := []Member{
		{ID: "p1", URL: "http://p1"},
		{ID: "p2", URL: "http://p2"},
	}
	return newMembership(self, ring, seeds, &http.Client{}, time.Hour, 3, NewMetrics(obs.NewRegistry()), onUp)
}

func TestJitteredIntervalDeterministicAndBounded(t *testing.T) {
	const d = 2 * time.Second
	if jitteredInterval("n1", d) != jitteredInterval("n1", d) {
		t.Error("jitter must be deterministic per id")
	}
	lo, hi := time.Duration(float64(d)*0.85), time.Duration(float64(d)*1.15)
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("node-%d", i)
		j := jitteredInterval(id, d)
		if j < lo || j >= hi {
			t.Errorf("jitteredInterval(%s) = %v outside [%v, %v)", id, j, lo, hi)
		}
		distinct[j] = true
	}
	// The whole point: identically configured nodes do not tick in
	// lockstep.
	if len(distinct) < 28 {
		t.Errorf("only %d distinct intervals across 32 ids — jitter is not spreading", len(distinct))
	}
	if jitteredInterval("n1", 0) != 0 {
		t.Error("non-positive intervals pass through untouched")
	}
}

func TestMembershipFailureThresholdAndOnUp(t *testing.T) {
	var mu sync.Mutex
	var ups []string
	m := testMembership(func(id string) {
		mu.Lock()
		ups = append(ups, id)
		mu.Unlock()
	})

	// Below the threshold nothing transitions.
	m.ReportFailure("p1")
	m.ReportFailure("p1")
	if st := m.State("p1"); st != PeerUp {
		t.Fatalf("state after 2 of 3 failures = %s", st)
	}
	m.ReportFailure("p1")
	if st := m.State("p1"); st != PeerDown {
		t.Fatalf("state after 3 failures = %s", st)
	}
	// Success resets and fires onUp exactly once.
	m.reportSuccess("p1")
	m.reportSuccess("p1")
	if st := m.State("p1"); st != PeerUp {
		t.Fatalf("state after recovery = %s", st)
	}
	mu.Lock()
	got := append([]string(nil), ups...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "p1" {
		t.Errorf("onUp fired %v, want exactly one p1", got)
	}
	// A single failure after recovery does not re-demote.
	m.ReportFailure("p1")
	if st := m.State("p1"); st != PeerUp {
		t.Errorf("one failure after recovery demoted the peer")
	}
	// Unknown peers are reported down and mutations on them are no-ops.
	if st := m.State("ghost"); st != PeerDown {
		t.Errorf("unknown peer state = %s, want down", st)
	}
	m.ReportFailure("ghost")
	m.reportSuccess("ghost")
}

// TestMembershipConcurrentFailureSuccess hammers the failure detector
// from many goroutines — ReportFailure, reportSuccess, Observe, and
// every reader interleaved — and checks the table stays consistent.
// Run under -race this is the interleaving proof the detector needs.
func TestMembershipConcurrentFailureSuccess(t *testing.T) {
	// onUp runs outside the peer lock; touching the membership from the
	// hook must not deadlock (the node's hook replays hints, which
	// reads peer state).
	var m *Membership
	m = testMembership(func(id string) {
		m.State(id)
		m.DownMajority()
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := "p1"
			if g%2 == 1 {
				peer = "p2"
			}
			for i := 0; i < 400; i++ {
				switch i % 5 {
				case 0:
					m.ReportFailure(peer)
				case 1:
					m.reportSuccess(peer)
				case 2:
					m.Observe(Member{ID: peer, URL: "http://" + peer})
				case 3:
					m.State(peer)
					m.DownMajority()
				case 4:
					m.Peers()
					m.countState(PeerDown)
				}
			}
		}(g)
	}
	wg.Wait()

	views := m.Peers()
	if len(views) != 2 {
		t.Fatalf("peer table corrupted: %v", views)
	}
	for _, p := range views {
		if p.State != PeerUp && p.State != PeerDown {
			t.Errorf("peer %s in impossible state %q", p.ID, p.State)
		}
		if p.Failures < 0 {
			t.Errorf("peer %s has negative failures %d", p.ID, p.Failures)
		}
	}
}

func TestDownMajority(t *testing.T) {
	m := testMembership(nil)
	if m.DownMajority() {
		t.Error("all peers up: not degraded")
	}
	// 1 of 2 down is not a majority.
	for i := 0; i < 3; i++ {
		m.ReportFailure("p1")
	}
	if m.DownMajority() {
		t.Error("half down is not a majority")
	}
	for i := 0; i < 3; i++ {
		m.ReportFailure("p2")
	}
	if !m.DownMajority() {
		t.Error("2 of 2 down must be degraded")
	}
	m.reportSuccess("p1")
	if m.DownMajority() {
		t.Error("recovery should clear the degraded signal")
	}

	// A node with no peers is never degraded.
	lone := newMembership(Member{ID: "solo"}, NewRing(8), nil, &http.Client{}, time.Hour, 3, NewMetrics(obs.NewRegistry()), nil)
	if lone.DownMajority() {
		t.Error("peerless node reported degraded")
	}
}
