package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func ringMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("n%d", i+1), URL: fmt.Sprintf("http://node%d", i+1)}
	}
	return ms
}

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("%016x", hashPoint(fmt.Sprintf("key-%d", i)))
	}
	return ks
}

func TestRingOwnerDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	ms := ringMembers(5)
	for _, m := range ms {
		a.Add(m)
	}
	for i := len(ms) - 1; i >= 0; i-- {
		b.Add(ms[i])
	}
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner of %s depends on insertion order: %s vs %s", k, ao, bo)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	counts := make(map[string]int)
	ks := keys(3000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected keys across all 3 members, got %v", counts)
	}
	for id, c := range counts {
		// A perfectly even split is 1000; virtual nodes should keep every
		// member within a loose factor of it.
		if c < len(ks)/6 || c > len(ks)/2+len(ks)/6 {
			t.Errorf("member %s owns %d of %d keys — distribution too skewed: %v", id, c, len(ks), counts)
		}
	}
}

func TestRingAddMovesOnlyToNewMember(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	ks := keys(2000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	r.Add(Member{ID: "n4", URL: "http://node4"})
	moved := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "n4" {
			t.Fatalf("key %s moved from %s to %s, not to the new member", k, before[k], after)
		}
	}
	// Consistent hashing moves ~1/4 of keys to the 4th member; a naive
	// mod-N rehash would move ~3/4.
	if moved == 0 || moved > len(ks)/2 {
		t.Errorf("adding a member moved %d of %d keys (want roughly %d)", moved, len(ks), len(ks)/4)
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	for _, k := range keys(100) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want all 3 members", k, owners)
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %s but Owner = %s", owners[0], r.Owner(k))
		}
	}
	if got := r.Owners(keys(1)[0], 10); len(got) != 3 {
		t.Fatalf("Owners with n beyond the member count = %v, want 3 distinct members", got)
	}
}

func TestRingDeltaHistory(t *testing.T) {
	r := NewRing(4)
	r.Add(Member{ID: "n1", URL: "u1"})
	v1 := r.Version()
	r.Add(Member{ID: "n2", URL: "u2"})
	r.Remove("n1")

	deltas, ok := r.DeltasSince(v1)
	if !ok {
		t.Fatalf("DeltasSince(%d) fell back to snapshot within history", v1)
	}
	if len(deltas) != 2 {
		t.Fatalf("expected 2 deltas since v%d, got %v", v1, deltas)
	}
	if deltas[0].Add == nil || deltas[0].Add.ID != "n2" {
		t.Errorf("first delta should add n2: %+v", deltas[0])
	}
	if deltas[1].Remove != "n1" {
		t.Errorf("second delta should remove n1: %+v", deltas[1])
	}

	// A caller already at the current version needs nothing.
	if deltas, ok := r.DeltasSince(r.Version()); !ok || len(deltas) != 0 {
		t.Errorf("DeltasSince(current) = %v, %v; want empty, true", deltas, ok)
	}

	// Push enough changes to evict v1 from the bounded history: now only
	// a snapshot can catch that caller up.
	for i := 0; i < maxDeltaHistory+1; i++ {
		r.Add(Member{ID: fmt.Sprintf("m%d", i), URL: "u"})
	}
	if _, ok := r.DeltasSince(v1); ok {
		t.Error("DeltasSince should demand a snapshot once the history is exhausted")
	}
}

func TestRingDeltaConvergence(t *testing.T) {
	src := NewRing(8)
	for _, m := range ringMembers(4) {
		src.Add(m)
	}
	src.Remove("n3")

	// A fresh follower applies the snapshot, then later deltas.
	dst := NewRing(8)
	for _, m := range src.Snapshot().Members {
		dst.Add(m)
	}
	seen := src.Version()
	src.Add(Member{ID: "n5", URL: "http://node5"})
	src.Remove("n1")
	deltas, ok := src.DeltasSince(seen)
	if !ok {
		t.Fatal("expected deltas, got snapshot fallback")
	}
	for _, d := range deltas {
		if d.Add != nil {
			dst.Add(*d.Add)
		}
		if d.Remove != "" {
			dst.Remove(d.Remove)
		}
	}
	srcM, dstM := src.Members(), dst.Members()
	if len(srcM) != len(dstM) {
		t.Fatalf("follower diverged: %v vs %v", srcM, dstM)
	}
	for i := range srcM {
		if srcM[i] != dstM[i] {
			t.Fatalf("follower diverged at %d: %v vs %v", i, srcM, dstM)
		}
	}
	for _, k := range keys(300) {
		if src.Owner(k) != dst.Owner(k) {
			t.Fatalf("ownership diverged for %s: %s vs %s", k, src.Owner(k), dst.Owner(k))
		}
	}
}

// TestRingLeavingSemantics: a leaving member drops out of ownership but
// stays addressable, the flag is one-way until removal, and only keys
// it owned move.
func TestRingLeavingSemantics(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	ks := keys(1500)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}

	v := r.Version()
	if !r.SetLeaving("n2") {
		t.Fatal("SetLeaving on a live member should change the ring")
	}
	if r.Version() == v {
		t.Error("leaving must bump the version so peers learn it")
	}
	if !r.Leaving("n2") {
		t.Error("Leaving(n2) should report true")
	}
	if r.Size() != 3 || r.Active() != 2 {
		t.Errorf("size/active = %d/%d, want 3/2 (leaving members stay members)", r.Size(), r.Active())
	}
	if u, ok := r.URL("n2"); !ok || u == "" {
		t.Error("a leaving member must stay addressable")
	}
	for _, k := range ks {
		o := r.Owner(k)
		if o == "n2" {
			t.Fatalf("leaving member still owns %s", k)
		}
		if before[k] != "n2" && o != before[k] {
			t.Fatalf("key %s not owned by the leaver moved %s -> %s", k, before[k], o)
		}
	}
	for _, k := range ks[:100] {
		for _, o := range r.Owners(k, 3) {
			if o == "n2" {
				t.Fatalf("Owners(%s) includes the leaving member", k)
			}
		}
	}

	// One-way: a stale add cannot resurrect ownership mid-drain.
	r.Add(Member{ID: "n2", URL: "http://node2"})
	if !r.Leaving("n2") {
		t.Error("Add cleared the leaving flag")
	}
	v = r.Version()
	if r.SetLeaving("n2") || r.Version() != v {
		t.Error("SetLeaving on an already-leaving member should be a no-op")
	}

	// Removal retires it; a genuine rejoin afterwards starts clean.
	r.Remove("n2")
	r.Add(Member{ID: "n2", URL: "http://node2"})
	if r.Leaving("n2") {
		t.Error("a member re-added after removal must not inherit the leaving flag")
	}
	if r.Active() != 3 {
		t.Errorf("active after rejoin = %d, want 3", r.Active())
	}
}

// TestRingSnapshotFallbackUnderChurn drives a follower through the
// delta-history protocol while the source churns concurrently: fast
// polls ride the delta path, a slow poll outlives the bounded history
// and must take the snapshot fallback, and the follower still converges
// — members, leaving flags, and ownership all equal. Run under -race
// this also proves the ring's locking under concurrent mutation.
func TestRingSnapshotFallbackUnderChurn(t *testing.T) {
	src := NewRing(4)
	for _, m := range ringMembers(3) {
		src.Add(m)
	}

	dst := NewRing(4)
	var seen uint64
	snapshots, deltaBatches := 0, 0
	catchUp := func() {
		if deltas, ok := src.DeltasSince(seen); ok {
			if len(deltas) > 0 {
				deltaBatches++
			}
			for _, d := range deltas {
				if d.Add != nil {
					dst.Add(*d.Add)
				}
				if d.Leave != "" {
					dst.SetLeaving(d.Leave)
				}
				if d.Remove != "" {
					dst.Remove(d.Remove)
				}
				seen = d.Version
			}
			return
		}
		snap := src.Snapshot()
		for _, m := range snap.Members {
			dst.Add(m)
		}
		snapshots++
		seen = snap.Version
	}
	catchUp() // initial sync via snapshot

	// Concurrent churn: adds and leaves only — removals do not survive a
	// snapshot fallback by design (snapshots only add), so a test that
	// includes them would assert a divergence the protocol documents.
	const churners = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				src.Add(Member{ID: id, URL: "http://" + id})
				if i%5 == 0 {
					src.SetLeaving(id)
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	// The follower polls while the churn runs: some batches ride deltas,
	// and with 240 mutations against a 64-entry history at least one poll
	// must fall back to a snapshot.
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		catchUp()
	}
	catchUp() // final drain

	if deltaBatches == 0 {
		t.Error("no poll ever rode the delta path — churn outran every poll, test proves less than intended")
	}

	// Controlled burst: more mutations than the bounded history holds,
	// with no polls in between, must force the snapshot fallback.
	for i := 0; i < maxDeltaHistory+8; i++ {
		src.Add(Member{ID: fmt.Sprintf("burst-%d", i), URL: "http://burst"})
	}
	if _, ok := src.DeltasSince(seen); ok {
		t.Fatal("history should be exhausted after a burst longer than maxDeltaHistory")
	}
	wasSnapshots := snapshots
	catchUp()
	if snapshots != wasSnapshots+1 {
		t.Fatalf("burst catch-up took %d snapshots, want exactly 1 more", snapshots-wasSnapshots)
	}

	srcM, dstM := src.Members(), dst.Members()
	if len(srcM) != len(dstM) {
		t.Fatalf("follower diverged: %d members vs %d", len(srcM), len(dstM))
	}
	for i := range srcM {
		if srcM[i] != dstM[i] {
			t.Fatalf("follower diverged at %d: %+v vs %+v", i, srcM[i], dstM[i])
		}
	}
	if src.Active() != dst.Active() {
		t.Fatalf("active counts diverge: %d vs %d", src.Active(), dst.Active())
	}
	for _, k := range keys(500) {
		if src.Owner(k) != dst.Owner(k) {
			t.Fatalf("ownership diverged for %s: %s vs %s", k, src.Owner(k), dst.Owner(k))
		}
	}
}

func TestRingURLChangeKeepsOwnership(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	ks := keys(500)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	v := r.Version()
	if !r.Add(Member{ID: "n2", URL: "http://node2-rehomed"}) {
		t.Fatal("re-adding a member with a new URL should record a change")
	}
	if r.Version() == v {
		t.Error("URL change should bump the map version so peers learn it")
	}
	if u, _ := r.URL("n2"); u != "http://node2-rehomed" {
		t.Errorf("URL(n2) = %q after rehome", u)
	}
	for _, k := range ks {
		if r.Owner(k) != before[k] {
			t.Fatalf("URL change moved key %s from %s to %s", k, before[k], r.Owner(k))
		}
	}
	if r.Add(Member{ID: "n2", URL: "http://node2-rehomed"}) {
		t.Error("re-adding an identical member should be a no-op")
	}
}
