package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("n%d", i+1), URL: fmt.Sprintf("http://node%d", i+1)}
	}
	return ms
}

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("%016x", hashPoint(fmt.Sprintf("key-%d", i)))
	}
	return ks
}

func TestRingOwnerDeterministicAcrossInsertOrder(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	ms := ringMembers(5)
	for _, m := range ms {
		a.Add(m)
	}
	for i := len(ms) - 1; i >= 0; i-- {
		b.Add(ms[i])
	}
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner of %s depends on insertion order: %s vs %s", k, ao, bo)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	counts := make(map[string]int)
	ks := keys(3000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected keys across all 3 members, got %v", counts)
	}
	for id, c := range counts {
		// A perfectly even split is 1000; virtual nodes should keep every
		// member within a loose factor of it.
		if c < len(ks)/6 || c > len(ks)/2+len(ks)/6 {
			t.Errorf("member %s owns %d of %d keys — distribution too skewed: %v", id, c, len(ks), counts)
		}
	}
}

func TestRingAddMovesOnlyToNewMember(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	ks := keys(2000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	r.Add(Member{ID: "n4", URL: "http://node4"})
	moved := 0
	for _, k := range ks {
		after := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "n4" {
			t.Fatalf("key %s moved from %s to %s, not to the new member", k, before[k], after)
		}
	}
	// Consistent hashing moves ~1/4 of keys to the 4th member; a naive
	// mod-N rehash would move ~3/4.
	if moved == 0 || moved > len(ks)/2 {
		t.Errorf("adding a member moved %d of %d keys (want roughly %d)", moved, len(ks), len(ks)/4)
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	for _, k := range keys(100) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want all 3 members", k, owners)
		}
		seen := make(map[string]bool)
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %s but Owner = %s", owners[0], r.Owner(k))
		}
	}
	if got := r.Owners(keys(1)[0], 10); len(got) != 3 {
		t.Fatalf("Owners with n beyond the member count = %v, want 3 distinct members", got)
	}
}

func TestRingDeltaHistory(t *testing.T) {
	r := NewRing(4)
	r.Add(Member{ID: "n1", URL: "u1"})
	v1 := r.Version()
	r.Add(Member{ID: "n2", URL: "u2"})
	r.Remove("n1")

	deltas, ok := r.DeltasSince(v1)
	if !ok {
		t.Fatalf("DeltasSince(%d) fell back to snapshot within history", v1)
	}
	if len(deltas) != 2 {
		t.Fatalf("expected 2 deltas since v%d, got %v", v1, deltas)
	}
	if deltas[0].Add == nil || deltas[0].Add.ID != "n2" {
		t.Errorf("first delta should add n2: %+v", deltas[0])
	}
	if deltas[1].Remove != "n1" {
		t.Errorf("second delta should remove n1: %+v", deltas[1])
	}

	// A caller already at the current version needs nothing.
	if deltas, ok := r.DeltasSince(r.Version()); !ok || len(deltas) != 0 {
		t.Errorf("DeltasSince(current) = %v, %v; want empty, true", deltas, ok)
	}

	// Push enough changes to evict v1 from the bounded history: now only
	// a snapshot can catch that caller up.
	for i := 0; i < maxDeltaHistory+1; i++ {
		r.Add(Member{ID: fmt.Sprintf("m%d", i), URL: "u"})
	}
	if _, ok := r.DeltasSince(v1); ok {
		t.Error("DeltasSince should demand a snapshot once the history is exhausted")
	}
}

func TestRingDeltaConvergence(t *testing.T) {
	src := NewRing(8)
	for _, m := range ringMembers(4) {
		src.Add(m)
	}
	src.Remove("n3")

	// A fresh follower applies the snapshot, then later deltas.
	dst := NewRing(8)
	for _, m := range src.Snapshot().Members {
		dst.Add(m)
	}
	seen := src.Version()
	src.Add(Member{ID: "n5", URL: "http://node5"})
	src.Remove("n1")
	deltas, ok := src.DeltasSince(seen)
	if !ok {
		t.Fatal("expected deltas, got snapshot fallback")
	}
	for _, d := range deltas {
		if d.Add != nil {
			dst.Add(*d.Add)
		}
		if d.Remove != "" {
			dst.Remove(d.Remove)
		}
	}
	srcM, dstM := src.Members(), dst.Members()
	if len(srcM) != len(dstM) {
		t.Fatalf("follower diverged: %v vs %v", srcM, dstM)
	}
	for i := range srcM {
		if srcM[i] != dstM[i] {
			t.Fatalf("follower diverged at %d: %v vs %v", i, srcM, dstM)
		}
	}
	for _, k := range keys(300) {
		if src.Owner(k) != dst.Owner(k) {
			t.Fatalf("ownership diverged for %s: %s vs %s", k, src.Owner(k), dst.Owner(k))
		}
	}
}

func TestRingURLChangeKeepsOwnership(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	ks := keys(500)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}
	v := r.Version()
	if !r.Add(Member{ID: "n2", URL: "http://node2-rehomed"}) {
		t.Fatal("re-adding a member with a new URL should record a change")
	}
	if r.Version() == v {
		t.Error("URL change should bump the map version so peers learn it")
	}
	if u, _ := r.URL("n2"); u != "http://node2-rehomed" {
		t.Errorf("URL(n2) = %q after rehome", u)
	}
	for _, k := range ks {
		if r.Owner(k) != before[k] {
			t.Fatalf("URL change moved key %s from %s to %s", k, before[k], r.Owner(k))
		}
	}
	if r.Add(Member{ID: "n2", URL: "http://node2-rehomed"}) {
		t.Error("re-adding an identical member should be a no-op")
	}
}
