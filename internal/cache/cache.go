// Package cache models the instruction and data caches of §4.1 of the
// paper: 64-Kbyte, two-way set-associative, LRU-replaced caches backed by a
// memory interface with a fixed fetch latency and unlimited bandwidth. The
// data cache uses an inverted MSHR, imposing no restriction on the number
// of in-flight misses; a reference to a line whose fill is still in flight
// merges with the outstanding miss and waits only for the remaining fill
// time.
package cache

import "fmt"

// Config sizes one cache.
type Config struct {
	// Size is the total capacity in bytes.
	Size int `json:"size"`
	// LineSize is the line (block) size in bytes; must be a power of two.
	LineSize int `json:"line_size"`
	// Assoc is the set associativity.
	Assoc int `json:"assoc"`
	// MissLatency is the fill latency in cycles (the paper's memory
	// interface has a 16-cycle fetch latency).
	MissLatency int `json:"miss_latency"`
}

// Default64K returns the paper's cache configuration: 64 KB, two-way set
// associative, 16-cycle miss latency. The paper does not state a line size;
// 32 bytes matches the 21064-generation caches the study targeted.
func Default64K() Config {
	return Config{Size: 64 * 1024, LineSize: 32, Assoc: 2, MissLatency: 16}
}

// Stats counts cache traffic.
type Stats struct {
	Accesses int64 `json:"accesses"`
	Misses   int64 `json:"misses"` // primary misses that start a fill
	Merges   int64 `json:"merges"` // accesses that merged with an in-flight fill
}

// MissRate returns misses (primary + merged) per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.Merges) / float64(s.Accesses)
}

type line struct {
	tag     uint64
	valid   bool
	lastUse int64 // for LRU
	readyAt int64 // cycle the fill completes (inverted-MSHR merging)
}

// Cache is a set-associative cache with timestamp LRU and in-place miss
// tracking.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	stats    Stats
	tick     int64 // monotonically increasing access counter for LRU
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineSize)
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets (size %d, line %d, assoc %d) not a power of two", nSets, cfg.Size, cfg.LineSize, cfg.Assoc)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nSets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.setShift++
	}
	c.setMask = uint64(nSets - 1)
	return c, nil
}

// MustNew is New for configurations known to be valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access references addr at time now and returns the extra latency beyond
// the hit path: 0 on a hit, MissLatency on a primary miss, and the
// remaining fill time when the access merges with an in-flight fill.
func (c *Cache) Access(addr uint64, now int64) (extraLatency int) {
	c.stats.Accesses++
	c.tick++
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.tick
			if l.readyAt > now {
				c.stats.Merges++
				return int(l.readyAt - now)
			}
			return 0
		}
	}
	// Primary miss: fill in place, evicting the LRU way.
	victim := &set[0]
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	c.stats.Misses++
	victim.valid = true
	victim.tag = tag
	victim.lastUse = c.tick
	victim.readyAt = now + int64(c.cfg.MissLatency)
	return c.cfg.MissLatency
}

// Contains reports whether addr currently hits (fill complete by now),
// without touching LRU state or statistics.
func (c *Cache) Contains(addr uint64, now int64) bool {
	set := c.sets[(addr>>c.setShift)&c.setMask]
	tag := addr >> c.setShift
	for i := range set {
		if set[i].valid && set[i].tag == tag && set[i].readyAt <= now {
			return true
		}
	}
	return false
}

// LineSize returns the configured line size.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stats = Stats{}
	c.tick = 0
}
