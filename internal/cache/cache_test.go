package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets × 2 ways × 16-byte lines = 128 bytes; easy to force conflicts.
	return MustNew(Config{Size: 128, LineSize: 16, Assoc: 2, MissLatency: 16})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if lat := c.Access(0x100, 0); lat != 16 {
		t.Fatalf("cold access latency = %d, want 16", lat)
	}
	if lat := c.Access(0x100, 100); lat != 0 {
		t.Fatalf("second access latency = %d, want 0 (hit)", lat)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Merges != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	c := small()
	c.Access(0x100, 0)
	if lat := c.Access(0x10c, 100); lat != 0 {
		t.Errorf("same-line access missed (lat %d)", lat)
	}
}

func TestMergeWithInflightFill(t *testing.T) {
	c := small()
	if lat := c.Access(0x200, 10); lat != 16 {
		t.Fatalf("primary miss lat = %d", lat)
	}
	// 6 cycles later the fill has 10 cycles to go: a merged miss.
	if lat := c.Access(0x200, 16); lat != 10 {
		t.Errorf("merged access lat = %d, want 10", lat)
	}
	if s := c.Stats(); s.Merges != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	// After the fill completes it is a plain hit.
	if lat := c.Access(0x200, 26); lat != 0 {
		t.Errorf("post-fill access lat = %d, want 0", lat)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (set stride = 4 sets × 16B = 64).
	a, b, d := uint64(0x000), uint64(0x040), uint64(0x080)
	c.Access(a, 0)
	c.Access(b, 1)
	c.Access(a, 2) // a most recently used
	c.Access(d, 3) // evicts b (LRU)
	if lat := c.Access(a, 100); lat != 0 {
		t.Error("a should have survived (MRU)")
	}
	if lat := c.Access(b, 101); lat == 0 {
		t.Error("b should have been evicted")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := small()
	c.Access(0x300, 0)
	before := c.Stats()
	if !c.Contains(0x300, 50) {
		t.Error("Contains(0x300) = false after fill")
	}
	if c.Contains(0x999000, 50) {
		t.Error("Contains reports a never-accessed line")
	}
	if c.Stats() != before {
		t.Error("Contains changed statistics")
	}
	// A line still being filled is not yet contained.
	c.Access(0x400, 100)
	if c.Contains(0x400, 105) {
		t.Error("line contained before its fill completes")
	}
	if !c.Contains(0x400, 116) {
		t.Error("line missing after fill completes")
	}
}

func TestResetClears(t *testing.T) {
	c := small()
	c.Access(0x100, 0)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Error("Reset did not clear stats")
	}
	if lat := c.Access(0x100, 0); lat != 16 {
		t.Error("Reset did not clear contents")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 16, Assoc: 2},
		{Size: 128, LineSize: 15, Assoc: 2},
		{Size: 96, LineSize: 16, Assoc: 2}, // 3 sets: not a power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid geometry", cfg)
		}
	}
	if _, err := New(Default64K()); err != nil {
		t.Errorf("paper configuration rejected: %v", err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("zero-access miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 2, Merges: 1}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v, want 0.3", got)
	}
}

func TestRepeatedAccessAlwaysHitsProperty(t *testing.T) {
	// Property: accessing the same address twice in a row (after fill
	// latency) always hits the second time, regardless of address.
	c := MustNew(Default64K())
	now := int64(0)
	f := func(addr uint64) bool {
		now += 100
		c.Access(addr, now)
		return c.Access(addr, now+50) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := MustNew(Default64K())
	// Stream over 4 MB twice: second pass must still miss everywhere.
	var now int64
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4<<20; a += 32 {
			now += 20
			c.Access(a, now)
		}
	}
	s := c.Stats()
	if s.Misses < s.Accesses*99/100 {
		t.Errorf("streaming 64× the capacity should miss ~always: %+v", s)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Default64K())
	c.Access(0x1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, int64(i))
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	c := MustNew(Default64K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*32, int64(i))
	}
}
