// Package conc provides the small concurrency primitives shared by the
// experiment campaigns and the sweep service: a counting semaphore with a
// process-wide CPU-sized instance, and a single-flight content-addressed
// memo cache. Both exist so that every layer of the system — one-shot
// CLIs, nested evaluation campaigns, and the long-lived mcserved daemon —
// draws simulation work from one bounded pool and never computes the same
// configuration twice.
package conc

import (
	"context"
	"runtime"
)

// Semaphore is a counting semaphore. The zero value is unusable; construct
// with NewSemaphore.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore admitting n concurrent holders. n < 1
// is clamped to 1.
func NewSemaphore(n int) *Semaphore {
	if n < 1 {
		n = 1
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// Cap returns the number of slots.
func (s *Semaphore) Cap() int { return cap(s.slots) }

// Acquire blocks until a slot is free or ctx is done. It returns ctx.Err()
// on cancellation, nil on success.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("conc: Release without Acquire")
	}
}

// InUse returns the number of currently held slots.
func (s *Semaphore) InUse() int { return len(s.slots) }

// CPU is the process-wide simulation admission semaphore, sized to
// GOMAXPROCS at startup. Every CPU-bound simulation — whether launched by
// a one-shot CLI campaign or a sweep worker — should run under one slot of
// this semaphore so nested campaigns cannot oversubscribe the machine.
var CPU = NewSemaphore(runtime.GOMAXPROCS(0))
