package conc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBounds(t *testing.T) {
	s := NewSemaphore(2)
	ctx := context.Background()
	var peak, cur atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(ctx); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			s.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds semaphore capacity 2", p)
	}
}

func TestSemaphoreAcquireCancel(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v, want context.Canceled", err)
	}
	s.Release()
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo
	var calls atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err, _ := m.Do("k", func() (any, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %v, want 42", i, v)
		}
	}
	if m.Misses() != 1 || m.Hits() != 31 {
		t.Fatalf("hits=%d misses=%d, want 31/1", m.Hits(), m.Misses())
	}
}

func TestMemoPanicDoesNotPoison(t *testing.T) {
	var m Memo
	func() {
		defer func() { recover() }()
		m.Do("k", func() (any, error) { panic("boom") })
	}()
	v, err, hit := m.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("Do after panic = (%v, %v, hit=%v), want (ok, nil, false)", v, err, hit)
	}
}

func TestMemoGetForget(t *testing.T) {
	var m Memo
	if _, _, ok := m.Get("k"); ok {
		t.Fatal("Get on empty memo reported ok")
	}
	m.Do("k", func() (any, error) { return 7, nil })
	if v, _, ok := m.Get("k"); !ok || v != 7 {
		t.Fatalf("Get = (%v, ok=%v), want (7, true)", v, ok)
	}
	m.Forget("k")
	if _, _, ok := m.Get("k"); ok {
		t.Fatal("Get after Forget reported ok")
	}
}

func TestMemoSeed(t *testing.T) {
	var m Memo
	if !m.Seed("k", 7) {
		t.Fatal("Seed on empty memo reported not installed")
	}
	// Seeding is invisible to the hit/miss counters (it is the replay
	// path, not a request), and the value is served without computing.
	if m.Hits() != 0 || m.Misses() != 0 {
		t.Fatalf("Seed touched counters: hits=%d misses=%d", m.Hits(), m.Misses())
	}
	v, err, hit := m.Do("k", func() (any, error) {
		t.Fatal("Do computed over a seeded entry")
		return nil, nil
	})
	if err != nil || !hit || v != 7 {
		t.Fatalf("Do on seeded key = (%v, %v, hit=%v), want (7, nil, true)", v, err, hit)
	}
	// An existing entry — completed or in flight — wins over a seed.
	if m.Seed("k", 8) {
		t.Fatal("Seed overwrote an existing entry")
	}
	if v, _, _ := m.Do("k", func() (any, error) { return nil, nil }); v != 7 {
		t.Fatalf("seeded value overwritten: %v", v)
	}
}
