package conc

import (
	"sync"
	"sync/atomic"
)

// Memo is a single-flight, content-addressed memo cache: results are keyed
// by a caller-computed content hash, concurrent callers for the same key
// share one computation, and completed results are retained for the life
// of the Memo. The zero value is ready to use.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry

	hits     atomic.Int64
	misses   atomic.Int64
	inflight atomic.Int64
}

type memoEntry struct {
	done chan struct{} // closed when value/err are final
	val  any
	err  error
}

// Do returns the memoized value for key, computing it with fn on the first
// call. Concurrent calls with the same key block until the one running fn
// finishes and then share its result. hit reports whether the result came
// from the cache (including joining an in-flight computation).
//
// A computation that panics poisons nobody: the entry is removed and the
// panic propagates to the caller that ran fn, while waiters receive
// ErrComputePanicked.
func (m *Memo) Do(key string, fn func() (any, error)) (val any, err error, hit bool) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[string]*memoEntry)
	}
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		m.hits.Add(1)
		<-e.done
		return e.val, e.err, true
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	m.misses.Add(1)
	m.inflight.Add(1)
	defer m.inflight.Add(-1)

	normal := false
	defer func() {
		if !normal {
			// fn panicked: drop the poisoned entry so a later call can
			// retry, and release the waiters with a sentinel error.
			m.mu.Lock()
			delete(m.entries, key)
			m.mu.Unlock()
			e.err = ErrComputePanicked
			close(e.done)
		}
	}()
	e.val, e.err = fn()
	normal = true
	close(e.done)
	return e.val, e.err, false
}

// Get returns the completed value for key without computing anything. ok
// is false if the key is absent or still in flight.
func (m *Memo) Get(key string) (val any, err error, ok bool) {
	m.mu.Lock()
	e, present := m.entries[key]
	m.mu.Unlock()
	if !present {
		return nil, nil, false
	}
	select {
	case <-e.done:
		return e.val, e.err, true
	default:
		return nil, nil, false
	}
}

// Seed installs a completed value for key without running a computation
// and without touching the hit/miss counters — the restore path for
// journal replay. It reports whether the value was installed; an existing
// entry (completed or in flight) is left untouched.
func (m *Memo) Seed(key string, val any) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = make(map[string]*memoEntry)
	}
	if _, ok := m.entries[key]; ok {
		return false
	}
	e := &memoEntry{done: make(chan struct{}), val: val}
	close(e.done)
	m.entries[key] = e
	return true
}

// Keys returns the key of every completed, successful entry, in no
// particular order — the enumeration seam for range scans over the
// cache. In-flight computations and remembered failures are excluded:
// callers enumerate what can be served right now.
func (m *Memo) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.entries))
	for k, e := range m.entries {
		select {
		case <-e.done:
			if e.err == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	return keys
}

// Forget drops the entry for key, if any, so the next Do recomputes it.
func (m *Memo) Forget(key string) {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
}

// Len returns the number of entries (completed or in flight).
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Hits returns how many Do calls were served by the cache (including
// joining an in-flight computation).
func (m *Memo) Hits() int64 { return m.hits.Load() }

// Misses returns how many Do calls ran the computation.
func (m *Memo) Misses() int64 { return m.misses.Load() }

// InFlight returns the number of computations currently running.
func (m *Memo) InFlight() int64 { return m.inflight.Load() }

// ErrComputePanicked is delivered to waiters whose shared computation
// panicked in the goroutine that ran it.
var ErrComputePanicked = errComputePanicked{}

type errComputePanicked struct{}

func (errComputePanicked) Error() string { return "conc: shared computation panicked" }
