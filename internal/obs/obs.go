// Package obs is the repo's metrics substrate: counters, gauges,
// fixed-bucket histograms, and lazily-sampled function metrics, collected
// in a Registry that renders the Prometheus text exposition format
// (version 0.0.4). It is deliberately dependency-free — stdlib only — so
// the simulator core, the sweep service, and the mcserved daemon can all
// report through it without pulling a client library into the module.
//
// Instruments are cheap enough for hot paths: a Counter increment is one
// atomic add, a Histogram observation is two atomic adds plus a bucket
// search over a handful of bounds. Exposition walks every registered
// series under the registry lock, so scraping never tears a histogram.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; negative n is ignored (counters only
// go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are the
// inclusive upper edges of the finite buckets; an implicit +Inf bucket
// catches everything beyond the last bound.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, the last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultDurationBuckets spans sub-millisecond to minutes in seconds —
// a reasonable default for request and job latencies.
func DefaultDurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
}

// metricKind discriminates the exposition type of a series.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) exposition() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered metric: a family name plus rendered constant
// labels plus the instrument.
type series struct {
	kind   metricKind
	labels string // rendered `name="value",...` without braces, or ""

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	intFn   func() int64
	floatFn func() float64
}

// family groups every series sharing one metric name: they share a single
// HELP/TYPE header and must agree on the exposition type.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry holds registered metrics and renders them. The zero value is
// not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or returns the existing) counter under name with the
// given constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or returns the existing) histogram with the given
// finite bucket bounds, which must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending: %v", name, bounds))
		}
	}
	s := r.register(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for exporting counters that already live elsewhere (an
// atomic.Int64 on a pool, a memo's hit count) without double accounting.
// fn must be monotonically non-decreasing and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, kindCounterFunc, labels)
	s.intFn = fn
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGaugeFunc, labels)
	s.floatFn = fn
}

// register finds or creates the series for (name, labels). Re-registering
// an existing series with the same kind returns it (func metrics replace
// their sampler); a kind mismatch is a programming error and panics.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind.exposition(), kind.exposition()))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{kind: kind, labels: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// renderLabels renders constant labels in sorted order, Prometheus-escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
	}
	return sb.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind.exposition())
		for _, s := range f.series {
			writeSeries(&sb, f.name, s)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSeries(sb *strings.Builder, name string, s *series) {
	switch s.kind {
	case kindCounter:
		writeSample(sb, name, s.labels, "", strconv.FormatInt(s.counter.Value(), 10))
	case kindGauge:
		writeSample(sb, name, s.labels, "", formatFloat(s.gauge.Value()))
	case kindCounterFunc:
		writeSample(sb, name, s.labels, "", strconv.FormatInt(s.intFn(), 10))
	case kindGaugeFunc:
		writeSample(sb, name, s.labels, "", formatFloat(s.floatFn()))
	case kindHistogram:
		h := s.hist
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(sb, name+"_bucket", s.labels, `le="`+formatFloat(b)+`"`, strconv.FormatInt(cum, 10))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(sb, name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatInt(cum, 10))
		writeSample(sb, name+"_sum", s.labels, "", formatFloat(h.Sum()))
		writeSample(sb, name+"_count", s.labels, "", strconv.FormatInt(h.Count(), 10))
	}
}

// writeSample emits one exposition line, merging constant labels with an
// extra label (the histogram's le).
func writeSample(sb *strings.Builder, name, labels, extra, value string) {
	sb.WriteString(name)
	if labels != "" || extra != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		if labels != "" && extra != "" {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
}
