package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	if c := r.Counter("x_total", "x", L("k", "w")); c == a {
		t.Fatal("different labels shared one series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionLabelsAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("stalls_total", "stalls by cause", L("cause", "icache_miss")).Add(7)
	r.CounterFunc("pool_completed_total", "completed", func() int64 { return 42 })
	r.GaugeFunc("pool_running", "running", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP stalls_total stalls by cause",
		"# TYPE stalls_total counter",
		`stalls_total{cause="icache_miss"} 7`,
		"pool_completed_total 42",
		"# TYPE pool_running gauge",
		"pool_running 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(0, 2, 3); got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("LinearBuckets = %v", got)
	}
	if got := ExponentialBuckets(1, 4, 3); got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("ExponentialBuckets = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{2, 1})
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("v", "", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
