// Package liveness computes live-variable dataflow over IL programs and
// builds the interference graph used by the register allocator (step 5 of
// the paper's methodology) and by the spill heuristics.
package liveness

import "math/bits"

// BitSet is a dense set of live-range IDs.
type BitSet struct {
	words []uint64
}

// NewBitSet returns a set sized for IDs in [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts id.
func (s *BitSet) Add(id int) { s.words[id/64] |= 1 << (uint(id) % 64) }

// Remove deletes id.
func (s *BitSet) Remove(id int) { s.words[id/64] &^= 1 << (uint(id) % 64) }

// Has reports membership.
func (s *BitSet) Has(id int) bool {
	w := id / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%64)) != 0
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *BitSet) UnionWith(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Copy returns an independent copy of s.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Count returns the number of elements.
func (s *BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every element in ascending order.
func (s *BitSet) ForEach(f func(id int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// Elements returns the members in ascending order.
func (s *BitSet) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(id int) { out = append(out, id) })
	return out
}
