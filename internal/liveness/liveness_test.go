package liveness

import (
	"testing"
	"testing/quick"

	"multicluster/internal/il"
	"multicluster/internal/isa"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	for _, id := range []int{0, 63, 64, 129} {
		if s.Has(id) {
			t.Errorf("fresh set has %d", id)
		}
		s.Add(id)
		if !s.Has(id) {
			t.Errorf("Add(%d) not visible", id)
		}
	}
	if got := s.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := s.Elements(); len(got) != 4 || got[0] != 0 || got[3] != 129 {
		t.Errorf("Elements = %v", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 3 {
		t.Error("Remove failed")
	}
	c := s.Copy()
	c.Add(10)
	if s.Has(10) {
		t.Error("Copy is not independent")
	}
}

func TestBitSetUnionProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewBitSet(256), NewBitSet(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Copy()
		u.UnionWith(b)
		for _, x := range xs {
			if !u.Has(int(x)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Has(int(y)) {
				return false
			}
		}
		// Union adds nothing else.
		n := 0
		seen := map[int]bool{}
		for _, x := range xs {
			if !seen[int(x)] {
				seen[int(x)] = true
				n++
			}
		}
		for _, y := range ys {
			if !seen[int(y)] {
				seen[int(y)] = true
				n++
			}
		}
		return u.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// straightLine builds: entry: x=1; y=2; z=x+y; ret z
func straightLine() *il.Program {
	b := il.NewBuilder("straight")
	x, y, z := b.Int("x"), b.Int("y"), b.Int("z")
	bb := b.Block("entry", 1)
	bb.Const(x, 1)
	bb.Const(y, 2)
	bb.Op(isa.ADD, z, x, y)
	bb.Ret(z)
	return b.MustFinish()
}

func TestLivenessStraightLine(t *testing.T) {
	p := straightLine()
	info := Analyze(p)
	if got := info.LiveIn["entry"].Count(); got != 0 {
		t.Errorf("live-in of entry = %d values, want 0", got)
	}
	if got := info.LiveOut["entry"].Count(); got != 0 {
		t.Errorf("live-out of exit block = %d values, want 0", got)
	}
}

// loopProgram builds a loop where acc is live around the back edge.
func loopProgram() (*il.Program, map[string]int) {
	b := il.NewBuilder("loop")
	acc, i, tmp := b.Int("acc"), b.Int("i"), b.Int("tmp")
	e := b.Block("entry", 1)
	e.Const(acc, 0)
	e.Const(i, 10)
	e.FallTo("loop")
	l := b.Block("loop", 10)
	l.Op(isa.ADD, acc, acc, i)
	l.OpImm(isa.SUB, i, i, 1)
	l.OpImm(isa.CMPLT, tmp, i, 0)
	l.CondBr(isa.BEQ, tmp, "loop", "done")
	d := b.Block("done", 1)
	d.Ret(acc)
	ids := map[string]int{"acc": acc, "i": i, "tmp": tmp}
	return b.MustFinish(), ids
}

func TestLivenessLoop(t *testing.T) {
	p, ids := loopProgram()
	info := Analyze(p)
	for _, name := range []string{"acc", "i"} {
		if !info.LiveIn["loop"].Has(ids[name]) {
			t.Errorf("%s must be live into the loop", name)
		}
		if !info.LiveOut["loop"].Has(ids[name]) {
			t.Errorf("%s must be live out of the loop (back edge)", name)
		}
	}
	if !info.LiveIn["done"].Has(ids["acc"]) {
		t.Error("acc must be live into done")
	}
	if info.LiveIn["done"].Has(ids["i"]) {
		t.Error("i must be dead in done")
	}
	if info.LiveIn["loop"].Has(ids["tmp"]) {
		t.Error("tmp is defined before use inside the loop; must not be live-in")
	}
}

func TestInterferenceLoop(t *testing.T) {
	p, ids := loopProgram()
	g := Analyze(p).Interference()
	if !g.Interferes(ids["acc"], ids["i"]) {
		t.Error("acc and i are simultaneously live and must interfere")
	}
	if !g.Interferes(ids["tmp"], ids["acc"]) {
		t.Error("tmp is live at the branch while acc is live; must interfere")
	}
	if g.Interferes(ids["acc"], ids["acc"]) {
		t.Error("self-interference must not exist")
	}
}

func TestInterferenceSymmetric(t *testing.T) {
	p := il.Figure6()
	g := Analyze(p).Interference()
	for a := 0; a < g.N(); a++ {
		g.Neighbors(a, func(b int) {
			if !g.Interferes(b, a) {
				t.Errorf("edge (%d,%d) not symmetric", a, b)
			}
		})
	}
}

func TestMoveDoesNotInterfereWithSource(t *testing.T) {
	b := il.NewBuilder("mv")
	x, y := b.Int("x"), b.Int("y")
	bb := b.Block("entry", 1)
	bb.Const(x, 1)
	bb.OpImm(isa.MOV, y, x, 0)
	bb.Ret(y)
	p := b.MustFinish()
	g := Analyze(p).Interference()
	if g.Interferes(x, y) {
		t.Error("move source and destination should not interfere (coalescable)")
	}
}

func TestEntryLiveInsInterfere(t *testing.T) {
	// Two program inputs used but never defined must interfere so the
	// allocator cannot give them one register.
	b := il.NewBuilder("params")
	pp, q, z := b.Int("p"), b.Int("q"), b.Int("z")
	bb := b.Block("entry", 1)
	bb.Op(isa.ADD, z, pp, q)
	bb.Ret(z)
	p := b.MustFinish()
	g := Analyze(p).Interference()
	if !g.Interferes(pp, q) {
		t.Error("program inputs must interfere pairwise")
	}
}

func TestFigure6LivenessSanity(t *testing.T) {
	p := il.Figure6()
	info := Analyze(p)
	find := func(name string) int {
		for _, v := range p.Values {
			if v.Name == name {
				return v.ID
			}
		}
		t.Fatalf("no value %s", name)
		return -1
	}
	// H is defined in bb2/bb3 and used in bb4: live into bb4 and across its
	// back edge.
	if !info.LiveIn["bb4"].Has(find("H")) || !info.LiveOut["bb4"].Has(find("H")) {
		t.Error("H must be live in and out of bb4")
	}
	// D is defined in bb5 and dies there.
	if info.LiveIn["bb5"].Has(find("D")) {
		t.Error("D must not be live into bb5")
	}
	// E is used in bb3 but not beyond bb3.
	if info.LiveOut["bb3"].Has(find("E")) {
		t.Error("E must be dead out of bb3")
	}
}

func BenchmarkAnalyzeAndInterference(b *testing.B) {
	p := il.Figure6()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(p).Interference()
	}
}
