package liveness

import (
	"multicluster/internal/il"
	"multicluster/internal/isa"
)

// Info holds the result of live-variable analysis for one IL program.
type Info struct {
	Prog    *il.Program
	LiveIn  map[string]*BitSet
	LiveOut map[string]*BitSet
}

// Analyze runs backward live-variable dataflow to a fixed point.
func Analyze(p *il.Program) *Info {
	n := p.NumValues()
	info := &Info{
		Prog:    p,
		LiveIn:  make(map[string]*BitSet, len(p.Blocks)),
		LiveOut: make(map[string]*BitSet, len(p.Blocks)),
	}
	use := make(map[string]*BitSet, len(p.Blocks))
	def := make(map[string]*BitSet, len(p.Blocks))
	for _, b := range p.Blocks {
		u, d := NewBitSet(n), NewBitSet(n)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, s := range in.Uses() {
				if !d.Has(s) {
					u.Add(s)
				}
			}
			if in.Dst != il.None {
				d.Add(in.Dst)
			}
		}
		use[b.Name], def[b.Name] = u, d
		info.LiveIn[b.Name] = NewBitSet(n)
		info.LiveOut[b.Name] = NewBitSet(n)
	}
	for changed := true; changed; {
		changed = false
		// Iterate in reverse layout order: converges quickly for mostly
		// forward-flowing CFGs.
		for bi := len(p.Blocks) - 1; bi >= 0; bi-- {
			b := p.Blocks[bi]
			out := info.LiveOut[b.Name]
			for _, s := range b.Succs {
				if out.UnionWith(info.LiveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			in := use[b.Name].Copy()
			out.ForEach(func(id int) {
				if !def[b.Name].Has(id) {
					in.Add(id)
				}
			})
			if info.LiveIn[b.Name].UnionWith(in) {
				changed = true
			}
		}
	}
	return info
}

// LiveAcross reports whether live range id is live across (into or out of)
// the named block boundary.
func (info *Info) LiveAcross(id int, block string) bool {
	return info.LiveIn[block].Has(id) || info.LiveOut[block].Has(id)
}

// Graph is an interference graph over live ranges: an undirected graph with
// one node per live range and an edge wherever two live ranges are
// simultaneously live.
type Graph struct {
	n   int
	adj []*BitSet
}

// NewGraph returns an empty interference graph over n live ranges.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]*BitSet, n)}
	for i := range g.adj {
		g.adj[i] = NewBitSet(n)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (a, b). Self-edges are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a].Add(b)
	g.adj[b].Add(a)
}

// Interferes reports whether a and b share an edge.
func (g *Graph) Interferes(a, b int) bool { return g.adj[a].Has(b) }

// Degree returns the number of neighbours of a.
func (g *Graph) Degree(a int) int { return g.adj[a].Count() }

// Neighbors calls f for every neighbour of a.
func (g *Graph) Neighbors(a int, f func(b int)) { g.adj[a].ForEach(f) }

// Interference builds the interference graph. At every definition d the
// graph gains edges between d and every live range live immediately after
// the instruction; for register moves the source is exempted, which lets
// the allocator assign both ends of a copy the same register. Live ranges
// live into the program entry (program inputs, e.g. the initial stack
// pointer) interfere pairwise.
func (info *Info) Interference() *Graph {
	p := info.Prog
	g := NewGraph(p.NumValues())
	for _, b := range p.Blocks {
		live := info.LiveOut[b.Name].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			if d := in.Dst; d != il.None {
				live.ForEach(func(x int) {
					if isMove(in.Op) && x == in.Src1 {
						return
					}
					g.AddEdge(d, x)
				})
				live.Remove(d)
			}
			for _, s := range in.Uses() {
				live.Add(s)
			}
		}
	}
	entryLive := info.LiveIn[p.Entry].Elements()
	for i, a := range entryLive {
		for _, b := range entryLive[i+1:] {
			g.AddEdge(a, b)
		}
	}
	return g
}

func isMove(op isa.Op) bool { return op == isa.MOV || op == isa.FMOV }
