package sched

import (
	"math/rand"
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

func allocate(t *testing.T, p *il.Program) *regalloc.Result {
	t.Helper()
	alloc, err := regalloc.Allocate(p, nil, regalloc.Config{Assignment: isa.DefaultAssignment()})
	if err != nil {
		t.Fatal(err)
	}
	return alloc
}

func TestHoistsLongLatencyProducer(t *testing.T) {
	// Original order computes cheap adds first and the load last, with the
	// load's consumer right behind it; the scheduler should hoist the load
	// to the top of the block.
	b := il.NewBuilder("hoist")
	sp := b.GlobalValue("SP", il.KindInt)
	a1, a2, x, y := b.Int("a1"), b.Int("a2"), b.Int("x"), b.Int("y")
	e := b.Block("entry", 1)
	e.Const(a1, 1) // independent filler
	e.Const(a2, 2) // independent filler
	e.Load(isa.LDW, x, sp, 0)
	e.Op(isa.ADD, y, x, x)
	e.Ret(y)
	p := b.MustFinish()
	alloc := allocate(t, p)
	out := PostPass(alloc)
	if err := out.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	got := out.Prog.Block("entry").Instrs
	if got[0].Op != isa.LDW {
		t.Errorf("first scheduled instruction is %v, want the load hoisted", got[0].Op)
	}
	if got[len(got)-1].Op != isa.RET {
		t.Error("terminator must stay last")
	}
}

// depPairs returns every (earlier, later) ordering constraint of a block
// over allocated registers and memory ops.
func depPairs(b *il.Block, alloc *regalloc.Result) [][2]int {
	regOf := func(id int) isa.Reg {
		if id == il.None {
			return isa.RegNone
		}
		return alloc.RegOf[id]
	}
	var pairs [][2]int
	for i := 0; i < len(b.Instrs); i++ {
		for j := i + 1; j < len(b.Instrs); j++ {
			a, c := &b.Instrs[i], &b.Instrs[j]
			conflict := false
			if a.Op.Class().IsMem() && c.Op.Class().IsMem() {
				conflict = true
			}
			if d := a.Dst; d != il.None {
				r := regOf(d)
				for _, u := range c.Uses() {
					if regOf(u) == r && !r.IsZero() {
						conflict = true
					}
				}
				if c.Dst != il.None && regOf(c.Dst) == r && !r.IsZero() {
					conflict = true
				}
			}
			if d := c.Dst; d != il.None {
				r := regOf(d)
				for _, u := range a.Uses() {
					if regOf(u) == r && !r.IsZero() {
						conflict = true
					}
				}
			}
			if conflict {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// key identifies an instruction by content for position lookup.
func positions(instrs []il.Instr) map[il.Instr][]int {
	m := map[il.Instr][]int{}
	for i, in := range instrs {
		m[in] = append(m[in], i)
	}
	return m
}

func TestPreservesDependencesOnWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		trace.Profile(w.Program, w.NewDriver(1), 20_000)
		part := partition.Local{}.Partition(w.Program)
		alloc, err := regalloc.Allocate(w.Program, part, regalloc.Config{
			Assignment: isa.DefaultAssignment(), Clustered: true, OtherClusterSpill: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := PostPass(alloc)
		if err := out.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for bi, b := range alloc.Prog.Blocks {
			nb := out.Prog.Blocks[bi]
			if len(nb.Instrs) != len(b.Instrs) {
				t.Fatalf("%s.%s: instruction count changed", w.Name, b.Name)
			}
			pos := positions(nb.Instrs)
			// Consume positions for duplicate instructions in order.
			taken := map[il.Instr]int{}
			at := func(in il.Instr) int {
				k := taken[in]
				taken[in]++
				return pos[in][k]
			}
			newPos := make([]int, len(b.Instrs))
			for i, in := range b.Instrs {
				newPos[i] = at(in)
			}
			for _, pr := range depPairs(b, alloc) {
				if newPos[pr[0]] >= newPos[pr[1]] {
					t.Fatalf("%s.%s: dependence %d→%d violated (now %d, %d):\n  %v\n  %v",
						w.Name, b.Name, pr[0], pr[1], newPos[pr[0]], newPos[pr[1]],
						b.Instrs[pr[0]], b.Instrs[pr[1]])
				}
			}
			// Memory ops keep their exact relative order.
			var before, after []isa.Op
			for _, in := range b.Instrs {
				if in.Op.Class().IsMem() {
					before = append(before, in.Op)
				}
			}
			for _, in := range nb.Instrs {
				if in.Op.Class().IsMem() {
					after = append(after, in.Op)
				}
			}
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("%s.%s: memory order changed", w.Name, b.Name)
				}
			}
		}
	}
}

func TestSchedulingIsDeterministicAndIdempotentish(t *testing.T) {
	w := workload.ByName("doduc")
	trace.Profile(w.Program, w.NewDriver(1), 10_000)
	alloc := allocate(t, w.Program)
	a := PostPass(alloc)
	b := PostPass(alloc)
	for bi := range a.Prog.Blocks {
		for i := range a.Prog.Blocks[bi].Instrs {
			if a.Prog.Blocks[bi].Instrs[i] != b.Prog.Blocks[bi].Instrs[i] {
				t.Fatal("nondeterministic schedule")
			}
		}
	}
}

func TestScheduledBinarySimulates(t *testing.T) {
	w := workload.ByName("tomcatv")
	trace.Profile(w.Program, w.NewDriver(3), 20_000)
	part := partition.Local{}.Partition(w.Program)
	alloc, err := regalloc.Allocate(w.Program, part, regalloc.Config{
		Assignment: isa.DefaultAssignment(), Clustered: true, OtherClusterSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(a *regalloc.Result) core.Stats {
		mp, err := codegen.Lower(a)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(mp, w.NewDriver(3), 20_000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DualCluster4Way()
		cfg.MaxCycles = 5_000_000
		p, err := core.New(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	base := run(alloc)
	scheduled := run(PostPass(alloc))
	if scheduled.Instructions != base.Instructions {
		t.Fatalf("scheduled binary retired %d, base %d", scheduled.Instructions, base.Instructions)
	}
	// An out-of-order machine is fairly schedule-tolerant; just require the
	// schedule not to be pathological.
	if float64(scheduled.Cycles) > 1.15*float64(base.Cycles) {
		t.Errorf("scheduling hurt badly: %d vs %d cycles", scheduled.Cycles, base.Cycles)
	}
}

func TestRandomBlocksPreserveSemantics(t *testing.T) {
	// Random straight-line blocks: the scheduled block must contain the
	// same multiset of instructions with all register dependences intact.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := il.NewBuilder("rand")
		vals := make([]int, 8)
		for i := range vals {
			vals[i] = b.Int(string(rune('a' + i)))
		}
		sp := b.GlobalValue("SP", il.KindInt)
		e := b.Block("entry", 1)
		for i := 0; i < 20; i++ {
			switch rng.Intn(4) {
			case 0:
				e.Const(vals[rng.Intn(8)], int64(i))
			case 1:
				e.Op(isa.ADD, vals[rng.Intn(8)], vals[rng.Intn(8)], vals[rng.Intn(8)])
			case 2:
				e.Load(isa.LDW, vals[rng.Intn(8)], sp, int64(8*i))
			case 3:
				e.Op(isa.MUL, vals[rng.Intn(8)], vals[rng.Intn(8)], vals[rng.Intn(8)])
			}
		}
		e.Ret(vals[0])
		p := b.MustFinish()
		alloc := allocate(t, p)
		out := PostPass(alloc)
		blk, nblk := alloc.Prog.Block("entry"), out.Prog.Block("entry")
		pos := positions(nblk.Instrs)
		taken := map[il.Instr]int{}
		newPos := make([]int, len(blk.Instrs))
		for i, in := range blk.Instrs {
			k := taken[in]
			taken[in]++
			if k >= len(pos[in]) {
				t.Fatalf("seed %d: instruction %v lost", seed, in)
			}
			newPos[i] = pos[in][k]
		}
		for _, pr := range depPairs(blk, alloc) {
			if newPos[pr[0]] >= newPos[pr[1]] {
				t.Fatalf("seed %d: dependence violated", seed)
			}
		}
	}
}
