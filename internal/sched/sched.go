// Package sched implements the post-pass code scheduler of the paper's
// methodology (§3.1 step 6: "the machine-level instructions ... are
// arranged into a code schedule"). After register allocation, the
// instructions of each basic block are reordered by latency-weighted
// critical path — long-latency producers (loads, multiplies, divides) are
// hoisted so their consumers stall less — while preserving every register
// dependence (true, anti, and output, computed on the allocated
// registers), the relative order of memory operations (which also keeps
// the static MemID numbering identical across schedules), and the block
// terminator.
package sched

import (
	"sort"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/regalloc"
)

// PostPass returns a copy of the allocation whose program has been
// list-scheduled block by block. The register assignment and cluster maps
// are shared with the input (scheduling never changes them).
func PostPass(alloc *regalloc.Result) *regalloc.Result {
	out := *alloc
	prog := &il.Program{
		Name:   alloc.Prog.Name,
		Entry:  alloc.Prog.Entry,
		Values: alloc.Prog.Values,
	}
	for _, b := range alloc.Prog.Blocks {
		nb := &il.Block{
			Name:    b.Name,
			EstExec: b.EstExec,
			Succs:   append([]string(nil), b.Succs...),
			Instrs:  scheduleBlock(b, alloc),
		}
		prog.Blocks = append(prog.Blocks, nb)
	}
	out.Prog = prog
	return &out
}

// dep edges carry the cycles the successor must wait after the predecessor
// issues.
type node struct {
	instr    il.Instr
	origPos  int
	succs    []int
	lat      []int
	nPreds   int
	priority int // critical-path height to the block end
}

// scheduleBlock list-schedules one block's instructions.
func scheduleBlock(b *il.Block, alloc *regalloc.Result) []il.Instr {
	n := len(b.Instrs)
	if n <= 2 {
		return append([]il.Instr(nil), b.Instrs...)
	}
	body := n
	hasTerm := b.Terminator() != nil
	if hasTerm {
		body = n - 1
	}

	nodes := make([]node, body)
	for i := 0; i < body; i++ {
		nodes[i] = node{instr: b.Instrs[i], origPos: i}
	}
	addEdge := func(from, to, lat int) {
		nodes[from].succs = append(nodes[from].succs, to)
		nodes[from].lat = append(nodes[from].lat, lat)
		nodes[to].nPreds++
	}

	// Register dependences over the allocated registers.
	regOf := func(id int) isa.Reg {
		if id == il.None {
			return isa.RegNone
		}
		return alloc.RegOf[id]
	}
	lastWrite := map[isa.Reg]int{}
	lastReads := map[isa.Reg][]int{}
	lastMem := -1
	for i := 0; i < body; i++ {
		in := &b.Instrs[i]
		for _, u := range in.Uses() {
			r := regOf(u)
			if !r.Valid() || r.IsZero() {
				continue
			}
			if w, ok := lastWrite[r]; ok {
				addEdge(w, i, schedLatency(b.Instrs[w].Op)) // true dependence
			}
			lastReads[r] = append(lastReads[r], i)
		}
		if d := in.Dst; d != il.None {
			r := regOf(d)
			if r.Valid() && !r.IsZero() {
				if w, ok := lastWrite[r]; ok {
					addEdge(w, i, 1) // output dependence
				}
				for _, rd := range lastReads[r] {
					if rd != i {
						addEdge(rd, i, 1) // anti dependence
					}
				}
				lastWrite[r] = i
				delete(lastReads, r)
			}
		}
		// Memory operations keep their relative order (conservative
		// aliasing, and it pins the MemID numbering).
		if in.Op.Class().IsMem() {
			if lastMem >= 0 {
				addEdge(lastMem, i, 1)
			}
			lastMem = i
		}
	}

	// Critical-path priorities, computed bottom-up in original order
	// (edges always point forward).
	for i := body - 1; i >= 0; i-- {
		p := schedLatency(nodes[i].instr.Op)
		for k, s := range nodes[i].succs {
			if h := nodes[i].lat[k] + nodes[s].priority; h > p {
				p = h
			}
		}
		nodes[i].priority = p
	}

	// Greedy list scheduling: repeatedly emit the ready instruction with
	// the greatest critical-path height, breaking ties by original order
	// (stable and deterministic).
	ready := make([]int, 0, body)
	for i := range nodes {
		if nodes[i].nPreds == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]il.Instr, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, c int) bool {
			na, nc := &nodes[ready[a]], &nodes[ready[c]]
			if na.priority != nc.priority {
				return na.priority > nc.priority
			}
			return na.origPos < nc.origPos
		})
		pick := ready[0]
		ready = ready[1:]
		out = append(out, nodes[pick].instr)
		for _, s := range nodes[pick].succs {
			nodes[s].nPreds--
			if nodes[s].nPreds == 0 {
				ready = append(ready, s)
			}
		}
	}
	if hasTerm {
		out = append(out, b.Instrs[n-1])
	}
	return out
}

// schedLatency is the latency the scheduler plans for: the functional-unit
// latency plus the load-delay slot for loads (the compile-time view; cache
// misses are not predictable statically).
func schedLatency(op isa.Op) int {
	l := op.Latency()
	if op.Class() == isa.ClassLoad {
		l++
	}
	return l
}
