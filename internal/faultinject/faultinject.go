// Package faultinject is a deterministic fault-injection harness for the
// sweep service. A Plan is a set of rules — "at this site, with this
// probability, inject a panic, an error, or latency" — and every decision
// is a pure function of (plan seed, site, key), so a chaos run with a
// fixed seed injects exactly the same faults every time it is replayed.
//
// Callers thread an attempt number into the key (for example
// "hash#attempt2"), which is what makes retries meaningful under
// injection: attempt 0 of a job may be doomed by the plan while attempt 1
// of the same job is clean, deterministically.
//
// A nil *Plan is a valid no-op injector, so production paths carry the
// pointer unconditionally and pay nothing when chaos is off.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the class of fault a rule injects.
type Kind string

const (
	// KindError makes the site return a *Fault error.
	KindError Kind = "error"
	// KindPanic makes the site panic with a *Fault value.
	KindPanic Kind = "panic"
	// KindLatency makes the site sleep for the rule's duration, then
	// proceed normally.
	KindLatency Kind = "latency"
)

// Fault is the error (or panic value) produced by an injected fault. It is
// transient by construction: injected faults model crashes and flakes that
// a retry is expected to clear.
type Fault struct {
	Site string
	Kind Kind
	Key  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s (key %s)", f.Kind, f.Site, f.Key)
}

// Transient marks the fault as retryable; see IsTransient.
func (f *Fault) Transient() bool { return true }

// IsTransient reports whether err (or any error in its chain) is a
// transient fault — one a retry may clear. It recognizes anything
// implementing `Transient() bool`, which injected Faults do.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			break
		}
		err = u.Unwrap()
	}
	return false
}

// Rule injects one kind of fault at one site with a given probability.
type Rule struct {
	// Site names the boundary the rule applies to, e.g. "sim", "cache",
	// "journal".
	Site string
	// Kind is what to inject.
	Kind Kind
	// Rate is the injection probability in [0, 1].
	Rate float64
	// Latency is the sleep duration for KindLatency rules.
	Latency time.Duration
}

// Plan is a seeded set of injection rules plus per-site/kind counters.
// The zero value (and a nil pointer) injects nothing.
type Plan struct {
	// Seed perturbs every decision; two plans with the same rules but
	// different seeds inject different (but individually deterministic)
	// fault sets.
	Seed  int64
	Rules []Rule

	mu     sync.Mutex
	counts map[string]*atomic.Int64
}

// ParsePlan parses a comma-separated plan string. Each clause is
//
//	site:kind:rate[:duration]
//
// for example "sim:error:0.2,sim:panic:0.05,journal:latency:0.5:2ms".
// Whitespace around clauses is ignored; an empty string is a valid empty
// plan.
func ParsePlan(s string, seed int64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("faultinject: bad clause %q (want site:kind:rate[:duration])", clause)
		}
		r := Rule{Site: parts[0], Kind: Kind(parts[1])}
		switch r.Kind {
		case KindError, KindPanic, KindLatency:
		default:
			return nil, fmt.Errorf("faultinject: bad kind %q in %q", parts[1], clause)
		}
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: bad rate %q in %q (want 0..1)", parts[2], clause)
		}
		r.Rate = rate
		if len(parts) == 4 {
			if r.Kind != KindLatency {
				return nil, fmt.Errorf("faultinject: duration only applies to latency rules: %q", clause)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad duration in %q: %w", clause, err)
			}
			r.Latency = d
		} else if r.Kind == KindLatency {
			r.Latency = time.Millisecond
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// roll returns a deterministic uniform value in [0, 1) for (seed, site,
// kind, key). FNV alone has weak avalanche in its high bits when keys
// differ only in a trailing character (e.g. attempt suffixes), so the sum
// is passed through a splitmix64 finalizer before use.
func roll(seed int64, site string, kind Kind, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s\x00%s", seed, site, kind, key)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Check evaluates every rule for site against key, in order. Latency rules
// that fire sleep and continue; an error rule that fires returns a *Fault;
// a panic rule that fires panics with a *Fault. A nil plan never fires.
func (p *Plan) Check(site, key string) error {
	if p == nil {
		return nil
	}
	for _, r := range p.Rules {
		if r.Site != site || r.Rate == 0 {
			continue
		}
		if roll(p.Seed, site, r.Kind, key) >= r.Rate {
			continue
		}
		p.count(site, r.Kind)
		switch r.Kind {
		case KindLatency:
			time.Sleep(r.Latency)
		case KindError:
			return &Fault{Site: site, Kind: KindError, Key: key}
		case KindPanic:
			panic(&Fault{Site: site, Kind: KindPanic, Key: key})
		}
	}
	return nil
}

// Enabled reports whether the plan has any rule that can fire.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Rate > 0 {
			return true
		}
	}
	return false
}

func (p *Plan) count(site string, kind Kind) {
	k := site + "/" + string(kind)
	p.mu.Lock()
	if p.counts == nil {
		p.counts = make(map[string]*atomic.Int64)
	}
	c, ok := p.counts[k]
	if !ok {
		c = new(atomic.Int64)
		p.counts[k] = c
	}
	p.mu.Unlock()
	c.Add(1)
}

// Counts returns a snapshot of fired-fault counters keyed "site/kind".
func (p *Plan) Counts() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.counts))
	for k, c := range p.counts {
		out[k] = c.Load()
	}
	return out
}

// String renders the plan compactly for logs, rules in deterministic order.
func (p *Plan) String() string {
	if p == nil || len(p.Rules) == 0 {
		return "off"
	}
	clauses := make([]string, 0, len(p.Rules))
	for _, r := range p.Rules {
		c := fmt.Sprintf("%s:%s:%g", r.Site, r.Kind, r.Rate)
		if r.Kind == KindLatency {
			c += ":" + r.Latency.String()
		}
		clauses = append(clauses, c)
	}
	sort.Strings(clauses)
	return strings.Join(clauses, ",")
}
