package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("sim:error:0.2, cache:panic:0.05 ,journal:latency:0.5:2ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(p.Rules))
	}
	if p.Rules[2].Kind != KindLatency || p.Rules[2].Latency != 2*time.Millisecond {
		t.Fatalf("latency rule = %+v", p.Rules[2])
	}
	if !p.Enabled() {
		t.Fatal("plan with rules reports Enabled() == false")
	}

	empty, err := ParsePlan("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() {
		t.Fatal("empty plan reports Enabled() == true")
	}

	for _, bad := range []string{
		"sim:error",             // missing rate
		"sim:explode:0.5",       // unknown kind
		"sim:error:1.5",         // rate out of range
		"sim:error:0.5:2ms",     // duration on non-latency rule
		"sim:latency:0.5:nope",  // bad duration
		"sim:latency:0.5:2ms:x", // too many fields
	} {
		if _, err := ParsePlan(bad, 0); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad clause", bad)
		}
	}
}

func TestCheckDeterministic(t *testing.T) {
	p, err := ParsePlan("sim:error:0.5", 42)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := ParsePlan("sim:error:0.5", 42)
	var fired, clean int
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("job%d", i)
		e1 := p.Check("sim", key)
		e2 := q.Check("sim", key)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("key %s: plans with identical seeds disagree (%v vs %v)", key, e1, e2)
		}
		if e1 != nil {
			fired++
		} else {
			clean++
		}
	}
	// A 0.5 rate over 1000 keys lands well inside [350, 650] with
	// overwhelming probability for any reasonable hash.
	if fired < 350 || fired > 650 {
		t.Fatalf("rate 0.5 fired %d/1000 times", fired)
	}
	if got := p.Counts()["sim/error"]; got != int64(fired) {
		t.Fatalf("Counts = %d, want %d", got, fired)
	}
}

func TestCheckSeedVariesDecisions(t *testing.T) {
	a, _ := ParsePlan("sim:error:0.5", 1)
	b, _ := ParsePlan("sim:error:0.5", 2)
	same := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if (a.Check("sim", key) == nil) == (b.Check("sim", key) == nil) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds made identical decisions on all 200 keys")
	}
}

func TestCheckAttemptKeyEscapesFault(t *testing.T) {
	// With rate 0.5, some key fails at attempt 0 but succeeds at a later
	// attempt — the property retries rely on.
	p, _ := ParsePlan("sim:error:0.5", 99)
	escaped := false
	for i := 0; i < 100 && !escaped; i++ {
		if p.Check("sim", fmt.Sprintf("job%d#0", i)) == nil {
			continue
		}
		for attempt := 1; attempt < 5; attempt++ {
			if p.Check("sim", fmt.Sprintf("job%d#%d", i, attempt)) == nil {
				escaped = true
				break
			}
		}
	}
	if !escaped {
		t.Fatal("no doomed job ever escaped its fault on retry")
	}
}

func TestCheckPanicKind(t *testing.T) {
	p, _ := ParsePlan("cache:panic:1", 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("rate-1 panic rule did not panic")
		}
		f, ok := r.(*Fault)
		if !ok || f.Site != "cache" || f.Kind != KindPanic {
			t.Fatalf("panicked with %v, want *Fault at cache", r)
		}
		if !IsTransient(f) {
			t.Fatal("injected fault is not transient")
		}
	}()
	p.Check("cache", "k")
}

func TestCheckLatency(t *testing.T) {
	p, _ := ParsePlan("sim:latency:1:20ms", 0)
	start := time.Now()
	if err := p.Check("sim", "k"); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency rule slept %v, want ~20ms", d)
	}
}

func TestNilPlanIsNoop(t *testing.T) {
	var p *Plan
	if err := p.Check("sim", "k"); err != nil {
		t.Fatal(err)
	}
	if p.Enabled() {
		t.Fatal("nil plan reports Enabled()")
	}
	if p.Counts() != nil {
		t.Fatal("nil plan has counts")
	}
	if p.String() != "off" {
		t.Fatalf("nil plan String() = %q", p.String())
	}
}

func TestIsTransientWrapped(t *testing.T) {
	f := &Fault{Site: "sim", Kind: KindError, Key: "k"}
	wrapped := fmt.Errorf("attempt 2: %w", f)
	if !IsTransient(wrapped) {
		t.Fatal("wrapped fault not recognized as transient")
	}
	if IsTransient(errors.New("deterministic simulator error")) {
		t.Fatal("ordinary error recognized as transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil error recognized as transient")
	}
}
