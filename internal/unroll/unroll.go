// Package unroll implements the loop-unrolling extension sketched in the
// paper's future work (§6): "loop unrolling ... could be used to generate a
// code schedule in which multiple iterations of a loop were interleaved,
// with each iteration scheduled to use a separate cluster of a multicluster
// processor."
//
// SelfLoop unrolls a self-looping basic block by a given factor,
// privatizing the values that are local to one iteration (so the copies
// carry no false dependences and the partitioner is free to put alternate
// iterations on alternate clusters) while keeping loop-carried values
// shared. The resulting program runs under the original behaviour driver
// through the wrapper returned by Result.Driver.
package unroll

import (
	"fmt"

	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/liveness"
	"multicluster/internal/trace"
)

// Result is an unrolled program plus the glue that lets the original
// behaviour driver drive it.
type Result struct {
	// Prog is the transformed program. Copy k>0 of the unrolled block is
	// named "<block>#k"; copy 0 keeps the original name so entry edges are
	// untouched.
	Prog *il.Program
	// Factor is the unroll factor.
	Factor int
	// Block is the original block name.
	Block string
	// Private lists the privatized live ranges of the original block.
	Private []string

	origSuccs []string
	memMap    []int // unrolled-program mem-op index -> original mem-op index
}

// SelfLoop unrolls the named block, which must end in a conditional branch
// whose taken target is the block itself (a self loop), by the given
// factor. Unrolling runs on the pre-allocation IL (no spill code).
func SelfLoop(p *il.Program, block string, factor int) (*Result, error) {
	if factor < 2 {
		return nil, fmt.Errorf("unroll: factor must be ≥ 2, got %d", factor)
	}
	src := p.Block(block)
	if src == nil {
		return nil, fmt.Errorf("unroll: no block %q", block)
	}
	term := src.Terminator()
	if term == nil || !term.Op.IsCondBranch() || term.Target != block {
		return nil, fmt.Errorf("unroll: block %q does not end in a self-looping conditional branch", block)
	}
	exit := src.Succs[0] // fall-through successor
	info := liveness.Analyze(p)

	// A value defined in the block is private to one iteration when the
	// block never reads it before writing it (not upward-exposed) and the
	// loop's exit path does not consume it.
	private := privatizable(p, src, info.LiveIn[exit])

	res := &Result{Factor: factor, Block: block, origSuccs: append([]string(nil), src.Succs...)}
	for id := range private {
		res.Private = append(res.Private, p.Value(id).Name)
	}

	nb := il.NewBuilder(p.Name + fmt.Sprintf("-unroll%d", factor))
	// Recreate all values first so existing IDs stay stable.
	for _, v := range p.Values {
		if v.GlobalCandidate {
			nb.GlobalValue(v.Name, v.Kind)
		} else {
			nb.Value(v.Name, v.Kind)
		}
	}

	copyName := func(k int) string {
		if k == 0 {
			return block
		}
		return fmt.Sprintf("%s#%d", block, k)
	}

	for _, b := range p.Blocks {
		if b.Name != block {
			// Clone verbatim, tracking memory-op identity.
			bb := nb.Block(b.Name, b.EstExec)
			for i := range b.Instrs {
				bb.Raw(b.Instrs[i])
				if b.Instrs[i].Op.Class().IsMem() {
					res.memMap = append(res.memMap, memIndexOf(p, b.Name, i))
				}
			}
			bb.SetSuccs(b.Succs...)
			continue
		}
		for k := 0; k < factor; k++ {
			bb := nb.Block(copyName(k), b.EstExec/int64(factor)+1)
			rename := map[int]int{}
			mapV := func(id int) int {
				if id == il.None || k == 0 || !private[id] {
					return id
				}
				if nid, ok := rename[id]; ok {
					return nid
				}
				v := p.Value(id)
				nid := nb.Value(fmt.Sprintf("%s#%d", v.Name, k), v.Kind)
				rename[id] = nid
				return nid
			}
			for i := range b.Instrs {
				in := b.Instrs[i]
				if in.Op.IsControl() {
					continue // the terminator is rebuilt below
				}
				bb.Raw(il.Instr{Op: in.Op, Dst: mapV(in.Dst), Src1: mapV(in.Src1), Src2: mapV(in.Src2), Imm: in.Imm})
				if in.Op.Class().IsMem() {
					res.memMap = append(res.memMap, memIndexOf(p, block, i))
				}
			}
			cond := mapV(term.Src1)
			if k < factor-1 {
				// Intermediate iterations invert the branch so the next
				// copy is the fall-through and the loop exit is the taken
				// target.
				bb.CondBr(invert(term.Op), cond, exit, copyName(k+1))
			} else {
				bb.CondBr(term.Op, cond, copyName(0), exit)
			}
		}
	}
	prog, err := nb.Finish()
	if err != nil {
		return nil, fmt.Errorf("unroll: rebuilt program invalid: %w", err)
	}
	prog.Entry = p.Entry
	res.Prog = prog
	return res, nil
}

// privatizable returns the values local to a single iteration of the block.
func privatizable(p *il.Program, src *il.Block, exitLive *liveness.BitSet) map[int]bool {
	upward := map[int]bool{}
	seenDef := map[int]bool{}
	defs := map[int]bool{}
	for i := range src.Instrs {
		in := &src.Instrs[i]
		for _, u := range in.Uses() {
			if !seenDef[u] {
				upward[u] = true
			}
		}
		if in.Dst != il.None {
			defs[in.Dst] = true
			seenDef[in.Dst] = true
		}
	}
	out := map[int]bool{}
	for id := range defs {
		if !upward[id] && !exitLive.Has(id) && !p.Value(id).GlobalCandidate {
			out[id] = true
		}
	}
	return out
}

// Driver adapts the original behaviour driver to the unrolled program:
// each copy of the block consumes one of the original driver's
// per-iteration decisions, and memory addresses are translated back to the
// original static operation IDs.
func (r *Result) Driver(inner trace.Driver) trace.Driver {
	return &unrollDriver{res: r, inner: inner}
}

type unrollDriver struct {
	res   *Result
	inner trace.Driver
}

func (d *unrollDriver) Reset() { d.inner.Reset() }

func (d *unrollDriver) NextBlock(cur string, succs []string) (string, bool) {
	base, k, isCopy := d.res.parse(cur)
	if !isCopy {
		return d.inner.NextBlock(cur, succs)
	}
	// One original-loop decision per copy: continue or exit.
	next, ok := d.inner.NextBlock(base, d.res.origSuccs)
	if !ok {
		return "", false
	}
	if next != base {
		return next, true // the exit path
	}
	if k == d.res.Factor-1 {
		return base, true // wrap to copy 0
	}
	return fmt.Sprintf("%s#%d", base, k+1), true
}

func (d *unrollDriver) Addr(memID int) uint64 {
	if memID >= 0 && memID < len(d.res.memMap) {
		return d.inner.Addr(d.res.memMap[memID])
	}
	return d.inner.Addr(memID)
}

// parse splits "block#k" into its base name and copy index.
func (r *Result) parse(name string) (base string, k int, isCopy bool) {
	if name == r.Block {
		return r.Block, 0, true
	}
	var idx int
	if n, err := fmt.Sscanf(name, r.Block+"#%d", &idx); err != nil || n != 1 {
		return name, 0, false
	}
	return r.Block, idx, true
}

// memIndexOf returns the program-wide memory-op index of the i-th
// instruction of the named block in the original program.
func memIndexOf(p *il.Program, block string, i int) int {
	n := 0
	for _, b := range p.Blocks {
		for j := range b.Instrs {
			if b.Instrs[j].Op.Class().IsMem() {
				if b.Name == block && j == i {
					return n
				}
				n++
			}
		}
	}
	return -1
}

// invert flips a conditional branch's sense.
func invert(op isa.Op) isa.Op {
	if op == isa.BEQ {
		return isa.BNE
	}
	return isa.BEQ
}
