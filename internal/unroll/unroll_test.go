package unroll

import (
	"testing"

	"multicluster/internal/codegen"
	"multicluster/internal/core"
	"multicluster/internal/il"
	"multicluster/internal/isa"
	"multicluster/internal/partition"
	"multicluster/internal/regalloc"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

// saxpyProgram is a su2cor-like single-chain loop: ideal unrolling fodder.
func saxpyProgram() *il.Program {
	b := il.NewBuilder("saxpy")
	sp := b.GlobalValue("SP", il.KindInt)
	fa, fb, fc := b.FP("fa"), b.FP("fb"), b.FP("fc")
	fs := b.FP("fs")
	i := b.Int("i")

	e := b.Block("entry", 1)
	e.Load(isa.LDF, fs, sp, 0)
	e.Const(i, 0)
	e.FallTo("loop")

	l := b.Block("loop", 1000)
	l.Load(isa.LDF, fa, sp, 8)
	l.Load(isa.LDF, fb, sp, 16)
	l.Op(isa.FMUL, fc, fa, fs)
	l.Op(isa.FADD, fc, fc, fb)
	l.Store(isa.STF, sp, fc, 24)
	l.OpImm(isa.ADD, i, i, 1)
	l.CondBr(isa.BNE, i, "loop", "done")

	d := b.Block("done", 1)
	d.Ret(i)
	return b.MustFinish()
}

func saxpyDriver(trips int64) trace.Driver {
	d := &loopDriver{trips: trips}
	return d
}

// loopDriver iterates the loop a fixed number of times per entry and
// streams three vectors.
type loopDriver struct {
	trips   int64
	n       int64
	addrs   [4]uint64
	started bool
}

func (d *loopDriver) Reset() { d.n = 0; d.addrs = [4]uint64{}; d.started = false }

func (d *loopDriver) NextBlock(cur string, succs []string) (string, bool) {
	switch cur {
	case "entry":
		return "loop", true
	case "loop":
		d.n++
		if d.n >= d.trips {
			return "done", true
		}
		return "loop", true
	}
	return "", false
}

func (d *loopDriver) Addr(memID int) uint64 {
	if memID < 0 || memID > 3 {
		return 0x1000
	}
	d.addrs[memID] += 8
	return uint64(0x1000_0000*(memID+1)) + d.addrs[memID]
}

func TestSelfLoopStructure(t *testing.T) {
	p := saxpyProgram()
	res, err := SelfLoop(p, "loop", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Prog.Block("loop") == nil || res.Prog.Block("loop#1") == nil {
		t.Fatal("expected two copies of the loop")
	}
	// Copy 0 exits to copy 1 on the inverted branch; copy 1 loops back to
	// copy 0.
	c0 := res.Prog.Block("loop")
	if term := c0.Terminator(); term.Op != isa.BEQ || term.Target != "done" {
		t.Errorf("copy 0 terminator = %v -> %s, want inverted beq to done", term.Op, term.Target)
	}
	c1 := res.Prog.Block("loop#1")
	if term := c1.Terminator(); term.Op != isa.BNE || term.Target != "loop" {
		t.Errorf("copy 1 terminator = %v -> %s, want bne back to loop", term.Op, term.Target)
	}
	// fa, fb, fc are privatized; i and fs are not (loop-carried / live-in).
	want := map[string]bool{"fa": true, "fb": true, "fc": true}
	got := map[string]bool{}
	for _, name := range res.Private {
		got[name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("%s should be privatized (got %v)", name, res.Private)
		}
	}
	if got["i"] || got["fs"] {
		t.Errorf("loop-carried values privatized: %v", res.Private)
	}
	// Copy 1 must reference the renamed temporaries.
	if res.Prog.Block("loop#1").Instrs[0].Dst == p.Block("loop").Instrs[0].Dst {
		t.Error("copy 1 still writes the original fa")
	}
}

// compileRun lowers a program (optionally clustered) and simulates it.
func compileRun(t *testing.T, p *il.Program, d trace.Driver, n int64, cfg core.Config) core.Stats {
	t.Helper()
	trace.Profile(p, d, 20_000)
	part := partition.Local{}.Partition(p)
	alloc, err := regalloc.Allocate(p, part, regalloc.Config{
		Assignment:        isa.DefaultAssignment(),
		Clustered:         true,
		OtherClusterSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := codegen.Lower(alloc)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(mp, d, n)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stop != core.StopTraceEnd {
		t.Fatalf("did not drain: %v", stats)
	}
	return stats
}

func TestUnrolledTraceSemanticallyEquivalent(t *testing.T) {
	// Both programs must execute the same multiset of non-control work:
	// identical memory-op counts against identical original addresses.
	p := saxpyProgram()
	res, err := SelfLoop(p, "loop", 2)
	if err != nil {
		t.Fatal(err)
	}
	countWork := func(p *il.Program, d trace.Driver) (mem int64) {
		alloc, err := regalloc.Allocate(p, nil, regalloc.Config{Assignment: isa.DefaultAssignment()})
		if err != nil {
			t.Fatal(err)
		}
		mp, err := codegen.Lower(alloc)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(mp, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			e, ok := gen.Next()
			if !ok {
				break
			}
			if e.Instr.Op.Class().IsMem() {
				mem++
			}
		}
		return mem
	}
	base := countWork(p, saxpyDriver(400))
	unrolled := countWork(res.Prog, res.Driver(saxpyDriver(400)))
	if base != unrolled {
		t.Errorf("memory operations differ: base %d, unrolled %d", base, unrolled)
	}
}

func TestUnrollingHelpsDualCluster(t *testing.T) {
	// §6's claim: interleaving unrolled iterations across clusters raises
	// dual-cluster throughput on a serial-bodied loop. The base program's
	// single dependence web lands in one cluster; the unrolled program's
	// privatized copies can spread.
	p := saxpyProgram()
	res, err := SelfLoop(p, "loop", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DualCluster4Way()
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0
	base := compileRun(t, p, saxpyDriver(1<<40), 30_000, cfg)
	unrolled := compileRun(t, res.Prog, res.Driver(saxpyDriver(1<<40)), 30_000, cfg)
	if unrolled.IPC() < base.IPC()*1.1 {
		t.Errorf("unrolled IPC %.2f, want ≥ 1.1× base %.2f: iterations did not spread across clusters", unrolled.IPC(), base.IPC())
	}
}

func TestUnrollRejectsBadInput(t *testing.T) {
	p := saxpyProgram()
	if _, err := SelfLoop(p, "nope", 2); err == nil {
		t.Error("unknown block accepted")
	}
	if _, err := SelfLoop(p, "entry", 2); err == nil {
		t.Error("non-looping block accepted")
	}
	if _, err := SelfLoop(p, "loop", 1); err == nil {
		t.Error("factor 1 accepted")
	}
}

func TestUnrollWorkloadLoop(t *testing.T) {
	// Unroll su2cor's inner sweep and run the full pipeline end to end.
	w := workload.ByName("su2cor")
	res, err := SelfLoop(w.Program, "inner", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DualCluster4Way()
	cfg.MaxCycles = 5_000_000
	stats := compileRun(t, res.Prog, res.Driver(w.NewDriver(3)), 20_000, cfg)
	if stats.Instructions < 19_000 {
		t.Errorf("retired %d of ~20000", stats.Instructions)
	}
}

func TestUnrollFactorFour(t *testing.T) {
	p := saxpyProgram()
	res, err := SelfLoop(p, "loop", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"loop", "loop#1", "loop#2", "loop#3"} {
		if res.Prog.Block(name) == nil {
			t.Errorf("missing copy %s", name)
		}
	}
	cfg := core.DualCluster4Way()
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0
	stats := compileRun(t, res.Prog, res.Driver(saxpyDriver(1<<40)), 20_000, cfg)
	if stats.Instructions < 19_000 {
		t.Errorf("retired %d", stats.Instructions)
	}
}
