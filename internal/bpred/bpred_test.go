package bpred

import (
	"math/rand"
	"testing"
)

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	for i := 0; i < 10; i++ {
		s := p.Predict(pc)
		p.Update(s, true)
	}
	if s := p.Predict(pc); !s.Taken() {
		t.Error("always-taken branch still predicted not-taken after training")
	}
}

func TestLearnsAlternatingViaGlobalHistory(t *testing.T) {
	// A strictly alternating branch is unpredictable to the bimodal
	// component but perfectly predictable from global history. After
	// warm-up the combined predictor must be nearly perfect.
	p := New(DefaultConfig())
	pc := uint64(0x2040)
	taken := false
	missesLate := 0
	const n = 4000
	for i := 0; i < n; i++ {
		s := p.Predict(pc)
		if i > n/2 && s.Taken() != taken {
			missesLate++
		}
		p.Update(s, taken)
		taken = !taken
	}
	if missesLate > n/40 {
		t.Errorf("alternating branch mispredicted %d times in the trained half", missesLate)
	}
}

func TestChooserPrefersBetterComponent(t *testing.T) {
	p := New(DefaultConfig())
	// Strongly biased branch: bimodal is enough; chooser should not end up
	// pathologically wrong either way. Just verify overall accuracy.
	pc := uint64(0x3300)
	for i := 0; i < 1000; i++ {
		s := p.Predict(pc)
		p.Update(s, i%10 != 0) // 90% taken
	}
	if acc := p.Stats().Accuracy(); acc < 0.8 {
		t.Errorf("accuracy on 90%%-biased branch = %.2f, want >= 0.8", acc)
	}
}

func TestDelayedUpdateHurtsCorrelatedBranches(t *testing.T) {
	// Branch pairs where the second branch copies the (random) outcome of
	// the first. With immediate update the first branch's direction is in
	// the history register when the second is predicted, so the global
	// component predicts it perfectly; when updates lag behind by many
	// in-flight branches — the larger-dispatch-queue effect footnote 2
	// describes — the correlation is invisible at prediction time.
	run := func(gap int) float64 {
		p := New(DefaultConfig())
		rng := rand.New(rand.NewSource(7))
		type pending struct {
			s     Snapshot
			taken bool
		}
		var q []pending
		var leader bool
		correct, total := 0, 0
		for i := 0; i < 20000; i++ {
			var pc uint64
			var taken bool
			if i%2 == 0 {
				leader = rng.Intn(2) == 0
				pc, taken = 0x4000, leader
			} else {
				pc, taken = 0x4040, leader // copies the leader
			}
			s := p.Predict(pc)
			if i%2 == 1 && i > 10000 {
				total++
				if s.Taken() == taken {
					correct++
				}
			}
			q = append(q, pending{s, taken})
			for len(q) > gap {
				p.Update(q[0].s, q[0].taken)
				q = q[1:]
			}
		}
		return float64(correct) / float64(total)
	}
	fresh := run(0)
	stale := run(24)
	if fresh < 0.9 {
		t.Errorf("immediate-update accuracy on follower = %.3f, want near-perfect", fresh)
	}
	if stale > 0.7 {
		t.Errorf("stale-history accuracy on follower = %.3f, want ~0.5", stale)
	}
}

func TestRandomBranchAccuracyNearHalf(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		pc := uint64(0x5000 + uint64(rng.Intn(64))*4)
		s := p.Predict(pc)
		p.Update(s, rng.Intn(2) == 0)
	}
	acc := p.Stats().Accuracy()
	if acc < 0.4 || acc > 0.6 {
		t.Errorf("random branches predicted with accuracy %.3f; expected ~0.5", acc)
	}
}

func TestStatsCounts(t *testing.T) {
	p := New(DefaultConfig())
	s := p.Predict(0x100)
	p.Update(s, !s.Taken())
	st := p.Stats()
	if st.Predictions != 1 || st.Mispredicts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BimodalUsed+st.GlobalUsed != st.Predictions {
		t.Errorf("component counts do not add up: %+v", st)
	}
}

func TestHistoryOnlyMovesOnUpdate(t *testing.T) {
	p := New(DefaultConfig())
	h0 := p.history
	for i := 0; i < 5; i++ {
		p.Predict(0x100)
	}
	if p.history != h0 {
		t.Error("Predict must not move the history register")
	}
	s := p.Predict(0x100)
	p.Update(s, true)
	if p.history == h0 {
		t.Error("Update must shift the history register")
	}
}

func TestCountersSaturate(t *testing.T) {
	var c uint8 = 1
	for i := 0; i < 10; i++ {
		train(&c, true)
	}
	if c != 3 {
		t.Errorf("counter = %d after saturating up, want 3", c)
	}
	for i := 0; i < 10; i++ {
		train(&c, false)
	}
	if c != 0 {
		t.Errorf("counter = %d after saturating down, want 0", c)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pcs := make([]uint64, 256)
	outs := make([]bool, 256)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + rng.Intn(4096)*4)
		outs[i] = rng.Intn(3) > 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 255
		s := p.Predict(pcs[k])
		p.Update(s, outs[k])
	}
}

func TestCombiningBeatsComponents(t *testing.T) {
	// McFarling's result: a mixed population of biased branches (bimodal
	// territory) and correlated branches (global-history territory) is
	// predicted better by the combining scheme than by either component.
	run := func(kind Kind) float64 {
		cfg := DefaultConfig()
		cfg.Kind = kind
		p := New(cfg)
		rng := rand.New(rand.NewSource(3))
		leader := false
		for i := 0; i < 40000; i++ {
			switch i % 4 {
			case 0: // biased branch
				s := p.Predict(0x1000)
				p.Update(s, rng.Intn(10) != 0)
			case 1: // leader with random outcome
				leader = rng.Intn(2) == 0
				s := p.Predict(0x2000)
				p.Update(s, leader)
			case 2: // follower correlated with the leader
				s := p.Predict(0x3000)
				p.Update(s, leader)
			case 3: // second biased branch, opposite direction
				s := p.Predict(0x4000)
				p.Update(s, rng.Intn(10) == 0)
			}
		}
		return p.Stats().Accuracy()
	}
	comb, bim, gsh := run(Combining), run(BimodalOnly), run(GshareOnly)
	if comb < bim || comb < gsh {
		t.Errorf("combining %.3f must beat bimodal %.3f and gshare %.3f", comb, bim, gsh)
	}
	if kindName := Combining.String(); kindName != "combining" {
		t.Errorf("kind name %q", kindName)
	}
}
