// Package bpred implements the combining branch predictor of McFarling
// (DEC WRL TN-36) used by the paper's simulated processors: a bimodal
// predictor, a global-history predictor, and a chooser that selects between
// them per branch.
//
// Predictions are made when a branch is inserted into a dispatch queue, but
// the tables and the global history register are updated only when the
// branch executes (footnote 2 of §4.2). The gap between the two is what
// makes large dispatch queues hurt prediction accuracy in the paper's
// compress result; callers model it by calling Predict at dispatch and
// Update at resolution.
package bpred

import "fmt"

// Kind selects which predictor components are active.
type Kind uint8

const (
	// Combining is McFarling's full scheme: bimodal + global history with a
	// per-branch chooser (the paper's configuration).
	Combining Kind = iota
	// BimodalOnly uses just the per-PC two-bit counters.
	BimodalOnly
	// GshareOnly uses just the global-history component.
	GshareOnly
)

func (k Kind) String() string {
	switch k {
	case BimodalOnly:
		return "bimodal"
	case GshareOnly:
		return "gshare"
	default:
		return "combining"
	}
}

// MarshalText implements encoding.TextMarshaler using the String form.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "combining", "":
		*k = Combining
	case "bimodal":
		*k = BimodalOnly
	case "gshare":
		*k = GshareOnly
	default:
		return fmt.Errorf("bpred: unknown predictor kind %q", text)
	}
	return nil
}

// Config sizes the tables and selects the scheme.
type Config struct {
	// Kind selects the active components; the zero value is Combining.
	Kind Kind `json:"kind"`
	// BimodalBits is log2 of the bimodal table size.
	BimodalBits int `json:"bimodal_bits"`
	// GlobalBits is log2 of the global-history table size and the history
	// register length.
	GlobalBits int `json:"global_bits"`
	// ChooserBits is log2 of the chooser table size.
	ChooserBits int `json:"chooser_bits"`
}

// DefaultConfig returns 4K-entry tables, the size McFarling's technical
// note evaluates.
func DefaultConfig() Config {
	return Config{BimodalBits: 12, GlobalBits: 12, ChooserBits: 12}
}

// Stats counts prediction outcomes.
type Stats struct {
	Predictions int64 `json:"predictions"`
	Mispredicts int64 `json:"mispredicts"`
	// BimodalUsed / GlobalUsed count which component the chooser selected.
	BimodalUsed int64 `json:"bimodal_used"`
	GlobalUsed  int64 `json:"global_used"`
}

// Accuracy returns correct predictions per prediction.
func (s Stats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return 1 - float64(s.Mispredicts)/float64(s.Predictions)
}

// Snapshot captures the inputs a prediction was made with, so the exact
// counters consulted can be trained at resolution time even though the
// history register has moved on.
type Snapshot struct {
	bimodalIdx int
	globalIdx  int
	chooserIdx int
	usedGlobal bool
	taken      bool
}

// Taken returns the predicted direction.
func (s Snapshot) Taken() bool { return s.taken }

// Predictor is a McFarling combining predictor. The zero value is not
// usable; call New.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating counters, taken if >= 2
	global  []uint8
	chooser []uint8 // >= 2 selects the global predictor
	history uint64  // global history, updated at resolution only
	stats   Stats
}

// New builds a predictor; counters start weakly not-taken and the chooser
// starts with no preference toward either component.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, 1<<cfg.BimodalBits),
		global:  make([]uint8, 1<<cfg.GlobalBits),
		chooser: make([]uint8, 1<<cfg.ChooserBits),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.global {
		p.global[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	return p
}

// Predict returns the predicted direction for the branch at pc using the
// current (possibly stale) table and history state, plus a snapshot to pass
// back to Update at resolution.
func (p *Predictor) Predict(pc uint64) Snapshot {
	s := Snapshot{
		bimodalIdx: int((pc >> 2) & uint64(len(p.bimodal)-1)),
		globalIdx:  int(((pc >> 2) ^ p.history) & uint64(len(p.global)-1)),
		chooserIdx: int((pc >> 2) & uint64(len(p.chooser)-1)),
	}
	bim := p.bimodal[s.bimodalIdx] >= 2
	glo := p.global[s.globalIdx] >= 2
	switch p.cfg.Kind {
	case BimodalOnly:
		s.usedGlobal = false
		s.taken = bim
	case GshareOnly:
		s.usedGlobal = true
		s.taken = glo
	default:
		s.usedGlobal = p.chooser[s.chooserIdx] >= 2
		if s.usedGlobal {
			s.taken = glo
		} else {
			s.taken = bim
		}
	}
	p.stats.Predictions++
	if s.usedGlobal {
		p.stats.GlobalUsed++
	} else {
		p.stats.BimodalUsed++
	}
	return s
}

// Update trains the predictor with the resolved direction of a branch
// previously predicted with the given snapshot, and records whether the
// prediction was correct. The global history register shifts here — at
// resolution, not at prediction — reproducing the delayed-update behaviour
// of the paper's simulator.
func (p *Predictor) Update(s Snapshot, taken bool) {
	if s.taken != taken {
		p.stats.Mispredicts++
	}
	bimCorrect := (p.bimodal[s.bimodalIdx] >= 2) == taken
	gloCorrect := (p.global[s.globalIdx] >= 2) == taken

	train(&p.bimodal[s.bimodalIdx], taken)
	train(&p.global[s.globalIdx], taken)

	// The chooser trains toward the component that was right when they
	// disagree.
	if bimCorrect != gloCorrect {
		train(&p.chooser[s.chooserIdx], gloCorrect)
	}

	p.history = (p.history << 1) & ((1 << uint(p.cfg.GlobalBits)) - 1)
	if taken {
		p.history |= 1
	}
}

// Stats returns a snapshot of the accuracy counters.
func (p *Predictor) Stats() Stats { return p.stats }

func train(counter *uint8, taken bool) {
	if taken {
		if *counter < 3 {
			*counter++
		}
	} else if *counter > 0 {
		*counter--
	}
}
