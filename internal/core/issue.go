package core

import "multicluster/internal/isa"

// issueCluster runs one cluster's instruction-scheduling logic for cycle t:
// a greedy pass over the dispatch queue in age order, issuing every ready
// copy that fits within the Table 1 limits and resource constraints.
func (p *Processor) issueCluster(c int, t int64) bool {
	rules := p.cfg.Rules
	var total, fpTotal, memTotal int
	var classCount [isa.NumClasses]int

	issuedAny := false
	kept := p.queue[c][:0]
	for i, u := range p.queue[c] {
		if u.inst.squashed {
			continue
		}
		if total >= rules.All {
			// The cycle's issue slots are spent; the rest of the queue is
			// kept as is (squashed copies cannot appear here — replay
			// filters the queues when it squashes).
			kept = append(kept, p.queue[c][i:]...)
			break
		}
		ok, bufferBlocked := p.canIssue(u, c, t, rules, &classCount, fpTotal, memTotal)
		if !ok {
			// Record when the machine's oldest unissued instruction is
			// held up purely by transfer-buffer space: the §2.1 deadlock
			// precondition the replay exception exists for.
			if bufferBlocked && u.inst.seq == p.oldestUnissuedSeq {
				p.bufBlockedNow = true
			}
			kept = append(kept, u)
			continue
		}
		p.doIssue(u, c, t)
		issuedAny = true
		total++
		classCount[u.slotClass]++
		if u.slotClass.IsFP() {
			fpTotal++
		}
		if u.master && u.slotClass.IsMem() {
			memTotal++
		}
	}
	p.queue[c] = kept
	return issuedAny
}

// canIssue checks readiness and every per-cycle resource constraint for one
// copy without side effects. bufferBlocked reports that the only thing
// missing was transfer-buffer space.
func (p *Processor) canIssue(u *uop, c int, t int64, rules isa.IssueRules, classCount *[isa.NumClasses]int, fpTotal, memTotal int) (ok, bufferBlocked bool) {
	if u.distributedAt >= t {
		return false, false // issueable the cycle after insertion at the earliest
	}
	if classCount[u.slotClass] >= rules.ClassLimit(u.slotClass) {
		return false, false
	}
	if u.slotClass.IsFP() && fpTotal >= rules.FPAll {
		return false, false
	}
	if u.master && u.slotClass.IsMem() && memTotal >= rules.Mem {
		return false, false
	}
	if !u.srcsReady(t) || !u.interCopyReady(t) {
		return false, false
	}
	if d := u.memDep; d != nil && !d.squashed {
		// Store-queue forwarding: the value is available one cycle after
		// the store issues.
		if !d.master.issued || d.master.issueCycle+1 > t {
			return false, false
		}
	}
	// Structural: the floating-point divider is not pipelined.
	if u.master && u.slotClass == isa.ClassFPDiv && p.freeDivider(c, t) < 0 {
		return false, false
	}
	// Transfer-buffer space: the last gate; a copy blocked here is ready in
	// every other respect.
	if u.master && u.sendsResult {
		if !p.bufferFits(1-c, 1, false) {
			return false, true
		}
	}
	if u.opFwdSlave {
		if !p.bufferFits(1-c, u.inst.master.fwdOperands, true) {
			return false, true
		}
	}
	return true, false
}

// bufferFits checks transfer-buffer capacity in the given cluster for n new
// entries of the given kind (operand or result). With UnifiedBuffer the
// kinds share one pool.
func (p *Processor) bufferFits(c, n int, operand bool) bool {
	if p.cfg.UnifiedBuffer {
		return p.opBufUsed[c]+p.resBufUsed[c]+n <= p.cfg.OperandBuffer+p.cfg.ResultBuffer
	}
	if operand {
		return p.opBufUsed[c]+n <= p.cfg.OperandBuffer
	}
	return p.resBufUsed[c]+n <= p.cfg.ResultBuffer
}

// freeDivider returns the index of an idle divider unit, or -1.
func (p *Processor) freeDivider(c int, t int64) int {
	for i, busyUntil := range p.divFree[c] {
		if busyUntil <= t {
			return i
		}
	}
	return -1
}

// doIssue commits one copy's issue at cycle t and propagates its timing
// effects.
func (p *Processor) doIssue(u *uop, c int, t int64) {
	u.issued = true
	u.issueCycle = t
	d := u.inst
	d.issuedCopies++
	p.stats.IssuedOps++
	p.stats.Cluster[c].IssuedUops++

	if u.master {
		if d.seq < p.maxIssuedSeq {
			p.stats.DisorderSum += p.maxIssuedSeq - d.seq
		} else {
			p.maxIssuedSeq = d.seq
		}

		// Compute the result timing.
		switch d.in.Op.Class() {
		case isa.ClassLoad:
			extra := p.dcache.Access(d.addr, t)
			d.resultCycle = t + int64(d.latency+p.cfg.LoadDelaySlots+extra)
		case isa.ClassStore:
			p.dcache.Access(d.addr, t)
			d.resultCycle = t + 1 // buffered; retires independent of the fill
		case isa.ClassFPDiv:
			i := p.freeDivider(c, t)
			p.divFree[c][i] = t + int64(d.latency)
			d.resultCycle = t + int64(d.latency)
		default:
			d.resultCycle = t + int64(d.latency)
		}

		if d.destReg != isa.RegNone && d.renamed[c] {
			d.readyIn[c] = d.resultCycle
		}
		if u.fwdOperands > 0 {
			// The master has read its slave's forwarded operands; the
			// entries are reusable the next cycle.
			p.pushBufEvent(t+1, d, true)
		}
		if u.sendsResult {
			s := d.slave
			p.resBufUsed[s.cluster]++
			d.resHeld = true
			if s.opFwdSlave {
				// Scenario 5: the suspended slave wakes when the result
				// reaches its cluster's buffer and writes its copy.
				d.readyIn[s.cluster] = d.resultCycle + 1
				p.pushBufEvent(d.resultCycle+1, d, false)
			}
		}
	} else {
		if u.opFwdSlave {
			p.opBufUsed[1-c] += d.master.fwdOperands
			d.opHeld = true
		}
		if u.recvsResult && !u.opFwdSlave {
			// Scenario 3/4 slave: reads the forwarded result out of the
			// buffer and writes the physical register bound in its
			// cluster.
			d.readyIn[c] = t + 1
			p.pushBufEvent(t+1, d, false)
		}
	}

	if d.allIssued() {
		d.doneCycle = p.completionCycle(d)
	}
}

// completionCycle computes when every copy's work finishes, once all copies
// have issued.
func (p *Processor) completionCycle(d *dynInst) int64 {
	done := d.resultCycle
	if d.dual {
		s := d.slave
		var sDone int64
		switch {
		case s.opFwdSlave && s.recvsResult:
			sDone = d.resultCycle + 1 // suspended slave wakes and writes
		default:
			sDone = s.issueCycle + 1
		}
		if sDone > done {
			done = sDone
		}
	}
	return done
}
