package core

import (
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

func ldw(dst, base isa.Reg, addr uint64) (isa.Instruction, uint64) {
	return isa.Instruction{Op: isa.LDW, Dst: dst, Src1: base, Imm: 0, MemID: 0, BrID: -1}, addr
}

func TestLoadDelaySlot(t *testing.T) {
	// A dependent of a load can issue two cycles after the load (latency 1
	// plus the single load-delay slot), even on a hit.
	load := isa.Instruction{Op: isa.LDW, Dst: r(2), Src1: isa.RegZero, MemID: 0, BrID: -1}
	use := add(r(4), r(2), r(2))
	instrs := []isa.Instruction{load, use}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0], Addr: 0x1000},
		{Index: 1, Instr: &instrs[1]},
	}
	cfg := perfectCaches(SingleCluster8Way())
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	ld, u := retired[0], retired[1]
	if got := ld.resultCycle - ld.master.issueCycle; got != 2 {
		t.Errorf("load result after %d cycles, want 2 (1 + delay slot)", got)
	}
	if u.master.issueCycle != ld.master.issueCycle+2 {
		t.Errorf("use issued at %d, want load+2 = %d", u.master.issueCycle, ld.master.issueCycle+2)
	}
}

func TestDCacheMissDelaysDependent(t *testing.T) {
	cfg := SingleCluster8Way()
	cfg.ICache.MissLatency = 0
	load := isa.Instruction{Op: isa.LDW, Dst: r(2), Src1: isa.RegZero, MemID: 0, BrID: -1}
	use := add(r(4), r(2), r(2))
	instrs := []isa.Instruction{load, use}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0], Addr: 0x8000},
		{Index: 1, Instr: &instrs[1]},
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	ld, u := retired[0], retired[1]
	if got := ld.resultCycle - ld.master.issueCycle; got != 2+16 {
		t.Errorf("missing load completed after %d cycles, want 18", got)
	}
	if u.master.issueCycle < ld.resultCycle {
		t.Errorf("use issued at %d before the miss returned at %d", u.master.issueCycle, ld.resultCycle)
	}
	if stats.DCache.Misses != 1 {
		t.Errorf("dcache misses = %d, want 1", stats.DCache.Misses)
	}
}

func TestNonBlockingLoadsOverlapMisses(t *testing.T) {
	// Eight independent missing loads: with an inverted MSHR they all
	// overlap, so total time is ~latency + serialization, far below 8×18.
	cfg := SingleCluster8Way()
	cfg.ICache.MissLatency = 0
	n := 8
	instrs := make([]isa.Instruction, n)
	es := make([]trace.Entry, n)
	for i := 0; i < n; i++ {
		instrs[i] = isa.Instruction{Op: isa.LDW, Dst: r(2 * (i % 8)), Src1: isa.RegZero, MemID: i, BrID: -1}
		es[i] = trace.Entry{Index: i, Instr: &instrs[i], Addr: uint64(0x10000 + i*4096)}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DCache.Misses != int64(n) {
		t.Fatalf("misses = %d, want %d", stats.DCache.Misses, n)
	}
	if stats.Cycles > 40 {
		t.Errorf("cycles = %d; misses did not overlap (serialized would be ~%d)", stats.Cycles, n*18)
	}
}

// branchProgram builds a loop whose branch alternates taken/not-taken per
// outcomes, returning instruction slices and entries.
func branchTrace(outcomes []bool) []trace.Entry {
	// Static: 0: lda r2; 1: bne r2 -> 0 ; 2..: body after loop.
	instrs := []isa.Instruction{
		lda(r(2), 1),
		{Op: isa.BNE, Src1: r(2), Target: 0, MemID: -1, BrID: 0},
	}
	static := &instrs // keep alive
	_ = static
	var es []trace.Entry
	for _, taken := range outcomes {
		es = append(es, trace.Entry{Index: 0, Instr: &instrs[0]})
		es = append(es, trace.Entry{Index: 1, Instr: &instrs[1], Taken: taken})
	}
	return es
}

func TestBranchPredictionLearnsLoop(t *testing.T) {
	// A branch taken 200 times then falling through: after warm-up the
	// predictor should be nearly perfect, so mispredicts ≪ branches.
	outcomes := make([]bool, 200)
	for i := range outcomes {
		outcomes[i] = true
	}
	outcomes[len(outcomes)-1] = false
	cfg := perfectCaches(SingleCluster8Way())
	p, err := New(cfg, &trace.SliceReader{Entries: branchTrace(outcomes)})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.CondBranches != 200 {
		t.Fatalf("branches retired = %d, want 200", stats.CondBranches)
	}
	if stats.Mispredicts > 8 {
		t.Errorf("mispredicts = %d, want a handful during warm-up", stats.Mispredicts)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	// Random-looking outcomes force mispredicts; every mispredict must
	// stall fetch until resolution, so cycles grow far beyond the
	// perfectly-predicted case.
	good := make([]bool, 128)
	for i := range good {
		good[i] = true
	}
	bad := make([]bool, 128)
	for i := range bad {
		bad[i] = i%3 == 0 // pattern the bimodal+gshare predictor tracks poorly early
	}
	cfg := perfectCaches(SingleCluster8Way())
	runTrace := func(out []bool) Stats {
		p, err := New(cfg, &trace.SliceReader{Entries: branchTrace(out)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sg, sb := runTrace(good), runTrace(bad)
	if sb.Mispredicts <= sg.Mispredicts {
		t.Fatalf("expected more mispredicts on irregular pattern: %d vs %d", sb.Mispredicts, sg.Mispredicts)
	}
	if sb.Cycles <= sg.Cycles {
		t.Errorf("mispredicts did not cost cycles: good %d, bad %d", sg.Cycles, sb.Cycles)
	}
	if sb.Fetch.Mispredict == 0 {
		t.Error("no fetch cycles attributed to mispredict stalls")
	}
}

func TestPhysicalRegisterStall(t *testing.T) {
	// More in-flight destinations than free physical registers: fetch must
	// stall on register availability but the program still completes.
	cfg := perfectCaches(SingleCluster8Way())
	cfg.IntRegs = 36 // 31 backed + 5 free
	// A long-latency producer keeps its consumers in flight.
	instrs := []isa.Instruction{
		{Op: isa.MUL, Dst: r(2), Src1: isa.RegZero, Src2: isa.RegZero, MemID: -1, BrID: -1},
	}
	n := 64
	for i := 0; i < n; i++ {
		instrs = append(instrs, add(r(2), r(2), r(2)))
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != int64(n+1) {
		t.Fatalf("retired %d, want %d", stats.Instructions, n+1)
	}
	if stats.Fetch.RegsFull == 0 {
		t.Error("expected register-file fetch stalls")
	}
}

func TestQueueFullStall(t *testing.T) {
	cfg := perfectCaches(SingleCluster8Way())
	cfg.QueueSize = 8
	// A divide at the head keeps the queue from draining.
	instrs := []isa.Instruction{
		{Op: isa.FDIVD, Dst: isa.FPReg(2), Src1: isa.FPReg(31), Src2: isa.FPReg(31), MemID: -1, BrID: -1},
	}
	for i := 0; i < 32; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.FADD, Dst: isa.FPReg(2), Src1: isa.FPReg(2), Src2: isa.FPReg(2), MemID: -1, BrID: -1})
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetch.QueueFull == 0 {
		t.Error("expected dispatch-queue fetch stalls")
	}
	if stats.Instructions != int64(len(instrs)) {
		t.Fatalf("retired %d, want %d", stats.Instructions, len(instrs))
	}
}

func TestDividerNotPipelined(t *testing.T) {
	// Two independent divides with one divider per cluster must serialize.
	cfg := perfectCaches(SingleCluster8Way())
	cfg.Rules.FPDiv = 1
	instrs := []isa.Instruction{
		{Op: isa.FDIV, Dst: isa.FPReg(0), Src1: isa.FPReg(31), Src2: isa.FPReg(31), MemID: -1, BrID: -1},
		{Op: isa.FDIV, Dst: isa.FPReg(2), Src1: isa.FPReg(31), Src2: isa.FPReg(31), MemID: -1, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0]},
		{Index: 1, Instr: &instrs[1]},
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	gap := retired[1].master.issueCycle - retired[0].master.issueCycle
	if gap < 8 {
		t.Errorf("second divide issued %d cycles after the first; the divider is not pipelined (want ≥ 8)", gap)
	}
}

func TestIssueRuleMemCap(t *testing.T) {
	// 64 independent loads on the 8-way single cluster: at most 4 memory
	// ops per cycle (Table 1).
	cfg := perfectCaches(SingleCluster8Way())
	n := 64
	instrs := make([]isa.Instruction, n)
	es := make([]trace.Entry, n)
	for i := range instrs {
		instrs[i] = isa.Instruction{Op: isa.LDW, Dst: r(2 * (i % 8)), Src1: isa.RegZero, MemID: i, BrID: -1}
		es[i] = trace.Entry{Index: i, Instr: &instrs[i], Addr: 0x1000}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 64 loads at 4/cycle need ≥ 16 issue cycles.
	if stats.Cycles < 16 {
		t.Errorf("cycles = %d; memory issue cap of 4/cycle violated", stats.Cycles)
	}
}

func TestReplayExceptionBreaksBufferDeadlock(t *testing.T) {
	// Construct the §2.1 deadlock: an old instruction A whose slave (in
	// cluster 1) waits on a slow divide; younger dual instructions whose
	// slaves fill cluster 0's operand buffer and whose masters depend on
	// A's result. A's slave then finds the buffer full while the holders'
	// masters wait on A — an instruction-replay exception must squash the
	// youngsters and let A proceed.
	cfg := perfectCaches(DualCluster4Way())
	cfg.OperandBuffer = 2
	cfg.ReplayWatchdog = 24

	var instrs []isa.Instruction
	// f1 (cluster 1) <- slow divide.
	instrs = append(instrs, isa.Instruction{Op: isa.FDIVD, Dst: isa.FPReg(1), Src1: isa.FPReg(31), Src2: isa.FPReg(31), MemID: -1, BrID: -1})
	// r1 (cluster 1) depends on the divide via a convert.
	instrs = append(instrs, isa.Instruction{Op: isa.CVTFI, Dst: r(1), Src1: isa.FPReg(1), MemID: -1, BrID: -1})
	// A: add r0 = r2 + r1 — master in cluster 0, slave in cluster 1 waits
	// for r1 (the divide chain).
	instrs = append(instrs, lda(r(2), 7))
	instrs = append(instrs, add(r(0), r(2), r(1)))
	aIdx := len(instrs) - 1
	// Youngsters: add r4 = r0 + r3 style — slaves forward r3/r5/... (ready
	// immediately) into cluster 0's buffer; masters wait on r0 (A).
	for i := 0; i < 4; i++ {
		instrs = append(instrs, lda(r(3+2*i), int64(i)))
		instrs = append(instrs, add(r(4+2*i), r(0), r(3+2*i)))
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = aIdx
	if stats.Instructions != int64(len(instrs)) {
		t.Fatalf("retired %d, want %d", stats.Instructions, len(instrs))
	}
	if stats.Replays == 0 {
		t.Error("expected at least one instruction-replay exception")
	}
	if stats.ReplayedInstructions == 0 {
		t.Error("expected replayed instructions")
	}
}

func TestIssueDisorderMetric(t *testing.T) {
	// A slow producer with an independent stream behind it: the stream
	// issues around the stalled consumer, so disorder must be non-zero.
	cfg := perfectCaches(SingleCluster8Way())
	instrs := []isa.Instruction{
		{Op: isa.FDIVD, Dst: isa.FPReg(0), Src1: isa.FPReg(31), Src2: isa.FPReg(31), MemID: -1, BrID: -1},
		{Op: isa.FADD, Dst: isa.FPReg(2), Src1: isa.FPReg(0), Src2: isa.FPReg(0), MemID: -1, BrID: -1},
	}
	for i := 0; i < 16; i++ {
		instrs = append(instrs, lda(r(2*(i%8)), int64(i)))
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DisorderSum == 0 {
		t.Error("independent stream issuing past a stalled consumer must register disorder")
	}
}

func TestColdICacheStallsFetch(t *testing.T) {
	cfg := SingleCluster8Way() // real caches
	n := 64
	instrs := make([]isa.Instruction, n)
	es := make([]trace.Entry, n)
	for i := range instrs {
		instrs[i] = lda(r(2*(i%8)), int64(i))
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ICache.Misses == 0 || stats.Fetch.ICacheMiss == 0 {
		t.Errorf("cold instruction cache should miss and stall: %+v", stats.Fetch)
	}
	// 64 instructions over 8 lines at 16 cycles each ≥ 128 cycles.
	if stats.Cycles < 8*16 {
		t.Errorf("cycles = %d, want ≥ 128 with cold icache", stats.Cycles)
	}
}

func TestRetireWidthBound(t *testing.T) {
	cfg := perfectCaches(SingleCluster8Way())
	cfg.RetireWidth = 2
	n := 128
	instrs := make([]isa.Instruction, n)
	es := make([]trace.Entry, n)
	for i := range instrs {
		instrs[i] = lda(r(2*(i%8)), int64(i))
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ipc := stats.IPC(); ipc > 2.0 {
		t.Errorf("IPC = %.2f exceeds retire width 2", ipc)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := SingleCluster8Way()
	bad.Clusters = 3
	if _, err := New(bad, &trace.SliceReader{}); err == nil {
		t.Error("3-cluster configuration accepted")
	}
	bad2 := SingleCluster8Way()
	bad2.IntRegs = 10
	if _, err := New(bad2, &trace.SliceReader{}); err == nil {
		t.Error("too-small register file accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	p, err := New(perfectCaches(SingleCluster8Way()), &trace.SliceReader{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != 0 || stats.Stop != StopTraceEnd {
		t.Errorf("empty trace: %v", stats)
	}
}

func TestUnifiedBufferStillDrains(t *testing.T) {
	// The unified pool must preserve every conservation invariant and the
	// deadlock-recovery path; a one-entry pool maximizes contention.
	cfg := perfectCaches(DualCluster4Way())
	cfg.OperandBuffer = 1
	cfg.ResultBuffer = 1
	cfg.UnifiedBuffer = true
	cfg.MaxCycles = 1_000_000
	n := 64
	instrs := make([]isa.Instruction, 0, 2*n)
	for i := 0; i < n; i++ {
		instrs = append(instrs, lda(r(2+2*(i%4)), int64(i)))
		instrs = append(instrs, add(r(1+2*(i%4)), r(2+2*(i%4)), r(1+2*(i%4))))
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != int64(len(instrs)) {
		t.Fatalf("retired %d of %d", stats.Instructions, len(instrs))
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load from an address an older in-flight store writes must wait
	// until one cycle after the store issues; the store itself waits on a
	// slow producer.
	cfg := perfectCaches(SingleCluster8Way())
	instrs := []isa.Instruction{
		{Op: isa.MUL, Dst: r(2), Src1: isa.RegZero, Src2: isa.RegZero, MemID: -1, BrID: -1}, // 6 cycles
		{Op: isa.STW, Src1: isa.RegZero, Src2: r(2), MemID: 0, BrID: -1},                    // waits on the mul
		{Op: isa.LDW, Dst: r(4), Src1: isa.RegZero, MemID: 1, BrID: -1},                     // same address
		{Op: isa.LDW, Dst: r(6), Src1: isa.RegZero, MemID: 2, BrID: -1},                     // different address
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0]},
		{Index: 1, Instr: &instrs[1], Addr: 0x5000},
		{Index: 2, Instr: &instrs[2], Addr: 0x5000},
		{Index: 3, Instr: &instrs[3], Addr: 0x9000},
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	st, aliased, free := retired[1], retired[2], retired[3]
	if aliased.master.issueCycle < st.master.issueCycle+1 {
		t.Errorf("aliased load issued at %d, store at %d: no ordering", aliased.master.issueCycle, st.master.issueCycle)
	}
	if free.master.issueCycle >= st.master.issueCycle {
		t.Errorf("independent load at %d waited for the store at %d", free.master.issueCycle, st.master.issueCycle)
	}

	// With UnorderedMemory the aliased load is free to issue early.
	cfg.UnorderedMemory = true
	p2, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	retired = nil
	p2.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p2.Run(); err != nil {
		t.Fatal(err)
	}
	if retired[2].master.issueCycle >= retired[1].master.issueCycle {
		t.Errorf("unordered mode still serialized the aliased load")
	}
}

func TestSpillReloadOrderedAfterSpillStore(t *testing.T) {
	// Spill code uses statically-known addresses; the reload must observe
	// the spill store through the same mechanism.
	cfg := perfectCaches(SingleCluster8Way())
	slotAddr := isa.SpillAddr(0)
	instrs := []isa.Instruction{
		{Op: isa.MUL, Dst: r(2), Src1: isa.RegZero, Src2: isa.RegZero, MemID: -1, BrID: -1},
		{Op: isa.STW, Src1: isa.RegZero, Src2: r(2), MemID: 0, BrID: -1},
		{Op: isa.LDW, Dst: r(4), Src1: isa.RegZero, MemID: 1, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0]},
		{Index: 1, Instr: &instrs[1], Addr: slotAddr},
		{Index: 2, Instr: &instrs[2], Addr: slotAddr},
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if retired[2].master.issueCycle < retired[1].master.issueCycle+1 {
		t.Error("spill reload issued before its spill store")
	}
}
