package core

import "multicluster/internal/trace"

// InstrTimeline records the pipeline lifetime of one retired instruction:
// the event times the paper's Figures 2–5 draw. Cycle values are -1 when
// the event does not apply (e.g. SlaveIssue for a single-distributed
// instruction).
type InstrTimeline struct {
	Seq  int64
	Text string

	Dual          bool
	MasterCluster int

	// OperandForward and ResultForward describe the slave copy's role.
	OperandForward, ResultForward bool

	Distributed int64
	MasterIssue int64
	SlaveIssue  int64
	Result      int64 // master computation complete
	Done        int64 // all copies complete (retire-eligible)
}

// CollectTimeline simulates the trace on cfg and returns one timeline entry
// per retired instruction, in program order, along with the run statistics.
// Intended for short diagnostic programs (the scenario reproductions); the
// timeline grows with the trace.
func CollectTimeline(cfg Config, r trace.Reader) ([]InstrTimeline, Stats, error) {
	p, err := New(cfg, r)
	if err != nil {
		return nil, Stats{}, err
	}
	var out []InstrTimeline
	p.observe = func(d *dynInst) {
		tl := InstrTimeline{
			Seq:           d.seq,
			Text:          d.in.String(),
			Dual:          d.dual,
			MasterCluster: d.masterCl,
			Distributed:   d.master.distributedAt,
			MasterIssue:   d.master.issueCycle,
			SlaveIssue:    -1,
			Result:        d.resultCycle,
			Done:          d.doneCycle,
		}
		if d.dual {
			tl.SlaveIssue = d.slave.issueCycle
			tl.OperandForward = d.slave.opFwdSlave
			tl.ResultForward = d.slave.recvsResult
		}
		out = append(out, tl)
	}
	stats, err := p.Run()
	if err != nil {
		return out, stats, err
	}
	return out, stats, nil
}
