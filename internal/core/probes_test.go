// Probe-hook tests: installing probes must not change the simulated
// machine by a single cycle, and what the probes report must agree with
// the Stats counters the golden fixtures pin.
package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/partition"
	"multicluster/internal/workload"
)

// probeTally accumulates everything the probes report for one run.
type probeTally struct {
	cycles       int64
	queueSum     [2]int64
	stalls       [core.NumStallCauses]int64
	replays      int64
	squashed     int64
	single, dual int64
}

func (pt *probeTally) probes() *core.Probes {
	return &core.Probes{
		Cycle: func(s core.CycleSample) {
			pt.cycles++
			pt.queueSum[0] += int64(s.Queue[0])
			pt.queueSum[1] += int64(s.Queue[1])
		},
		FetchStall: func(c core.StallCause) { pt.stalls[c]++ },
		Replay: func(n int) {
			pt.replays++
			pt.squashed += int64(n)
		},
		Distribute: func(dual bool) {
			if dual {
				pt.dual++
			} else {
				pt.single++
			}
		},
	}
}

// runProbed simulates one workload on the starved two-way dual machine
// (the configuration that exercises replays) with optional probes.
func runProbed(t *testing.T, probes *core.Probes) core.Stats {
	t.Helper()
	b := workload.ByName("compress")
	opts := experiment.DefaultOptions()
	opts.Instructions = 30_000
	opts.ProfileInstructions = 10_000
	opts.Probes = probes
	mp, _, err := experiment.Compile(b, partition.Local{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DualCluster2Way()
	cfg.MaxCycles = opts.Instructions * 200
	stats, err := experiment.Simulate(mp, b, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestProbesMatchStats(t *testing.T) {
	var pt probeTally
	stats := runProbed(t, pt.probes())

	if pt.cycles != stats.Cycles {
		t.Errorf("Cycle probe fired %d times, stats counted %d cycles", pt.cycles, stats.Cycles)
	}
	for c := 0; c < 2; c++ {
		if pt.queueSum[c] != stats.Cluster[c].QueueOccupancySum {
			t.Errorf("cluster %d: probed queue occupancy sum %d != stats %d",
				c, pt.queueSum[c], stats.Cluster[c].QueueOccupancySum)
		}
	}
	wantStalls := [core.NumStallCauses]int64{
		core.StallICacheMiss: stats.Fetch.ICacheMiss,
		core.StallMispredict: stats.Fetch.Mispredict,
		core.StallQueueFull:  stats.Fetch.QueueFull,
		core.StallRegsFull:   stats.Fetch.RegsFull,
		core.StallReplay:     stats.Fetch.Replay,
	}
	if pt.stalls != wantStalls {
		t.Errorf("probed stalls %v != stats stalls %v", pt.stalls, wantStalls)
	}
	if pt.replays != stats.Replays || pt.squashed != stats.ReplayedInstructions {
		t.Errorf("probed replays %d/%d squashed != stats %d/%d",
			pt.replays, pt.squashed, stats.Replays, stats.ReplayedInstructions)
	}
	// Distribute fires per distribution (including refetches after a
	// replay); single+dual distributions in stats count the same events.
	if pt.single != stats.SingleDist || pt.dual != stats.DualDist {
		t.Errorf("probed dist single=%d dual=%d != stats single=%d dual=%d",
			pt.single, pt.dual, stats.SingleDist, stats.DualDist)
	}
	if stats.Replays == 0 {
		t.Log("note: this run had no replays; the replay probe path was not exercised")
	}
}

// TestProbesDoNotPerturbStats is the zero-cost-when-enabled-or-disabled
// invariant in behavioural form: the full snapshot with probes installed
// is byte-identical to the run without them.
func TestProbesDoNotPerturbStats(t *testing.T) {
	var pt probeTally
	withProbes := runProbed(t, pt.probes())
	without := runProbed(t, nil)

	a, err := json.Marshal(withProbes.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(without.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("stats diverge when probes are installed:\nwith:    %s\nwithout: %s", a, b)
	}
}

func TestStallCauseStrings(t *testing.T) {
	want := map[core.StallCause]string{
		core.StallICacheMiss: "icache_miss",
		core.StallMispredict: "mispredict",
		core.StallQueueFull:  "queue_full",
		core.StallRegsFull:   "regs_full",
		core.StallReplay:     "replay",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("StallCause(%d).String() = %q, want %q", c, c.String(), name)
		}
	}
	if core.StallCause(250).String() != "unknown" {
		t.Errorf("out-of-range cause should stringify as unknown")
	}
}
