package core

import (
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

func TestCallAndReturnFlowThrough(t *testing.T) {
	// CALL writes the return address register; RET reads it. Neither is
	// predicted (the paper assumes 100% predictability for them), so no
	// mispredict stalls occur.
	instrs := []isa.Instruction{
		{Op: isa.CALL, Dst: isa.RegRA, Target: 2, MemID: -1, BrID: -1},
		{Op: isa.ADD, Dst: r(2), Src1: isa.RegZero, Src2: isa.RegZero, MemID: -1, BrID: -1},
		{Op: isa.RET, Src1: isa.RegRA, MemID: -1, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0], Taken: true},
		{Index: 2, Instr: &instrs[2], Taken: true},
		{Index: 1, Instr: &instrs[1]},
	}
	retiredSeq := 0
	p, err := New(perfectCaches(DualCluster4Way()), &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	p.observe = func(d *dynInst) { retiredSeq++ }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != 3 || retiredSeq != 3 {
		t.Fatalf("retired %d, want 3", stats.Instructions)
	}
	if stats.Mispredicts != 0 || stats.CondBranches != 0 {
		t.Errorf("calls/returns must not count as predicted branches: %v", stats)
	}
	// The RET depends on RA written by the CALL: it cannot issue earlier.
}

func TestRetDependsOnCallRA(t *testing.T) {
	instrs := []isa.Instruction{
		{Op: isa.CALL, Dst: isa.RegRA, Target: 1, MemID: -1, BrID: -1},
		{Op: isa.RET, Src1: isa.RegRA, MemID: -1, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0], Taken: true},
		{Index: 1, Instr: &instrs[1], Taken: true},
	}
	p, err := New(perfectCaches(SingleCluster8Way()), &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	call, ret := retired[0], retired[1]
	if ret.master.issueCycle < call.resultCycle {
		t.Errorf("ret issued at %d before the call's RA was ready at %d", ret.master.issueCycle, call.resultCycle)
	}
}

func TestDualDistributedStoreForwardsData(t *testing.T) {
	// Store with the address register in cluster 0 and the data register
	// in cluster 1: the master (address side, by tie-break toward the
	// lighter cluster... majority is 1-1) gets the other operand through
	// the operand transfer buffer. Either master choice needs exactly one
	// operand forward and no result forward (stores have no destination).
	instrs := []isa.Instruction{
		lda(r(2), 1),
		lda(r(3), 2),
		{Op: isa.STW, Src1: r(2), Src2: r(3), MemID: 0, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0]},
		{Index: 1, Instr: &instrs[1]},
		{Index: 2, Instr: &instrs[2], Addr: 0x4000},
	}
	p, err := New(perfectCaches(DualCluster4Way()), &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := retired[2]
	if !st.dual {
		t.Fatal("cross-cluster store must dual-distribute")
	}
	if stats.OperandForwards != 1 || stats.ResultForwards != 0 {
		t.Errorf("forwards op=%d res=%d, want 1/0", stats.OperandForwards, stats.ResultForwards)
	}
	if st.renamed[0] || st.renamed[1] {
		t.Error("stores must not allocate destination registers")
	}
}

func TestGlobalSourcesDoNotForceDual(t *testing.T) {
	// Reading a global register from either cluster is free: an add of SP
	// and a cluster-1 local with a cluster-1 destination stays single.
	instrs := []isa.Instruction{
		lda(r(3), 1),
		{Op: isa.ADD, Dst: r(1), Src1: isa.RegSP, Src2: r(3), MemID: -1, BrID: -1},
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0]},
		{Index: 1, Instr: &instrs[1]},
	}
	p, err := New(perfectCaches(DualCluster4Way()), &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if retired[1].dual {
		t.Error("global sources must not force dual distribution")
	}
	if retired[1].masterCl != 1 {
		t.Errorf("master cluster = %d, want 1 (home of r3 and r1)", retired[1].masterCl)
	}
	if stats.DualDist != 0 {
		t.Errorf("dual = %d, want 0", stats.DualDist)
	}
}

func TestFPSlaveConsumesFPSlot(t *testing.T) {
	// An FP operand forwarded by a slave must consume an FP issue slot in
	// the slave's cluster: with FPAll=1 per cluster, the slave competes
	// with FP computation there.
	cfg := perfectCaches(DualCluster4Way())
	f := isa.FPReg
	instrs := []isa.Instruction{
		{Op: isa.FADD, Dst: f(3), Src1: isa.FPZero, Src2: isa.FPZero, MemID: -1, BrID: -1}, // f3: cluster 1
		{Op: isa.FADD, Dst: f(2), Src1: isa.FPZero, Src2: isa.FPZero, MemID: -1, BrID: -1}, // f2: cluster 0
		{Op: isa.FMUL, Dst: f(0), Src1: f(2), Src2: f(3), MemID: -1, BrID: -1},             // slave forwards f3
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	mul := retired[2]
	if !mul.dual || !mul.slave.opFwdSlave {
		t.Fatal("expected an FP operand-forwarding slave")
	}
	if mul.slave.slotClass != isa.ClassFPOther {
		t.Errorf("FP slave slot class = %v, want fp-other", mul.slave.slotClass)
	}
}

func TestLowHighAssignmentInCore(t *testing.T) {
	// Under low/high, r2 and r3 are both cluster 0: the add stays single.
	cfg := perfectCaches(DualCluster4Way())
	cfg.Assignment = isa.LowHighAssignment()
	instrs := []isa.Instruction{
		lda(r(2), 1),
		lda(r(3), 2),
		add(r(4), r(2), r(3)),
		add(r(20), r(2), r(20)), // r20 is cluster 1 under low/high: dual
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if retired[2].dual {
		t.Error("low-register add must be single under low/high")
	}
	if !retired[3].dual {
		t.Error("cross-half add must be dual under low/high")
	}
	if stats.DualDist != 1 {
		t.Errorf("dual = %d, want 1", stats.DualDist)
	}
}

func TestTakenBranchEndsFetchGroup(t *testing.T) {
	// Everything behind a taken branch in the same fetch group waits a
	// cycle: the instruction after an always-taken jump is distributed no
	// earlier than the next cycle.
	instrs := []isa.Instruction{
		{Op: isa.BR, Target: 1, MemID: -1, BrID: -1},
		lda(r(2), 1),
	}
	es := []trace.Entry{
		{Index: 0, Instr: &instrs[0], Taken: true},
		{Index: 1, Instr: &instrs[1]},
	}
	p, err := New(perfectCaches(SingleCluster8Way()), &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if retired[1].master.distributedAt <= retired[0].master.distributedAt {
		t.Errorf("instruction after a taken branch distributed in the same cycle (%d vs %d)",
			retired[1].master.distributedAt, retired[0].master.distributedAt)
	}
}

func TestDuplicateRemoteSourceForwardsOnce(t *testing.T) {
	// add r0 = r3 + r3 under the alternate master policy can place the
	// master in cluster 0 with both sources remote; the single value must
	// occupy one operand-buffer entry, not two.
	cfg := perfectCaches(DualCluster4Way())
	cfg.MasterSelect = MasterAlternate
	cfg.OperandBuffer = 2
	instrs := []isa.Instruction{
		lda(r(3), 7),          // seq 0: alternate -> cluster 0? irrelevant
		add(r(0), r(3), r(3)), // may master on cluster 0 with r3 remote
		add(r(2), r(3), r(3)), // and again
	}
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions != int64(len(instrs)) {
		t.Fatalf("retired %d of %d", stats.Instructions, len(instrs))
	}
	for _, d := range retired {
		if d.dual && d.master.fwdOperands > 1 {
			t.Errorf("instruction forwarded %d entries for one distinct value", d.master.fwdOperands)
		}
	}
}
