package core

import (
	"fmt"

	"multicluster/internal/bpred"
	"multicluster/internal/cache"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Processor is one configured machine instance. Create with New, run one
// trace with Run; a Processor is not reusable across runs and not safe for
// concurrent use.
type Processor struct {
	cfg    Config
	icache *cache.Cache
	dcache *cache.Cache
	pred   *bpred.Predictor

	// Per-cluster machine state. The rename table is a dense array indexed
	// directly by architectural register number (Reg values are 1..NumRegs;
	// entry 0 is RegNone and stays nil).
	queue    [2][]*uop
	rename   [2][isa.NumRegs + 1]*dynInst
	freeRegs [2][2]int // [cluster][0 int, 1 fp]
	divFree  [2][]int64

	// Transfer-buffer occupancy, maintained incrementally: doIssue adds
	// entries as they are claimed, and bufEvents (a min-heap of release
	// times) returns them at the cycle the old per-cycle recomputation
	// would first have stopped counting them. Squash frees held entries
	// eagerly; the opHeld/resHeld flags make each free happen exactly once.
	opBufUsed  [2]int
	resBufUsed [2]int
	bufEvents  []bufEvent

	active []*dynInst // fetch-order window (the active list)
	// unissuedHead is the index into active of the oldest instruction with
	// an unissued copy, advanced lazily (everything before it is fully
	// issued). Retire pops decrement it; squash truncation preserves it.
	unissuedHead int
	pendingBr    []*dynInst

	reader      trace.Reader
	pending     fetchItem
	havePending bool
	refetch     []fetchItem
	traceDone   bool

	// slab hands out dynInst storage in blocks, one allocation per
	// dynInstSlabSize instructions. Retired instructions are not reused
	// (in-flight consumers may still hold pointers); the GC reclaims a
	// block once nothing references into it.
	slab []dynInst

	// arena, when set (batch runs only), supplies recycled slab blocks
	// from earlier batch members and collects this processor's blocks
	// when its run completes; blocks tracks every block taken so the
	// arena can reclaim them. Nil for standalone processors — recycling
	// is only safe when one owner controls both processors' lifetimes.
	arena  *slabArena
	blocks [][]dynInst

	// linesTouched is fetch's per-cycle scratch for icache lines already
	// accessed this cycle, kept across cycles to avoid reallocation.
	linesTouched []uint64

	nextSeq      int64
	maxIssuedSeq int64
	cycle        int64

	fetchStallUntil    int64
	fetchStallIsReplay bool

	lastProgress int64

	// reassigns holds the not-yet-applied dynamic-reassignment hints.
	reassigns []Reassignment

	// lastStore maps a word-aligned address to the youngest store
	// distributed to it, for store→load dependence tracking.
	lastStore map[uint64]*dynInst

	// Buffer-deadlock detection: the sequence number of the oldest
	// instruction with an unissued copy, whether it was blocked purely by
	// transfer-buffer space this cycle, and for how many consecutive
	// cycles that has held.
	oldestUnissuedSeq int64
	bufBlockedNow     bool
	bufBlockedSeq     int64
	bufBlockedRun     int

	stats Stats

	// observe, when set, is called for every retired instruction; used by
	// white-box timing tests and by the pipeline-diagram tooling.
	observe func(*dynInst)

	// probes, when set via SetProbes, receives per-cycle occupancy samples
	// and stall/replay/distribution events (see probes.go). Nil-checked at
	// every site so the disabled cost is a pointer compare.
	probes *Probes
}

// New builds a processor for cfg reading dynamic instructions from r.
func New(cfg Config, r trace.Reader) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Processor{
		cfg:          cfg,
		icache:       cache.MustNew(cfg.ICache),
		dcache:       cache.MustNew(cfg.DCache),
		pred:         bpred.New(cfg.Predictor),
		reader:       r,
		maxIssuedSeq: -1,
	}
	p.reassigns = append(p.reassigns, cfg.Reassignments...)
	if !cfg.UnorderedMemory {
		p.lastStore = make(map[uint64]*dynInst)
	}
	if cfg.CollectProfile {
		p.stats.Profile = make(map[int]PCStat)
	}
	for c := 0; c < cfg.Clusters; c++ {
		p.divFree[c] = make([]int64, cfg.Rules.FPDiv)
		p.freeRegs[c][0] = cfg.IntRegs - p.backedRegs(c, false)
		p.freeRegs[c][1] = cfg.FPRegs - p.backedRegs(c, true)
		if p.freeRegs[c][0] <= 0 || p.freeRegs[c][1] <= 0 {
			return nil, fmt.Errorf("core: cluster %d has no free physical registers after backing the architectural state", c)
		}
	}
	return p, nil
}

// backedRegs counts the architectural registers whose committed values a
// cluster must hold in physical registers: its locals plus the globals
// (zero registers are hardwired, not renamed).
func (p *Processor) backedRegs(c int, fp bool) int {
	if p.cfg.Clusters == 1 {
		if fp {
			return isa.NumFPRegs - 1 // f31 is hardwired zero
		}
		return isa.NumIntRegs - 1
	}
	n := len(p.cfg.Assignment.LocalRegs(c, fp))
	for _, g := range p.cfg.Assignment.Globals() {
		if g.IsFP() == fp && !g.IsZero() {
			n++
		}
	}
	return n
}

// Run simulates until the trace is exhausted and the machine drains, or
// until MaxCycles. It returns the accumulated statistics.
func (p *Processor) Run() (Stats, error) {
	maxCycles := p.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(1) << 62
	}
	p.stats.Stop = StopTraceEnd
	for {
		if p.drained() {
			break
		}
		if p.cycle >= maxCycles {
			p.stats.Stop = StopMaxCycles
			break
		}
		if err := p.step(); err != nil {
			return p.stats, err
		}
	}
	p.stats.Cycles = p.cycle
	p.stats.ICache = p.icache.Stats()
	p.stats.DCache = p.dcache.Stats()
	p.stats.Predictor = p.pred.Stats()
	return p.stats, nil
}

func (p *Processor) drained() bool {
	return p.traceDone && !p.havePending && len(p.refetch) == 0 && len(p.active) == 0
}

// dynInstSlabSize is how many dynInst slots each slab block holds.
const dynInstSlabSize = 256

// newDynInst returns a zeroed dynInst from the current slab block.
func (p *Processor) newDynInst() *dynInst {
	if len(p.slab) == 0 {
		p.slab = p.newSlabBlock()
	}
	d := &p.slab[0]
	p.slab = p.slab[1:]
	return d
}

// newSlabBlock allocates the next slab block, preferring a recycled one
// from the batch arena when this processor runs as part of a batch.
func (p *Processor) newSlabBlock() []dynInst {
	if p.arena == nil {
		return make([]dynInst, dynInstSlabSize)
	}
	b := p.arena.take()
	if b == nil {
		b = make([]dynInst, dynInstSlabSize)
	}
	p.blocks = append(p.blocks, b)
	return b
}

// oldestUnissued advances the unissued cursor past fully-issued
// instructions and returns the oldest one with an unissued copy, or nil.
// The active list is in sequence order, so the cursor only moves forward
// between retire pops.
func (p *Processor) oldestUnissued() *dynInst {
	for p.unissuedHead < len(p.active) && p.active[p.unissuedHead].allIssued() {
		p.unissuedHead++
	}
	if p.unissuedHead < len(p.active) {
		return p.active[p.unissuedHead]
	}
	return nil
}

// youngestBlocked reports whether the oldest unissued instruction is also
// the youngest in flight (the active list is in sequence order).
func (p *Processor) youngestBlocked() bool {
	n := len(p.active)
	return n == 0 || p.active[n-1].seq <= p.oldestUnissuedSeq
}

// queueLen returns cluster c's dispatch-queue occupancy.
func (p *Processor) queueLen(c int) int { return len(p.queue[c]) }

// activeLen returns the number of instructions in the active window.
func (p *Processor) activeLen() int { return len(p.active) }

// step advances the machine one cycle: resolve branches, release expired
// transfer-buffer entries, retire, issue, fetch/distribute, then check the
// replay watchdog.
func (p *Processor) step() error {
	t := p.cycle
	progress := false

	p.resolveBranches(t)
	p.releaseBufferEntries(t)

	p.oldestUnissuedSeq = -1
	if d := p.oldestUnissued(); d != nil {
		p.oldestUnissuedSeq = d.seq
	}
	p.bufBlockedNow = false

	if p.retire(t) {
		progress = true
	}
	for c := 0; c < p.cfg.Clusters; c++ {
		if p.issueCluster(c, t) {
			progress = true
		}
		p.stats.Cluster[c].QueueOccupancySum += int64(len(p.queue[c]))
	}
	// Sample occupancy here — the same post-issue, pre-fetch point the
	// QueueOccupancySum stat accumulates at — so the probed distribution
	// integrates to exactly the pinned mean.
	if p.probes != nil {
		p.probeCycle(t)
	}
	if p.fetch(t) {
		progress = true
	}

	// Precise replay trigger: the oldest unissued instruction has been
	// blocked purely by transfer-buffer space for several consecutive
	// cycles. The entries it needs are necessarily held by younger
	// instructions, so this cannot resolve on its own (§2.1).
	if p.bufBlockedNow && p.oldestUnissuedSeq == p.bufBlockedSeq {
		p.bufBlockedRun++
	} else if p.bufBlockedNow {
		p.bufBlockedSeq = p.oldestUnissuedSeq
		p.bufBlockedRun = 1
	} else {
		p.bufBlockedRun = 0
	}

	switch {
	case p.bufBlockedRun >= bufferBlockCycles && !p.youngestBlocked():
		if err := p.replay(t); err != nil {
			return err
		}
		p.bufBlockedRun = 0
		p.lastProgress = t
	case p.bufBlockedRun >= bufferBlockCycles:
		// The blocked instruction is the youngest in flight, so the buffer
		// entries it needs are held by *older* instructions — a bounded
		// transient that drains as they complete, not the §2.1 deadlock
		// (which needs younger holders). Squashing could not help; keep
		// waiting and let the generic watchdog catch real deadlocks.
		p.bufBlockedRun = 0
	case progress:
		p.lastProgress = t
	case len(p.active) > 0 && t-p.lastProgress >= int64(p.cfg.ReplayWatchdog):
		if err := p.replay(t); err != nil {
			return err
		}
		p.lastProgress = t
	}
	p.cycle++
	return nil
}

// resolveBranches trains the predictor at branch execution time and prunes
// settled entries. Mispredicted branches block fetch until one cycle after
// resolution (the machine would have been fetching the wrong path).
func (p *Processor) resolveBranches(t int64) {
	kept := p.pendingBr[:0]
	for _, b := range p.pendingBr {
		if b.squashed {
			continue
		}
		if !b.resolved && b.master.issued && b.resultCycle <= t {
			b.resolved = true
			p.pred.Update(b.snap, b.taken)
			if b.mispredicted {
				p.stats.Mispredicts++
				p.stats.MispredResolveSum += b.resultCycle - b.master.distributedAt
			}
		}
		if b.resolved && b.resultCycle+1 <= t {
			continue // settled; fetch no longer blocked by it
		}
		kept = append(kept, b)
	}
	p.pendingBr = kept
}

// fetchBlockedByBranch reports whether an in-flight mispredicted branch
// still gates fetch at cycle t.
func (p *Processor) fetchBlockedByBranch(t int64) bool {
	for _, b := range p.pendingBr {
		if b.mispredicted && (!b.resolved || b.resultCycle+1 > t) {
			return true
		}
	}
	return false
}

// bufEvent schedules the return of one instruction's transfer-buffer
// claim: its operand entries (op) or its result entry (!op) stop counting
// against occupancy from cycle `when` on.
type bufEvent struct {
	when int64
	d    *dynInst
	op   bool
}

// pushBufEvent schedules a release on the min-heap.
func (p *Processor) pushBufEvent(when int64, d *dynInst, op bool) {
	h := append(p.bufEvents, bufEvent{when, d, op})
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if h[parent].when <= h[i].when {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	p.bufEvents = h
}

// releaseBufferEntries frees every transfer-buffer claim whose release
// time has arrived, at the start of cycle t. Claims already freed by a
// squash are skipped via the held flags. Operand entries are occupied
// from slave issue through master issue inclusive (released the cycle
// after the master reads them); result entries from master issue through
// the consuming slave's issue (scenarios 3/4) or through the result's
// arrival (scenario 5, the suspended slave).
func (p *Processor) releaseBufferEntries(t int64) {
	h := p.bufEvents
	for len(h) > 0 && h[0].when <= t {
		e := h[0]
		n := len(h) - 1
		h[0] = h[n]
		h[n] = bufEvent{} // drop the dynInst reference
		h = h[:n]
		for i := 0; ; {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && h[r].when < h[l].when {
				l = r
			}
			if h[i].when <= h[l].when {
				break
			}
			h[i], h[l] = h[l], h[i]
			i = l
		}
		p.releaseHeld(e.d, e.op)
	}
	p.bufEvents = h
}

// releaseHeld returns one instruction's operand or result buffer claim,
// exactly once.
func (p *Processor) releaseHeld(d *dynInst, op bool) {
	if op {
		if d.opHeld {
			p.opBufUsed[d.master.cluster] -= d.master.fwdOperands
			d.opHeld = false
		}
	} else if d.resHeld {
		p.resBufUsed[d.slave.cluster]--
		d.resHeld = false
	}
}

// retired reports whether the instruction has left the active list.
func (d *dynInst) retired() bool { return d.retiredFlag }

// retire commits completed instructions in program order, up to
// RetireWidth per cycle, releasing the physical registers of the previous
// mappings of their destinations.
func (p *Processor) retire(t int64) bool {
	n := 0
	for n < p.cfg.RetireWidth && len(p.active) > 0 {
		d := p.active[0]
		if !d.retireReady(t) {
			break
		}
		p.active = p.active[1:]
		if p.unissuedHead > 0 {
			p.unissuedHead--
		}
		d.retiredFlag = true
		// Drop the store-ordering entry once the store leaves the window,
		// so the map only ever pins in-flight instructions.
		if p.lastStore != nil && d.in.Op.Class() == isa.ClassStore && p.lastStore[d.addr&^7] == d {
			delete(p.lastStore, d.addr&^7)
		}
		if d.destReg != isa.RegNone {
			fp := bIdx(d.destReg.IsFP())
			for c := 0; c < p.cfg.Clusters; c++ {
				if d.renamed[c] {
					p.freeRegs[c][fp]++
				}
			}
		}
		p.stats.Instructions++
		if d.isCondBr {
			p.stats.CondBranches++
		}
		if p.stats.Profile != nil {
			pc := p.stats.Profile[d.idx]
			pc.Count++
			pc.IssueDelaySum += d.master.issueCycle - d.master.distributedAt
			if d.dual {
				pc.DualCount++
			}
			if d.isCondBr && d.mispredicted {
				pc.Mispredicts++
			}
			p.stats.Profile[d.idx] = pc
		}
		if p.observe != nil {
			p.observe(d)
		}
		// A retired instruction can never be squashed and never re-checks
		// readiness, so its back-references are dead: clearing them breaks
		// producer chains and lets the GC reclaim old slab blocks.
		d.prevProd[0], d.prevProd[1] = nil, nil
		d.mu.srcs[0], d.mu.srcs[1] = nil, nil
		d.su.srcs[0], d.su.srcs[1] = nil, nil
		d.mu.memDep = nil
		n++
	}
	return n > 0
}
