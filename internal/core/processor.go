package core

import (
	"fmt"

	"multicluster/internal/bpred"
	"multicluster/internal/cache"
	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// Processor is one configured machine instance. Create with New, run one
// trace with Run; a Processor is not reusable across runs and not safe for
// concurrent use.
type Processor struct {
	cfg    Config
	icache *cache.Cache
	dcache *cache.Cache
	pred   *bpred.Predictor

	// Per-cluster machine state.
	queue    [2][]*uop
	rename   [2]map[isa.Reg]*dynInst
	freeRegs [2][2]int // [cluster][0 int, 1 fp]
	divFree  [2][]int64

	// Transfer-buffer occupancy, recomputed each cycle from dualInFlight
	// and then adjusted by same-cycle allocations (squash-safe by
	// construction).
	opBufUsed  [2]int
	resBufUsed [2]int

	active       []*dynInst // fetch-order window (the active list)
	dualInFlight []*dynInst
	pendingBr    []*dynInst

	reader    trace.Reader
	pending   *fetchItem
	refetch   []fetchItem
	traceDone bool

	nextSeq      int64
	maxIssuedSeq int64
	cycle        int64

	fetchStallUntil    int64
	fetchStallIsReplay bool

	lastProgress int64

	// reassigns holds the not-yet-applied dynamic-reassignment hints.
	reassigns []Reassignment

	// lastStore maps a word-aligned address to the youngest store
	// distributed to it, for store→load dependence tracking.
	lastStore map[uint64]*dynInst

	// Buffer-deadlock detection: the sequence number of the oldest
	// instruction with an unissued copy, whether it was blocked purely by
	// transfer-buffer space this cycle, and for how many consecutive
	// cycles that has held.
	oldestUnissuedSeq int64
	bufBlockedNow     bool
	bufBlockedSeq     int64
	bufBlockedRun     int

	stats Stats

	// observe, when set, is called for every retired instruction; used by
	// white-box timing tests and by the pipeline-diagram tooling.
	observe func(*dynInst)
}

// New builds a processor for cfg reading dynamic instructions from r.
func New(cfg Config, r trace.Reader) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Processor{
		cfg:          cfg,
		icache:       cache.MustNew(cfg.ICache),
		dcache:       cache.MustNew(cfg.DCache),
		pred:         bpred.New(cfg.Predictor),
		reader:       r,
		maxIssuedSeq: -1,
	}
	p.reassigns = append(p.reassigns, cfg.Reassignments...)
	if !cfg.UnorderedMemory {
		p.lastStore = make(map[uint64]*dynInst)
	}
	if cfg.CollectProfile {
		p.stats.Profile = make(map[int]PCStat)
	}
	for c := 0; c < cfg.Clusters; c++ {
		p.rename[c] = make(map[isa.Reg]*dynInst, isa.NumRegs)
		p.divFree[c] = make([]int64, cfg.Rules.FPDiv)
		p.freeRegs[c][0] = cfg.IntRegs - p.backedRegs(c, false)
		p.freeRegs[c][1] = cfg.FPRegs - p.backedRegs(c, true)
		if p.freeRegs[c][0] <= 0 || p.freeRegs[c][1] <= 0 {
			return nil, fmt.Errorf("core: cluster %d has no free physical registers after backing the architectural state", c)
		}
	}
	return p, nil
}

// backedRegs counts the architectural registers whose committed values a
// cluster must hold in physical registers: its locals plus the globals
// (zero registers are hardwired, not renamed).
func (p *Processor) backedRegs(c int, fp bool) int {
	if p.cfg.Clusters == 1 {
		if fp {
			return isa.NumFPRegs - 1 // f31 is hardwired zero
		}
		return isa.NumIntRegs - 1
	}
	n := len(p.cfg.Assignment.LocalRegs(c, fp))
	for _, g := range p.cfg.Assignment.Globals() {
		if g.IsFP() == fp && !g.IsZero() {
			n++
		}
	}
	return n
}

// Run simulates until the trace is exhausted and the machine drains, or
// until MaxCycles. It returns the accumulated statistics.
func (p *Processor) Run() (Stats, error) {
	maxCycles := p.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(1) << 62
	}
	p.stats.Stop = StopTraceEnd
	for {
		if p.drained() {
			break
		}
		if p.cycle >= maxCycles {
			p.stats.Stop = StopMaxCycles
			break
		}
		if err := p.step(); err != nil {
			return p.stats, err
		}
	}
	p.stats.Cycles = p.cycle
	p.stats.ICache = p.icache.Stats()
	p.stats.DCache = p.dcache.Stats()
	p.stats.Predictor = p.pred.Stats()
	return p.stats, nil
}

func (p *Processor) drained() bool {
	return p.traceDone && p.pending == nil && len(p.refetch) == 0 && len(p.active) == 0
}

// youngestBlocked reports whether the oldest unissued instruction is also
// the youngest in flight (the active list is in sequence order).
func (p *Processor) youngestBlocked() bool {
	n := len(p.active)
	return n == 0 || p.active[n-1].seq <= p.oldestUnissuedSeq
}

// queueLen returns cluster c's dispatch-queue occupancy.
func (p *Processor) queueLen(c int) int { return len(p.queue[c]) }

// activeLen returns the number of instructions in the active window.
func (p *Processor) activeLen() int { return len(p.active) }

// step advances the machine one cycle: resolve branches, recompute buffer
// occupancy, retire, issue, fetch/distribute, then check the replay
// watchdog.
func (p *Processor) step() error {
	t := p.cycle
	progress := false

	p.resolveBranches(t)
	p.computeBufferOccupancy(t)

	p.oldestUnissuedSeq = -1
	for _, d := range p.active {
		if !d.allIssued() {
			p.oldestUnissuedSeq = d.seq
			break
		}
	}
	p.bufBlockedNow = false

	if p.retire(t) {
		progress = true
	}
	for c := 0; c < p.cfg.Clusters; c++ {
		if p.issueCluster(c, t) {
			progress = true
		}
		p.stats.Cluster[c].QueueOccupancySum += int64(len(p.queue[c]))
	}
	if p.fetch(t) {
		progress = true
	}

	// Precise replay trigger: the oldest unissued instruction has been
	// blocked purely by transfer-buffer space for several consecutive
	// cycles. The entries it needs are necessarily held by younger
	// instructions, so this cannot resolve on its own (§2.1).
	if p.bufBlockedNow && p.oldestUnissuedSeq == p.bufBlockedSeq {
		p.bufBlockedRun++
	} else if p.bufBlockedNow {
		p.bufBlockedSeq = p.oldestUnissuedSeq
		p.bufBlockedRun = 1
	} else {
		p.bufBlockedRun = 0
	}

	switch {
	case p.bufBlockedRun >= bufferBlockCycles && !p.youngestBlocked():
		if err := p.replay(t); err != nil {
			return err
		}
		p.bufBlockedRun = 0
		p.lastProgress = t
	case p.bufBlockedRun >= bufferBlockCycles:
		// The blocked instruction is the youngest in flight, so the buffer
		// entries it needs are held by *older* instructions — a bounded
		// transient that drains as they complete, not the §2.1 deadlock
		// (which needs younger holders). Squashing could not help; keep
		// waiting and let the generic watchdog catch real deadlocks.
		p.bufBlockedRun = 0
	case progress:
		p.lastProgress = t
	case len(p.active) > 0 && t-p.lastProgress >= int64(p.cfg.ReplayWatchdog):
		if err := p.replay(t); err != nil {
			return err
		}
		p.lastProgress = t
	}
	p.cycle++
	return nil
}

// resolveBranches trains the predictor at branch execution time and prunes
// settled entries. Mispredicted branches block fetch until one cycle after
// resolution (the machine would have been fetching the wrong path).
func (p *Processor) resolveBranches(t int64) {
	kept := p.pendingBr[:0]
	for _, b := range p.pendingBr {
		if b.squashed {
			continue
		}
		if !b.resolved && b.master.issued && b.resultCycle <= t {
			b.resolved = true
			p.pred.Update(b.snap, b.taken)
			if b.mispredicted {
				p.stats.Mispredicts++
				p.stats.MispredResolveSum += b.resultCycle - b.master.distributedAt
			}
		}
		if b.resolved && b.resultCycle+1 <= t {
			continue // settled; fetch no longer blocked by it
		}
		kept = append(kept, b)
	}
	p.pendingBr = kept
}

// fetchBlockedByBranch reports whether an in-flight mispredicted branch
// still gates fetch at cycle t.
func (p *Processor) fetchBlockedByBranch(t int64) bool {
	for _, b := range p.pendingBr {
		if b.mispredicted && (!b.resolved || b.resultCycle+1 > t) {
			return true
		}
	}
	return false
}

// computeBufferOccupancy derives the operand/result transfer-buffer usage
// for cycle t from the dual-distributed instructions in flight, pruning
// retired and squashed entries as it goes.
func (p *Processor) computeBufferOccupancy(t int64) {
	p.opBufUsed[0], p.opBufUsed[1] = 0, 0
	p.resBufUsed[0], p.resBufUsed[1] = 0, 0
	kept := p.dualInFlight[:0]
	for _, d := range p.dualInFlight {
		if d.squashed || d.retired() {
			continue
		}
		kept = append(kept, d)
		s, m := d.slave, d.master
		if s.opFwdSlave && s.issued && s.issueCycle <= t {
			// Operand entries live in the master's cluster until the
			// master reads them at issue (reusable the next cycle).
			if !m.issued || m.issueCycle >= t {
				p.opBufUsed[m.cluster] += m.fwdOperands
			}
		}
		if m.sendsResult && m.issued && m.issueCycle <= t {
			end := int64(never)
			if s.opFwdSlave {
				// Scenario 5: the suspended slave reads the entry when the
				// result arrives.
				end = d.resultCycle
			} else if s.issued {
				end = s.issueCycle
			}
			if t <= end {
				p.resBufUsed[s.cluster]++
			}
		}
	}
	p.dualInFlight = kept
}

// retired reports whether the instruction has left the active list.
func (d *dynInst) retired() bool { return d.retiredFlag }

// retire commits completed instructions in program order, up to
// RetireWidth per cycle, releasing the physical registers of the previous
// mappings of their destinations.
func (p *Processor) retire(t int64) bool {
	n := 0
	for n < p.cfg.RetireWidth && len(p.active) > 0 {
		d := p.active[0]
		if !d.retireReady(t) {
			break
		}
		p.active = p.active[1:]
		d.retiredFlag = true
		// Drop the store-ordering entry once the store leaves the window,
		// so the map only ever pins in-flight instructions.
		if p.lastStore != nil && d.in.Op.Class() == isa.ClassStore && p.lastStore[d.addr&^7] == d {
			delete(p.lastStore, d.addr&^7)
		}
		if d.destReg != isa.RegNone {
			fp := bIdx(d.destReg.IsFP())
			for c := 0; c < p.cfg.Clusters; c++ {
				if d.renamed[c] {
					p.freeRegs[c][fp]++
				}
			}
		}
		p.stats.Instructions++
		if d.isCondBr {
			p.stats.CondBranches++
		}
		if p.stats.Profile != nil {
			pc := p.stats.Profile[d.idx]
			pc.Count++
			pc.IssueDelaySum += d.master.issueCycle - d.master.distributedAt
			if d.dual {
				pc.DualCount++
			}
			if d.isCondBr && d.mispredicted {
				pc.Mispredicts++
			}
			p.stats.Profile[d.idx] = pc
		}
		if p.observe != nil {
			p.observe(d)
		}
		n++
	}
	return n > 0
}
