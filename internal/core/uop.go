package core

import (
	"math"

	"multicluster/internal/bpred"
	"multicluster/internal/isa"
)

// never is a cycle that never arrives.
const never = int64(math.MaxInt64 / 4)

// dynInst is one logical dynamic instruction in flight. A dual-distributed
// instruction owns two uops (a master and a slave); a single-distributed
// instruction owns one. The uops are embedded (mu, su) so a dynamic
// instruction and its copies are a single allocation; master and slave
// point into the same struct.
type dynInst struct {
	seq   int64
	idx   int // static instruction index
	in    *isa.Instruction
	addr  uint64
	taken bool

	latency int

	dual     bool
	masterCl int
	master   *uop
	slave    *uop // nil unless dual
	mu, su   uop

	// resultCycle is when the master's computation completes (set at
	// master issue).
	resultCycle int64
	// readyIn[c] is when the destination value becomes readable by
	// consumers in cluster c.
	readyIn [2]int64
	// doneCycle is when every copy's work is finished (retire-eligible).
	doneCycle int64

	issuedCopies int
	copies       int

	// Destination renaming bookkeeping for squash and retire.
	destReg  isa.Reg
	renamed  [2]bool
	prevProd [2]*dynInst

	// Conditional-branch state.
	isCondBr     bool
	snap         bpred.Snapshot
	mispredicted bool
	resolved     bool

	// opHeld / resHeld track whether this instruction currently occupies
	// operand / result transfer-buffer entries, so a squash or a release
	// event frees each claim exactly once.
	opHeld  bool
	resHeld bool

	squashed    bool
	retiredFlag bool
}

// allIssued reports whether every copy has issued.
func (d *dynInst) allIssued() bool { return d.issuedCopies == d.copies }

// retireReady reports whether the instruction can retire at cycle t.
func (d *dynInst) retireReady(t int64) bool {
	return d.allIssued() && d.doneCycle <= t
}

// uop is one copy of an instruction in one cluster's dispatch queue.
type uop struct {
	inst    *dynInst
	cluster int
	master  bool

	// srcs[:nSrcs] are the local producers whose values this copy reads
	// from its cluster's register file. An instruction has at most two
	// sources; producers already retired at distribute time are filtered
	// (their values are architectural, readable immediately).
	srcs  [2]*dynInst
	nSrcs int8

	// fwdOperands is, for a master, the number of operands its slave
	// forwards through the master cluster's operand transfer buffer.
	fwdOperands int
	// sendsResult marks a master that must allocate a result-buffer entry
	// in the other cluster at issue.
	sendsResult bool
	// opFwdSlave marks a slave that reads operands and forwards them.
	opFwdSlave bool
	// recvsResult marks a slave whose cluster receives the result.
	recvsResult bool

	// memDep, on a load's master, is the youngest older in-flight store to
	// the same (word-aligned) address; the load issues no earlier than one
	// cycle after it (store-queue forwarding).
	memDep *dynInst

	// slotClass is the issue-rule class this copy's issue slot counts
	// against.
	slotClass isa.Class

	distributedAt int64
	issued        bool
	issueCycle    int64
}

// srcsReady reports whether all local register sources are readable at t.
func (u *uop) srcsReady(t int64) bool {
	for i := int8(0); i < u.nSrcs; i++ {
		if u.srcs[i].readyIn[u.cluster] > t {
			return false
		}
	}
	return true
}

// interCopyReady checks the dependence between the two copies of a
// dual-distributed instruction (§2.1): a master waits one cycle past its
// operand-forwarding slave's issue; a result-receiving slave is released
// max(1, L-1) cycles after the master issues (two cycles before the result
// is due).
func (u *uop) interCopyReady(t int64) bool {
	if u.master {
		if u.fwdOperands > 0 {
			s := u.inst.slave
			if !s.issued || s.issueCycle+1 > t {
				return false
			}
		}
		return true
	}
	// Slave.
	if u.recvsResult && !u.opFwdSlave {
		m := u.inst.master
		if !m.issued {
			return false
		}
		// Released two cycles before the master's result is due (so the
		// forwarded value meets the slave in the buffer), but never in the
		// master's own issue cycle. Using the actual result cycle matters
		// for loads, whose completion depends on the data cache.
		rel := u.inst.resultCycle - 1
		if min := m.issueCycle + 1; rel < min {
			rel = min
		}
		return rel <= t
	}
	// Operand-forwarding slave: gated only by its sources (and resources).
	return true
}
