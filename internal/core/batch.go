package core

import (
	"fmt"
	"sync"

	"multicluster/internal/trace"
)

// This file is the batch runner behind batched sweeps: N config-variant
// processors stepped over one shared, materialized trace
// (trace.Artifact). Two structural savings fall out of the batch owning
// every member's lifetime:
//
//   - the trace is generated once and each member replays it through a
//     zero-alloc cursor, instead of re-running the workload driver (map
//     lookups, address synthesis) once per cell;
//   - the dynInst slab blocks of a completed member are recycled into the
//     next member's allocator. A standalone processor can never reuse a
//     retired instruction's storage (transfer-buffer release events and
//     unresolved branches may hold pointers past retirement), but once a
//     member's run has fully completed and its processor is discarded,
//     nothing can reach into its slabs — so the next member reuses them,
//     cutting the batch's allocation churn (and therefore GC time, the
//     single largest non-simulation cost) by roughly the batch size.
//
// Each member still simulates exactly as it would standalone: recycled
// blocks are zeroed before reuse, so the golden fixtures are
// byte-identical between the batch path and N independent runs.

// slabPool recycles slab blocks across batches: the first member of every
// batch would otherwise allocate its full slab footprint fresh (the
// dominant allocation of the whole batch path). Entries are only ever
// blocks reclaimed from discarded processors, and take zeroes them, so
// pooled storage is indistinguishable from fresh. sync.Pool keeps the
// footprint GC-bounded.
var slabPool sync.Pool

// slabArena recycles dynInst slab blocks between processors whose
// lifetimes the batch runner owns. Blocks are zeroed on take, so a
// recycled block is indistinguishable from a fresh allocation.
type slabArena struct {
	free [][]dynInst
}

// take pops a recycled block, zeroed for reuse; nil when none is
// available. Blocks reclaimed in this batch are preferred; otherwise the
// cross-batch pool is consulted.
func (a *slabArena) take() []dynInst {
	n := len(a.free)
	if n == 0 {
		if v, ok := slabPool.Get().(*[]dynInst); ok {
			b := *v
			clear(b)
			return b
		}
		return nil
	}
	b := a.free[n-1]
	a.free[n-1] = nil
	a.free = a.free[:n-1]
	clear(b)
	return b
}

// release returns the arena's remaining blocks to the cross-batch pool;
// called once the batch is done with them.
func (a *slabArena) release() {
	for _, b := range a.free {
		b := b
		slabPool.Put(&b)
	}
	a.free = nil
}

// reclaim adopts every slab block of a processor whose run has
// completed. The caller must not touch p afterwards: its machine state
// still points into the reclaimed blocks.
func (a *slabArena) reclaim(p *Processor) {
	a.free = append(a.free, p.blocks...)
	p.blocks = nil
	p.slab = nil
}

// RunBatch simulates one processor per configuration, each reading the
// shared source through its own cursor, and returns the per-member
// statistics in input order. Results are byte-identical to running each
// configuration standalone over the same stream. Any member's simulation
// error (a machine deadlock, an invalid configuration) aborts the batch;
// callers that need per-member attribution re-run the failing member
// alone.
func RunBatch(cfgs []Config, src trace.Source) ([]Stats, error) {
	return RunBatchProbes(cfgs, src, nil)
}

// RunBatchProbes is RunBatch with an optional probe set installed on
// every member (probes observe without perturbing the simulation, so the
// batch stays fixture-identical).
func RunBatchProbes(cfgs []Config, src trace.Source, probes *Probes) ([]Stats, error) {
	stats := make([]Stats, len(cfgs))
	arena := &slabArena{}
	defer arena.release()
	for i, cfg := range cfgs {
		p, err := New(cfg, src.NewReader())
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", i, err)
		}
		p.arena = arena
		if probes != nil {
			p.SetProbes(probes)
		}
		s, err := p.Run()
		if err != nil {
			return nil, fmt.Errorf("core: batch member %d: %w", i, err)
		}
		stats[i] = s
		arena.reclaim(p)
	}
	return stats, nil
}
