package core

// StatsSnapshot is the serializable form of a simulation result: the raw
// counters of Stats plus every derived metric the paper's analysis leans
// on, precomputed so consumers on the other side of an API boundary (the
// sweep service, plotting scripts, regression trackers) never reimplement
// the ratios — or get them subtly wrong.
type StatsSnapshot struct {
	Stats

	// IPC is retired logical instructions per cycle.
	IPC float64 `json:"ipc"`
	// DualFraction is the fraction of retired instructions that were
	// dual-distributed.
	DualFraction float64 `json:"dual_fraction"`
	// MispredictRate is mispredictions per conditional branch.
	MispredictRate float64 `json:"mispredict_rate"`
	// ReplayRate is squashed-and-refetched instructions per retired
	// instruction — the cost of instruction-replay exceptions.
	ReplayRate float64 `json:"replay_rate"`
	// MeanDisorder is the average issue disorder per issued operation.
	MeanDisorder float64 `json:"mean_disorder"`
	// ICacheMissRate and DCacheMissRate are misses (primary + merged) per
	// access.
	ICacheMissRate float64 `json:"icache_miss_rate"`
	DCacheMissRate float64 `json:"dcache_miss_rate"`
	// PredictorAccuracy is correct predictions per prediction.
	PredictorAccuracy float64 `json:"predictor_accuracy"`
	// MeanQueueOccupancy is the mean dispatch-queue occupancy per cluster
	// (zero for clusters the configuration does not have).
	MeanQueueOccupancy [2]float64 `json:"mean_queue_occupancy"`
}

// ReplayRate returns squashed-and-refetched instructions per retired
// instruction.
func (s Stats) ReplayRate() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.ReplayedInstructions) / float64(s.Instructions)
}

// Snapshot precomputes the derived metrics alongside the raw counters.
func (s Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Stats:             s,
		IPC:               s.IPC(),
		DualFraction:      s.DualFraction(),
		MispredictRate:    s.MispredictRate(),
		ReplayRate:        s.ReplayRate(),
		MeanDisorder:      s.MeanDisorder(),
		ICacheMissRate:    s.ICache.MissRate(),
		DCacheMissRate:    s.DCache.MissRate(),
		PredictorAccuracy: s.Predictor.Accuracy(),
	}
	if s.Cycles > 0 {
		for c := range s.Cluster {
			snap.MeanQueueOccupancy[c] = float64(s.Cluster[c].QueueOccupancySum) / float64(s.Cycles)
		}
	}
	return snap
}
